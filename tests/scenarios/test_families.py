"""Scenario families: deterministic expansion and registry integration.

A family spec ``(name, seed, count)`` must expand to the same member
workloads in every process — the pool workers and the batch service
resolve members by *name alone*, so the whole pipeline leans on this
determinism.  The cross-process test literally spawns a fresh
interpreter and compares trace digests byte for byte.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
import sys

import pytest

from repro.artifacts.codec import encode_trace
from repro.fuzz.generator import program_to_json
from repro.scenarios.families import (
    DEFAULT_FAMILY_COUNT,
    FAMILIES,
    expand_spec,
    member_genome,
)
from repro.scenarios.spec import (
    FamilySpec,
    SpecError,
    member_genome_seed,
    member_name,
    parse_member_name,
    spec_from_json,
    spec_to_json,
)
from repro.workloads.base import (
    all_workloads,
    build_workload,
    get_workload,
    resolve_workloads,
    workload_names,
)


def test_expand_is_deterministic():
    spec = FamilySpec(family="loopy", seed=3, count=8)
    first = expand_spec(spec)
    second = expand_spec(spec)
    assert [w.name for w in first] == [w.name for w in second]
    assert len(first) == 8
    for a, b in zip(first, second):
        pa = a.build(1, 1)
        pb = b.build(1, 1)
        assert [str(i) for i in pa.instructions] == [
            str(i) for i in pb.instructions
        ]
        assert pa.data == pb.data and pa.entry == pb.entry


def test_different_seeds_expand_differently():
    base = expand_spec(FamilySpec(family="branchy", seed=1, count=4))
    other = expand_spec(FamilySpec(family="branchy", seed=2, count=4))
    assert [w.name for w in base] != [w.name for w in other]
    ga = member_genome("branchy", 1, 0)
    gb = member_genome("branchy", 2, 0)
    assert program_to_json(ga) != program_to_json(gb)


def test_genome_seed_mix_is_stable():
    # Pinned: changing this silently invalidates every family name in
    # every cached artifact and saved manifest.
    assert member_genome_seed(1, 0) == 1_000_003 & 0x7FFF_FFFF
    assert member_genome_seed(1, 3) == (1_000_003 + 3 * 8191) & 0x7FFF_FFFF
    assert member_genome_seed(7, 42, run_seed=2) == (
        7 * 1_000_003 + 42 * 8191 + 131
    ) & 0x7FFF_FFFF


def test_member_names_parse_back():
    name = member_name("stacky", 12, 7)
    assert name == "stacky-s12-007"
    assert parse_member_name(name) == ("stacky", 12, 7)
    assert parse_member_name("gzip") is None
    assert parse_member_name("loopy-s1-7") is None  # index must be 3+ digits


def test_any_wellformed_name_resolves():
    # Not in the default enumeration window (seed 7), yet resolvable by
    # name alone — that is what pool workers and the service depend on.
    workload = get_workload("redund-s7-042")
    assert workload.category == "Family"
    trace = build_workload("redund-s7-042")
    assert len(trace) > 0


def test_registry_unchanged_and_providers_visible():
    assert len(all_workloads()) == 14  # the seed matrix stays the seed matrix
    names = workload_names()
    for family in FAMILIES:
        assert member_name(family, 1, 0) in names
    assert len(names) >= 14 + len(FAMILIES) * DEFAULT_FAMILY_COUNT


def test_resolver_globs_and_exact_names():
    loopy = resolve_workloads(["loopy-*"])
    assert len(loopy) == DEFAULT_FAMILY_COUNT
    assert loopy == sorted(loopy)
    mixed = resolve_workloads(["gzip", "loopy-s1-00[01]", "gzip"])
    assert mixed == ["gzip", "loopy-s1-000", "loopy-s1-001"]
    with pytest.raises(KeyError, match="matched nothing"):
        resolve_workloads(["loopy-s9999-*"])
    with pytest.raises(KeyError, match="unknown workload"):
        resolve_workloads(["not-a-workload"])


def test_spec_json_roundtrip_and_content_id():
    spec = FamilySpec(family="aliasy", seed=5, count=12)
    again = spec_from_json(json.loads(json.dumps(spec_to_json(spec))))
    assert again == spec
    assert again.content_id() == spec.content_id()
    assert spec.content_id() != FamilySpec(
        family="aliasy", seed=5, count=13
    ).content_id()


def test_expand_rejects_unknown_family_and_params():
    with pytest.raises(SpecError, match="unknown family"):
        expand_spec(FamilySpec(family="nosuch"))
    with pytest.raises(SpecError, match="params"):
        expand_spec(FamilySpec(family="loopy", params={"extra": 1}))


def test_family_genomes_replayable():
    workload = get_workload("branchy-s1-000")
    assert workload.genome is not None
    assert program_to_json(workload.genome(1)) == program_to_json(
        member_genome("branchy", 1, 0)
    )


def test_member_trace_byte_identical_across_processes():
    name = "loopy-s1-003"
    local = hashlib.sha256(
        encode_trace(build_workload(name))
    ).hexdigest()
    script = (
        "import hashlib\n"
        "from repro.artifacts.codec import encode_trace\n"
        "from repro.workloads.base import build_workload\n"
        f"t = build_workload({name!r})\n"
        "print(hashlib.sha256(encode_trace(t)).hexdigest())\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        check=True,
    )
    assert out.stdout.strip() == local
