"""Characterization report: golden checks on the gzip workload.

gzip is the canonical seed workload (loop-heavy, frame-friendly), so its
report exercises every section: reuse rows, loop structure, branch bias,
and the latency table cross-check against the paper's Table 2 values.
"""

from __future__ import annotations

import json

import pytest

from repro.harness.experiment import CONFIGS
from repro.scenarios.characterize import (
    BIAS_BUCKETS,
    PAPER_LATENCY,
    characterize,
    format_characterization,
    uop_latency_table,
)
from repro.timing.config import ProcessorConfig
from repro.trace.stream import DynamicTrace
from repro.workloads.base import build_workload

_CACHE: dict[str, object] = {}


def _report():
    if "report" not in _CACHE:
        trace = build_workload("gzip")
        _CACHE["trace"] = trace
        _CACHE["report"] = characterize(
            trace, CONFIGS["RPO"], workload_name="gzip"
        )
    return _CACHE["trace"], _CACHE["report"]


def test_headline_counters_match_trace():
    trace, report = _report()
    stats = trace.stats()
    assert report.workload == "gzip"
    assert report.config_name == "RPO"
    assert report.records == len(trace)
    assert report.loads == stats.loads
    assert report.stores == stats.stores
    assert 0.0 <= report.taken_ratio <= 1.0
    assert 0.0 <= report.frame_coverage <= 1.0
    assert report.frames > 0


def test_reuse_table_is_consistent():
    _, report = _report()
    assert report.reuse_by_type  # gzip builds frames, so rows exist
    for row in report.reuse_by_type:
        assert 0 <= row.kept_uops <= row.raw_uops
        assert row.removed == row.raw_uops - row.kept_uops
    total_raw = sum(row.raw_uops for row in report.reuse_by_type)
    total_kept = sum(row.kept_uops for row in report.reuse_by_type)
    assert total_kept < total_raw  # the optimizer removes something
    assert report.dynamic_uop_reduction > 0.0


def test_loop_structure_accounts_for_every_record():
    trace, report = _report()
    assert report.loops  # gzip is loop-driven
    assert sum(report.depth_histogram.values()) == len(trace)
    assert any(row.max_depth >= 1 for row in report.loops)
    for row in report.loops:
        assert row.iterations >= 1


def test_bias_histogram_covers_static_branches():
    trace, report = _report()
    assert len(report.bias_histogram) == BIAS_BUCKETS
    static_branches = {
        r.pc for r in trace if r.is_conditional_branch
    }
    assert sum(report.bias_histogram) == len(static_branches)


def test_latency_table_matches_reference_under_default_config():
    _, report = _report()
    assert report.uop_table
    assert all(row.matches_reference for row in report.uop_table)
    by_op = {row.op: row for row in report.uop_table}
    assert by_op["mul"].latency == str(PAPER_LATENCY["mul"])
    assert by_op["divq"].latency == str(PAPER_LATENCY["div"])


def test_latency_table_flags_config_departures():
    rows = uop_latency_table(ProcessorConfig(mul_latency=7))
    mul = next(row for row in rows if row.op == "mul")
    assert not mul.matches_reference  # departure flagged, not hidden


def test_report_serializes_to_json():
    _, report = _report()
    payload = json.loads(json.dumps(report.to_json(), sort_keys=True))
    assert payload["workload"] == "gzip"
    assert len(payload["uop_table"]) == len(report.uop_table)
    assert all(row["ok"] for row in payload["uop_table"])


def test_format_renders_every_section():
    _, report = _report()
    text = format_characterization(report)
    for heading in (
        "reuse by instruction type",
        "loop structure",
        "branch bias histogram",
        "uop latency/throughput",
    ):
        assert heading in text


def test_characterize_requires_replay_frontend():
    trace, _ = _report()
    with pytest.raises(ValueError, match="replay"):
        characterize(trace, CONFIGS["IC"], workload_name="gzip")


def test_empty_trace_characterizes_without_division_errors():
    report = characterize(
        DynamicTrace([], name="empty"), CONFIGS["RPO"], workload_name="empty"
    )
    assert report.records == 0
    assert report.frame_coverage == 0.0
