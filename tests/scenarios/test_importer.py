"""Trace ingestion: round-trip fidelity and strict rejection.

Export → import must be lossless for every seed workload — the imported
workload produces the *identical* simulation result, which is the whole
point of the interchange boundary.  Malformed inputs (corrupt bytes,
truncations, future codec versions, semantically broken traces) are
rejected with structured errors naming the file, and quarantined.
"""

from __future__ import annotations

import gzip
import json
import struct
from pathlib import Path

import pytest

from repro.artifacts.codec import dump_trace_binary, encode_trace
from repro.artifacts.store import ArtifactStore
from repro.harness.experiment import CONFIGS, run_experiment
from repro.harness.figures import PAPER_ORDER
from repro.scenarios.importer import (
    TraceImportError,
    import_trace,
    quarantine_dir,
    trace_from_json,
    trace_to_json,
    validate_trace,
)
from repro.trace.record import TraceRecord
from repro.trace.stream import DynamicTrace
from repro.trace.tracefile import TraceVersionError
from repro.workloads import base as workloads_base
from repro.workloads.base import build_workload, get_workload

_TRACES: dict[str, DynamicTrace] = {}


def _trace(name: str) -> DynamicTrace:
    if name not in _TRACES:
        _TRACES[name] = build_workload(name)
    return _TRACES[name]


@pytest.fixture
def cache_root(tmp_path, monkeypatch):
    """Isolate the import directory and the provider lookup cache."""
    monkeypatch.setenv("REPRO_UOPT_CACHE_DIR", str(tmp_path))
    workloads_base._PROVIDER_CACHE.clear()
    yield tmp_path
    workloads_base._PROVIDER_CACHE.clear()


@pytest.mark.parametrize("name", PAPER_ORDER)
def test_import_roundtrip_all_workloads(name, cache_root, tmp_path):
    trace = _trace(name)
    source = tmp_path / f"{name}.rutb"
    dump_trace_binary(trace, str(source))
    report = import_trace(source)
    assert report.name == f"ext-{name}"
    assert report.records == len(trace)
    imported = build_workload(report.name)
    assert imported.records == trace.records


@pytest.mark.parametrize("name", ["gzip", "bzip2"])
def test_imported_simresult_identical(name, cache_root, tmp_path):
    trace = _trace(name)
    source = tmp_path / f"{name}.rutb"
    dump_trace_binary(trace, str(source))
    report = import_trace(source)
    imported = build_workload(report.name)
    native = run_experiment(trace, CONFIGS["RPO"], workload_name=name)
    external = run_experiment(
        imported, CONFIGS["RPO"], workload_name=report.name
    )
    assert external.sim == native.sim


def test_imported_workload_metadata(cache_root, tmp_path):
    trace = _trace("gzip")
    source = tmp_path / "mytrace.rutb"
    dump_trace_binary(trace, str(source))
    report = import_trace(source, name="MyTrace!Run")
    assert report.name == "ext-mytrace-run"  # sanitized, always prefixed
    workload = get_workload(report.name)
    assert workload.category == "Imported"
    assert workload.digest == report.digest
    assert workload.build is None and workload.load_trace is not None


def test_json_form_roundtrip(cache_root, tmp_path):
    trace = _trace("gzip")
    payload = trace_to_json(trace)
    again = trace_from_json(json.loads(json.dumps(payload)))
    assert again.records == trace.records
    source = tmp_path / "fromjson.json"
    source.write_text(json.dumps(payload))
    report = import_trace(source)
    assert report.name == "ext-gzip"  # embedded trace name wins over stem
    assert build_workload(report.name).records == trace.records


def test_json_version_mismatch_is_structured(tmp_path, cache_root):
    payload = trace_to_json(_trace("gzip"))
    payload["version"] = 99
    source = tmp_path / "future.json"
    source.write_text(json.dumps(payload))
    with pytest.raises(TraceImportError) as excinfo:
        import_trace(source)
    assert "future.json" in str(excinfo.value)
    assert isinstance(excinfo.value.__cause__, TraceVersionError)


def test_corrupt_binary_rejected_and_quarantined(cache_root, tmp_path):
    source = tmp_path / "bad.rutb"
    source.write_bytes(b"\x1f\x8bdefinitely not gzip")
    with pytest.raises(TraceImportError, match="bad.rutb"):
        import_trace(source)
    assert (quarantine_dir() / "bad.rutb").is_file()


def test_truncated_binary_rejected(cache_root, tmp_path):
    data = encode_trace(_trace("gzip"))
    source = tmp_path / "trunc.rutb"
    source.write_bytes(data[: len(data) // 2])
    with pytest.raises(TraceImportError, match="trunc.rutb"):
        import_trace(source)


def test_version_bump_names_file_and_versions(cache_root, tmp_path):
    raw = bytearray(gzip.decompress(encode_trace(_trace("gzip"))))
    struct.pack_into("<H", raw, 4, 99)  # bump the codec version field
    source = tmp_path / "v99.rutb"
    source.write_bytes(gzip.compress(bytes(raw)))
    with pytest.raises(TraceImportError) as excinfo:
        import_trace(source)
    cause = excinfo.value.__cause__
    assert isinstance(cause, TraceVersionError)
    assert cause.found == 99 and cause.supported == 1
    assert "v99.rutb" in str(excinfo.value)


def test_semantic_validation_rejects_directionless_branch(
    cache_root, tmp_path
):
    trace = _trace("gzip")
    records = list(trace.records)
    for i, record in enumerate(records):
        if record.is_conditional_branch:
            records[i] = TraceRecord(
                pc=record.pc,
                instruction=record.instruction,
                next_pc=record.next_pc,
                reg_writes=record.reg_writes,
                flags_after=record.flags_after,
                mem_ops=record.mem_ops,
                branch_taken=None,
            )
            break
    broken = DynamicTrace(records, name="broken")
    problems = validate_trace(broken)
    assert any("without direction" in p for p in problems)
    source = tmp_path / "broken.rutb"
    dump_trace_binary(broken, str(source))
    with pytest.raises(TraceImportError, match="without direction"):
        import_trace(source)


def test_store_treats_corrupt_trace_as_miss(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    store.put_trace("a" * 64, _trace("gzip"))
    store.put_bytes("trace", "b" * 64, b"\x1f\x8bgarbage", label="bad")
    assert store.get_trace("a" * 64) is not None
    assert store.get_trace("b" * 64) is None  # structured miss, no crash


def test_unrecognized_format_rejected(cache_root, tmp_path):
    source = tmp_path / "noise.bin"
    source.write_bytes(b"\x00\x01\x02\x03 neither gzip nor json")
    with pytest.raises(TraceImportError, match="unrecognized trace format"):
        import_trace(source)


def test_empty_trace_rejected(cache_root, tmp_path):
    source = tmp_path / "empty.rutb"
    dump_trace_binary(DynamicTrace([], name="empty"), str(source))
    with pytest.raises(TraceImportError, match="no records"):
        import_trace(source)


def test_imported_dir_canonical_file_reimports(cache_root, tmp_path):
    # The canonical re-encoded file is itself a valid interchange file.
    source = tmp_path / "twice.rutb"
    dump_trace_binary(_trace("gzip"), str(source))
    first = import_trace(source)
    second = import_trace(Path(first.path), name="twice-again")
    assert build_workload(second.name).records == _trace("gzip").records
