"""Property tests: cache invariants over seeded random valid geometries.

The unit tests in ``test_caches.py`` pin a handful of hand-picked
shapes; these sweep ``Cache``/``CacheHierarchy`` across the whole valid
envelope (the same pools the config fuzzer samples from) and assert the
invariants that must hold for *any* geometry:

* counters conserve: ``hits + misses == accesses``;
* a repeated access always hits, a first-touch access always misses;
* exactly ``associativity`` distinct lines fit per set and LRU order
  decides the eviction victim;
* ``access_range`` counts one access whatever the span.
"""

import random

import pytest

from repro.timing import Cache, CacheConfig, CacheHierarchy

_LINE_BYTES = (16, 32, 64, 128)
_ASSOCIATIVITY = (1, 2, 4, 8)
_SETS = (1, 2, 4, 8, 16, 64)


def _random_geometry(rng: random.Random) -> CacheConfig:
    line = rng.choice(_LINE_BYTES)
    assoc = rng.choice(_ASSOCIATIVITY)
    sets = rng.choice(_SETS)
    return CacheConfig(
        size_bytes=line * assoc * sets,
        line_bytes=line,
        associativity=assoc,
        hit_latency=rng.randint(1, 8),
    )


@pytest.mark.parametrize("seed", range(25))
def test_counters_conserve_under_random_traffic(seed):
    rng = random.Random(seed)
    cache = Cache(_random_geometry(rng))
    for _ in range(300):
        cache.access(rng.randrange(0, 1 << 20))
    assert cache.hits + cache.misses == cache.accesses == 300


@pytest.mark.parametrize("seed", range(25))
def test_repeat_access_hits_first_touch_misses(seed):
    rng = random.Random(1000 + seed)
    cache = Cache(_random_geometry(rng))
    seen_lines = set()
    for _ in range(200):
        addr = rng.randrange(0, 1 << 16)
        line = addr // cache.config.line_bytes
        hit = cache.access(addr)
        if line not in seen_lines:
            # A line never touched before cannot hit... unless an alias
            # evicted nothing (first touch is always a miss).
            assert not hit
        seen_lines.add(line)
        # Immediate re-access of the same address always hits.
        assert cache.access(addr)


@pytest.mark.parametrize("seed", range(15))
def test_lru_eviction_order_in_every_geometry(seed):
    rng = random.Random(2000 + seed)
    config = _random_geometry(rng)
    cache = Cache(config)
    assoc = config.associativity
    set_stride = cache.num_sets * config.line_bytes
    # Fill one set with `assoc` distinct lines: all fit, all then hit.
    addrs = [way * set_stride for way in range(assoc)]
    for addr in addrs:
        assert not cache.access(addr)
    for addr in addrs:
        assert cache.access(addr)
    # One more line in the same set evicts exactly the LRU way (addrs[0],
    # the least recently touched after the hit loop above).
    newcomer = assoc * set_stride
    assert not cache.access(newcomer)
    if assoc > 1:
        assert cache.access(addrs[1])  # survived (check before the miss
        # below reinserts addrs[0] and evicts another way)
    assert not cache.access(addrs[0])  # evicted


@pytest.mark.parametrize("seed", range(15))
def test_access_range_counts_one_access_per_call(seed):
    rng = random.Random(3000 + seed)
    cache = Cache(_random_geometry(rng))
    for _ in range(100):
        addr = rng.randrange(0, 1 << 16)
        span = rng.randint(1, 4 * cache.config.line_bytes)
        cache.access_range(addr, span)
    assert cache.accesses == 100
    assert cache.hits + cache.misses == 100


@pytest.mark.parametrize("seed", range(15))
def test_hierarchy_latency_bounds_any_geometry(seed):
    rng = random.Random(4000 + seed)
    l1 = _random_geometry(rng)
    l2_config = _random_geometry(rng)
    memory_latency = rng.choice((10, 50, 200))
    hierarchy = CacheHierarchy(l1, Cache(l2_config), memory_latency)
    cold = hierarchy.access(0x12340)
    assert cold == l1.hit_latency + l2_config.hit_latency + memory_latency
    warm = hierarchy.access(0x12340)
    assert warm == l1.hit_latency
    # Any access costs at least an L1 hit and at most a full miss chain.
    for _ in range(200):
        latency = hierarchy.access(rng.randrange(0, 1 << 18))
        assert l1.hit_latency <= latency <= cold
