"""Cache model: geometry, LRU, hierarchy latencies."""

import pytest

from repro.timing import Cache, CacheConfig, CacheHierarchy


def small_cache(size=1024, line=64, assoc=2):
    return Cache(CacheConfig(size_bytes=size, line_bytes=line, associativity=assoc))


def test_geometry():
    cache = small_cache()
    assert cache.num_sets == 1024 // (64 * 2)


def test_invalid_geometry_rejected():
    with pytest.raises(ValueError):
        Cache(CacheConfig(size_bytes=1000, line_bytes=64, associativity=2))
    with pytest.raises(ValueError):
        Cache(CacheConfig(size_bytes=1024, line_bytes=48, associativity=2))


def test_first_access_misses_then_hits():
    cache = small_cache()
    assert not cache.access(0x100)
    assert cache.access(0x100)
    assert cache.access(0x13F)  # same 64-byte line


def test_lru_within_set():
    cache = small_cache(size=256, line=64, assoc=2)  # 2 sets
    set_stride = 2 * 64  # same set every 128 bytes
    a, b, c = 0x0, set_stride, 2 * set_stride
    cache.access(a)
    cache.access(b)
    cache.access(a)  # refresh a
    cache.access(c)  # evicts b
    assert cache.access(a)
    assert not cache.access(b)


def test_access_range_spanning_lines():
    cache = small_cache()
    assert not cache.access_range(0x3C, 8)  # spans lines 0 and 1
    assert cache.access(0x0) and cache.access(0x40)


def test_hierarchy_latencies():
    l2 = Cache(CacheConfig(size_bytes=4096, line_bytes=64, associativity=4,
                           hit_latency=10))
    hierarchy = CacheHierarchy(
        CacheConfig(size_bytes=512, line_bytes=64, associativity=2,
                    hit_latency=2),
        l2,
        memory_latency=50,
    )
    cold = hierarchy.access(0x1000)
    assert cold == 2 + 10 + 50  # misses everywhere
    warm = hierarchy.access(0x1000)
    assert warm == 2  # L1 hit
    # Evict from tiny L1 but not from L2.
    for i in range(16):
        hierarchy.access(0x2000 + i * 64)
    l2_hit = hierarchy.access(0x1000)
    assert l2_hit == 2 + 10


def test_hit_miss_counters():
    cache = small_cache()
    cache.access(0)
    cache.access(0)
    cache.access(64)
    assert cache.hits == 1 and cache.misses == 2 and cache.accesses == 3
