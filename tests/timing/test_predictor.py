"""Branch predictors: gshare, BTB, RAS."""

from repro.timing import BranchTargetBuffer, GsharePredictor, ReturnAddressStack


def test_gshare_learns_always_taken():
    predictor = GsharePredictor(history_bits=8)
    for _ in range(8):
        predictor.update(0x400, True)
    assert predictor.predict(0x400)


def test_gshare_learns_alternation_via_history():
    predictor = GsharePredictor(history_bits=8)
    outcome = True
    # Train long enough for per-history counters to saturate.
    for _ in range(256):
        predictor.update(0x400, outcome)
        outcome = not outcome
    correct = 0
    for _ in range(64):
        correct += predictor.update(0x400, outcome)
        outcome = not outcome
    assert correct > 56  # history disambiguates the alternation


def test_gshare_counts_mispredictions():
    predictor = GsharePredictor()
    predictor.update(0x100, False)  # counters init weakly taken
    assert predictor.mispredictions == 1
    assert predictor.predictions == 1


def test_btb_miss_then_hit():
    btb = BranchTargetBuffer(entries=64)
    assert btb.predict(0x100) is None
    btb.update(0x100, 0x4000)
    assert btb.predict(0x100) == 0x4000


def test_btb_conflict_eviction():
    btb = BranchTargetBuffer(entries=4)
    btb.update(0x100, 0x1111)
    btb.update(0x100 + 4 * 4, 0x2222)  # same index, different tag
    assert btb.predict(0x100) is None


def test_ras_lifo_order():
    ras = ReturnAddressStack(depth=4)
    ras.push(1)
    ras.push(2)
    assert ras.pop() == 2
    assert ras.pop() == 1
    assert ras.pop() is None


def test_ras_overflow_drops_oldest():
    ras = ReturnAddressStack(depth=2)
    for value in (1, 2, 3):
        ras.push(value)
    assert ras.pop() == 3
    assert ras.pop() == 2
    assert ras.pop() is None  # 1 was squeezed out
