"""ConfigError regressions: every degenerate shape the fuzzer found.

Each test pins one concrete failure mode that used to crash (or hang)
somewhere downstream — ``ZeroDivisionError`` in cache construction,
``line % 0`` on a zero-set cache, an infinite issue loop on an empty
functional-unit pool — and now dies up front with a :class:`ConfigError`
naming the offending field.
"""

import pytest

from repro.timing import Cache, CacheConfig, ConfigError, ProcessorConfig
from repro.timing.config import default_config
from repro.timing.pipeline import PipelineModel
from repro.timing.predictor import (
    BranchTargetBuffer,
    GsharePredictor,
    ReturnAddressStack,
)


def _field_of(excinfo):
    return excinfo.value.field


def test_config_error_is_a_value_error_naming_the_field():
    err = ConfigError("dcache.associativity", "must be >= 1, got 0")
    assert isinstance(err, ValueError)
    assert err.field == "dcache.associativity"
    assert str(err).startswith("dcache.associativity: ")


# ------------------------------------------------------------------ caches


def test_cache_zero_associativity_no_longer_zero_divides():
    # Historic crash: num_sets = size // (line * 0) -> ZeroDivisionError.
    with pytest.raises(ConfigError) as excinfo:
        Cache(CacheConfig(size_bytes=1024, line_bytes=64, associativity=0))
    assert _field_of(excinfo) == "cache.associativity"


def test_cache_zero_sets_no_longer_crashes_at_access_time():
    # Historic crash: size < line*assoc gave num_sets == 0, then the
    # first access died with `line % 0`.
    with pytest.raises(ConfigError) as excinfo:
        Cache(CacheConfig(size_bytes=64, line_bytes=64, associativity=2))
    assert _field_of(excinfo) == "cache.size_bytes"


def test_cache_indivisible_size_rejected():
    with pytest.raises(ConfigError) as excinfo:
        Cache(CacheConfig(size_bytes=1000, line_bytes=64, associativity=2))
    assert _field_of(excinfo) == "cache.size_bytes"


def test_cache_non_power_of_two_line_rejected():
    with pytest.raises(ConfigError) as excinfo:
        Cache(CacheConfig(size_bytes=960, line_bytes=48, associativity=2))
    assert _field_of(excinfo) == "cache.line_bytes"


def test_cache_zero_hit_latency_rejected():
    with pytest.raises(ConfigError) as excinfo:
        CacheConfig(size_bytes=1024, hit_latency=0).validate()
    assert _field_of(excinfo) == "cache.hit_latency"


def test_cache_validate_prefix_names_the_level():
    config = default_config()
    config.dcache.associativity = 0
    with pytest.raises(ConfigError) as excinfo:
        config.validate()
    assert _field_of(excinfo) == "dcache.associativity"


# ---------------------------------------------------------------- pipeline


@pytest.mark.parametrize(
    "field_name,value",
    [
        ("fetch_width", 0),
        ("retire_width", 0),
        ("x86_decode_width", 0),
        ("branch_resolution_depth", -1),
        ("simple_alus", 0),
        ("complex_alus", 0),
        ("fpus", 0),
        ("load_store_units", 0),
        ("ghr_bits", 0),
        ("btb_entries", 100),
        ("ras_depth", 0),
        ("memory_latency", 0),
        ("frame_cache_uops", 0),
        ("cache_switch_penalty", -1),
        ("mul_latency", 0),
        ("div_latency", 0),
    ],
)
def test_processor_scalar_field_rejected(field_name, value):
    config = default_config()
    setattr(config, field_name, value)
    with pytest.raises(ConfigError) as excinfo:
        config.validate()
    assert _field_of(excinfo) == field_name


def test_window_smaller_than_fetch_width_rejected():
    # Historic hang: fetch could never fit a group into the window, so
    # _wait_for_window spun forever.
    config = default_config()
    config.fetch_width = 8
    config.window_size = 4
    with pytest.raises(ConfigError) as excinfo:
        config.validate()
    assert _field_of(excinfo) == "window_size"


def test_default_config_validates_clean():
    default_config().validate()


def test_pipeline_model_validates_up_front():
    config = default_config()
    config.simple_alus = 0  # historic hang: issue loop spins forever
    with pytest.raises(ConfigError) as excinfo:
        PipelineModel(config)
    assert _field_of(excinfo) == "simple_alus"


# --------------------------------------------------------------- predictor


def test_gshare_zero_history_bits_rejected():
    with pytest.raises(ConfigError) as excinfo:
        GsharePredictor(history_bits=0)
    assert _field_of(excinfo) == "ghr_bits"


def test_btb_non_power_of_two_entries_rejected():
    with pytest.raises(ConfigError) as excinfo:
        BranchTargetBuffer(entries=100)
    assert _field_of(excinfo) == "btb_entries"


def test_btb_zero_entries_rejected():
    # Historic crash: `pc % 0` on the first lookup.
    with pytest.raises(ConfigError):
        BranchTargetBuffer(entries=0)


def test_ras_zero_depth_rejected():
    with pytest.raises(ConfigError) as excinfo:
        ReturnAddressStack(depth=0)
    assert _field_of(excinfo) == "ras_depth"


# ------------------------------------------------------------------ table2


def test_table2_small_frame_cache_no_longer_renders_0k():
    # Historic bug: floor division printed 512 uops as "0k" and always
    # claimed "approximately 64kB" whatever the capacity.
    config = default_config()
    config.frame_cache_uops = 512
    text = config.table2()
    assert "512 micro-operations" in text
    assert "0k" not in text
    assert "approximately 2kB" in text
    assert "64kB" not in text


def test_table2_non_multiple_capacity_renders_exact():
    config = default_config()
    config.frame_cache_uops = 100
    text = config.table2()
    assert "100 micro-operations" in text
    assert "approximately 400B" in text


def test_table2_default_rendering_unchanged():
    text = default_config().table2()
    assert "16k micro-operations" in text
    assert "approximately 64kB" in text
    assert "32kB" in text
    assert "512kB" in text


# --------------------------------------------------------------- fill unit


def test_fill_unit_zero_uops_rejected():
    config = default_config()
    config.fill_unit.max_uops = 0
    with pytest.raises(ConfigError) as excinfo:
        config.validate()
    assert _field_of(excinfo) == "fill_unit.max_uops"


def test_fill_unit_line_narrower_than_widest_instruction_rejected():
    # A 4-uop x86 instruction must fit in one line or the fill unit
    # would loop forever re-offering the same instruction.
    config = default_config()
    config.fill_unit.max_uops = 3
    with pytest.raises(ConfigError) as excinfo:
        config.validate()
    assert _field_of(excinfo) == "fill_unit.max_uops"
    assert "widest" in str(excinfo.value)


def test_fill_unit_zero_branches_rejected():
    config = default_config()
    config.fill_unit.max_branches = 0
    with pytest.raises(ConfigError) as excinfo:
        config.validate()
    assert _field_of(excinfo) == "fill_unit.max_branches"


def test_fill_unit_custom_prefix_names_the_caller():
    from repro.timing.config import FillUnitConfig

    with pytest.raises(ConfigError) as excinfo:
        FillUnitConfig(max_uops=0).validate("tune.fill")
    assert _field_of(excinfo) == "tune.fill.max_uops"
