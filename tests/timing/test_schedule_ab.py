"""Golden A/B: template scheduling must be cycle-identical to reference.

The timing model has two uop-scheduling implementations (DESIGN.md §11):
the original object-walking ``reference`` path and the schedule-template
``template`` fast path.  The contract is equality of the *entire*
:class:`~repro.timing.pipeline.SimResult` — cycles, every cycle-
accounting bin, cache/branch side effects — on real workloads across all
front-end configurations, including runs with firing frames (parser's
RPO run fires >100 frames, exercising the rollback path in both modes).
"""

import pytest

from repro.harness.experiment import CONFIGS, run_experiment
from repro.timing import FetchBlock, PipelineModel, default_config
from repro.uops import Uop, UopOp, UReg
from repro.workloads import build_workload


class ScriptedFetcher:
    def __init__(self, blocks):
        self.blocks = list(blocks)

    def next_block(self, cycle):
        return self.blocks.pop(0) if self.blocks else None


def icache_block(uops, pc=0x1000):
    return FetchBlock(
        source="icache",
        uops=uops,
        addresses=[u.mem_address for u in uops],
        x86_count=len(uops),
        pc=pc,
        byte_start=pc,
        byte_end=pc + 4 * len(uops),
    )


_TRACES = {}


def _trace(name):
    if name not in _TRACES:
        _TRACES[name] = build_workload(name)
    return _TRACES[name]


#: (workload, config) cells: every fetch source (icache/tcache/frame),
#: optimized and unoptimized frames, and firing-frame recovery.
AB_CELLS = [
    ("crafty", "IC"),
    ("crafty", "TC"),
    ("crafty", "RPO"),
    ("excel", "RP"),
    ("excel", "RPO"),  # fires several frames
    ("parser", "RPO"),  # fires >100 frames
]


@pytest.mark.parametrize("workload,config_name", AB_CELLS)
def test_template_matches_reference_on_workload(workload, config_name):
    trace = _trace(workload)
    config = CONFIGS[config_name]
    reference = run_experiment(trace, config, scheduling="reference")
    template = run_experiment(trace, config, scheduling="template")
    assert template.sim == reference.sim


def test_fired_frames_present_in_ab_sample():
    """The A/B sample must actually exercise firing-frame recovery."""
    result = run_experiment(_trace("parser"), CONFIGS["RPO"])
    assert result.sim.frames_fired > 0


def test_template_matches_reference_on_scripted_blocks():
    """Blocks without precomputed schedules derive them on the fly."""

    def blocks():
        out = []
        for i in range(30):
            uops = [
                Uop(UopOp.ADD, dst=UReg(j % 4), src_a=UReg(j % 4), imm=1)
                for j in range(6)
            ]
            load = Uop(UopOp.LOAD, dst=UReg.EDI, src_a=UReg.ESI)
            load.mem_address = 0x8000 + 64 * i
            uops.append(load)
            out.append(icache_block(uops, pc=0x1000 + 64 * i))
        return out

    config = default_config()
    reference = PipelineModel(config, scheduling="reference").simulate(
        ScriptedFetcher(blocks())
    )
    template = PipelineModel(config, scheduling="template").simulate(
        ScriptedFetcher(blocks())
    )
    assert template == reference


def test_unknown_scheduling_mode_rejected():
    with pytest.raises(ValueError):
        PipelineModel(default_config(), scheduling="turbo")
