"""Processor configuration (Table 2)."""

from repro.timing import ProcessorConfig, default_config, large_icache_config


def test_default_matches_paper_table2():
    config = default_config()
    assert config.fetch_width == 8
    assert config.window_size == 512
    assert config.branch_resolution_depth == 15
    assert config.simple_alus == 6
    assert config.complex_alus == 2
    assert config.fpus == 3
    assert config.load_store_units == 4
    assert config.ghr_bits == 18
    assert config.frame_cache_uops == 16 * 1024
    assert config.icache.size_bytes == 8 * 1024
    assert config.dcache.size_bytes == 32 * 1024
    assert config.dcache.hit_latency == 2
    assert config.l2.size_bytes == 512 * 1024
    assert config.l2.hit_latency == 10
    assert config.memory_latency == 50


def test_large_icache_reference_config():
    config = large_icache_config()
    assert config.icache.size_bytes == 64 * 1024


def test_table2_rendering_mentions_key_values():
    text = default_config().table2()
    assert "8-wide" in text
    assert "18-bit gshare" in text
    assert "512" in text
    assert "50 cycles" in text
