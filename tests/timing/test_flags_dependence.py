"""Flags-dependence symmetry between Uop, OptUop, and the timing model.

x86 shifts leave EFLAGS unchanged when the masked count is zero, so a
flag-writing SHL/SHR/SAR with a dynamic (or masked-to-zero) count *reads*
the incoming flags — it may have to preserve them.  The frame path
(``OptUop.reads_flags``) always knew this; the ICache path (``Uop``
property and the timing model's inline condition) historically did not,
so the same code serialized differently depending on which cache served
it.  All three now delegate to ``repro.uops.uop.uop_reads_flags``.
"""

import pytest

from repro.optimizer.optuop import LiveIn, OptUop, from_dyn_uop
from repro.timing import FetchBlock, PipelineModel, default_config
from repro.uops import Uop, UopOp, UReg
from repro.uops.uop import uop_reads_flags

from repro.x86.instructions import Cond


def _cases():
    shl_dyn = Uop(
        UopOp.SHL, dst=UReg.EAX, src_a=UReg.EAX, src_b=UReg.ECX,
        writes_flags=True,
    )
    shl_imm = Uop(
        UopOp.SHL, dst=UReg.EAX, src_a=UReg.EAX, imm=3, writes_flags=True
    )
    shl_imm0 = Uop(
        UopOp.SHL, dst=UReg.EAX, src_a=UReg.EAX, imm=32, writes_flags=True
    )  # masked count = 0: flags preserved, so they are read
    sar_dyn = Uop(
        UopOp.SAR, dst=UReg.EBX, src_a=UReg.EBX, src_b=UReg.ECX,
        writes_flags=True,
    )
    br = Uop(UopOp.BR, cond=Cond.Z, target=0x2000)
    add = Uop(UopOp.ADD, dst=UReg.EAX, src_a=UReg.EAX, imm=1, writes_flags=True)
    adc_like = Uop(
        UopOp.ADD, dst=UReg.EAX, src_a=UReg.EAX, imm=1,
        writes_flags=True, preserves_cf=True,
    )
    return [
        (shl_dyn, True),
        (shl_imm, False),
        (shl_imm0, True),
        (sar_dyn, True),
        (br, True),
        (add, False),
        (adc_like, True),
    ]


@pytest.mark.parametrize("uop,expected", _cases())
def test_uop_reads_flags_predicate(uop, expected):
    assert uop.reads_flags is expected
    assert (
        uop_reads_flags(
            uop.op, uop.cond, uop.preserves_cf, uop.writes_flags,
            uop.src_b is not None, uop.imm,
        )
        is expected
    )


@pytest.mark.parametrize("uop,expected", _cases())
def test_optuop_agrees_with_uop(uop, expected):
    opt = from_dyn_uop(uop, slot=0)
    if uop.src_b is not None:
        opt.src_b = LiveIn(uop.src_b)
    assert opt.reads_flags is expected


def _icache_block(uops, pc=0x1000):
    return FetchBlock(
        source="icache",
        uops=uops,
        addresses=[u.mem_address for u in uops],
        x86_count=len(uops),
        pc=pc,
        byte_start=pc,
        byte_end=pc + 4 * len(uops),
    )


class _One:
    def __init__(self, block):
        self.block = block

    def next_block(self, cycle):
        block, self.block = self.block, None
        return block


@pytest.mark.parametrize("scheduling", ["template", "reference"])
def test_dynamic_shift_serializes_on_flags(scheduling):
    """A dynamic-count SHL must wait for the in-flight flags producer."""
    config = default_config()

    def run(shift):
        producer = Uop(
            UopOp.MUL, dst=UReg.EDX, src_a=UReg.EDX, imm=3, writes_flags=True
        )
        model = PipelineModel(config, scheduling=scheduling)
        model.simulate(_One(_icache_block([producer, shift])))
        return model._flags_ready  # completion time of the last flags write

    dependent = run(
        Uop(UopOp.SHL, dst=UReg.EAX, src_a=UReg.EAX, src_b=UReg.ECX,
            writes_flags=True)
    )
    independent = run(
        Uop(UopOp.SHL, dst=UReg.EAX, src_a=UReg.EAX, imm=3, writes_flags=True)
    )
    # Dependent: SHL waits for the MUL's flags (depth + mul_latency) and
    # finishes one cycle later.  Independent: SHL issues immediately and
    # its own flags write (depth + 1) is the last in program order.
    assert dependent > independent
    assert dependent - independent == config.mul_latency
