"""Firing-frame rollback: ALL availability state must be restored.

A firing frame is squashed in its entirety (paper §3.4): its register,
flags, and store-buffer effects never happened architecturally.  The
model therefore has to restore ``_reg_ready``, ``_flags_ready``, *and*
``_mem_ready`` after recovery — the last of these was leaked before this
regression suite existed, letting a squashed store's forwarding time
serialize the post-recovery ICache replay of the very same region.
"""

import pytest

from repro.optimizer.optuop import DefRef, LiveIn, OptUop
from repro.timing import FetchBlock, PipelineModel, default_config
from repro.uops import UopOp, UReg

STORE_ADDR = 0xF000
LOAD_ADDR = 0x9000


def firing_block():
    """A three-uop frame instance that fires: load -> add -> store."""
    load = OptUop(UopOp.LOAD, slot=0, src_a=LiveIn(UReg.ESI))
    add = OptUop(
        UopOp.ADD, slot=1, src_a=DefRef(0), imm=1, writes_flags=True
    )
    store = OptUop(
        UopOp.STORE,
        slot=2,
        src_a=LiveIn(UReg.ESP),
        src_data=DefRef(1),
        observed_address=STORE_ADDR,
    )
    return FetchBlock(
        source="frame",
        uops=[load, add, store],
        addresses=[LOAD_ADDR, None, STORE_ADDR],
        x86_count=0,
        pc=0x1000,
        fires=True,
    )


class OneBlock:
    def __init__(self, block):
        self.block = block

    def next_block(self, cycle):
        block, self.block = self.block, None
        return block


@pytest.mark.parametrize("scheduling", ["template", "reference"])
def test_firing_frame_restores_all_availability_state(scheduling):
    model = PipelineModel(default_config(), scheduling=scheduling)
    # Pre-existing availability state from earlier retired code.
    model._reg_ready = {int(UReg.ESI): 3, int(UReg.EAX): 7}
    model._flags_ready = 5
    model._mem_ready = {STORE_ADDR >> 2: 4, 0x123: 9}
    saved_regs = dict(model._reg_ready)
    saved_flags = model._flags_ready
    saved_mem = dict(model._mem_ready)
    model.simulate(OneBlock(firing_block()))
    assert model._reg_ready == saved_regs
    assert model._flags_ready == saved_flags
    assert model._mem_ready == saved_mem


@pytest.mark.parametrize("scheduling", ["template", "reference"])
def test_firing_store_does_not_leak_into_mem_ready(scheduling):
    """Minimized regression for the ``_mem_ready`` leak.

    On a fresh model the squashed store must leave no forwarding entry
    behind; before the fix the words it touched survived recovery.
    """
    model = PipelineModel(default_config(), scheduling=scheduling)
    model.simulate(OneBlock(firing_block()))
    assert model._mem_ready == {}


@pytest.mark.parametrize("scheduling", ["template", "reference"])
def test_firing_frame_still_accounts_assert_cycles(scheduling):
    model = PipelineModel(default_config(), scheduling=scheduling)
    result = model.simulate(OneBlock(firing_block()))
    assert result.frames_fired == 1
    assert result.bins["assert"] > 0
    assert result.x86_retired == 0
