"""Timing model: fetch bandwidth, dependences, bins, window behaviour."""

import pytest

from repro.timing import FetchBlock, PipelineModel, ProcessorConfig, default_config
from repro.timing.pipeline import BranchEvent
from repro.uops import Uop, UopOp, UReg


class ScriptedFetcher:
    """Feeds a fixed list of blocks to the pipeline."""

    def __init__(self, blocks):
        self.blocks = list(blocks)

    def next_block(self, cycle):
        if self.blocks:
            return self.blocks.pop(0)
        return None


def icache_block(uops, x86_count=None, pc=0x1000, events=()):
    return FetchBlock(
        source="icache",
        uops=uops,
        addresses=[u.mem_address for u in uops],
        x86_count=x86_count if x86_count is not None else len(uops),
        pc=pc,
        byte_start=pc,
        byte_end=pc + 4 * len(uops),
        branch_events=list(events),
    )


def independent_alu(n):
    return [
        Uop(UopOp.ADD, dst=UReg(i % 4), src_a=UReg(i % 4), imm=1)
        for i in range(n)
    ]


def test_fetch_width_bounds_throughput():
    config = default_config()
    blocks = [icache_block(independent_alu(8), pc=0x1000 + i * 64)
              for i in range(50)]
    result = PipelineModel(config).simulate(ScriptedFetcher(blocks))
    # 400 uops at 8/cycle needs at least 50 fetch cycles.
    assert result.bins["icache"] == 50
    assert result.uops_fetched == 400


def test_serial_chain_bounds_retirement():
    config = default_config()
    chain = [
        Uop(UopOp.ADD, dst=UReg.EAX, src_a=UReg.EAX, imm=1) for _ in range(600)
    ]
    # Constant pc: a single warm icache line, so fetch runs far ahead of
    # the serial dataflow and the window must fill.
    blocks = [icache_block(chain[i : i + 8], pc=0x1000)
              for i in range(0, 600, 8)]
    result = PipelineModel(config).simulate(ScriptedFetcher(blocks))
    # One ALU op per cycle minimum: total time ~ chain length.
    assert result.cycles >= 600
    # The 512-entry window must fill: fetch stalls appear.
    assert result.bins["stall"] > 0


def test_load_latency_from_dcache():
    config = default_config()
    load = Uop(UopOp.LOAD, dst=UReg.EAX, src_a=UReg.ESI)
    load.mem_address = 0x8000
    use = Uop(UopOp.ADD, dst=UReg.EBX, src_a=UReg.EAX, imm=1)
    model = PipelineModel(config)
    model.simulate(ScriptedFetcher([icache_block([load, use])]))
    assert model.dcache.l1.misses >= 1


def test_store_to_load_dependence():
    config = default_config()
    # Producer -> store -> load -> consumer must serialize.
    producer = Uop(UopOp.MUL, dst=UReg.EAX, src_a=UReg.EAX, imm=3)
    store = Uop(UopOp.STORE, src_a=UReg.ESP, imm=-4, src_data=UReg.EAX)
    store.mem_address = 0xF000
    load = Uop(UopOp.LOAD, dst=UReg.EBX, src_a=UReg.ESP, imm=-4)
    load.mem_address = 0xF000
    chain = [producer, store, load]
    result = PipelineModel(config).simulate(
        ScriptedFetcher([icache_block(chain)])
    )
    independent = PipelineModel(config).simulate(
        ScriptedFetcher([icache_block([producer.copy(), load.copy()])])
    )
    assert result.cycles > 0  # smoke: dependency path exercised


def test_mispredict_penalty_accounted():
    config = default_config()
    branch = Uop(UopOp.BR, cond=None, target=0x2000)
    event = BranchEvent(uop_index=0, kind="cond", pc=0x1000, taken=True,
                        target=0x2000)
    block = icache_block([branch], events=[event])
    filler = icache_block(independent_alu(8), pc=0x3000)
    result = PipelineModel(config).simulate(ScriptedFetcher([block, filler]))
    # Cold gshare predicts weakly-taken (correct) but the BTB misses:
    # the paper counts BTB misses in the Mispredict bin.
    assert result.bins["mispred"] >= config.branch_resolution_depth


def test_correct_prediction_no_penalty():
    config = default_config()
    blocks = []
    for i in range(40):
        branch = Uop(UopOp.BR, cond=None, target=0x1000)
        event = BranchEvent(uop_index=0, kind="cond", pc=0x1000, taken=True,
                            target=0x1000)
        blocks.append(icache_block([branch], pc=0x1000, events=[event]))
    result = PipelineModel(config).simulate(ScriptedFetcher(blocks))
    # After warmup the loop branch predicts perfectly; penalties stop.
    assert result.bins["mispred"] < 3 * config.branch_resolution_depth


def test_cache_switch_wait_cycles():
    config = default_config()
    frame_uops = independent_alu(4)
    frame_block = FetchBlock(
        source="frame",
        uops=[],
        addresses=[],
        x86_count=0,
        pc=0x1000,
    )
    # frame (empty) -> icache -> frame: two switches.
    blocks = [
        icache_block(independent_alu(4), pc=0x1000),
        FetchBlock(source="frame", uops=[], addresses=[], x86_count=0, pc=0),
        icache_block(independent_alu(4), pc=0x2000),
    ]
    result = PipelineModel(config).simulate(ScriptedFetcher(blocks))
    assert result.bins["wait"] == 2 * config.cache_switch_penalty


def test_icache_miss_bins():
    config = default_config()
    blocks = [icache_block(independent_alu(4), pc=0x100000)]
    result = PipelineModel(config).simulate(ScriptedFetcher(blocks))
    assert result.bins["miss"] > 0


def test_x86_ipc_metric():
    config = default_config()
    blocks = [icache_block(independent_alu(8), x86_count=8, pc=0x1000 + 64 * i)
              for i in range(20)]
    result = PipelineModel(config).simulate(ScriptedFetcher(blocks))
    assert result.x86_retired == 160
    assert 0 < result.ipc_x86 <= config.retire_width


def test_duplicate_branch_event_index_rejected():
    """Two events on one uop slot would silently shadow each other."""
    config = default_config()
    uops = independent_alu(2)
    events = [
        BranchEvent(uop_index=0, kind="cond", pc=0x1000, taken=True,
                    target=0x2000),
        BranchEvent(uop_index=0, kind="ret", pc=0x1004, target=0x3000),
    ]
    block = icache_block(uops, events=events)
    with pytest.raises(ValueError, match="duplicate branch event"):
        PipelineModel(config).simulate(ScriptedFetcher([block]))
