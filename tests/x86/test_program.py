"""Program container behaviour."""

import pytest

from repro.x86 import Assembler, Imm, Reg


def test_program_len_counts_instructions():
    asm = Assembler()
    asm.mov(Reg.EAX, Imm(1))
    asm.mov(Reg.EBX, Imm(2))
    asm.ret()
    assert len(asm.assemble()) == 3


def test_at_unknown_address_raises():
    asm = Assembler()
    asm.ret()
    program = asm.assemble()
    with pytest.raises(KeyError):
        program.at(0xDEAD)


def test_data_sections_preserved():
    asm = Assembler()
    asm.ret()
    asm.data_bytes(0x9000, b"\x01\x02")
    asm.data_words(0xA000, [3])
    program = asm.assemble()
    assert program.data[0x9000] == b"\x01\x02"
    assert program.data[0xA000] == (3).to_bytes(4, "little")


def test_instruction_lengths_realistic_range():
    asm = Assembler()
    asm.push(Reg.EBP)  # 1 byte
    asm.mov(Reg.EAX, Imm(0x12345678))  # >= 5 bytes
    asm.ret()
    program = asm.assemble()
    lengths = [i.length for i in program.instructions.values()]
    assert min(lengths) == 1
    assert max(lengths) >= 5
    assert all(1 <= l <= 10 for l in lengths)
