"""Sparse memory model."""

from repro.x86.memory import PAGE_SIZE, Memory


def test_uninitialized_reads_zero():
    assert Memory().read(0x1234, 4) == 0


def test_write_read_roundtrip_word():
    memory = Memory()
    memory.write(0x1000, 0xDEADBEEF, 4)
    assert memory.read(0x1000, 4) == 0xDEADBEEF


def test_little_endian_byte_order():
    memory = Memory()
    memory.write(0x1000, 0x11223344, 4)
    assert memory.read(0x1000, 1) == 0x44
    assert memory.read(0x1003, 1) == 0x11


def test_partial_width_write_preserves_neighbours():
    memory = Memory()
    memory.write(0x1000, 0xAABBCCDD, 4)
    memory.write(0x1001, 0x42, 1)
    assert memory.read(0x1000, 4) == 0xAABB42DD


def test_write_truncates_to_size():
    memory = Memory()
    memory.write(0x1000, 0x12345678, 2)
    assert memory.read(0x1000, 4) == 0x5678


def test_page_straddling_access():
    memory = Memory()
    address = PAGE_SIZE - 2  # crosses into the next page
    memory.write(address, 0xCAFEBABE, 4)
    assert memory.read(address, 4) == 0xCAFEBABE
    assert memory.read(address + 2, 2) == 0xCAFE


def test_bulk_write_read():
    memory = Memory()
    memory.write_bytes(0x2000, b"hello world")
    assert memory.read_bytes(0x2000, 11) == b"hello world"


def test_address_wraps_at_32_bits():
    memory = Memory()
    memory.write(0xFFFFFFFF + 0x10, 0x5A, 1)  # same as 0x0F
    assert memory.read(0x0F, 1) == 0x5A


def test_pages_allocated_lazily():
    memory = Memory()
    assert memory.touched_pages() == 0
    memory.write(0x0, 1, 1)
    memory.write(0x100000, 1, 1)
    assert memory.touched_pages() == 2
