"""Assembler DSL: layout, labels, data sections."""

import pytest

from repro.x86 import Assembler, AssemblyError, Cond, Imm, Reg, mem
from repro.x86.instructions import Mnemonic


def test_instructions_get_sequential_addresses():
    asm = Assembler(base_address=0x1000)
    asm.mov(Reg.EAX, Imm(1))
    asm.mov(Reg.EBX, Imm(2))
    program = asm.assemble()
    addresses = sorted(program.instructions)
    assert addresses[0] == 0x1000
    first = program.instructions[addresses[0]]
    assert addresses[1] == 0x1000 + first.length


def test_labels_resolve_to_addresses():
    asm = Assembler()
    asm.jmp("end")
    asm.label("end")
    asm.nop()
    program = asm.assemble()
    nop_addr = program.labels["end"]
    assert program.at(nop_addr).mnemonic is Mnemonic.NOP


def test_duplicate_label_rejected():
    asm = Assembler()
    asm.label("x")
    asm.nop()
    asm.label("x")
    with pytest.raises(AssemblyError, match="duplicate"):
        asm.assemble()


def test_undefined_label_rejected():
    asm = Assembler()
    asm.jmp("nowhere")
    with pytest.raises(AssemblyError, match="undefined"):
        asm.assemble()


def test_undefined_entry_rejected():
    asm = Assembler()
    asm.nop()
    asm.entry("missing")
    with pytest.raises(AssemblyError, match="entry"):
        asm.assemble()


def test_entry_defaults_to_first_instruction():
    asm = Assembler(base_address=0x5000)
    asm.nop()
    assert asm.assemble().entry == 0x5000


def test_entry_can_be_set_by_label():
    asm = Assembler()
    asm.nop()
    asm.label("main")
    asm.ret()
    asm.entry("main")
    program = asm.assemble()
    assert program.entry == program.labels["main"]


def test_empty_program_rejected():
    with pytest.raises(AssemblyError):
        Assembler().assemble()


def test_data_words_little_endian():
    asm = Assembler()
    asm.nop()
    asm.data_words(0x9000, [1, 0x80000000])
    program = asm.assemble()
    blob = program.data[0x9000]
    assert blob == (1).to_bytes(4, "little") + (0x80000000).to_bytes(4, "little")


def test_code_size_accounts_all_instructions():
    asm = Assembler()
    for _ in range(10):
        asm.push(Reg.EAX)  # 1 byte each
    assert asm.assemble().code_size == 10


def test_mem_helper_builds_operand():
    operand = mem(Reg.ESI, index=Reg.EDI, scale=4, disp=8, size=2)
    assert operand.base is Reg.ESI
    assert operand.index is Reg.EDI
    assert operand.scale == 4 and operand.disp == 8 and operand.size == 2


def test_jcc_records_condition():
    asm = Assembler()
    asm.label("top")
    asm.jcc(Cond.NZ, "top")
    program = asm.assemble()
    instr = program.at(program.entry)
    assert instr.cond is Cond.NZ
