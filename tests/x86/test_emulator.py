"""Functional emulator: ALU semantics, flags, memory, control flow."""

import pytest

from repro.x86 import Assembler, Cond, EmulationError, Emulator, Imm, Reg, mem
from repro.x86.emulator import EXIT_ADDRESS


def run(asm_body, max_instructions=10_000):
    """Build+run a body function(asm) and return the emulator."""
    asm = Assembler()
    asm_body(asm)
    asm.ret()
    program = asm.assemble()
    emulator = Emulator(program)
    emulator.run(max_instructions)
    assert emulator.halted
    return emulator


def test_mov_and_add():
    emu = run(lambda a: (a.mov(Reg.EAX, Imm(40)), a.add(Reg.EAX, Imm(2))))
    assert emu.regs[Reg.EAX] == 42


def test_add_sets_carry_and_wraps():
    def body(a):
        a.mov(Reg.EAX, Imm(0xFFFFFFFF))
        a.add(Reg.EAX, Imm(1))
    emu = run(body)
    assert emu.regs[Reg.EAX] == 0
    assert emu.cf and emu.zf


def test_add_signed_overflow():
    def body(a):
        a.mov(Reg.EAX, Imm(0x7FFFFFFF))
        a.add(Reg.EAX, Imm(1))
    emu = run(body)
    assert emu.of and emu.sf and not emu.cf


def test_sub_borrow():
    def body(a):
        a.mov(Reg.EAX, Imm(1))
        a.sub(Reg.EAX, Imm(2))
    emu = run(body)
    assert emu.regs[Reg.EAX] == 0xFFFFFFFF
    assert emu.cf and emu.sf


def test_cmp_sets_flags_without_writing():
    def body(a):
        a.mov(Reg.EAX, Imm(5))
        a.cmp(Reg.EAX, Imm(5))
    emu = run(body)
    assert emu.regs[Reg.EAX] == 5
    assert emu.zf


def test_logic_ops_clear_cf_of():
    def body(a):
        a.mov(Reg.EAX, Imm(0xFFFFFFFF))
        a.add(Reg.EAX, Imm(1))  # sets CF
        a.mov(Reg.EBX, Imm(0xF0))
        a.and_(Reg.EBX, Imm(0x0F))
    emu = run(body)
    assert not emu.cf and not emu.of and emu.zf


def test_inc_preserves_carry():
    def body(a):
        a.mov(Reg.EAX, Imm(0xFFFFFFFF))
        a.add(Reg.EAX, Imm(1))  # CF=1
        a.inc(Reg.EBX)
    emu = run(body)
    assert emu.cf  # INC must not clear CF
    assert emu.regs[Reg.EBX] == 1


def test_neg_flags():
    def body(a):
        a.mov(Reg.EAX, Imm(5))
        a.neg(Reg.EAX)
    emu = run(body)
    assert emu.regs[Reg.EAX] == 0xFFFFFFFB
    assert emu.cf and emu.sf


def test_neg_of_zero_clears_cf():
    emu = run(lambda a: (a.xor(Reg.EAX, Reg.EAX), a.neg(Reg.EAX)))
    assert not emu.cf and emu.zf


def test_not_leaves_flags():
    def body(a):
        a.mov(Reg.EAX, Imm(0))
        a.add(Reg.EAX, Imm(0))  # ZF=1
        a.mov(Reg.EBX, Imm(0xFF))
        a.not_(Reg.EBX)
    emu = run(body)
    assert emu.zf  # NOT must not touch flags
    assert emu.regs[Reg.EBX] == 0xFFFFFF00


def test_imul_truncates_and_flags_overflow():
    def body(a):
        a.mov(Reg.EAX, Imm(0x10000))
        a.imul(Reg.EAX, Imm(0x10000))
    emu = run(body)
    assert emu.regs[Reg.EAX] == 0
    assert emu.cf and emu.of


def test_idiv_quotient_remainder():
    def body(a):
        a.mov(Reg.EAX, Imm(17))
        a.cdq()
        a.mov(Reg.EBX, Imm(5))
        a.idiv(Reg.EBX)
    emu = run(body)
    assert emu.regs[Reg.EAX] == 3
    assert emu.regs[Reg.EDX] == 2


def test_idiv_negative_truncates_toward_zero():
    def body(a):
        a.mov(Reg.EAX, Imm((-17) & 0xFFFFFFFF))
        a.cdq()
        a.mov(Reg.EBX, Imm(5))
        a.idiv(Reg.EBX)
    emu = run(body)
    assert emu.regs[Reg.EAX] == (-3) & 0xFFFFFFFF
    assert emu.regs[Reg.EDX] == (-2) & 0xFFFFFFFF


def test_idiv_by_zero_faults():
    asm = Assembler()
    asm.xor(Reg.EBX, Reg.EBX)
    asm.idiv(Reg.EBX)
    asm.ret()
    emulator = Emulator(asm.assemble())
    with pytest.raises(EmulationError, match="division by zero"):
        emulator.run()


def test_cdq_sign_extends():
    emu = run(lambda a: (a.mov(Reg.EAX, Imm(0x80000000)), a.cdq()))
    assert emu.regs[Reg.EDX] == 0xFFFFFFFF
    emu = run(lambda a: (a.mov(Reg.EAX, Imm(1)), a.cdq()))
    assert emu.regs[Reg.EDX] == 0


def test_shl_shr_sar():
    def body(a):
        a.mov(Reg.EAX, Imm(0x80000001))
        a.mov(Reg.EBX, Reg.EAX)
        a.mov(Reg.ECX, Reg.EAX)
        a.shl(Reg.EAX, Imm(1))
        a.shr(Reg.EBX, Imm(1))
        a.sar(Reg.ECX, Imm(1))
    emu = run(body)
    assert emu.regs[Reg.EAX] == 0x00000002
    assert emu.regs[Reg.EBX] == 0x40000000
    assert emu.regs[Reg.ECX] == 0xC0000000


def test_shift_by_zero_preserves_flags():
    def body(a):
        a.mov(Reg.EAX, Imm(0))
        a.add(Reg.EAX, Imm(0))  # ZF=1
        a.mov(Reg.EBX, Imm(7))
        a.xor(Reg.ECX, Reg.ECX)
        a.shl(Reg.EBX, Reg.ECX)  # count 0: no flag update
    emu = run(body)
    assert emu.zf


def test_shift_count_masked_to_5_bits():
    def body(a):
        a.mov(Reg.EAX, Imm(1))
        a.mov(Reg.ECX, Imm(33))  # & 0x1F == 1
        a.shl(Reg.EAX, Reg.ECX)
    emu = run(body)
    assert emu.regs[Reg.EAX] == 2


def test_push_pop_roundtrip():
    def body(a):
        a.mov(Reg.EAX, Imm(0x1234))
        a.push(Reg.EAX)
        a.pop(Reg.EBX)
    emu = run(body)
    assert emu.regs[Reg.EBX] == 0x1234


def test_push_decrements_esp_by_4():
    def body(a):
        a.mov(Reg.EBX, Reg.ESP)
        a.push(Reg.EAX)
        a.mov(Reg.EDX, Reg.ESP)
        a.pop(Reg.ECX)
    emu = run(body)
    assert (emu.regs[Reg.EBX] - emu.regs[Reg.EDX]) == 4


def test_memory_operand_with_index_scale():
    def body(a):
        a.data_words(0x600000, [10, 20, 30, 40])
        a.mov(Reg.ESI, Imm(0x600000))
        a.mov(Reg.EDI, Imm(3))
        a.mov(Reg.EAX, mem(Reg.ESI, index=Reg.EDI, scale=4))
    emu = run(body)
    assert emu.regs[Reg.EAX] == 40


def test_movzx_movsx():
    def body(a):
        a.data_words(0x600000, [0x000000FF])
        a.mov(Reg.ESI, Imm(0x600000))
        a.movzx(Reg.EAX, mem(Reg.ESI, size=1))
        a.movsx(Reg.EBX, mem(Reg.ESI, size=1))
    emu = run(body)
    assert emu.regs[Reg.EAX] == 0xFF
    assert emu.regs[Reg.EBX] == 0xFFFFFFFF


def test_lea_computes_without_access():
    def body(a):
        a.mov(Reg.ESI, Imm(0x100))
        a.mov(Reg.EDI, Imm(4))
        a.lea(Reg.EAX, mem(Reg.ESI, index=Reg.EDI, scale=8, disp=-8))
    emu = run(body)
    assert emu.regs[Reg.EAX] == 0x100 + 32 - 8
    # No memory transaction recorded for LEA.


def test_call_ret_nesting():
    asm = Assembler()
    asm.call("f")
    asm.add(Reg.EAX, Imm(100))
    asm.ret()
    asm.label("f")
    asm.call("g")
    asm.add(Reg.EAX, Imm(10))
    asm.ret()
    asm.label("g")
    asm.mov(Reg.EAX, Imm(1))
    asm.ret()
    emulator = Emulator(asm.assemble())
    emulator.run()
    assert emulator.regs[Reg.EAX] == 111


def test_conditional_branch_taken_and_not():
    def body(a):
        a.mov(Reg.ECX, Imm(3))
        a.xor(Reg.EAX, Reg.EAX)
        a.label("loop")
        a.inc(Reg.EAX)
        a.dec(Reg.ECX)
        a.jcc(Cond.NZ, "loop")
    emu = run(body)
    assert emu.regs[Reg.EAX] == 3


def test_indirect_jump_through_register():
    asm = Assembler()
    asm.mov(Reg.EAX, Imm(0))  # placeholder, patched post-assembly
    asm.jmp(Reg.EAX)
    asm.mov(Reg.EBX, Imm(99))  # skipped by the jump
    asm.label("target")
    asm.mov(Reg.EBX, Imm(7))
    asm.ret()
    program = asm.assemble()
    program.at(program.entry).operands = (
        Reg.EAX,
        Imm(program.labels["target"]),
    )
    emulator = Emulator(program)
    emulator.run()
    assert emulator.regs[Reg.EBX] == 7


def test_indirect_jump_through_memory_table():
    asm = Assembler()
    asm.mov(Reg.ESI, Imm(0x700000))
    asm.jmp(mem(Reg.ESI))
    asm.mov(Reg.EBX, Imm(99))
    asm.label("target")
    asm.mov(Reg.EBX, Imm(5))
    asm.ret()
    program = asm.assemble()
    program.data[0x700000] = program.labels["target"].to_bytes(4, "little")
    emulator = Emulator(program)
    emulator.run()
    assert emulator.regs[Reg.EBX] == 5


def test_trace_records_memory_transactions(loop_asm):
    program = loop_asm.assemble()
    emulator = Emulator(program)
    trace = emulator.run()
    loads = sum(len([m for m in r.mem_ops if m.is_load]) for r in trace)
    stores = sum(len([m for m in r.mem_ops if m.is_store]) for r in trace)
    assert loads > 0 and stores > 0


def test_trace_records_branch_outcomes(loop_asm):
    program = loop_asm.assemble()
    trace = Emulator(program).run()
    outcomes = [r.branch_taken for r in trace if r.is_conditional_branch]
    assert outcomes.count(True) == 31
    assert outcomes.count(False) == 1


def test_step_after_halt_raises():
    asm = Assembler()
    asm.ret()
    emulator = Emulator(asm.assemble())
    emulator.run()
    with pytest.raises(EmulationError):
        emulator.step()


def test_exit_address_reached_via_initial_return(loop_asm):
    program = loop_asm.assemble()
    emulator = Emulator(program)
    emulator.run()
    assert emulator.pc == EXIT_ADDRESS
