"""Instruction/operand model and encoded-length estimation."""

import pytest

from repro.x86.instructions import (
    Cond,
    Imm,
    Instruction,
    Label,
    Mem,
    Mnemonic,
    cond_holds,
    estimate_length,
)
from repro.x86.registers import Reg


def test_mem_operand_validation_scale():
    with pytest.raises(ValueError):
        Mem(base=Reg.EAX, index=Reg.EBX, scale=3)


def test_mem_operand_validation_size():
    with pytest.raises(ValueError):
        Mem(base=Reg.EAX, size=8)


def test_mem_operand_needs_something():
    with pytest.raises(ValueError):
        Mem()


def test_mem_absolute_is_allowed():
    operand = Mem(disp=0x1000)
    assert operand.base is None and operand.disp == 0x1000


def test_cond_inverse_is_involutive():
    for cond in Cond:
        assert cond.inverse().inverse() is cond


def test_cond_inverse_pairs():
    assert Cond.Z.inverse() is Cond.NZ
    assert Cond.L.inverse() is Cond.GE
    assert Cond.BE.inverse() is Cond.A


@pytest.mark.parametrize(
    "cond,flags,expected",
    [
        (Cond.Z, dict(cf=False, zf=True, sf=False, of=False), True),
        (Cond.NZ, dict(cf=False, zf=True, sf=False, of=False), False),
        (Cond.L, dict(cf=False, zf=False, sf=True, of=False), True),
        (Cond.L, dict(cf=False, zf=False, sf=True, of=True), False),
        (Cond.G, dict(cf=False, zf=False, sf=False, of=False), True),
        (Cond.G, dict(cf=False, zf=True, sf=False, of=False), False),
        (Cond.B, dict(cf=True, zf=False, sf=False, of=False), True),
        (Cond.A, dict(cf=False, zf=False, sf=False, of=False), True),
        (Cond.A, dict(cf=True, zf=False, sf=False, of=False), False),
        (Cond.BE, dict(cf=False, zf=True, sf=False, of=False), True),
        (Cond.S, dict(cf=False, zf=False, sf=True, of=False), True),
        (Cond.NS, dict(cf=False, zf=False, sf=True, of=False), False),
    ],
)
def test_cond_holds_semantics(cond, flags, expected):
    assert cond_holds(cond, **flags) is expected


def test_is_branch_classification():
    jcc = Instruction(Mnemonic.JCC, (Label("x"),), cond=Cond.Z)
    add = Instruction(Mnemonic.ADD, (Reg.EAX, Imm(1)))
    assert jcc.is_branch and jcc.is_conditional
    assert not add.is_branch


def test_indirect_classification():
    ret = Instruction(Mnemonic.RET)
    call_reg = Instruction(Mnemonic.CALL, (Reg.EAX,))
    call_lbl = Instruction(Mnemonic.CALL, (Label("f"),))
    assert ret.is_indirect
    assert call_reg.is_indirect
    assert not call_lbl.is_indirect


def test_push_pop_reg_are_one_byte():
    assert estimate_length(Instruction(Mnemonic.PUSH, (Reg.EAX,))) == 1
    assert estimate_length(Instruction(Mnemonic.POP, (Reg.EBX,))) == 1


def test_length_grows_with_large_displacement():
    small = Instruction(Mnemonic.MOV, (Reg.EAX, Mem(base=Reg.ESI, disp=4)))
    large = Instruction(Mnemonic.MOV, (Reg.EAX, Mem(base=Reg.ESI, disp=0x1000)))
    assert estimate_length(large) > estimate_length(small)


def test_length_grows_with_large_immediate():
    small = Instruction(Mnemonic.ADD, (Reg.EAX, Imm(4)))
    large = Instruction(Mnemonic.ADD, (Reg.EAX, Imm(0x12345)))
    assert estimate_length(large) > estimate_length(small)


def test_sib_byte_counted():
    no_index = Instruction(Mnemonic.MOV, (Reg.EAX, Mem(base=Reg.ESI)))
    with_index = Instruction(
        Mnemonic.MOV, (Reg.EAX, Mem(base=Reg.ESI, index=Reg.EDI, scale=4))
    )
    assert estimate_length(with_index) > estimate_length(no_index)
