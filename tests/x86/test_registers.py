"""Register/flag definitions and numeric helpers."""

import pytest

from repro.x86.registers import (
    ALL_FLAGS,
    ALL_REGS,
    FLAGS_MASK,
    Flag,
    Reg,
    pack_flags,
    to_signed,
    to_unsigned,
    unpack_flags,
)


def test_eight_general_purpose_registers():
    assert len(ALL_REGS) == 8
    assert Reg.EAX == 0 and Reg.EDI == 7


def test_esp_is_register_four():
    # Encoding order matters: decode flows and uop conversion rely on it.
    assert Reg.ESP == 4


def test_flag_bit_positions_match_eflags():
    assert Flag.CF == 0
    assert Flag.ZF == 6
    assert Flag.SF == 7
    assert Flag.OF == 11


def test_flags_mask_covers_exactly_the_modeled_flags():
    assert FLAGS_MASK == (1 << 0) | (1 << 6) | (1 << 7) | (1 << 11)


def test_pack_unpack_flags_roundtrip():
    word = pack_flags(True, False, True, False)
    flags = unpack_flags(word)
    assert flags[Flag.CF] and flags[Flag.SF]
    assert not flags[Flag.ZF] and not flags[Flag.OF]


def test_pack_flags_all_set():
    assert pack_flags(True, True, True, True) == FLAGS_MASK


@pytest.mark.parametrize(
    "value,expected",
    [(0, 0), (1, 1), (0x7FFFFFFF, 0x7FFFFFFF), (0x80000000, -0x80000000),
     (0xFFFFFFFF, -1)],
)
def test_to_signed_32(value, expected):
    assert to_signed(value) == expected


def test_to_signed_other_widths():
    assert to_signed(0xFF, bits=8) == -1
    assert to_signed(0x7F, bits=8) == 127
    assert to_signed(0x8000, bits=16) == -32768


def test_to_unsigned_truncates():
    assert to_unsigned(-1) == 0xFFFFFFFF
    assert to_unsigned(1 << 40) == 0
    assert to_unsigned(-1, ) == 0xFFFFFFFF


def test_signed_unsigned_roundtrip():
    for value in (0, 1, -1, 2**31 - 1, -(2**31)):
        assert to_signed(to_unsigned(value)) == value
