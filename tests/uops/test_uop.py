"""Uop data model."""

from repro.uops import Uop, UopOp, UReg
from repro.uops.uop import ARCH_REGS, TEMP_REGS
from repro.x86.instructions import Cond


def test_arch_regs_align_with_x86_encoding():
    assert [int(r) for r in ARCH_REGS] == list(range(8))
    assert all(r.is_architectural for r in ARCH_REGS)
    assert not any(t.is_architectural for t in TEMP_REGS)


def test_load_store_classification():
    load = Uop(UopOp.LOAD, dst=UReg.EAX, src_a=UReg.ESI)
    store = Uop(UopOp.STORE, src_a=UReg.ESI, src_data=UReg.EAX)
    assert load.is_load and load.is_mem and not load.is_store
    assert store.is_store and store.is_mem and not store.is_load


def test_control_classification():
    assert Uop(UopOp.BR, cond=Cond.Z, target=0x100).is_control
    assert Uop(UopOp.JMP, target=0x100).is_control
    assert Uop(UopOp.JMPI, src_a=UReg.ET2).is_control
    assert not Uop(UopOp.ADD, dst=UReg.EAX, src_a=UReg.EAX, imm=1).is_control


def test_assertion_classification():
    assert Uop(UopOp.ASSERT, cond=Cond.Z).is_assertion
    assert Uop(UopOp.ASSERT_CMP, cond=Cond.Z, cmp_kind=UopOp.SUB).is_assertion


def test_reads_flags():
    assert Uop(UopOp.BR, cond=Cond.Z, target=0).reads_flags
    assert Uop(UopOp.ASSERT, cond=Cond.NZ).reads_flags
    assert not Uop(UopOp.ADD, dst=UReg.EAX, src_a=UReg.EAX, imm=1).reads_flags


def test_sources_ordering():
    uop = Uop(UopOp.STORE, src_a=UReg.ESI, src_b=UReg.EDI, src_data=UReg.EAX)
    assert uop.sources() == (UReg.ESI, UReg.EDI, UReg.EAX)


def test_copy_overrides_fields():
    uop = Uop(UopOp.BR, cond=Cond.Z, target=0x10)
    converted = uop.copy(op=UopOp.ASSERT, target=None)
    assert converted.op is UopOp.ASSERT and converted.target is None
    assert uop.op is UopOp.BR  # original untouched


def test_format_smoke():
    # Formatting must never raise for any plausible uop shape.
    samples = [
        Uop(UopOp.LOAD, dst=UReg.EAX, src_a=UReg.ESI, src_b=UReg.EDI, scale=4, imm=8),
        Uop(UopOp.STORE, src_a=UReg.ESP, imm=-4, src_data=UReg.EBP),
        Uop(UopOp.LIMM, dst=UReg.ET0, imm=0x42),
        Uop(UopOp.ASSERT_CMP, cond=Cond.Z, cmp_kind=UopOp.SUB, src_a=UReg.ET2, imm=1),
        Uop(UopOp.NEG, dst=UReg.EAX, src_a=UReg.EAX),
        Uop(UopOp.NOP),
    ]
    for uop in samples:
        assert str(uop)
