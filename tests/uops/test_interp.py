"""Uop reference interpreter semantics."""

import pytest

from repro.uops import (
    AssertionFired,
    Uop,
    UopOp,
    UopState,
    UReg,
    execute_sequence,
    execute_uop,
)
from repro.uops.interp import UopExecutionError
from repro.x86.instructions import Cond


def state_with(**regs) -> UopState:
    state = UopState()
    for name, value in regs.items():
        state.regs[UReg[name]] = value
    return state


def test_limm_and_mov():
    state = UopState()
    execute_uop(state, Uop(UopOp.LIMM, dst=UReg.EAX, imm=42))
    execute_uop(state, Uop(UopOp.MOV, dst=UReg.EBX, src_a=UReg.EAX))
    assert state.regs[UReg.EBX] == 42


def test_add_with_flags():
    state = state_with(EAX=0xFFFFFFFF)
    execute_uop(
        state, Uop(UopOp.ADD, dst=UReg.EAX, src_a=UReg.EAX, imm=1, writes_flags=True)
    )
    assert state.regs[UReg.EAX] == 0
    assert state.cf and state.zf


def test_preserves_cf_keeps_carry():
    state = state_with(EAX=1)
    state.cf = True
    execute_uop(
        state,
        Uop(
            UopOp.ADD,
            dst=UReg.EAX,
            src_a=UReg.EAX,
            imm=1,
            writes_flags=True,
            preserves_cf=True,
        ),
    )
    assert state.cf  # INC semantics


def test_load_store_roundtrip():
    state = state_with(ESI=0x1000, EAX=0xBEEF)
    execute_uop(state, Uop(UopOp.STORE, src_a=UReg.ESI, imm=8, src_data=UReg.EAX))
    execute_uop(state, Uop(UopOp.LOAD, dst=UReg.EBX, src_a=UReg.ESI, imm=8))
    assert state.regs[UReg.EBX] == 0xBEEF


def test_load_uses_fallback_for_unknown_bytes():
    state = UopState()
    state.memory_fallback = lambda addr: 0x11
    execute_uop(state, Uop(UopOp.LOAD, dst=UReg.EAX, imm=0x500))
    assert state.regs[UReg.EAX] == 0x11111111


def test_load_sign_extension():
    state = state_with(ESI=0x100)
    state.write_mem(0x100, 0xFF, 1)
    load = Uop(UopOp.LOAD, dst=UReg.EAX, src_a=UReg.ESI, size=1, sign_extend=True)
    execute_uop(state, load)
    assert state.regs[UReg.EAX] == 0xFFFFFFFF


def test_address_uses_scale_and_disp():
    state = state_with(ESI=0x100, EDI=3)
    state.write_mem(0x100 + 12 + 4, 0x77, 1)
    load = Uop(UopOp.LOAD, dst=UReg.EAX, src_a=UReg.ESI, src_b=UReg.EDI,
               scale=4, imm=4, size=1)
    execute_uop(state, load)
    assert state.regs[UReg.EAX] == 0x77


def test_assert_passes_when_condition_holds():
    state = UopState()
    state.zf = True
    execute_uop(state, Uop(UopOp.ASSERT, cond=Cond.Z))  # no exception


def test_assert_fires_when_condition_fails():
    state = UopState()
    state.zf = False
    with pytest.raises(AssertionFired):
        execute_uop(state, Uop(UopOp.ASSERT, cond=Cond.Z))


def test_assert_cmp_compares_and_fires():
    state = state_with(EAX=5)
    execute_uop(
        state,
        Uop(UopOp.ASSERT_CMP, cond=Cond.Z, cmp_kind=UopOp.SUB, src_a=UReg.EAX, imm=5),
    )
    with pytest.raises(AssertionFired):
        execute_uop(
            state,
            Uop(UopOp.ASSERT_CMP, cond=Cond.Z, cmp_kind=UopOp.SUB,
                src_a=UReg.EAX, imm=6),
        )


def test_divq_divr():
    state = state_with(EAX=17, EDX=0, EBX=5)
    execute_uop(
        state,
        Uop(UopOp.DIVQ, dst=UReg.ET1, src_a=UReg.EAX, src_b=UReg.EBX,
            src_data=UReg.EDX),
    )
    execute_uop(
        state,
        Uop(UopOp.DIVR, dst=UReg.ET2, src_a=UReg.EAX, src_b=UReg.EBX,
            src_data=UReg.EDX),
    )
    assert state.regs[UReg.ET1] == 3 and state.regs[UReg.ET2] == 2


def test_div_by_zero_raises():
    state = state_with(EAX=17, EBX=0)
    with pytest.raises(UopExecutionError):
        execute_uop(
            state,
            Uop(UopOp.DIVQ, dst=UReg.ET1, src_a=UReg.EAX, src_b=UReg.EBX),
        )


def test_shift_by_zero_preserves_flags():
    state = state_with(EAX=4, ECX=0)
    state.zf = True
    execute_uop(
        state,
        Uop(UopOp.SHL, dst=UReg.EAX, src_a=UReg.EAX, src_b=UReg.ECX,
            writes_flags=True),
    )
    assert state.zf and state.regs[UReg.EAX] == 4


def test_execute_sequence_runs_in_order():
    state = UopState()
    execute_sequence(
        state,
        [
            Uop(UopOp.LIMM, dst=UReg.EAX, imm=2),
            Uop(UopOp.ADD, dst=UReg.EAX, src_a=UReg.EAX, src_b=UReg.EAX),
            Uop(UopOp.MUL, dst=UReg.EAX, src_a=UReg.EAX, imm=3),
        ],
    )
    assert state.regs[UReg.EAX] == 12


def test_dynamic_mem_address_annotation_wins():
    # When the injector attached a concrete address, it takes precedence
    # over the address expression (trace-driven execution).
    state = state_with(ESI=0x100)
    state.write_mem(0x900, 0x5A, 1)
    load = Uop(UopOp.LOAD, dst=UReg.EAX, src_a=UReg.ESI, size=1)
    load.mem_address = 0x900
    execute_uop(state, load)
    assert state.regs[UReg.EAX] == 0x5A
