"""Decode-flow validation: uop interpretation must match the emulator.

This is the State Verifier's first job (paper §5.1.3): executing every
instruction's uops against a running uop state and comparing the
resulting register writes, flags, and stores with the trace.
"""

import random

import pytest

from helpers import inject, run_program
from repro.uops import UopState, UReg, execute_uop
from repro.x86 import Assembler, Cond, Emulator, Imm, Reg, mem


def assert_trace_matches(asm: Assembler, max_instructions: int = 50_000):
    program, reference, trace = run_program(asm, max_instructions)
    injected = inject(trace)

    replay = Emulator(program)  # fresh memory image for load fallback
    state = UopState()
    state.regs[UReg.ESP] = replay.regs[Reg.ESP]
    state.memory_fallback = lambda addr: replay.memory.read(addr, 1)

    for instr in injected:
        for uop in instr.uops:
            execute_uop(state, uop)
        record = instr.record
        for reg, expected in record.reg_writes.items():
            got = state.regs[int(reg)]
            assert got == expected, (
                f"{record.instruction} at {record.pc:#x}: {reg.name} "
                f"= {got:#x}, trace says {expected:#x}"
            )
        if record.flags_after is not None:
            assert state.flags_word() == record.flags_after, (
                f"{record.instruction} at {record.pc:#x}: flags "
                f"{state.flags_word():#x} != {record.flags_after:#x}"
            )
        for mem_op in record.stores:
            got = state.read_mem(mem_op.address, mem_op.size)
            assert got == mem_op.data, (
                f"{record.instruction}: stored {got:#x} != {mem_op.data:#x}"
            )


def test_loop_program_matches(loop_asm):
    assert_trace_matches(loop_asm)


def test_alu_flag_torture():
    rng = random.Random(3)
    asm = Assembler()
    values = [rng.getrandbits(32) for _ in range(8)]
    for i, value in enumerate(values):
        asm.mov(Reg(i % 4), Imm(value))
        asm.add(Reg.EAX, Reg(i % 4))
        asm.sub(Reg.EBX, Imm(value & 0xFFFF))
        asm.xor(Reg.ECX, Reg.EAX)
        asm.imul(Reg.EDX, Imm((value % 7) + 1))
        asm.inc(Reg.EAX)
        asm.dec(Reg.EBX)
        asm.neg(Reg.ECX)
        asm.shl(Reg.EAX, Imm(value % 31 + 1))
        asm.sar(Reg.EBX, Imm(3))
        asm.cmp(Reg.EAX, Reg.EBX)
        asm.test(Reg.ECX, Imm(0xFF))
    asm.ret()
    assert_trace_matches(asm)


def test_movzx_movsx_zero_extension_with_dirty_registers():
    """MOVZX/MOVSX must replace *all* destination bits.

    Every destination register starts as all-ones so an implementation
    that merely copies the masked load (a plain-MOV MOVZX) still passes,
    but one that forgets the source width and writes 32 loaded bits, or
    merges into the old register value, fails.  Source bytes have their
    high bits set: 0x80/0xFF (byte) and 0x8000/0xFFFF (word).
    """
    asm = Assembler()
    asm.data_words(0x600000, [0x0000FF80, 0x8000FFFF, 0xFFFFFFFF])
    asm.mov(Reg.ESI, Imm(0x600000))
    for reg in (Reg.EAX, Reg.EBX, Reg.ECX, Reg.EDX):
        asm.mov(reg, Imm(0xFFFFFFFF))
    asm.movzx(Reg.EAX, mem(Reg.ESI, size=1))  # 0x80 -> 0x00000080
    asm.movsx(Reg.EBX, mem(Reg.ESI, size=1))  # 0x80 -> 0xFFFFFF80
    asm.movzx(Reg.ECX, mem(Reg.ESI, disp=1, size=1))  # 0xFF -> 0x000000FF
    asm.movsx(Reg.EDX, mem(Reg.ESI, disp=1, size=1))  # 0xFF -> 0xFFFFFFFF
    asm.mov(mem(Reg.ESI, disp=12, size=4), Reg.EAX)
    asm.mov(mem(Reg.ESI, disp=16, size=4), Reg.EBX)
    for reg in (Reg.EAX, Reg.EBX, Reg.ECX, Reg.EDX):
        asm.mov(reg, Imm(0xFFFFFFFF))
    asm.movzx(Reg.EAX, mem(Reg.ESI, disp=4, size=2))  # 0xFFFF -> 0x0000FFFF
    asm.movsx(Reg.EBX, mem(Reg.ESI, disp=4, size=2))  # 0xFFFF -> 0xFFFFFFFF
    asm.movzx(Reg.ECX, mem(Reg.ESI, disp=6, size=2))  # 0x8000 -> 0x00008000
    asm.movsx(Reg.EDX, mem(Reg.ESI, disp=6, size=2))  # 0x8000 -> 0xFFFF8000
    asm.mov(mem(Reg.ESI, disp=20, size=4), Reg.ECX)
    asm.mov(mem(Reg.ESI, disp=24, size=4), Reg.EDX)
    asm.ret()
    assert_trace_matches(asm)


def test_movzx_values_against_emulator_registers():
    """Spot-check the architectural values directly, not just agreement."""
    asm = Assembler()
    asm.data_words(0x600000, [0x0000FF80, 0x8000FFFF])
    asm.mov(Reg.ESI, Imm(0x600000))
    asm.mov(Reg.EAX, Imm(0xFFFFFFFF))
    asm.mov(Reg.EBX, Imm(0xFFFFFFFF))
    asm.movzx(Reg.EAX, mem(Reg.ESI, size=1))
    asm.movsx(Reg.EBX, mem(Reg.ESI, disp=6, size=2))
    asm.ret()
    program = asm.assemble()
    emulator = Emulator(program)
    emulator.run()
    assert emulator.regs[Reg.EAX] == 0x00000080
    assert emulator.regs[Reg.EBX] == 0xFFFF8000


def test_movzx_register_source_rejected():
    """Non-memory MOVZX/MOVSX sources fail loudly in both layers."""
    from repro.uops.translate import Translator, TranslationError
    from repro.x86 import EmulationError
    from repro.x86.instructions import Instruction, Mnemonic

    instr = Instruction(Mnemonic.MOVZX, (Reg.EAX, Reg.EBX))
    with pytest.raises(TranslationError):
        Translator().translate(instr)

    asm = Assembler()
    asm.emit(Mnemonic.MOVZX, Reg.EAX, Reg.EBX)
    asm.ret()
    with pytest.raises(EmulationError):
        Emulator(asm.assemble()).run()


def test_memory_widths_and_sign_extension():
    asm = Assembler()
    asm.data_words(0x600000, [0xDEADBEEF, 0x0000FF80])
    asm.mov(Reg.ESI, Imm(0x600000))
    asm.movzx(Reg.EAX, mem(Reg.ESI, size=1))
    asm.movsx(Reg.EBX, mem(Reg.ESI, size=1))
    asm.movzx(Reg.ECX, mem(Reg.ESI, disp=4, size=2))
    asm.movsx(Reg.EDX, mem(Reg.ESI, disp=4, size=2))
    asm.mov(mem(Reg.ESI, disp=8, size=2), Reg.EAX)
    asm.mov(mem(Reg.ESI, disp=10, size=1), Reg.EBX)
    asm.ret()
    assert_trace_matches(asm)


def test_division_sequences():
    asm = Assembler()
    for dividend, divisor in ((100, 7), (-100 & 0xFFFFFFFF, 7), (5, 100)):
        asm.mov(Reg.EAX, Imm(dividend))
        asm.cdq()
        asm.mov(Reg.EBX, Imm(divisor))
        asm.idiv(Reg.EBX)
    asm.ret()
    assert_trace_matches(asm)


def test_stack_heavy_calls():
    asm = Assembler()
    asm.mov(Reg.ECX, Imm(10))
    asm.label("loop")
    asm.push(Reg.ECX)
    asm.push(Imm(5))
    asm.call("f")
    asm.add(Reg.ESP, Imm(4))
    asm.pop(Reg.ECX)
    asm.dec(Reg.ECX)
    asm.jcc(Cond.NZ, "loop")
    asm.ret()
    asm.label("f")
    asm.push(Reg.EBP)
    asm.mov(Reg.EBP, Reg.ESP)
    asm.mov(Reg.EAX, mem(Reg.EBP, disp=8))
    asm.add(Reg.EAX, Imm(1))
    asm.pop(Reg.EBP)
    asm.ret()
    assert_trace_matches(asm)


@pytest.mark.parametrize("name", ["bzip2", "eon", "excel", "parser"])
def test_workload_decode_flows_match(name):
    """Spot-check full workloads through the decode-flow validator."""
    from repro.workloads import get_workload

    workload = get_workload(name)
    program = workload.build(1, seed=1)
    emulator = Emulator(program)
    trace = emulator.run(6000)

    replay = Emulator(program)
    state = UopState()
    state.regs[UReg.ESP] = replay.regs[Reg.ESP]
    state.memory_fallback = lambda addr: replay.memory.read(addr, 1)
    from repro.trace import DynamicTrace

    for instr in inject(DynamicTrace(trace)):
        for uop in instr.uops:
            execute_uop(state, uop)
        record = instr.record
        for reg, expected in record.reg_writes.items():
            assert state.regs[int(reg)] == expected
        if record.flags_after is not None:
            assert state.flags_word() == record.flags_after
