"""x86 -> uop decode flows."""

import pytest

from repro.x86 import Assembler, Cond, Imm, Reg, mem
from repro.uops import Translator, UopOp, UReg


def decode(build):
    """Assemble one instruction via ``build(asm)`` and decode it."""
    asm = Assembler()
    build(asm)
    program = asm.assemble()
    instr = program.at(program.entry)
    return Translator().translate(instr)


def test_mov_reg_reg_single_uop():
    (uop,) = decode(lambda a: a.mov(Reg.EAX, Reg.EBX))
    assert uop.op is UopOp.MOV and uop.dst is UReg.EAX and uop.src_a is UReg.EBX


def test_mov_imm_is_limm():
    (uop,) = decode(lambda a: a.mov(Reg.EAX, Imm(5)))
    assert uop.op is UopOp.LIMM and uop.imm == 5


def test_mov_load_carries_address_expression():
    (uop,) = decode(lambda a: a.mov(Reg.EAX, mem(Reg.ESI, index=Reg.EDI, scale=4, disp=8)))
    assert uop.op is UopOp.LOAD
    assert (uop.src_a, uop.src_b, uop.scale, uop.imm) == (UReg.ESI, UReg.EDI, 4, 8)


def test_mov_store_to_memory():
    (uop,) = decode(lambda a: a.mov(mem(Reg.ESI, disp=4), Reg.EAX))
    assert uop.op is UopOp.STORE and uop.src_data is UReg.EAX


def test_mov_imm_to_memory_uses_temp():
    uops = decode(lambda a: a.mov(mem(Reg.ESI), Imm(7)))
    assert [u.op for u in uops] == [UopOp.LIMM, UopOp.STORE]
    assert uops[1].src_data is uops[0].dst


def test_alu_reg_reg_writes_flags():
    (uop,) = decode(lambda a: a.add(Reg.EAX, Reg.EBX))
    assert uop.op is UopOp.ADD and uop.writes_flags


def test_alu_mem_source_two_uops():
    uops = decode(lambda a: a.add(Reg.EAX, mem(Reg.ESI)))
    assert [u.op for u in uops] == [UopOp.LOAD, UopOp.ADD]


def test_alu_mem_destination_three_uops():
    uops = decode(lambda a: a.add(mem(Reg.ESI), Reg.EAX))
    assert [u.op for u in uops] == [UopOp.LOAD, UopOp.ADD, UopOp.STORE]


def test_cmp_has_no_destination():
    (uop,) = decode(lambda a: a.cmp(Reg.EAX, Imm(3)))
    assert uop.op is UopOp.SUB and uop.dst is None and uop.writes_flags


def test_test_is_flag_only_and():
    (uop,) = decode(lambda a: a.test(Reg.EAX, Reg.EAX))
    assert uop.op is UopOp.AND and uop.dst is None


def test_inc_preserves_cf():
    (uop,) = decode(lambda a: a.inc(Reg.EAX))
    assert uop.op is UopOp.ADD and uop.imm == 1 and uop.preserves_cf


def test_push_is_store_then_esp_update():
    uops = decode(lambda a: a.push(Reg.EBP))
    assert [u.op for u in uops] == [UopOp.STORE, UopOp.SUB]
    store, sub = uops
    assert store.src_a is UReg.ESP and store.imm == -4
    assert sub.dst is UReg.ESP and not sub.writes_flags  # PUSH sets no flags


def test_pop_is_load_then_esp_update():
    uops = decode(lambda a: a.pop(Reg.EBX))
    assert [u.op for u in uops] == [UopOp.LOAD, UopOp.ADD]
    assert uops[0].dst is UReg.EBX
    assert not uops[1].writes_flags


def test_call_direct_flow():
    def body(a):
        a.call("f")
        a.label("f")
        a.ret()
    uops = decode(body)
    assert [u.op for u in uops] == [UopOp.LIMM, UopOp.STORE, UopOp.SUB, UopOp.JMP]
    # The return address is the instruction after the CALL.
    assert uops[0].imm == uops[3].target  # label f follows the call


def test_ret_flow_matches_paper_figure2():
    def body(a):
        a.ret()
    uops = decode(body)
    assert [u.op for u in uops] == [UopOp.LOAD, UopOp.ADD, UopOp.JMPI]
    assert uops[0].dst is UReg.ET2 and uops[2].src_a is UReg.ET2


def test_jcc_single_branch_uop():
    def body(a):
        a.label("top")
        a.jcc(Cond.NZ, "top")
    uops = decode(body)
    assert [u.op for u in uops] == [UopOp.BR]
    assert uops[0].cond is Cond.NZ


def test_idiv_pins_eax_edx():
    (divq, divr, move) = decode(lambda a: a.idiv(Reg.EBX))
    assert divq.op is UopOp.DIVQ and divq.src_a is UReg.EAX
    assert divq.src_data is UReg.EDX
    assert divr.op is UopOp.DIVR and divr.dst is UReg.EDX
    assert move.op is UopOp.MOV and move.dst is UReg.EAX


def test_cdq_is_flagless_sar():
    (uop,) = decode(lambda a: a.cdq())
    assert uop.op is UopOp.SAR and uop.imm == 31 and not uop.writes_flags


def test_lea_no_memory_uop():
    (uop,) = decode(lambda a: a.lea(Reg.EAX, mem(Reg.ESI, disp=16)))
    assert uop.op is UopOp.LEA and not uop.is_mem


def test_movsx_sets_sign_extend():
    (uop,) = decode(lambda a: a.movsx(Reg.EAX, mem(Reg.ESI, size=1)))
    assert uop.op is UopOp.LOAD and uop.sign_extend and uop.size == 1


def test_translation_cached_by_address():
    asm = Assembler()
    asm.add(Reg.EAX, Imm(1))
    program = asm.assemble()
    translator = Translator()
    instr = program.at(program.entry)
    assert translator.translate(instr) is translator.translate(instr)


def test_uop_ratio_on_realistic_mix(loop_asm):
    from helpers import run_program
    from repro.trace import MicroOpInjector

    _, _, trace = run_program(loop_asm)
    injector = MicroOpInjector()
    injector.inject_trace(trace)
    # The paper reports ~1.4 uops per x86 instruction; call-heavy code
    # runs higher, plain ALU code lower.
    assert 1.0 <= injector.uops_per_x86 <= 2.2
