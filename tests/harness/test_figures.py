"""Figure/table runners (on a reduced workload set for speed)."""

import pytest

from repro.harness import figures
from repro.harness.report import (
    format_fig6,
    format_fig7_8,
    format_fig9,
    format_fig10,
    format_table1,
    format_table3,
)

SMALL = ["twolf", "eon"]


@pytest.fixture(scope="module")
def matrix():
    return figures.ResultMatrix()


def test_paper_order_covers_all(matrix):
    assert len(figures.PAPER_ORDER) == 14


def test_table1_rows(matrix):
    rows = figures.run_table1(matrix)
    assert [r.name for r in rows] == figures.PAPER_ORDER
    assert all(r.x86_instructions > 1000 for r in rows)
    text = format_table1(rows)
    assert "bzip2" in text and "x86 insts" in text


def test_table2_text():
    assert "gshare" in figures.run_table2()


def test_fig6_rows_and_formatting(matrix):
    rows = figures.run_fig6(matrix, workloads=SMALL)
    assert {r.name for r in rows} == set(SMALL)
    for row in rows:
        assert set(row.ipc) == {"IC", "TC", "RP", "RPO"}
        assert all(v > 0 for v in row.ipc.values())
    text = format_fig6(rows)
    assert "RPO/RP" in text


def test_fig7_8_bins_sum_close_to_cycles(matrix):
    rows = figures.run_fig7_8(matrix, workloads=SMALL)
    assert len(rows) == 2 * len(SMALL)
    for row in rows:
        accounted = sum(row.bins.values())
        # Fetch-side accounting lags final drain by a pipeline depth.
        assert accounted <= row.cycles
        assert accounted >= 0.9 * row.cycles
    assert "cycles" in format_fig7_8(rows)


def test_table3_includes_average(matrix):
    rows = figures.run_table3(matrix, workloads=SMALL)
    assert rows[-1].name == "Average"
    average = rows[-1]
    assert average.uops_removed == pytest.approx(
        sum(r.uops_removed for r in rows[:-1]) / len(rows[:-1])
    )
    assert "paper" in format_table3(rows)


def test_fig9_block_below_frame(matrix):
    rows = figures.run_fig9(matrix, workloads=["eon"])
    (row,) = rows
    # Frame-level optimization must beat intra-block-only (paper Fig 9).
    assert row.frame_speedup >= row.block_speedup
    assert "Block" in format_fig9(rows)


def test_fig10_relative_scale(matrix):
    rows = figures.run_fig10(matrix, workloads=["eon"])
    (row,) = rows
    assert set(row.relative_ipc) == set(figures.FIG10_VARIANTS)
    # Disabling any single pass cannot beat having all of them by much
    # more than noise, and cannot fall far below RP.
    for value in row.relative_ipc.values():
        assert -0.5 <= value <= 1.6
    assert "no RA" in format_fig10(rows)


def test_matrix_caches_runs(matrix):
    first = matrix.run("twolf", figures.CONFIGS["RP"])
    second = matrix.run("twolf", figures.CONFIGS["RP"])
    assert first is second
