"""Run-ledger schema: round trip, validation, Table-3 agreement."""

from __future__ import annotations

import json

import pytest

from repro.artifacts.store import ArtifactStore
from repro.harness.experiment import CONFIGS
from repro.harness.figures import ResultMatrix, run_fig6
from repro.metrics import (
    LEDGER_VERSION,
    SUPPORTED_VERSIONS,
    SWEEP_LEDGER_VERSION,
    LedgerError,
    MetricsRegistry,
    build_run_ledger,
    format_ledger,
    read_ledger,
    validate_ledger,
    write_ledger,
)

WORKLOADS = ["vortex", "power"]


@pytest.fixture(scope="module")
def fig6_matrix() -> ResultMatrix:
    matrix = ResultMatrix()
    run_fig6(matrix, workloads=WORKLOADS)
    return matrix


def _ledger(matrix: ResultMatrix, registry: MetricsRegistry | None = None) -> dict:
    return build_run_ledger(["fig6"], ["fig6"], matrix, registry=registry)


def test_ledger_round_trip(tmp_path, fig6_matrix):
    ledger = _ledger(fig6_matrix)
    path = write_ledger(tmp_path / "run.json", ledger)
    loaded = read_ledger(path)
    assert loaded == json.loads(json.dumps(ledger))  # JSON-stable
    assert loaded["version"] == LEDGER_VERSION
    assert len(loaded["results"]) == len(WORKLOADS) * 4


def test_ledger_totals_agree_with_table3_path(fig6_matrix):
    """The ledger's optimizer totals must be derived from the same
    ExperimentResult objects the Table 3 aggregation reads."""
    ledger = _ledger(fig6_matrix)
    expected_uops = expected_loads = 0
    for result in fig6_matrix._results.values():
        totals = result.optimizer_totals
        if totals is not None:
            expected_uops += totals.uops_removed
            expected_loads += totals.loads_removed
    assert ledger["optimizer_totals"]["uops_removed"] == expected_uops
    assert ledger["optimizer_totals"]["loads_removed"] == expected_loads
    assert sum(ledger["passes"].values()) > 0


def test_ledger_per_pass_changes_match_results(fig6_matrix):
    ledger = _ledger(fig6_matrix)
    expected: dict[str, int] = {}
    for result in fig6_matrix._results.values():
        totals = result.optimizer_totals
        if totals is None:
            continue
        for name, changes in totals.changes_by_pass.items():
            expected[name] = expected.get(name, 0) + changes
    assert ledger["passes"] == expected


def test_ledger_includes_registry_snapshot(fig6_matrix):
    registry = MetricsRegistry()
    registry.counter("sim.cycles").inc(123)
    ledger = _ledger(fig6_matrix, registry=registry)
    assert ledger["metrics"]["counters"]["sim.cycles"] == 123


def test_validate_rejects_missing_keys(fig6_matrix):
    ledger = _ledger(fig6_matrix)
    del ledger["results"]
    with pytest.raises(LedgerError, match="missing key 'results'"):
        validate_ledger(ledger)


def test_validate_rejects_wrong_types(fig6_matrix):
    ledger = _ledger(fig6_matrix)
    ledger["cells"][0]["seconds"] = "fast"
    with pytest.raises(LedgerError, match="seconds"):
        validate_ledger(ledger)


def test_validate_rejects_unknown_version(fig6_matrix):
    ledger = _ledger(fig6_matrix)
    ledger["version"] = max(SUPPORTED_VERSIONS) + 1
    with pytest.raises(LedgerError, match="version"):
        validate_ledger(ledger)


def _sweep_section() -> dict:
    return {
        "search": "grid",
        "seed": 1,
        "workloads": ["gzip"],
        "points": [],
        "records": [],
        "digest": "0" * 64,
    }


def test_sweep_section_upgrades_ledger_to_v2(fig6_matrix):
    ledger = build_run_ledger(
        ["tune"], ["tune-sweep"], fig6_matrix, sweep=_sweep_section()
    )
    assert ledger["version"] == SWEEP_LEDGER_VERSION
    validate_ledger(ledger)
    assert "sweep: grid (seed 1)" in format_ledger(ledger)
    # A sweep-free ledger stays at v1 — old readers never see the bump.
    assert _ledger(fig6_matrix)["version"] == LEDGER_VERSION


def test_sweep_section_on_v1_ledger_rejected(fig6_matrix):
    ledger = _ledger(fig6_matrix)
    ledger["sweep"] = _sweep_section()
    with pytest.raises(LedgerError, match="sweep section requires"):
        validate_ledger(ledger)


def test_sweep_section_missing_keys_rejected(fig6_matrix):
    sweep = _sweep_section()
    del sweep["digest"]
    ledger = build_run_ledger(["tune"], ["tune-sweep"], fig6_matrix, sweep=sweep)
    with pytest.raises(LedgerError, match="sweep: missing key 'digest'"):
        validate_ledger(ledger)


def test_write_refuses_invalid_ledger(tmp_path):
    with pytest.raises(LedgerError):
        write_ledger(tmp_path / "bad.json", {"schema": "nope"})
    assert not (tmp_path / "bad.json").exists()


def test_read_rejects_non_json(tmp_path):
    path = tmp_path / "garbage.json"
    path.write_text("{not json")
    with pytest.raises(LedgerError, match="not valid JSON"):
        read_ledger(path)


def test_format_ledger_renders(fig6_matrix):
    registry = MetricsRegistry()
    registry.counter("sim.runs").inc(8)
    registry.histogram("time.simulate").observe(0.5)
    text = format_ledger(_ledger(fig6_matrix, registry=registry))
    assert "run ledger v1" in text
    assert "hottest cells" in text
    assert "sim.runs" in text
    assert "time.simulate" in text


def test_warm_ledger_identical_totals(tmp_path):
    """A fully cached run must ledger the same totals as the cold run."""
    store = ArtifactStore(tmp_path)
    cold_matrix = ResultMatrix(store=store)
    run_fig6(cold_matrix, workloads=["power"])
    cold = _ledger(cold_matrix)

    warm_matrix = ResultMatrix(store=ArtifactStore(tmp_path))
    run_fig6(warm_matrix, workloads=["power"])
    warm = _ledger(warm_matrix)

    assert warm_matrix.results_computed == 0
    assert cold["optimizer_totals"] == warm["optimizer_totals"]
    assert cold["passes"] == warm["passes"]
    assert cold["results"] == warm["results"]
