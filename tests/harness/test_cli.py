"""Harness CLI (fast experiments only; fig6 etc. covered by benches)."""

import os
import time

import pytest

from repro.artifacts.store import ArtifactStore, content_key
from repro.harness.cli import EXPERIMENTS, _format_age, cache_main, main
from repro.metrics import read_ledger


def test_table2_renders(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "gshare" in out


def test_fig2_renders(capsys):
    assert main(["fig2"]) == 0
    out = capsys.readouterr().out
    assert "frame: 10 uops" in out


def test_multiple_experiments(capsys):
    assert main(["table2", "fig2"]) == 0
    out = capsys.readouterr().out
    assert "Table 2" in out and "Figure 2" in out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_experiment_list_complete():
    assert set(EXPERIMENTS) == {
        "table1", "table2", "fig2", "fig6", "fig7", "fig8", "fig9",
        "fig10", "table3",
    }


def test_run_summary_on_stderr_not_stdout(capsys, tmp_path):
    assert main(["table2", "--cache-dir", str(tmp_path)]) == 0
    captured = capsys.readouterr()
    assert "[repro.artifacts]" in captured.err
    assert "[repro.artifacts]" not in captured.out


def test_no_cache_flag(capsys, tmp_path):
    assert main(["table2", "--no-cache"]) == 0
    assert "cache: disabled" in capsys.readouterr().err


def test_jobs_flag_accepted(capsys, tmp_path):
    assert main(["table2", "--jobs", "2", "--cache-dir", str(tmp_path)]) == 0
    assert "jobs: 2" in capsys.readouterr().err


def _populate(tmp_path) -> ArtifactStore:
    store = ArtifactStore(tmp_path)
    store.put_result(content_key("result", {"i": 1}), b"x" * 2048, label="demo")
    return store


def test_cache_stats(capsys, tmp_path):
    _populate(tmp_path)
    assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "1 entries" in out and str(tmp_path) in out


def test_cache_ls(capsys, tmp_path):
    _populate(tmp_path)
    assert cache_main(["ls", "--cache-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "demo" in out and "result" in out


def test_cache_clear(capsys, tmp_path):
    store = _populate(tmp_path)
    assert cache_main(["clear", "--cache-dir", str(tmp_path)]) == 0
    assert "removed 1" in capsys.readouterr().out
    assert store.stats()["entries"] == 0


def test_cache_gc(capsys, tmp_path):
    _populate(tmp_path)
    assert cache_main(["gc", "--max-mb", "0", "--cache-dir", str(tmp_path)]) == 0
    assert "evicted 1" in capsys.readouterr().out


def test_cache_gc_requires_budget(tmp_path):
    with pytest.raises(SystemExit):
        cache_main(["gc", "--cache-dir", str(tmp_path)])


def test_cache_gc_dry_run_deletes_nothing(capsys, tmp_path):
    store = _populate(tmp_path)
    assert cache_main(
        ["gc", "--max-mb", "0", "--dry-run", "--cache-dir", str(tmp_path)]
    ) == 0
    out = capsys.readouterr().out
    assert "would evict result" in out
    assert "dry run: would evict 1 entries" in out
    assert "B" in out and "old" in out  # bytes and age per entry
    assert store.stats()["entries"] == 1  # nothing actually deleted


def test_cache_gc_dry_run_empty_plan(capsys, tmp_path):
    _populate(tmp_path)
    assert cache_main(
        ["gc", "--max-mb", "1024", "--dry-run", "--cache-dir", str(tmp_path)]
    ) == 0
    out = capsys.readouterr().out
    assert "would evict 0 entries" in out


def test_cache_gc_dry_run_matches_real_gc(capsys, tmp_path):
    store = _populate(tmp_path)
    plan = store.plan_gc(0)
    removed, removed_bytes = store.gc(0)
    assert removed == len(plan) == 1
    assert removed_bytes == sum(e.size_bytes for e in plan)


# ------------------------------------------------------------ entry ages


def test_format_age_clamps_future_mtimes():
    assert _format_age(-120.0) == "<1s"
    assert _format_age(0.4) == "<1s"
    assert _format_age(42.0) == "42s"


def test_format_age_tiers():
    assert _format_age(90.0) == "1m 30s"
    assert _format_age(3600.0) == "1h 0m"
    assert _format_age(5432.0) == "1h 30m"
    # Ages of a day or more render as `Nd Hh` instead of overflowing.
    assert _format_age(86400.0) == "1d 0h"
    assert _format_age(13 * 86400.0 + 5 * 3600.0) == "13d 5h"


def test_cache_ls_renders_day_scale_ages(capsys, tmp_path):
    store = _populate(tmp_path)
    entry = next(store.entries())
    old = time.time() - 3 * 86400 - 2 * 3600
    os.utime(entry.path, (old, old))
    assert cache_main(["ls", "--cache-dir", str(tmp_path)]) == 0
    assert "3d 2h old" in capsys.readouterr().out


def test_cache_ls_future_mtime_never_negative(capsys, tmp_path):
    store = _populate(tmp_path)
    entry = next(store.entries())
    future = time.time() + 3600
    os.utime(entry.path, (future, future))
    assert cache_main(["ls", "--cache-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "-" not in out.split("old")[0].split("B")[-1]
    assert "<1s old" in out


# --------------------------------------------------------- submit parsing


def _submit_args(**overrides):
    from types import SimpleNamespace

    defaults = dict(
        experiment=None, workloads=None, configs=None, scale=None, seed=1
    )
    defaults.update(overrides)
    return SimpleNamespace(**defaults)


def test_submit_cells_named_experiments():
    from repro.harness.cli import _submit_cells
    from repro.harness.figures import PAPER_ORDER

    fig6 = _submit_cells(_submit_args(experiment="fig6"))
    assert len(fig6) == len(PAPER_ORDER) * 4
    assert {c.config for c in fig6} == {"IC", "TC", "RP", "RPO"}
    table3 = _submit_cells(_submit_args(experiment="table3"))
    assert len(table3) == len(PAPER_ORDER) * 2
    fig7 = _submit_cells(_submit_args(experiment="fig7"))
    fig8 = _submit_cells(_submit_args(experiment="fig8"))
    assert {c.workload for c in fig7} | {c.workload for c in fig8} == set(
        PAPER_ORDER
    )


def test_submit_cells_explicit_lists_carry_scale_and_seed():
    from repro.harness.cli import _submit_cells

    cells = _submit_cells(
        _submit_args(workloads="gzip,bzip2", configs="IC,RPO", scale=2, seed=7)
    )
    assert len(cells) == 4
    assert all(c.scale == 2 and c.seed == 7 for c in cells)


def test_submit_cells_misuse_rejected():
    from repro.harness.cli import _submit_cells

    with pytest.raises(SystemExit):
        _submit_cells(_submit_args())  # neither experiment nor lists
    with pytest.raises(SystemExit):
        _submit_cells(
            _submit_args(experiment="fig6", workloads="gzip", configs="IC")
        )
    with pytest.raises(SystemExit):
        _submit_cells(_submit_args(workloads="gzip"))  # missing --configs


# ------------------------------------------------------------ run ledger


def test_emit_stats_writes_valid_ledger(capsys, tmp_path):
    ledger_path = tmp_path / "run.json"
    assert main(["table2", "--no-cache", "--emit-stats", str(ledger_path)]) == 0
    captured = capsys.readouterr()
    assert "run ledger written" in captured.err
    assert "run ledger written" not in captured.out
    ledger = read_ledger(ledger_path)  # validates the schema
    assert ledger["command"]["experiments"] == ["table2"]


def test_emit_stats_does_not_change_stdout(capsys, tmp_path):
    assert main(["table2", "--no-cache"]) == 0
    plain = capsys.readouterr().out
    assert main(
        ["table2", "--no-cache", "--emit-stats", str(tmp_path / "x.json")]
    ) == 0
    assert capsys.readouterr().out == plain


def test_stats_subcommand_pretty_prints(capsys, tmp_path):
    ledger_path = tmp_path / "run.json"
    main(["table2", "--no-cache", "--emit-stats", str(ledger_path)])
    capsys.readouterr()
    assert main(["stats", str(ledger_path)]) == 0
    out = capsys.readouterr().out
    assert "run ledger v1" in out


def test_stats_subcommand_rejects_bad_file(capsys, tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{}")
    assert main(["stats", str(bad)]) == 1
    assert "error:" in capsys.readouterr().err


def test_profile_flag_prints_hotspots_to_stderr(capsys):
    assert main(["table2", "--no-cache", "--profile"]) == 0
    captured = capsys.readouterr()
    assert "cProfile top" in captured.err
    assert "cProfile" not in captured.out


def test_cache_subcommand_emits_ledger(capsys, tmp_path):
    _populate(tmp_path)
    ledger_path = tmp_path / "cache.json"
    assert cache_main(
        ["stats", "--cache-dir", str(tmp_path), "--emit-stats", str(ledger_path)]
    ) == 0
    ledger = read_ledger(ledger_path)
    assert ledger["command"]["experiments"] == ["cache-stats"]
