"""Harness CLI (fast experiments only; fig6 etc. covered by benches)."""

import pytest

from repro.artifacts.store import ArtifactStore, content_key
from repro.harness.cli import EXPERIMENTS, cache_main, main


def test_table2_renders(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "gshare" in out


def test_fig2_renders(capsys):
    assert main(["fig2"]) == 0
    out = capsys.readouterr().out
    assert "frame: 10 uops" in out


def test_multiple_experiments(capsys):
    assert main(["table2", "fig2"]) == 0
    out = capsys.readouterr().out
    assert "Table 2" in out and "Figure 2" in out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_experiment_list_complete():
    assert set(EXPERIMENTS) == {
        "table1", "table2", "fig2", "fig6", "fig7", "fig8", "fig9",
        "fig10", "table3",
    }


def test_run_summary_on_stderr_not_stdout(capsys, tmp_path):
    assert main(["table2", "--cache-dir", str(tmp_path)]) == 0
    captured = capsys.readouterr()
    assert "[repro.artifacts]" in captured.err
    assert "[repro.artifacts]" not in captured.out


def test_no_cache_flag(capsys, tmp_path):
    assert main(["table2", "--no-cache"]) == 0
    assert "cache: disabled" in capsys.readouterr().err


def test_jobs_flag_accepted(capsys, tmp_path):
    assert main(["table2", "--jobs", "2", "--cache-dir", str(tmp_path)]) == 0
    assert "jobs: 2" in capsys.readouterr().err


def _populate(tmp_path) -> ArtifactStore:
    store = ArtifactStore(tmp_path)
    store.put_result(content_key("result", {"i": 1}), b"x" * 2048, label="demo")
    return store


def test_cache_stats(capsys, tmp_path):
    _populate(tmp_path)
    assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "1 entries" in out and str(tmp_path) in out


def test_cache_ls(capsys, tmp_path):
    _populate(tmp_path)
    assert cache_main(["ls", "--cache-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "demo" in out and "result" in out


def test_cache_clear(capsys, tmp_path):
    store = _populate(tmp_path)
    assert cache_main(["clear", "--cache-dir", str(tmp_path)]) == 0
    assert "removed 1" in capsys.readouterr().out
    assert store.stats()["entries"] == 0


def test_cache_gc(capsys, tmp_path):
    _populate(tmp_path)
    assert cache_main(["gc", "--max-mb", "0", "--cache-dir", str(tmp_path)]) == 0
    assert "evicted 1" in capsys.readouterr().out


def test_cache_gc_requires_budget(tmp_path):
    with pytest.raises(SystemExit):
        cache_main(["gc", "--cache-dir", str(tmp_path)])
