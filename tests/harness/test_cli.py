"""Harness CLI (fast experiments only; fig6 etc. covered by benches)."""

import pytest

from repro.harness.cli import EXPERIMENTS, main


def test_table2_renders(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "gshare" in out


def test_fig2_renders(capsys):
    assert main(["fig2"]) == 0
    out = capsys.readouterr().out
    assert "frame: 10 uops" in out


def test_multiple_experiments(capsys):
    assert main(["table2", "fig2"]) == 0
    out = capsys.readouterr().out
    assert "Table 2" in out and "Figure 2" in out


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_experiment_list_complete():
    assert set(EXPERIMENTS) == {
        "table1", "table2", "fig2", "fig6", "fig7", "fig8", "fig9",
        "fig10", "table3",
    }
