"""Report table formatting."""

from repro.harness.figures import (
    CycleBreakdownRow,
    Fig6Row,
    Fig9Row,
    Fig10Row,
    Table1Row,
    Table3Row,
)
from repro.harness import report


def test_generic_table_alignment():
    text = report._table(["a", "long_header"], [["xxxx", "1"], ["y", "22"]])
    lines = text.splitlines()
    assert len(lines) == 4
    # Columns align: every cell of column 2 starts at the same offset.
    offset = lines[0].index("long_header")
    assert lines[2][offset] == "1"
    assert lines[3][offset] == "2"


def test_format_table1_row():
    row = Table1Row(
        name="bzip2", category="SPECint", x86_instructions=12345,
        loads=100, stores=50, conditional_branches=10, taken_ratio=0.5,
        description="x",
    )
    text = report.format_table1([row])
    assert "12,345" in text and "0.50" in text


def test_format_fig6_includes_average():
    row = Fig6Row(
        name="eon",
        ipc={"IC": 1.0, "TC": 1.1, "RP": 1.5, "RPO": 2.0},
        rpo_gain_over_rp=0.333,
        coverage=0.9,
    )
    text = report.format_fig6([row])
    assert "+33%" in text
    assert "paper: +17%" in text


def test_format_fig7_8_has_all_bins():
    row = CycleBreakdownRow(
        name="eon", config="RP", cycles=100,
        bins={b: 1 for b in ("assert", "mispred", "miss", "stall",
                             "wait", "frame", "icache")},
    )
    text = report.format_fig7_8([row])
    for bin_name in ("assert", "mispred", "frame", "icache"):
        assert bin_name in text


def test_format_table3_dashes_for_missing_paper_numbers():
    row = Table3Row(name="Average", uops_removed=0.2, loads_removed=0.3,
                    ipc_increase=0.1)
    text = report.format_table3([row])
    assert "-" in text


def test_format_fig9():
    text = report.format_fig9([Fig9Row(name="eon", block_speedup=0.1,
                                       frame_speedup=0.3)])
    assert "+10%" in text and "+30%" in text


def test_format_fig10_empty():
    assert "no rows" in report.format_fig10([])


def test_format_fig10_values():
    row = Fig10Row(name="eon", relative_ipc={"ra": 0.25, "sf": 1.0})
    text = report.format_fig10([row])
    assert "0.25" in text and "no RA" in text
