"""Experiment harness: configurations and result plumbing."""

from dataclasses import replace

import pytest

from helpers import run_program
from repro.harness import CONFIGS, run_configs, run_experiment
from repro.workloads import build_workload
from repro.x86 import Assembler, Cond, Imm, Reg, mem


@pytest.fixture(scope="module")
def trace():
    return build_workload("twolf")


def test_configs_registry():
    assert set(CONFIGS) == {"IC", "IC64", "TC", "RP", "RPO"}
    assert CONFIGS["RPO"].optimize and not CONFIGS["RP"].optimize
    assert CONFIGS["IC"].frontend == "icache"
    assert CONFIGS["TC"].frontend == "tcache"


def test_all_configs_retire_everything(trace):
    for name in ("IC", "TC", "RP", "RPO"):
        result = run_experiment(trace, CONFIGS[name])
        assert result.sim.x86_retired == len(trace)
        assert result.ipc_x86 > 0


def test_rpo_beats_rp_on_twolf(trace):
    rp = run_experiment(trace, CONFIGS["RP"])
    rpo = run_experiment(trace, CONFIGS["RPO"])
    assert rpo.ipc_x86 > rp.ipc_x86
    assert rpo.uop_reduction > 0.1
    assert rpo.load_reduction > 0.1


def test_ic_reports_no_reduction(trace):
    ic = run_experiment(trace, CONFIGS["IC"])
    assert ic.uop_reduction == 0.0
    assert ic.coverage == 0.0


def test_verification_runs_when_requested(trace):
    result = run_experiment(trace, replace(CONFIGS["RPO"], verify=True))
    assert result.frames_verified > 0


def test_ic64_larger_icache_helps_or_ties(trace):
    ic = run_experiment(trace, CONFIGS["IC"])
    ic64 = run_experiment(trace, CONFIGS["IC64"])
    assert ic64.sim.bins["miss"] <= ic.sim.bins["miss"]


def test_run_configs_returns_by_name(trace):
    results = run_configs(trace, [CONFIGS["IC"], CONFIGS["RP"]])
    assert set(results) == {"IC", "RP"}


def test_unknown_frontend_rejected(trace):
    bad = replace(CONFIGS["IC"], frontend="flux-capacitor")
    with pytest.raises(ValueError, match="frontend"):
        run_experiment(trace, bad)


def test_uops_per_x86_in_paper_ballpark(trace):
    result = run_experiment(trace, CONFIGS["IC"])
    # Paper: 1.4 average across its workload mix.
    assert 1.1 <= result.uops_per_x86 <= 1.8
