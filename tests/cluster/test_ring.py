"""Consistent-hash ring properties: determinism, balance, bounded remap."""

from repro.cluster.ring import DEFAULT_REPLICAS, HashRing

KEYS = [f"cell:w{i % 40}:cfg{i % 7}:None:{i}" for i in range(2000)]


def _nodes(n: int) -> list[str]:
    return [f"10.0.0.{i}:9400" for i in range(1, n + 1)]


def test_placement_is_deterministic():
    a = HashRing(_nodes(5))
    b = HashRing(_nodes(5))
    assert [a.owner(k) for k in KEYS] == [b.owner(k) for k in KEYS]


def test_placement_independent_of_insertion_order():
    nodes = _nodes(5)
    forward = HashRing(nodes)
    backward = HashRing(list(reversed(nodes)))
    assert [forward.owner(k) for k in KEYS] == [backward.owner(k) for k in KEYS]


def test_distribution_balanced_for_2_to_8_nodes():
    for n in range(2, 9):
        ring = HashRing(_nodes(n))
        counts = ring.distribution(KEYS)
        assert len(counts) == n
        # With 64 virtual nodes per runner the spread is imperfect but
        # every node must carry a meaningful share: within [1/3, 3]x of
        # the fair 1/n fraction.
        fair = len(KEYS) / n
        for node, count in counts.items():
            assert fair / 3 <= count <= fair * 3, (n, node, count)


def test_join_moves_keys_only_to_new_node():
    for n in (2, 4, 7):
        before = HashRing(_nodes(n))
        after = HashRing(_nodes(n))
        joiner = "10.0.1.99:9400"
        after.add(joiner)
        moved = 0
        for key in KEYS:
            old, new = before.owner(key), after.owner(key)
            if old != new:
                moved += 1
                # Every reassignment lands on the joining node.
                assert new == joiner, (key, old, new)
        fraction = moved / len(KEYS)
        # Expect ~1/(n+1); allow generous slack for hash variance, but
        # well below the 1/2 a naive modulo scheme would shuffle.
        assert 0 < fraction <= 2.5 / (n + 1), (n, fraction)


def test_leave_moves_only_departed_keys():
    for n in (3, 5, 8):
        nodes = _nodes(n)
        before = HashRing(nodes)
        after = HashRing(nodes)
        leaver = nodes[0]
        after.remove(leaver)
        for key in KEYS:
            old, new = before.owner(key), after.owner(key)
            if old == leaver:
                assert new != leaver
            else:
                # Keys not owned by the departed node never move.
                assert new == old, (key, old, new)


def test_join_then_leave_roundtrips():
    ring = HashRing(_nodes(4))
    baseline = [ring.owner(k) for k in KEYS]
    ring.add("10.0.1.99:9400")
    ring.remove("10.0.1.99:9400")
    assert [ring.owner(k) for k in KEYS] == baseline


def test_membership_and_len():
    ring = HashRing(_nodes(3), replicas=DEFAULT_REPLICAS)
    assert len(ring) == 3
    assert "10.0.0.1:9400" in ring
    ring.remove("10.0.0.1:9400")
    assert "10.0.0.1:9400" not in ring
    assert len(ring) == 2


def test_single_node_owns_everything():
    ring = HashRing(["solo:1"])
    assert all(ring.owner(k) == "solo:1" for k in KEYS[:50])


def test_empty_ring_has_no_owner():
    ring = HashRing([])
    assert ring.owner("anything") is None
    assert ring.nodes == []
