"""HTTP/JSON front door: REST endpoints share the gateway's one port."""

import http.client
import json
import time

from repro.service.client import Client
from repro.service.protocol import CellSpec


def _request(port, method, path, body=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        payload = None if body is None else json.dumps(body)
        headers = {"Content-Type": "application/json"} if payload else {}
        conn.request(method, path, body=payload, headers=headers)
        response = conn.getresponse()
        raw = response.read()
        decoded = json.loads(raw) if raw else None
        return response.status, decoded, dict(response.getheaders())
    finally:
        conn.close()


def test_healthz_and_metrics(cluster_factory):
    harness = cluster_factory(runner_count=2)
    status, body, _ = _request(harness.port, "GET", "/healthz")
    assert status == 200
    assert body["ok"] is True
    assert body["type"] == "health"

    status, body, _ = _request(harness.port, "GET", "/metrics")
    assert status == 200
    assert "cluster.jobs_submitted" in body["counters"]


def test_submit_wait_returns_completed_job(cluster_factory):
    harness = cluster_factory(runner_count=2)
    status, body, _ = _request(
        harness.port,
        "POST",
        "/v1/jobs",
        {
            "cells": [
                {"workload": "w0", "config": "IC"},
                {"workload": "w1", "config": "TC"},
            ],
            "priority": "interactive",
        },
    )
    assert status == 200
    assert body["state"] == "done"
    assert len(body["entries"]) == 2
    assert all(entry["node"] for entry in body["entries"])
    assert body["cells_computed"] == 2


def test_async_submit_then_poll_and_fetch(cluster_factory):
    harness = cluster_factory(runner_count=2)
    status, body, _ = _request(
        harness.port,
        "POST",
        "/v1/jobs",
        {"cells": [{"workload": "w0", "config": "IC"}], "wait": False},
    )
    assert status == 202
    job_id = body["job_id"]
    assert body["cells_total"] == 1

    deadline = time.monotonic() + 10
    state = None
    while time.monotonic() < deadline:
        status, poll, _ = _request(harness.port, "GET", f"/v1/jobs/{job_id}")
        assert status == 200
        state = poll["state"]
        if state == "done":
            break
        time.sleep(0.02)
    assert state == "done"

    status, result, _ = _request(
        harness.port, "GET", f"/v1/jobs/{job_id}/result"
    )
    assert status == 200
    assert len(result["entries"]) == 1

    status, cancelled, _ = _request(
        harness.port, "DELETE", f"/v1/jobs/{job_id}"
    )
    assert status == 200
    assert cancelled["state"] == "done"  # finished: cancel is a no-op


def test_http_error_mapping(cluster_factory):
    harness = cluster_factory(runner_count=2)
    status, body, _ = _request(harness.port, "GET", "/v1/jobs/nope")
    assert status == 404
    assert body["error"] == "unknown_job"

    status, body, _ = _request(harness.port, "GET", "/no/such/route")
    assert status == 404

    status, body, _ = _request(harness.port, "PUT", "/v1/jobs")
    assert status == 405

    status, body, _ = _request(harness.port, "POST", "/v1/jobs", {"cells": []})
    assert status == 400
    assert body["error"] == "bad_request"


def test_gateway_shed_maps_to_429_with_retry_after(cluster_factory):
    harness = cluster_factory(runner_count=2, max_jobs=0)
    status, body, headers = _request(
        harness.port,
        "POST",
        "/v1/jobs",
        {"cells": [{"workload": "w0", "config": "IC"}]},
    )
    assert status == 429
    assert body["error"] == "queue_full"
    assert float(headers["Retry-After"]) >= 0.5


def test_line_protocol_and_http_share_one_port(cluster_factory):
    harness = cluster_factory(runner_count=2)
    # JSON-lines client first...
    outcome = Client(port=harness.port, timeout=30).submit(
        [CellSpec(workload="w0", config="IC")]
    )
    assert outcome.state == "done"
    # ...then HTTP on the very same listener.
    status, body, _ = _request(harness.port, "GET", "/healthz")
    assert status == 200 and body["ok"] is True
