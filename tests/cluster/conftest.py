"""Shared fixtures: a gateway fronting fake in-process runner nodes.

The gateway's routing/stealing/eviction logic is deterministic given
what the nodes do, so these tests replace real ``serve`` processes with
:class:`FakeRunner` — a tiny asyncio server speaking the JSON-lines
protocol whose behavior (delays, sheds, mid-stream death, failed
probes) each test scripts directly.  Gateway and runners all live on
one background thread's event loop; tests drive them over real
loopback sockets with the blocking client, exactly like the service
tests do.
"""

import asyncio
import threading

import pytest

from repro.cluster.gateway import Gateway, GatewayConfig
from repro.metrics import MetricsRegistry
from repro.service.protocol import (
    CancelledResponse,
    CancelRequest,
    CellResult,
    ErrorResponse,
    HealthRequest,
    HealthResponse,
    JobDone,
    MetricsRequest,
    MetricsResponse,
    SubmitRequest,
    SubmittedResponse,
    decode_request,
    encode_message,
)


class FakeRunner:
    """A scriptable stand-in for one ``repro.service`` node.

    Serves every submitted cell instantly with a deterministic entry
    that names this node, so tests can assert exactly where each cell
    ran and that the gateway forwarded entries verbatim.  Knobs:

    * ``delay`` — seconds per cell (builds backlog for steal tests);
    * ``shed_remaining`` — answer that many submits with ``queue_full``;
    * ``die_after_cells`` — abort the connection mid-stream after N
      cells of the next submit, then fail health probes (stays dead
      until ``health_ok`` is set back to True);
    * ``health_ok`` — when False, probe connections close unanswered.

    Cancels arrive on their own connection (like the real node client):
    the runner records them in ``cancels``, flags the job, and the
    in-flight submit stream notices between cells and finishes with a
    ``cancelled`` JobDone — mirroring the real server's
    between-batches cancel check.
    """

    def __init__(self, name: str):
        self.name = name
        self.port: int | None = None
        self.server = None
        self.submits = 0
        self.cells_served = 0
        self.served: list[tuple[str, str]] = []
        self.entries_by_cell: dict[tuple[str, str], dict] = {}
        self.delay = 0.0
        self.shed_remaining = 0
        self.retry_after = 0.01
        self.die_after_cells: int | None = None
        self.health_ok = True
        self.queue_depth = 0
        self.workers = 1
        self.counters: dict = {}
        self.cancels: list[str] = []
        self.cancelled_jobs: set[str] = set()

    @property
    def address(self) -> str:
        return f"127.0.0.1:{self.port}"

    async def start(self):
        self.server = await asyncio.start_server(self._handle, "127.0.0.1", 0)
        self.port = self.server.sockets[0].getsockname()[1]

    async def stop(self):
        if self.server is not None:
            self.server.close()
            await self.server.wait_closed()

    async def _handle(self, reader, writer):
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                request = decode_request(line)
                if isinstance(request, HealthRequest):
                    if not self.health_ok:
                        break  # close unanswered: probe sees EOF
                    writer.write(
                        encode_message(
                            HealthResponse(
                                ok=True,
                                queue_depth=self.queue_depth,
                                queue_capacity=64,
                                workers=self.workers,
                            )
                        )
                    )
                    await writer.drain()
                elif isinstance(request, MetricsRequest):
                    writer.write(
                        encode_message(
                            MetricsResponse(counters=dict(self.counters))
                        )
                    )
                    await writer.drain()
                elif isinstance(request, CancelRequest):
                    self.cancels.append(request.job_id)
                    self.cancelled_jobs.add(request.job_id)
                    writer.write(
                        encode_message(
                            CancelledResponse(
                                job_id=request.job_id, state="running"
                            )
                        )
                    )
                    await writer.drain()
                elif isinstance(request, SubmitRequest):
                    if not await self._submit(request, writer):
                        return  # aborted mid-stream; transport is gone
        except (ConnectionResetError, BrokenPipeError):
            pass  # silent-ok: peer (the gateway) closed on us
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:
                pass  # silent-ok: already torn down

    async def _submit(self, request, writer) -> bool:
        self.submits += 1
        if self.shed_remaining > 0:
            self.shed_remaining -= 1
            writer.write(
                encode_message(
                    ErrorResponse(
                        code="queue_full",
                        message="fake queue full",
                        queue_depth=64,
                        retry_after=self.retry_after,
                    )
                )
            )
            await writer.drain()
            return True
        job_id = f"{self.name}-job-{self.submits}"
        writer.write(
            encode_message(
                SubmittedResponse(job_id=job_id, cells_total=len(request.cells))
            )
        )
        await writer.drain()
        for i, spec in enumerate(request.cells):
            if job_id in self.cancelled_jobs:
                writer.write(
                    encode_message(
                        JobDone(
                            job_id=job_id,
                            state="cancelled",
                            cells_total=len(request.cells),
                            cells_computed=i,
                        )
                    )
                )
                await writer.drain()
                return True
            if self.die_after_cells is not None and i >= self.die_after_cells:
                self.die_after_cells = None
                self.health_ok = False  # stay dead for the health loop too
                writer.transport.abort()
                return False
            if self.delay:
                await asyncio.sleep(self.delay)
            entry = {
                "workload": spec.workload,
                "config": spec.config,
                "node": self.name,
                "cycles": 1000 + i,
            }
            self.served.append((spec.workload, spec.config))
            self.entries_by_cell[(spec.workload, spec.config)] = entry
            self.cells_served += 1
            writer.write(
                encode_message(
                    CellResult(
                        job_id=job_id,
                        index=i,
                        workload=spec.workload,
                        config=spec.config,
                        cached=False,
                        seconds=0.0,
                        entry=entry,
                    )
                )
            )
            await writer.drain()
        writer.write(
            encode_message(
                JobDone(
                    job_id=job_id,
                    state="done",
                    cells_total=len(request.cells),
                    cells_computed=len(request.cells),
                )
            )
        )
        await writer.drain()
        return True


class ClusterHarness:
    """Gateway + N fake runners on one background-thread event loop."""

    def __init__(self, runner_count: int = 2, **config_kwargs):
        self.registry = MetricsRegistry()
        self.runner_count = runner_count
        self.config_kwargs = config_kwargs
        self.runners: list[FakeRunner] = []
        self.gateway: Gateway | None = None
        self.loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        self.loop = asyncio.get_running_loop()
        try:
            for i in range(self.runner_count):
                runner = FakeRunner(f"runner{i}")
                await runner.start()
                self.runners.append(runner)
            kwargs = dict(
                port=0,
                probe_interval=0.1,
                probe_timeout=2.0,
                node_timeout=30.0,
            )
            kwargs.update(self.config_kwargs)
            config = GatewayConfig(
                nodes=tuple(r.address for r in self.runners), **kwargs
            )
            self.gateway = Gateway(config, registry=self.registry)
            await self.gateway.start()
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            raise
        self._ready.set()
        await self.gateway.wait_closed()
        for runner in self.runners:
            await runner.stop()

    def start(self) -> "ClusterHarness":
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise TimeoutError("cluster did not start within 30s")
        if self._startup_error is not None:
            raise RuntimeError("cluster failed to start") from self._startup_error
        return self

    @property
    def port(self) -> int:
        assert self.gateway is not None and self.gateway.port is not None
        return self.gateway.port

    def counter(self, name: str) -> float:
        return self.registry.counter(name).value

    def stop(self, timeout: float = 30):
        if self.loop is not None and self._thread.is_alive():
            self.loop.call_soon_threadsafe(self.gateway.request_shutdown)
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            raise TimeoutError("cluster thread did not shut down")


@pytest.fixture
def cluster_factory():
    """Build ClusterHarness instances that always get torn down."""
    harnesses = []

    def build(runner_count: int = 2, **config_kwargs) -> ClusterHarness:
        harness = ClusterHarness(runner_count, **config_kwargs)
        harnesses.append(harness)
        return harness.start()

    yield build
    for harness in harnesses:
        try:
            harness.stop()
        except TimeoutError:
            pass  # silent-ok: teardown best-effort; the test already failed
