"""`cluster spawn` end-to-end: real gateway + real runner subprocesses.

The acceptance path for the cluster (and what the CI `cluster-smoke`
job mirrors): spawn a two-runner cluster, push fig6 cells through the
gateway with the unchanged `submit` CLI, and assert the served entries
are byte-identical to the serial path; resubmit warm and check the
ring kept routing local; SIGKILL one runner mid-batch and watch the
job still complete with every cell correct; finally SIGTERM the
gateway and assert it drains, reaping every runner — no orphans.
"""

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
from collections import deque
from pathlib import Path

import pytest

from repro.artifacts.runner import MatrixTask, cell_key, compute_cell
from repro.cluster.ring import HashRing
from repro.harness.experiment import CONFIGS
from repro.metrics.ledger import result_entry
from repro.service.client import Client
from repro.service.protocol import CellSpec

SRC = str(Path(__file__).resolve().parents[2] / "src")

FIG6_CELLS = [CellSpec("gzip", "IC"), CellSpec("gzip", "TC")]


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def canonical(entry) -> bytes:
    return json.dumps(entry, sort_keys=True).encode()


def serial_entry(spec: CellSpec) -> dict:
    result, _telemetry, _snapshot = compute_cell(
        MatrixTask(spec.workload, CONFIGS[spec.config]), store=None
    )
    return result_entry(spec.workload, spec.config, result)


class _Cluster:
    """A `cluster spawn` subprocess plus its parsed startup facts."""

    def __init__(self, tmp: Path):
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.harness", "cluster", "spawn",
                "--runners", "2", "--workers-per-runner", "1",
                "--port", "0",
                "--cache-dir", str(tmp / "stores"),
                "--probe-interval", "1",
                "--drain-timeout", "60",
            ],
            env=_env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            text=True,
        )
        self.runner_pids: list[int] = []
        self.nodes: list[str] = []
        self.port: int | None = None
        self.stderr_tail: deque = deque(maxlen=1000)
        deadline = time.time() + 180
        while time.time() < deadline and (
            self.port is None or not self.runner_pids
        ):
            line = self.proc.stderr.readline()
            if not line:
                raise AssertionError(
                    f"cluster exited during startup (rc={self.proc.poll()}); "
                    f"stderr tail:\n{''.join(self.stderr_tail)}"
                )
            self.stderr_tail.append(line)
            if "runner pids:" in line:
                self.runner_pids = [
                    int(p) for p in line.split("runner pids:")[1].split()
                ]
            match = re.search(r"listening on ([\w.\-]+):(\d+) \(nodes=([^)]+)\)", line)
            if match:
                self.port = int(match.group(2))
                self.nodes = match.group(3).split(",")
        assert self.port is not None and self.runner_pids, "startup not seen"
        assert len(self.runner_pids) == len(self.nodes) == 2
        # Runner pids and node addresses are printed in spawn order, so
        # index i of one maps to index i of the other.
        self.ring = HashRing(self.nodes)
        self._drainer = threading.Thread(target=self._drain, daemon=True)
        self._drainer.start()

    def _drain(self):
        for line in self.proc.stderr:
            self.stderr_tail.append(line)

    def owner_index(self, spec: CellSpec) -> int:
        key = cell_key(spec.workload, spec.config, spec.scale, spec.seed)
        return self.nodes.index(self.ring.owner(key))

    def close(self):
        if self.proc.poll() is None:
            self.proc.kill()
        self.proc.wait(timeout=15)
        self._drainer.join(timeout=5)
        self.proc.stderr.close()


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    instance = _Cluster(tmp_path_factory.mktemp("cluster"))
    yield instance
    instance.close()


@pytest.fixture(scope="module")
def cold_entries(cluster):
    """Fig6 through the gateway with the unchanged `submit` CLI."""
    submit = subprocess.run(
        [
            sys.executable, "-m", "repro.harness", "submit",
            "--workloads", "gzip", "--configs", "IC,TC",
            "--port", str(cluster.port), "--json",
        ],
        env=_env(),
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert submit.returncode == 0, submit.stderr
    lines = [json.loads(line) for line in submit.stdout.splitlines() if line]
    assert len(lines) == 2
    return {(cell["workload"], cell["config"]): cell for cell in lines}


def test_gateway_cells_byte_identical_to_serial(cluster, cold_entries):
    for spec in FIG6_CELLS:
        served = cold_entries[(spec.workload, spec.config)]
        assert not served["cached"]
        assert canonical(served["entry"]) == canonical(serial_entry(spec))


def test_warm_resubmit_cached_with_ring_locality(cluster, cold_entries):
    client = Client(port=cluster.port, timeout=120)
    warm = client.submit(FIG6_CELLS)
    assert warm.ok, warm.error
    assert warm.cells_cached == 2  # node-local stores answered
    assert warm.cells_computed == 0
    for spec, entry in zip(FIG6_CELLS, warm.entries):
        assert canonical(entry) == canonical(
            cold_entries[(spec.workload, spec.config)]["entry"]
        )
    metrics = client.metrics()
    routed = metrics.counters["cluster.cells_routed"]
    routed_owner = metrics.counters["cluster.cells_routed_owner"]
    assert routed >= 4
    # ≥90% of every dispatched cell landed on its ring owner.
    assert routed_owner / routed >= 0.9, (routed_owner, routed)
    # The aggregated view includes the runners' own service counters.
    assert metrics.counters.get("service.cells_computed", 0) >= 2


def test_killing_one_runner_midbatch_still_completes(cluster, cold_entries):
    # Pick fresh (uncached) cells all owned by one runner, then SIGKILL
    # that runner while they are computing cold.
    candidates = [
        CellSpec(workload, config)
        for workload in ("bzip2", "parser", "twolf", "vortex")
        for config in ("IC", "TC")
    ]
    by_owner = {0: [], 1: []}
    for spec in candidates:
        by_owner[cluster.owner_index(spec)].append(spec)
    victim_index = 0 if len(by_owner[0]) >= len(by_owner[1]) else 1
    cells = by_owner[victim_index]
    assert len(cells) >= 2, "hash ring assigned every candidate to one node?"
    victim_pid = cluster.runner_pids[victim_index]

    client = Client(port=cluster.port, timeout=300)
    box = {}

    def run():
        box["outcome"] = client.submit(cells, timeout=300)

    worker = threading.Thread(target=run)
    worker.start()
    time.sleep(1.0)  # several cold ~1s cells remain in flight at this point
    os.kill(victim_pid, signal.SIGKILL)
    worker.join(timeout=300)
    assert not worker.is_alive(), "job never completed after runner death"

    outcome = box["outcome"]
    assert outcome.state == "done", outcome.error
    assert len(outcome.entries) == len(cells)
    for spec, entry in zip(cells, outcome.entries):
        assert entry is not None
        assert canonical(entry) == canonical(serial_entry(spec))


def test_sigterm_drains_gateway_and_reaps_runners(cluster, cold_entries):
    cluster.proc.send_signal(signal.SIGTERM)
    rc = cluster.proc.wait(timeout=90)
    assert rc == 0, (
        f"gateway exited {rc}; stderr tail:\n"
        + "".join(list(cluster.stderr_tail)[-40:])
    )
    for pid in cluster.runner_pids:
        assert not _alive(pid), f"runner {pid} orphaned after drain"
    time.sleep(0.2)  # let the drainer thread consume the last lines
    assert any(
        "runners terminated" in line for line in cluster.stderr_tail
    )
