"""Gateway behavior against scripted fake runners.

Covers the cluster correctness surface: ring-owner routing with
locality counters, verbatim entry forwarding, work stealing under
skew, shed backoff, mid-stream node death → eviction → requeue →
completion, probe-driven rejoin, gateway-level admission control, and
cluster-wide metrics aggregation.
"""

import threading
import time

import pytest

from repro.cluster.gateway import ring_key
from repro.service.client import Client, ServiceError, ServiceShed
from repro.service.protocol import CellSpec


def owned_cells(harness, runner, count: int) -> list[CellSpec]:
    """`count` cells whose ring keys all map to `runner`."""
    cells = []
    i = 0
    while len(cells) < count:
        spec = CellSpec(workload=f"w{i}", config="IC")
        if harness.gateway.ring.owner(ring_key(spec)) == runner.address:
            cells.append(spec)
        i += 1
        if i > 10_000:  # pragma: no cover - ring would have to be broken
            raise AssertionError("could not find enough owned keys")
    return cells


def owner_name(harness, spec: CellSpec) -> str:
    address = harness.gateway.ring.owner(ring_key(spec))
    for runner in harness.runners:
        if runner.address == address:
            return runner.name
    raise AssertionError(f"no runner at {address}")


def wait_until(predicate, timeout: float = 5.0, interval: float = 0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError("condition not met within timeout")


def test_routing_follows_ring_with_full_locality(cluster_factory):
    # High watermark disables stealing so placement is purely ring-driven.
    harness = cluster_factory(runner_count=3, steal_watermark=100)
    cells = [CellSpec(workload=f"w{i}", config="IC") for i in range(12)]
    expected = [owner_name(harness, spec) for spec in cells]

    client = Client(port=harness.port, timeout=30)
    outcome = client.submit(cells, priority="interactive")

    assert outcome.state == "done"
    assert [entry["node"] for entry in outcome.entries] == expected
    assert harness.counter("cluster.cells_routed") == 12
    assert harness.counter("cluster.cells_routed_owner") == 12
    assert harness.counter("cluster.jobs_done") == 1


def test_entries_forwarded_verbatim(cluster_factory):
    harness = cluster_factory(runner_count=2, steal_watermark=100)
    cells = [CellSpec(workload=f"w{i}", config="TC") for i in range(5)]
    outcome = Client(port=harness.port, timeout=30).submit(cells)
    assert outcome.state == "done"
    for spec, entry in zip(cells, outcome.entries):
        source = next(
            r for r in harness.runners if r.name == entry["node"]
        ).entries_by_cell[(spec.workload, spec.config)]
        # Byte-level fidelity: the gateway relays the node's entry dict
        # untouched (same keys, same values), never re-deriving it.
        assert entry == source


def test_work_stealing_rebalances_a_skewed_backlog(cluster_factory):
    harness = cluster_factory(runner_count=2, steal_watermark=1, max_slice=2)
    slow = harness.runners[0]
    slow.delay = 0.3
    cells = owned_cells(harness, slow, 8)  # 4 slices, all owned by runner0

    outcome = Client(port=harness.port, timeout=60).submit(cells)

    assert outcome.state == "done"
    assert all(entry is not None for entry in outcome.entries)
    assert harness.counter("cluster.steals") >= 1
    assert harness.counter("cluster.cells_stolen") >= 2
    assert harness.runners[1].cells_served >= 2
    # Stolen cells ran off-owner, so owner-locality drops below 100%.
    assert harness.counter("cluster.cells_routed_owner") < harness.counter(
        "cluster.cells_routed"
    )


def test_node_shed_is_retried_with_backoff(cluster_factory):
    harness = cluster_factory(runner_count=2, steal_watermark=100)
    shedder = harness.runners[0]
    shedder.shed_remaining = 2
    shedder.retry_after = 0.01
    cells = owned_cells(harness, shedder, 2)

    outcome = Client(port=harness.port, timeout=30).submit(cells)

    assert outcome.state == "done"
    assert harness.counter("cluster.node_sheds") == 2
    assert shedder.submits == 3  # two sheds, then the served attempt


def test_midstream_death_evicts_requeues_and_completes(cluster_factory):
    harness = cluster_factory(runner_count=2, steal_watermark=100)
    dying, survivor = harness.runners
    dying.die_after_cells = 1
    cells = owned_cells(harness, dying, 6)

    outcome = Client(port=harness.port, timeout=30).submit(cells)

    assert outcome.state == "done"
    assert all(entry is not None for entry in outcome.entries)
    nodes = [entry["node"] for entry in outcome.entries]
    assert nodes.count(dying.name) == 1  # the cell delivered before death
    assert nodes.count(survivor.name) == 5  # requeued remainder
    assert harness.counter("cluster.evictions") == 1
    assert harness.counter("cluster.requeues") == 1
    assert dying.address not in harness.gateway.ring

    # Once the node answers probes again it rejoins the ring.
    dying.health_ok = True
    wait_until(lambda: harness.counter("cluster.rejoins") >= 1)
    wait_until(lambda: dying.address in harness.gateway.ring)


def test_gateway_sheds_when_job_table_full(cluster_factory):
    harness = cluster_factory(runner_count=2, max_jobs=0)
    client = Client(port=harness.port, timeout=10)
    with pytest.raises(ServiceShed) as excinfo:
        client.submit([CellSpec(workload="w0", config="IC")])
    assert excinfo.value.code == "queue_full"
    assert excinfo.value.retry_after >= 0.5
    assert harness.counter("cluster.sheds") == 1


def test_bad_priority_and_empty_submit_rejected(cluster_factory):
    harness = cluster_factory(runner_count=2)
    client = Client(port=harness.port, timeout=10)
    with pytest.raises(ServiceError) as excinfo:
        client.submit([CellSpec(workload="w0", config="IC")], priority="urgent")
    assert excinfo.value.code == "bad_request"
    with pytest.raises(ServiceError) as excinfo:
        client.submit([])
    assert excinfo.value.code == "bad_request"


def test_status_result_cancel_lifecycle(cluster_factory):
    harness = cluster_factory(runner_count=2)
    client = Client(port=harness.port, timeout=30)
    with pytest.raises(ServiceError) as excinfo:
        client.status("no-such-job")
    assert excinfo.value.code == "unknown_job"

    outcome = client.submit([CellSpec(workload="w0", config="IC")])
    assert outcome.state == "done"
    status = client.status(outcome.job_id)
    assert status.state == "done"
    assert status.cells_done == 1
    result = client.result(outcome.job_id)
    assert result.entries == outcome.entries
    # Cancelling a finished job is a no-op reporting the final state.
    cancelled = client.cancel(outcome.job_id)
    assert cancelled.state == "done"


def test_cancel_propagates_to_inflight_node_slice(cluster_factory):
    """A gateway cancel must reach the node running the slice.

    Regression test: the gateway used to only flag the job and let
    node-side sub-jobs run to completion, so a cancelled 1000-cell job
    kept burning node CPU.  Now the node receives a CancelRequest for
    its sub-job, stops between cells, and answers the stream with a
    cancelled JobDone.
    """
    harness = cluster_factory(runner_count=1, steal_watermark=100)
    runner = harness.runners[0]
    runner.delay = 0.2  # slow cells: the slice is mid-stream when we cancel
    cells = [CellSpec(workload=f"w{i}", config="IC") for i in range(8)]

    holder = {}

    def run_submit():
        holder["outcome"] = Client(port=harness.port, timeout=30).submit(cells)

    thread = threading.Thread(target=run_submit)
    thread.start()
    try:
        wait_until(lambda: runner.cells_served >= 1)
        jobs = harness.gateway.table.unfinished()
        assert len(jobs) == 1
        cancelled = Client(port=harness.port, timeout=10).cancel(
            jobs[0].job_id
        )
        assert cancelled.state in ("running", "cancelled")
    finally:
        thread.join(timeout=30)
    assert not thread.is_alive()

    outcome = holder["outcome"]
    assert outcome.state == "cancelled"
    # The node actually received the cancel for its own sub-job id...
    assert runner.cancels == ["runner0-job-1"]
    # ...and stopped serving cells instead of running the slice dry.
    assert runner.cells_served < len(cells)
    assert sum(1 for entry in outcome.entries if entry is None) > 0
    assert harness.counter("cluster.cancels_propagated") == 1
    assert harness.counter("cluster.jobs_cancelled") == 1
    assert harness.counter("cluster.jobs_failed") == 0


def test_health_and_metrics_aggregate_across_nodes(cluster_factory):
    harness = cluster_factory(runner_count=2)
    client = Client(port=harness.port, timeout=10)
    # Health probes populate per-node worker counts shortly after start.
    wait_until(lambda: client.health().workers == 2)
    health = client.health()
    assert health.ok

    harness.runners[0].counters = {"service.cells_computed": 5.0}
    harness.runners[1].counters = {"service.cells_computed": 7.0}
    metrics = client.metrics()
    # Node snapshots merge associatively into the cluster-wide view...
    assert metrics.counters["service.cells_computed"] == 12.0
    # ...alongside the gateway's own counters.
    assert "cluster.jobs_submitted" in metrics.counters
    assert metrics.gauges.get("cluster.nodes_up") == 2
