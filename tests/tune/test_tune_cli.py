"""End-to-end `tune` CLI: sweep -> report -> pgo over real files."""

import contextlib
import io
import json

import pytest

from repro.tune.cli import tune_main


@pytest.fixture(scope="module")
def sweep_files(tmp_path_factory):
    """One smoke sweep, captured: (stdout, report path, ledger path)."""
    tmp = tmp_path_factory.mktemp("tune-cli")
    out = tmp / "sweep.json"
    ledger = tmp / "run.json"
    stdout = io.StringIO()
    with contextlib.redirect_stdout(stdout):
        code = tune_main([
            "sweep", "--space", "smoke", "--workloads", "gzip",
            "--scale", "0", "--jobs", "2",
            "--cache-dir", str(tmp / "cache"),
            "--out", str(out), "--emit-stats", str(ledger),
        ])
    assert code == 0
    return stdout.getvalue(), out, ledger


def _digest_line(text: str, prefix: str) -> str:
    lines = [x for x in text.splitlines() if x.startswith(prefix)]
    assert len(lines) == 1, f"expected one {prefix!r} line"
    return lines[0]


def test_sweep_prints_surface_and_digests(sweep_files):
    stdout, out, ledger = sweep_files
    assert "tune surface: 6 cells over 1 workloads" in stdout
    assert _digest_line(stdout, "sweep digest: ")
    assert _digest_line(stdout, "surface digest: ")
    report = json.loads(out.read_text())
    assert report["schema"] == "repro-uopt/tune-sweep"
    assert len(report["records"]) == 6
    assert report["surface"]["cells"] == 6
    assert json.loads(ledger.read_text())["version"] == 2


def test_report_rebuilds_identical_surface_from_both_files(
    sweep_files, capsys
):
    stdout, out, ledger = sweep_files
    expected = _digest_line(stdout, "surface digest: ")
    assert tune_main(["report", str(out)]) == 0
    from_report = capsys.readouterr().out
    assert tune_main(["report", str(ledger)]) == 0
    from_ledger = capsys.readouterr().out
    assert _digest_line(from_report, "surface digest: ") == expected
    assert _digest_line(from_ledger, "surface digest: ") == expected


def test_pgo_from_sweep_report(sweep_files, tmp_path, capsys):
    _, out, _ = sweep_files
    pgo_out = tmp_path / "pgo.json"
    code = tune_main([
        "pgo", str(out), "--scale", "0",
        "--cache-dir", str(out.parent / "cache"),
        "--json", "--out", str(pgo_out),
    ])
    assert code == 0
    report = json.loads(capsys.readouterr().out)
    assert report == json.loads(pgo_out.read_text())
    (row,) = report["rows"]
    assert row["workload"] == "gzip"
    assert "frame_max_uops" in row["params"]


def test_error_paths(tmp_path, capsys):
    assert tune_main([]) == 2
    assert tune_main(["prune"]) == 2
    assert tune_main(["report", str(tmp_path / "missing.json")]) == 1
    assert "error:" in capsys.readouterr().err

    bad = tmp_path / "bad.json"
    bad.write_text("{\"records\": []}")
    assert tune_main(["pgo", str(bad)]) == 1
    assert "no sweep records" in capsys.readouterr().err

    assert tune_main(["sweep", "--workloads", "nope", "--scale", "0"]) == 1
    assert "error:" in capsys.readouterr().err
