"""Surface aggregation over synthetic records: pure math, no simulation."""

from repro.tune.space import FULL_PASS_SPEC, TunePoint, ablated_pass_spec
from repro.tune.surface import build_surface, format_surface, surface_digest


def record(workload: str, point: TunePoint, ipc: float) -> dict:
    return {
        "workload": workload,
        "label": point.label(),
        "point": point.to_json(),
        "entry": {"workload": workload, "config": point.label(),
                  "ipc_x86": ipc, "uop_reduction": 0.1},
    }


RP = TunePoint(pass_spec=None)
RPO = TunePoint()
NO_CP = TunePoint(pass_spec=ablated_pass_spec("cp"))
NO_SF = TunePoint(pass_spec=ablated_pass_spec("sf"))
SMALL_FRAME = TunePoint(frame_max_uops=128)
FILL16 = TunePoint(frontend="tcache", pass_spec=None, fill_max_uops=16)
FILL32 = TunePoint(frontend="tcache", pass_spec=None, fill_max_uops=32)

RECORDS = [
    record("gzip", RP, 1.0),
    record("gzip", RPO, 2.0),
    record("gzip", NO_CP, 1.5),
    record("gzip", NO_SF, 1.9),
    record("gzip", SMALL_FRAME, 1.8),
    record("gzip", FILL16, 0.8),
    record("gzip", FILL32, 0.9),
]


def test_workload_summary_best_worst_and_gain():
    surface = build_surface(RECORDS)
    entry = surface["workloads"]["gzip"]
    assert entry["cells"] == 7
    assert entry["rp_ipc"] == 1.0 and entry["rpo_ipc"] == 2.0
    assert entry["best"]["label"] == RPO.label()
    assert entry["worst"]["label"] == NO_CP.label()
    assert entry["best_gain"] == 1.0  # 2.0 / 1.0 - 1


def test_fig10_slice_uses_paper_normalization():
    surface = build_surface(RECORDS)
    bars = surface["fig10"]["gzip"]
    # (ipc_variant - RP) / (RPO - RP): no-cp lands mid-span.
    assert bars == {"no-cp": 0.5, "no-sf": 0.9}


def test_fig10_slice_requires_rp_and_rpo():
    without_rp = [r for r in RECORDS if r["point"]["pass_spec"] is not None]
    assert build_surface(without_rp)["fig10"] == {}


def test_pass_marginals():
    surface = build_surface(RECORDS)
    marginals = surface["pass_marginals"]
    assert marginals["cp"]["leave_one_out"] == 0.5
    assert marginals["sf"]["leave_one_out"] == 0.9
    # Cells containing cp (RPO 2.0, no-sf 1.9, frame128 1.8) outscore
    # the one without it (no-cp 1.5).
    assert marginals["cp"]["subset_delta"] == 0.4
    # Never-ablated passes have no without-pass sample and no
    # leave-one-out bar, so they carry no marginal at all.
    assert "ra" not in marginals


def test_frame_and_fill_response_curves():
    surface = build_surface(RECORDS)
    assert surface["frame_response"]["gzip"] == [[128, 1.8], [256, 2.0]]
    assert surface["fill_response"]["gzip"] == [[16, 0.8], [32, 0.9]]


def test_category_slices_and_unknown_workloads():
    records = RECORDS + [record("not-a-workload", RPO, 1.0)]
    surface = build_surface(records)
    assert surface["workloads"]["not-a-workload"]["category"] == "Unknown"
    assert "Unknown" in surface["slices"]
    gzip_category = surface["workloads"]["gzip"]["category"]
    assert "gzip" in surface["slices"][gzip_category]["workloads"]


def test_digest_is_order_independent_and_stable():
    digest = surface_digest(build_surface(RECORDS))
    assert digest == surface_digest(build_surface(list(reversed(RECORDS))))
    assert len(digest) == 64


def test_format_surface_renders_every_section():
    text = format_surface(build_surface(RECORDS))
    assert "tune surface: 7 cells" in text
    assert "pass marginals" in text
    assert "fig10 ablation slice" in text
    assert "frame-size response" in text
    assert "fill-unit response" in text
    assert "category slices" in text
