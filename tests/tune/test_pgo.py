"""Profile-guided frame construction: selection and the delta report."""

import pytest

from repro.artifacts.store import ArtifactStore
from repro.metrics import MetricsRegistry
from repro.tune.engine import SweepSettings, TuneError
from repro.tune.pgo import format_pgo, run_pgo, select_frame_params
from repro.tune.space import FULL_PASS_SPEC, TunePoint, ablated_pass_spec


def record(workload: str, point: TunePoint, ipc: float) -> dict:
    return {
        "workload": workload,
        "label": point.label(),
        "point": point.to_json(),
        "entry": {"ipc_x86": ipc},
    }


def test_selects_best_optimized_replay_point_per_workload():
    small = TunePoint(frame_max_uops=128)
    profile = [
        record("gzip", TunePoint(), 1.0),
        record("gzip", small, 1.4),
        record("dream", TunePoint(), 2.0),
        record("dream", small, 1.5),
        # Non-candidates: unoptimized replay and tcache cells.
        record("gzip", TunePoint(pass_spec=None), 9.0),
        record("gzip", TunePoint(frontend="tcache", pass_spec=None), 9.0),
    ]
    selected = select_frame_params(profile)
    assert selected["gzip"].frame_max_uops == 128
    assert selected["dream"].frame_max_uops == 256


def test_selection_pins_the_full_pipeline():
    """PGO tunes frame construction only: an ablated winner still runs
    the full pass spec in the tuned configuration."""
    ablated = TunePoint(pass_spec=ablated_pass_spec("cp"), frame_max_uops=128)
    selected = select_frame_params([record("gzip", ablated, 1.0)])
    assert selected["gzip"].pass_spec == FULL_PASS_SPEC
    assert selected["gzip"].frame_max_uops == 128


def test_selection_without_candidates_raises():
    with pytest.raises(TuneError, match="no optimized replay cells"):
        select_frame_params([record("gzip", TunePoint(pass_spec=None), 1.0)])


def test_run_pgo_reports_per_workload_delta(tmp_path):
    profile = [record("gzip", TunePoint(frame_max_uops=128), 1.0)]
    registry = MetricsRegistry()
    report = run_pgo(
        profile,
        SweepSettings(scale=0),
        store=ArtifactStore(tmp_path),
        metrics=registry,
    )
    assert report["schema"] == "repro-uopt/tune-pgo"
    assert report["baseline_label"] == TunePoint().label()
    (row,) = report["rows"]
    assert row["workload"] == "gzip"
    assert row["params"]["frame_max_uops"] == 128
    assert row["base_ipc"] > 0 and row["tuned_ipc"] > 0
    assert row["delta"] == pytest.approx(
        row["tuned_ipc"] / row["base_ipc"] - 1.0, abs=1e-5
    )
    assert report["mean_delta"] == row["delta"]
    assert registry.counter("tune.pgo_runs").value == 1

    text = format_pgo(report)
    assert "gzip" in text and "frame=128" in text and "mean" in text
