"""Planner determinism: same (space, seed, samples) -> same plan."""

import pytest

from repro.tune.planner import plan_grid, plan_points, plan_random
from repro.tune.space import default_space, smoke_space


def test_grid_order_is_stable():
    space = default_space(("gzip",))
    assert plan_grid(space) == plan_grid(space) == space.points()


def test_random_is_a_seeded_subset_in_grid_order():
    space = default_space(("gzip",))
    grid = plan_grid(space)
    sample = plan_random(space, seed=1, samples=5)
    assert sample == plan_random(space, seed=1, samples=5)  # reproducible
    assert len(sample) == 5
    indices = [grid.index(p) for p in sample]
    assert indices == sorted(indices)  # grid order, not draw order
    assert plan_random(space, seed=2, samples=5) != sample  # seed matters


def test_random_degenerates_to_grid_when_oversampled():
    space = smoke_space(("gzip",))
    assert plan_random(space, seed=1, samples=999) == plan_grid(space)


def test_random_rejects_empty_sample():
    with pytest.raises(ValueError, match="samples must be >= 1"):
        plan_random(smoke_space(("gzip",)), seed=1, samples=0)


def test_plan_points_dispatch():
    space = smoke_space(("gzip",))
    assert plan_points(space, "grid", 1, 3) == plan_grid(space)
    assert plan_points(space, "random", 1, 3) == plan_random(space, 1, 3)
    # Halving draws its initial population from the same seeded sample.
    assert plan_points(space, "halving", 1, 3) == plan_random(space, 1, 3)
    with pytest.raises(ValueError, match="unknown search strategy"):
        plan_points(space, "simulated-annealing", 1, 3)
