"""Sweep execution: digest reproducibility, dedup, halving, failures."""

from types import SimpleNamespace

import pytest

from repro.artifacts.store import ArtifactStore
from repro.metrics import MetricsRegistry
from repro.tune.engine import SweepSettings, TuneError, run_sweep
from repro.tune.space import FULL_PASS_SPEC, TuneSpace, ablated_pass_spec


@pytest.fixture(scope="module")
def store(tmp_path_factory) -> ArtifactStore:
    return ArtifactStore(tmp_path_factory.mktemp("tune-cache"))


SPACE = TuneSpace(
    workloads=("gzip",),
    pass_specs=(None, FULL_PASS_SPEC, ablated_pass_spec("cp")),
)


def test_digest_is_independent_of_jobs_and_fully_cached_on_rerun(store):
    serial = run_sweep(SPACE, SweepSettings(scale=0, jobs=1), store=store)
    parallel = run_sweep(SPACE, SweepSettings(scale=0, jobs=2), store=store)
    assert serial.digest == parallel.digest
    assert serial.records == parallel.records
    assert len(serial.records) == 3
    assert serial.cells_computed == 3 and serial.cells_cached == 0
    # The second run hit the artifact store for every cell yet folded
    # the exact same digest — dedup never changes the result.
    assert parallel.cells_cached == 3 and parallel.cells_computed == 0


def test_records_are_plan_ordered_and_canonical(store):
    result = run_sweep(SPACE, SweepSettings(scale=0), store=store)
    labels = [p["pass_spec"] for p in result.points]
    assert labels == [None, FULL_PASS_SPEC, ablated_pass_spec("cp")]
    for record, point in zip(result.records, result.points):
        assert set(record) == {"workload", "label", "point", "entry"}
        assert record["workload"] == "gzip"
        assert record["point"] == point
        assert record["entry"]["config"] == record["label"]
        assert record["entry"]["ipc_x86"] > 0


def test_random_search_digest_reproducible(store):
    settings = SweepSettings(search="random", seed=3, samples=2, scale=0)
    first = run_sweep(SPACE, settings, store=store)
    second = run_sweep(SPACE, settings, store=store)
    assert first.digest == second.digest
    assert len(first.records) == 2


def test_halving_trajectory_is_deterministic(store):
    settings = SweepSettings(search="halving", scale=0, halving_rounds=2)
    first = run_sweep(SPACE, settings, store=store)
    second = run_sweep(SPACE, settings, store=store)
    assert first.digest == second.digest
    assert first.survivors == second.survivors
    assert 1 <= len(first.survivors) < len(first.points)
    planned = {p["pass_spec"] for p in first.points}
    assert all(s["pass_spec"] in planned for s in first.survivors)


def test_sweep_counts_metrics(store):
    registry = MetricsRegistry()
    run_sweep(SPACE, SweepSettings(scale=0), store=store, metrics=registry)
    assert registry.counter("tune.sweeps").value == 1
    assert registry.counter("tune.sweep_cells").value == 3


def test_service_failure_raises_tune_error():
    failing = SimpleNamespace(
        submit=lambda specs, priority: SimpleNamespace(
            state="failed", error="pool exploded", entries=[],
            cells_cached=0, cells_computed=0,
        )
    )
    with pytest.raises(TuneError, match="pool exploded"):
        run_sweep(SPACE, SweepSettings(scale=0), client=failing)
