"""TunePoint/TuneSpace: validation, serialization, labels, grids."""

import pytest

from repro.harness.experiment import CONFIGS
from repro.optimizer.pipeline import PASS_NAMES
from repro.timing.config import ConfigError
from repro.tune.space import (
    FIG10_ABLATIONS,
    FULL_PASS_SPEC,
    TunePoint,
    TuneSpace,
    ablated_pass_spec,
    default_space,
    smoke_space,
)


def test_full_pass_spec_is_canonical_order():
    assert FULL_PASS_SPEC == ",".join(PASS_NAMES)


def test_ablated_pass_spec_drops_exactly_one_pass():
    for name in FIG10_ABLATIONS:
        spec = ablated_pass_spec(name)
        names = spec.split(",")
        assert len(names) == len(PASS_NAMES) - 1
        assert "dce" in names  # the terminal pass is never ablated
    # The legend alias and the canonical name ablate the same pass.
    assert ablated_pass_spec("asst") == ablated_pass_spec("va")


@pytest.mark.parametrize("name", ["dce", "bogus", ""])
def test_ablated_pass_spec_rejects_unablatable(name):
    with pytest.raises(ConfigError, match="cannot ablate"):
        ablated_pass_spec(name)


def test_point_json_round_trip():
    point = TunePoint(frame_max_uops=128, promotion_threshold=8)
    assert TunePoint.from_json(point.to_json()) == point


def test_from_json_rejects_unknown_and_invalid_fields():
    with pytest.raises(ConfigError, match="unknown point fields: frame_uops"):
        TunePoint.from_json({"frame_uops": 128})
    with pytest.raises(ConfigError, match="payload must be an object"):
        TunePoint.from_json([1, 2, 3])
    with pytest.raises(ConfigError, match="tune.frame_max_uops"):
        TunePoint.from_json({"frame_max_uops": 4})
    with pytest.raises(ConfigError, match="tune.fill.max_uops"):
        TunePoint.from_json({"fill_max_uops": 2})


def test_validate_rejects_bad_knobs():
    with pytest.raises(ConfigError, match="tune.frontend"):
        TunePoint(frontend="decoupled").validate()
    with pytest.raises(ConfigError, match="optimizer.pass_spec"):
        TunePoint(pass_spec="cp,sf").validate()  # missing dce terminal
    with pytest.raises(ConfigError, match="tune.promotion_threshold"):
        TunePoint(promotion_threshold=0).validate()
    with pytest.raises(ConfigError, match="tune.backedge_close_uops"):
        TunePoint(backedge_close_uops=0).validate()


def test_labels_are_deterministic_and_distinct():
    grid = default_space(("gzip",)).points()
    labels = [p.label() for p in grid]
    assert labels == [p.label() for p in default_space(("gzip",)).points()]
    assert len(set(labels)) == len(labels)
    assert all(label.startswith("tune-") for label in labels)


def test_experiment_config_lowers_the_point():
    point = TunePoint(
        pass_spec=ablated_pass_spec("cp"), frame_max_uops=128, fill_max_uops=64
    )
    config = point.experiment_config()
    assert config.name == point.label()
    assert config.frontend == "replay" and config.optimize
    assert config.optimizer.pass_spec == point.pass_spec
    assert config.constructor.max_uops == 128
    assert config.processor.fill_unit.max_uops == 64

    rp = TunePoint(pass_spec=None).experiment_config()
    assert not rp.optimize

    tcache = TunePoint(frontend="tcache", pass_spec=None, fill_max_uops=16)
    assert tcache.experiment_config().frontend == "tcache"
    assert tcache.experiment_config().processor.fill_unit.max_uops == 16


def test_full_spec_point_matches_default_rpo_pipeline():
    """The fig10 contract: the FULL_PASS_SPEC point runs exactly the
    pass sequence the stock RPO configuration runs."""
    tuned = TunePoint().experiment_config()
    stock = CONFIGS["RPO"]
    assert (
        tuned.optimizer.resolved_pass_names()
        == stock.optimizer.resolved_pass_names()
    )
    for name in FIG10_ABLATIONS:
        spec_point = TunePoint(pass_spec=ablated_pass_spec(name))
        assert (
            spec_point.experiment_config().optimizer.resolved_pass_names()
            == stock.optimizer.disabled(name).resolved_pass_names()
        )


def test_default_space_embeds_fig10_ablation():
    points = default_space().points()
    specs = {p.pass_spec for p in points if p.frontend == "replay"
             and p.frame_max_uops == 256}
    assert None in specs  # RP
    assert FULL_PASS_SPEC in specs  # RPO
    for name in FIG10_ABLATIONS:
        assert ablated_pass_spec(name) in specs


def test_space_grid_sizes():
    # 8 specs x 2 frame sizes + 3 fill sizes = 19 points.
    assert len(default_space().points()) == 19
    # 4 specs x 1 frame + 2 fill sizes = 6 points.
    assert len(smoke_space().points()) == 6


def test_space_validation_errors():
    with pytest.raises(ConfigError, match="tune.workloads"):
        TuneSpace(workloads=()).validate()
    with pytest.raises(KeyError):
        TuneSpace(workloads=("no-such-workload",)).validate()
    with pytest.raises(ConfigError, match="no replay and no tcache"):
        TuneSpace(workloads=("gzip",), pass_specs=()).validate()
    with pytest.raises(ConfigError, match="duplicate point"):
        TuneSpace(
            workloads=("gzip",), pass_specs=(FULL_PASS_SPEC, FULL_PASS_SPEC)
        ).points()
