"""Shared test utilities: tiny program builders and frame factories."""

from __future__ import annotations

from repro.x86 import Assembler, Emulator
from repro.trace import DynamicTrace, MicroOpInjector
from repro.replay import FrameConstructor
from repro.replay.frame import Frame
from repro.optimizer import OptimizationBuffer
from repro.uops.uop import Uop


def run_program(asm: Assembler, max_instructions: int = 100_000):
    """Assemble, emulate, and return (program, emulator, trace)."""
    program = asm.assemble()
    emulator = Emulator(program)
    trace = DynamicTrace(emulator.run(max_instructions))
    return program, emulator, trace


def inject(trace: DynamicTrace):
    """Decode a trace into annotated uops."""
    return MicroOpInjector().inject_trace(trace)


def frame_from_region(injected, start: int, count: int) -> Frame:
    """Frame-ify a region of injected instructions and build its buffer."""
    region = injected[start : start + count]
    frame = FrameConstructor().build_frame(region, region[-1].record.next_pc)
    frame.build_buffer()
    return frame


def buffer_from_uops(uops: list[Uop], block_starts: list[int] | None = None
                     ) -> OptimizationBuffer:
    """Build an optimization buffer directly from a dyn-uop list.

    Each uop is treated as its own x86 instruction; memory keys are not
    needed for optimizer-only tests.
    """
    return OptimizationBuffer(
        uops,
        x86_indices=list(range(len(uops))),
        mem_keys=[None] * len(uops),
        block_starts=block_starts,
    )
