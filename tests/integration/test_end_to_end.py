"""End-to-end integration: the paper's headline claims, in miniature."""

from dataclasses import replace

import pytest

from repro.harness import CONFIGS, run_experiment
from repro.workloads import build_workload

#: Run the paper's pipeline on a representative trio with verification.
#: (excel is exercised separately below: its aliasing unsafe stores make
#: net IPC gains deliberately unreliable, per the paper's §6.4 story.)
WORKLOADS = ["eon", "bzip2", "twolf"]


@pytest.fixture(scope="module", params=WORKLOADS)
def results(request):
    trace = build_workload(request.param)
    rp = run_experiment(trace, CONFIGS["RP"])
    rpo = run_experiment(trace, replace(CONFIGS["RPO"], verify=True))
    return request.param, trace, rp, rpo


def test_everything_retires(results):
    _, trace, rp, rpo = results
    assert rp.sim.x86_retired == len(trace)
    assert rpo.sim.x86_retired == len(trace)


def test_optimization_removes_uops_and_loads(results):
    name, _, _, rpo = results
    assert rpo.uop_reduction > 0.05, name
    assert rpo.load_reduction > 0.05, name


def test_optimization_improves_ipc(results):
    name, _, rp, rpo = results
    assert rpo.ipc_x86 > rp.ipc_x86, name


def test_frames_formally_verified(results):
    name, _, _, rpo = results
    assert rpo.frames_verified > 0, name


def test_cycle_bins_account_for_runtime(results):
    _, _, rp, rpo = results
    for result in (rp, rpo):
        accounted = sum(result.sim.bins.values())
        assert 0.9 * result.sim.cycles <= accounted <= result.sim.cycles


def test_excel_unsafe_aborts_observed():
    """The paper's Excel story: aliasing unsafe stores abort frames."""
    trace = build_workload("excel")
    rpo = run_experiment(trace, CONFIGS["RPO"])
    assert rpo.sequencer_stats.unsafe_aborts > 0


def test_excel_no_sf_avoids_aborts():
    from repro.optimizer import OptimizerConfig

    trace = build_workload("excel")
    no_sf = replace(
        CONFIGS["RPO"],
        name="RPO-no-sf",
        optimizer=OptimizerConfig().disabled("sf"),
    )
    result = run_experiment(trace, no_sf)
    assert result.sequencer_stats.unsafe_aborts == 0
