"""Every workload's optimized frames verify against the trace.

This is the strongest system-level correctness statement the repo makes:
for all fourteen workloads, every distinct optimized frame path that the
sequencer dispatches is executed by the State Verifier against the
original instruction stream's architectural effects — registers, flags,
and stored bytes at the frame boundary (paper §5.1.3).
"""

from dataclasses import replace

import pytest

from repro.harness import CONFIGS, run_experiment
from repro.workloads import all_workloads, build_workload


@pytest.mark.parametrize("name", [w.name for w in all_workloads()])
def test_workload_frames_verify(name):
    trace = build_workload(name)
    result = run_experiment(trace, replace(CONFIGS["RPO"], verify=True), name)
    # Verification raises on any divergence; reaching here with at least
    # one checked frame is the assertion.
    assert result.frames_verified > 0, f"{name}: no frames were verified"
    assert result.sim.x86_retired == len(trace)
