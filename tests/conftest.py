"""Shared fixtures."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro.x86 import Assembler, Cond, Imm, Reg, mem  # noqa: E402


@pytest.fixture
def loop_asm() -> Assembler:
    """A small call-in-loop program exercising most decode flows."""
    asm = Assembler()
    asm.data_words(0x500000, list(range(1, 33)))
    asm.mov(Reg.ESI, Imm(0x500000))
    asm.mov(Reg.ECX, Imm(32))
    asm.xor(Reg.EAX, Reg.EAX)
    asm.label("loop")
    asm.push(Reg.ECX)
    asm.call("accum")
    asm.pop(Reg.ECX)
    asm.add(Reg.ESI, Imm(4))
    asm.dec(Reg.ECX)
    asm.jcc(Cond.NZ, "loop")
    asm.ret()
    asm.label("accum")
    asm.push(Reg.EBP)
    asm.mov(Reg.EBP, Reg.ESP)
    asm.mov(Reg.EDX, mem(Reg.ESI))
    asm.add(Reg.EAX, Reg.EDX)
    asm.pop(Reg.EBP)
    asm.ret()
    return asm
