"""Regression: degenerate-branch assertion conversion (found by fuzzing).

Campaign seed 1 / generator seed 54 produced a loop body ending in
``cmp ecx, 2; ja <next>`` — a conditional branch whose taken target *is*
its fall-through (the generator's forward skip clamped to the body end).
The frame constructor converted it to ``assert a`` like any other biased
mid-frame branch.  But both directions of such a branch retire the same
successor, so path matching can never reject an instance whose direction
flipped — and on the iteration where ECX reached 2 the assertion fired
on a committing, path-matching, exit-matching instance in every
optimizer variant (including all passes disabled).

The fix drops the control uop instead: a branch that cannot change the
path needs no assertion, and asserting it can only cause spurious
rollbacks.  See ``FrameConstructor._degenerate_branch``.
"""

from repro.fuzz.generator import FuzzProgram, generate_program, render_program
from repro.fuzz.oracle import OracleConfig, _construct_frames, run_differential
from repro.trace.injector import MicroOpInjector
from repro.uops.uop import UopOp
from repro.x86.emulator import Emulator
from repro.x86.instructions import Cond

#: Minimized by hand from generator seed 54 (the shrinker's target
#: shape): one load to give the frame body real work, then the
#: degenerate branch.  ``ja`` is taken while ECX > 2 and falls through
#: on the last two iterations — the direction flips mid-campaign.
MINIMIZED = FuzzProgram(
    seed=0,
    iterations=12,
    alias_delta=0,
    reg_init={"eax": 0, "ebx": 0, "edx": 0, "ebp": 0},
    data=[0] * 8,
    ops=[
        {"kind": "load", "dst": "eax", "base": "esi", "disp": 0},
        {
            "kind": "branch",
            "test": {"op": "cmp", "left": "ecx", "right": {"imm": 2}},
            "cond": "a",
            "skip": 1,
        },
    ],
)


def _frames(genome, config):
    emulator = Emulator(render_program(genome))
    records = emulator.run(max_instructions=config.max_instructions)
    assert emulator.halted
    injector = MicroOpInjector()
    injected = [injector.inject(record) for record in records]
    return injected, _construct_frames(injected, config.constructor_config())


def test_degenerate_branch_direction_actually_flips():
    """Guard the repro's premise: the branch is taken early and
    not-taken late, all at one PC, with one successor."""
    config = OracleConfig()
    injected, _ = _frames(MINIMIZED, config)
    outcomes = {}
    for instr in injected:
        record = instr.record
        if record.instruction.is_conditional and record.branch_taken is not None:
            outcomes.setdefault(record.pc, set()).add(record.branch_taken)
    # At least one conditional site saw both directions.
    assert any(len(directions) == 2 for directions in outcomes.values())


def test_degenerate_branch_is_not_converted_to_an_assertion():
    config = OracleConfig()
    _, frames = _frames(MINIMIZED, config)
    assert frames, "repro must still construct frames"
    kept_assert_conds = {
        uop.cond
        for frame in frames
        for uop in frame.dyn_uops
        if uop.op is UopOp.ASSERT
    }
    # The backedge (dec ecx; jnz) legitimately converts to `assert nz`;
    # the degenerate `ja` must not appear as `assert a` (or `assert be`).
    assert Cond.A not in kept_assert_conds
    assert Cond.BE not in kept_assert_conds


def test_minimized_repro_is_divergence_free():
    report = run_differential(MINIMIZED, OracleConfig())
    assert report.ok, report.divergences
    assert report.instances_committed > 0


def test_original_seed_54_is_divergence_free():
    report = run_differential(generate_program(54), OracleConfig())
    assert report.ok, report.divergences
