"""The ``fuzz`` subcommand: run / repro / corpus ls."""

import json

from repro.harness.cli import main
from repro.artifacts.store import ArtifactStore
from repro.fuzz.corpus import FuzzCorpus
from repro.fuzz.generator import generate_program
from repro.fuzz.oracle import Divergence


def test_fuzz_run_clean_campaign(tmp_path, capsys):
    status = main(
        [
            "fuzz", "run", "--seed", "1", "--iterations", "4",
            "--cache-dir", str(tmp_path),
        ]
    )
    out = capsys.readouterr().out
    assert status == 0
    assert "4 programs" in out
    assert "no divergences" in out
    assert "campaign digest: " in out


def test_fuzz_run_digest_reproducible(tmp_path, capsys):
    main(["fuzz", "run", "--seed", "9", "--iterations", "3",
          "--cache-dir", str(tmp_path)])
    first = capsys.readouterr().out
    main(["fuzz", "run", "--seed", "9", "--iterations", "3",
          "--cache-dir", str(tmp_path)])
    second = capsys.readouterr().out
    digest = [l for l in first.splitlines() if l.startswith("campaign digest")]
    assert digest == [
        l for l in second.splitlines() if l.startswith("campaign digest")
    ]


def test_fuzz_repro_replays_stored_case(tmp_path, capsys):
    corpus = FuzzCorpus(ArtifactStore(tmp_path))
    genome = generate_program(21)
    case_id = corpus.save_case(
        genome,
        [Divergence(kind="final-state", variant="full", detail="historic")],
        found={"campaign_seed": 1, "index": 20, "program_seed": 21},
    )
    status = main(
        ["fuzz", "repro", case_id[:10], "--cache-dir", str(tmp_path)]
    )
    out = capsys.readouterr().out
    # The historical divergence is fixed: replay is clean, exit 0.
    assert status == 0
    assert "no longer reproduces" in out
    assert f"seed={genome.seed}" in out


def test_fuzz_repro_unknown_case(tmp_path, capsys):
    status = main(["fuzz", "repro", "feedface", "--cache-dir", str(tmp_path)])
    assert status == 2
    assert "no fuzz case" in capsys.readouterr().err


def test_fuzz_corpus_ls(tmp_path, capsys):
    corpus = FuzzCorpus(ArtifactStore(tmp_path))
    corpus.save_case(
        generate_program(33),
        [Divergence(kind="verifier", variant="no-cp", detail="x")],
    )
    status = main(["fuzz", "corpus", "ls", "--cache-dir", str(tmp_path)])
    out = capsys.readouterr().out
    assert status == 0
    assert "1 fuzz case(s)" in out
    assert "verifier" in out


def test_fuzz_run_emit_stats_ledger(tmp_path, capsys):
    ledger_path = tmp_path / "run.json"
    status = main(
        [
            "fuzz", "run", "--seed", "2", "--iterations", "2",
            "--cache-dir", str(tmp_path), "--emit-stats", str(ledger_path),
        ]
    )
    assert status == 0
    ledger = json.loads(ledger_path.read_text())
    counters = ledger["metrics"]["counters"]
    assert counters["fuzz.programs"] >= 2
    capsys.readouterr()
