"""The ``fuzz`` subcommand: run / repro / corpus ls."""

import json

from repro.harness.cli import main
from repro.artifacts.store import ArtifactStore
from repro.fuzz.corpus import FuzzCorpus
from repro.fuzz.generator import generate_program
from repro.fuzz.oracle import Divergence


def test_fuzz_run_clean_campaign(tmp_path, capsys):
    status = main(
        [
            "fuzz", "run", "--seed", "1", "--iterations", "4",
            "--cache-dir", str(tmp_path),
        ]
    )
    out = capsys.readouterr().out
    assert status == 0
    assert "4 programs" in out
    assert "no divergences" in out
    assert "campaign digest: " in out


def test_fuzz_run_digest_reproducible(tmp_path, capsys):
    main(["fuzz", "run", "--seed", "9", "--iterations", "3",
          "--cache-dir", str(tmp_path)])
    first = capsys.readouterr().out
    main(["fuzz", "run", "--seed", "9", "--iterations", "3",
          "--cache-dir", str(tmp_path)])
    second = capsys.readouterr().out
    digest = [l for l in first.splitlines() if l.startswith("campaign digest")]
    assert digest == [
        l for l in second.splitlines() if l.startswith("campaign digest")
    ]


def test_fuzz_repro_replays_stored_case(tmp_path, capsys):
    corpus = FuzzCorpus(ArtifactStore(tmp_path))
    genome = generate_program(21)
    case_id = corpus.save_case(
        genome,
        [Divergence(kind="final-state", variant="full", detail="historic")],
        found={"campaign_seed": 1, "index": 20, "program_seed": 21},
    )
    status = main(
        ["fuzz", "repro", case_id[:10], "--cache-dir", str(tmp_path)]
    )
    out = capsys.readouterr().out
    # The historical divergence is fixed: replay is clean, exit 0.
    assert status == 0
    assert "no longer reproduces" in out
    assert f"seed={genome.seed}" in out


def test_fuzz_repro_unknown_case(tmp_path, capsys):
    status = main(["fuzz", "repro", "feedface", "--cache-dir", str(tmp_path)])
    assert status == 2
    assert "no fuzz case" in capsys.readouterr().err


def test_fuzz_corpus_ls(tmp_path, capsys):
    corpus = FuzzCorpus(ArtifactStore(tmp_path))
    corpus.save_case(
        generate_program(33),
        [Divergence(kind="verifier", variant="no-cp", detail="x")],
    )
    status = main(["fuzz", "corpus", "ls", "--cache-dir", str(tmp_path)])
    out = capsys.readouterr().out
    assert status == 0
    assert "1 fuzz case(s)" in out
    assert "verifier" in out


def test_fuzz_run_emit_stats_ledger(tmp_path, capsys):
    ledger_path = tmp_path / "run.json"
    status = main(
        [
            "fuzz", "run", "--seed", "2", "--iterations", "2",
            "--cache-dir", str(tmp_path), "--emit-stats", str(ledger_path),
        ]
    )
    assert status == 0
    ledger = json.loads(ledger_path.read_text())
    counters = ledger["metrics"]["counters"]
    assert counters["fuzz.programs"] >= 2
    capsys.readouterr()


# ------------------------------------------------------------ config axis


def test_fuzz_config_run_clean_campaign(tmp_path, capsys):
    status = main(
        [
            "fuzz", "config", "run", "--seed", "1", "--iterations", "4",
            "--cache-dir", str(tmp_path),
        ]
    )
    out = capsys.readouterr().out
    assert status == 0
    assert "4 pairs" in out
    assert "no divergences" in out
    assert "campaign digest: " in out


def test_fuzz_config_run_digest_reproducible_across_jobs(tmp_path, capsys):
    main(["fuzz", "config", "run", "--seed", "9", "--iterations", "4",
          "--cache-dir", str(tmp_path)])
    first = capsys.readouterr().out
    main(["fuzz", "config", "run", "--seed", "9", "--iterations", "4",
          "--jobs", "2", "--cache-dir", str(tmp_path)])
    second = capsys.readouterr().out
    digest = [l for l in first.splitlines() if l.startswith("campaign digest")]
    assert digest == [
        l for l in second.splitlines() if l.startswith("campaign digest")
    ]


def test_fuzz_repro_replays_stored_config_case(tmp_path, capsys):
    from repro.fuzz.config_oracle import ConfigDivergence
    from repro.fuzz.configgen import config_to_json, generate_config

    corpus = FuzzCorpus(ArtifactStore(tmp_path))
    genome = generate_program(21)
    case_id = corpus.save_config_case(
        genome,
        config_to_json(generate_config(21)),
        [ConfigDivergence(kind="schedule-ab", frontend="IC", detail="old")],
        found={"campaign_seed": 1, "index": 20, "config_seed": 21},
    )
    status = main(
        ["fuzz", "repro", case_id[:10], "--cache-dir", str(tmp_path)]
    )
    out = capsys.readouterr().out
    # The historical divergence is fixed: replay is clean, exit 0.
    assert status == 0
    assert "config case" in out
    assert "config delta" in out
    assert "no longer reproduces" in out


def test_fuzz_config_run_emit_stats_ledger(tmp_path, capsys):
    ledger_path = tmp_path / "run.json"
    status = main(
        [
            "fuzz", "config", "run", "--seed", "2", "--iterations", "2",
            "--cache-dir", str(tmp_path), "--emit-stats", str(ledger_path),
        ]
    )
    assert status == 0
    ledger = json.loads(ledger_path.read_text())
    counters = ledger["metrics"]["counters"]
    assert counters["fuzz.config.pairs"] >= 2
    capsys.readouterr()


def test_fuzz_config_run_divergent_pair_is_shrunk_and_stored(
    tmp_path, capsys, monkeypatch
):
    import repro.fuzz.cli as cli_mod
    from repro.fuzz.campaign import ConfigCampaignResult, DivergentPair
    from repro.fuzz.config_oracle import ConfigDivergence
    from repro.fuzz.configgen import config_to_json, generate_config

    genome = generate_program(3)
    config = generate_config(3)
    result = ConfigCampaignResult(
        seed=1, pairs=1, simulations=7, jobs=1, digest="d" * 64, seconds=0.1
    )
    result.divergent.append(
        DivergentPair(
            index=0,
            program_seed=3,
            config_seed=3,
            genome=genome,
            config_json=config_to_json(config),
            divergences=[
                ConfigDivergence(
                    kind="schedule-ab", frontend="IC", detail="synthetic"
                )
            ],
        )
    )

    class FakeShrunk:
        pass

    FakeShrunk.genome = genome
    FakeShrunk.config = config
    FakeShrunk.original_ops = FakeShrunk.final_ops = len(genome.ops)
    FakeShrunk.original_fields = FakeShrunk.final_fields = 3
    FakeShrunk.attempts = 1

    monkeypatch.setattr(
        cli_mod, "run_config_campaign", lambda *a, **k: result
    )
    monkeypatch.setattr(
        cli_mod, "shrink_config_case", lambda *a, **k: FakeShrunk()
    )
    status = main(
        [
            "fuzz", "config", "run", "--seed", "1", "--iterations", "1",
            "--cache-dir", str(tmp_path),
        ]
    )
    out = capsys.readouterr().out
    assert status == 1
    assert "1 divergent pair(s)" in out
    assert "schedule-ab" in out
    (case,) = FuzzCorpus(ArtifactStore(tmp_path)).list_cases()
    assert "config" in case["label"]
