"""Differential-oracle behavior on known-clean and synthetic inputs."""

import pytest

from repro.fuzz.generator import generate_program
from repro.fuzz.oracle import (
    VARIANTS,
    Divergence,
    OracleConfig,
    run_differential,
    variant_config,
)
from repro.metrics import MetricsRegistry


def test_clean_seeds_produce_no_divergences():
    config = OracleConfig()
    for seed in (1, 2, 3, 54, 97):  # 54 was the degenerate-branch repro
        report = run_differential(generate_program(seed), config)
        assert report.ok, (seed, report.divergences)


def test_oracle_exercises_the_whole_stack():
    """A fuzz campaign that never builds or commits frames tests
    nothing; the default constructor tuning must produce both."""
    config = OracleConfig()
    frames = committed = verified = 0
    for seed in range(1, 21):
        report = run_differential(generate_program(seed), config)
        frames += report.frames_constructed
        committed += report.instances_committed
        verified += report.instances_verified
    assert frames > 10
    assert committed > 100
    assert verified > 10


def test_variant_configs_are_distinct():
    fingerprints = set()
    for name in VARIANTS:
        config = variant_config(name)
        fingerprints.add(str(config))
    assert len(fingerprints) == len(VARIANTS)


def test_unknown_variant_rejected():
    with pytest.raises(ValueError, match="unknown variant"):
        variant_config("no-such-pass")


def test_restricted_variant_subset_runs():
    config = OracleConfig(variants=("full", "dce-only"))
    report = run_differential(generate_program(11), config)
    assert report.ok


def test_metrics_wired_through():
    registry = MetricsRegistry()
    run_differential(generate_program(5), OracleConfig(), metrics=registry)
    counters = registry.counters()
    assert counters["fuzz.programs"] == 1
    assert counters["fuzz.trace_records"] > 0
    assert counters["fuzz.frames_constructed"] > 0
    assert any(name.startswith("fuzz.variant.") for name in counters)


def test_divergence_json_roundtrip():
    divergence = Divergence(
        kind="final-state",
        variant="no-cse",
        detail="register EAX mismatch",
        frame_pc=0x401000,
        instance_index=42,
    )
    assert Divergence.from_json(divergence.to_json()) == divergence


def test_report_deterministic_for_same_genome():
    genome = generate_program(17)
    a = run_differential(genome, OracleConfig())
    b = run_differential(genome, OracleConfig())
    assert (
        a.trace_length,
        a.frames_constructed,
        a.instances_committed,
        a.instances_verified,
        a.legit_fires,
    ) == (
        b.trace_length,
        b.frames_constructed,
        b.instances_committed,
        b.instances_verified,
        b.legit_fires,
    )
