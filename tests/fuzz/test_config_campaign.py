"""Config-axis campaigns: seed derivation, digest reproducibility."""

from repro.fuzz.campaign import (
    ConfigCampaignConfig,
    derive_config_seed,
    derive_program_seed,
    run_config_campaign,
)
from repro.metrics import MetricsRegistry


def test_derived_config_seeds_stable_distinct_and_decorrelated():
    # Frozen values: the derivation domain is part of every stored
    # case's provenance.
    assert derive_config_seed(1, 0) == derive_config_seed(1, 0)
    seeds = {derive_config_seed(1, i) for i in range(100)}
    assert len(seeds) == 100
    assert derive_config_seed(1, 0) != derive_config_seed(2, 0)
    # The config axis must not mirror the program axis.
    assert derive_config_seed(1, 0) != derive_program_seed(1, 0)


def test_config_campaign_digest_independent_of_jobs_and_chunking():
    serial = run_config_campaign(
        ConfigCampaignConfig(seed=5, iterations=6, jobs=1)
    )
    parallel = run_config_campaign(
        ConfigCampaignConfig(seed=5, iterations=6, jobs=2, chunk_size=2)
    )
    assert serial.digest == parallel.digest
    assert serial.pairs == parallel.pairs == 6
    assert (serial.simulations, serial.trace_records) == (
        parallel.simulations, parallel.trace_records
    )


def test_config_campaign_digest_changes_with_seed():
    a = run_config_campaign(ConfigCampaignConfig(seed=1, iterations=3))
    b = run_config_campaign(ConfigCampaignConfig(seed=2, iterations=3))
    assert a.digest != b.digest


def test_config_campaign_merges_worker_metrics():
    registry = MetricsRegistry()
    result = run_config_campaign(
        ConfigCampaignConfig(seed=3, iterations=4), metrics=registry
    )
    counters = registry.counters()
    assert counters["fuzz.config.pairs"] == 4
    assert counters["fuzz.config.campaign_pairs"] == 4
    assert counters["fuzz.config.simulations"] == result.simulations
    assert registry.gauge("fuzz.config.pairs_per_sec").value > 0
    assert result.ok


def test_config_campaign_duration_mode_runs_at_least_one_batch():
    result = run_config_campaign(
        ConfigCampaignConfig(seed=4, duration=0.01, jobs=1, chunk_size=2)
    )
    assert result.pairs >= 2
    assert result.seconds > 0
