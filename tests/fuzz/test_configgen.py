"""Config generator: determinism, validity envelope, round-trip, shrink."""

from repro.fuzz.configgen import (
    CONFIG_FIELDS,
    config_delta,
    config_from_json,
    config_to_json,
    generate_config,
    shrink_steps,
)
from repro.timing.config import default_config


def test_generation_is_deterministic():
    assert generate_config(42) == generate_config(42)
    assert generate_config(1) != generate_config(2)


def test_samples_stay_inside_the_validity_envelope():
    for seed in range(60):
        config = generate_config(seed)
        config.validate()  # raises ConfigError if the envelope drifts
        assert config.window_size >= config.fetch_width
        for level in (config.icache, config.dcache, config.l2):
            assert level.num_sets >= 1


def test_seeds_cover_distinct_configs():
    # Not a birthday-paradox guarantee, just a sanity check that the
    # generator actually varies.
    configs = {repr(generate_config(seed)) for seed in range(30)}
    assert len(configs) == 30


def test_json_roundtrip_is_exact():
    for seed in (0, 7, 99):
        config = generate_config(seed)
        payload = config_to_json(config)
        assert payload["version"] == 1
        assert config_from_json(payload) == config


def test_json_covers_every_sampled_field():
    payload = config_to_json(generate_config(3))
    for name in CONFIG_FIELDS:
        assert name in payload


def test_config_delta_empty_for_default():
    assert config_delta(default_config()) == []


def test_config_delta_names_departures_in_field_order():
    config = default_config()
    config.mul_latency = 8
    config.fetch_width = 4
    assert config_delta(config) == ["fetch_width", "mul_latency"]


def test_shrink_steps_restore_one_field_each():
    config = generate_config(11)
    delta = set(config_delta(config))
    assert delta  # a random sample should depart somewhere
    for candidate in shrink_steps(config):
        candidate.validate()
        remaining = set(config_delta(candidate))
        assert len(delta - remaining) == 1  # exactly one field restored
        assert remaining < delta


def test_shrink_steps_empty_at_default():
    assert shrink_steps(default_config()) == []


def test_shrink_steps_skip_cross_field_violations():
    # window_size=4 is valid with fetch_width=4, but restoring
    # fetch_width to the default 8 would leave window < fetch; that
    # candidate must be skipped, leaving only the window restore.
    config = default_config()
    config.fetch_width = 4
    config.window_size = 4
    candidates = shrink_steps(config)
    assert len(candidates) == 1
    assert candidates[0].window_size == default_config().window_size
    assert candidates[0].fetch_width == 4


def test_shrink_steps_restore_cache_levels_as_a_unit():
    config = default_config()
    config.dcache.size_bytes = 1024
    config.dcache.hit_latency = 4
    (candidate,) = shrink_steps(config)
    assert candidate.dcache == default_config().dcache
    assert config_delta(candidate) == []


def test_shrink_candidates_do_not_alias_the_original():
    config = generate_config(5)
    original = config_to_json(config)
    for candidate in shrink_steps(config):
        candidate.icache.size_bytes *= 2  # mutate the copy
    assert config_to_json(config) == original
