"""Campaign reproducibility: the digest must not depend on run shape."""

from repro.fuzz.campaign import (
    CampaignConfig,
    derive_program_seed,
    run_campaign,
)
from repro.metrics import MetricsRegistry


def test_derived_seeds_are_stable_and_distinct():
    # Frozen values: changing the derivation silently would break every
    # stored case's "found" provenance.
    assert derive_program_seed(1, 0) == derive_program_seed(1, 0)
    seeds = {derive_program_seed(1, i) for i in range(100)}
    assert len(seeds) == 100
    assert derive_program_seed(1, 0) != derive_program_seed(2, 0)


def test_campaign_digest_independent_of_jobs_and_chunking():
    serial = run_campaign(CampaignConfig(seed=5, iterations=30, jobs=1))
    parallel = run_campaign(
        CampaignConfig(seed=5, iterations=30, jobs=2, chunk_size=7)
    )
    assert serial.digest == parallel.digest
    assert serial.programs == parallel.programs == 30
    assert (serial.frames, serial.instances, serial.trace_records) == (
        parallel.frames, parallel.instances, parallel.trace_records
    )


def test_campaign_digest_changes_with_seed():
    a = run_campaign(CampaignConfig(seed=1, iterations=5))
    b = run_campaign(CampaignConfig(seed=2, iterations=5))
    assert a.digest != b.digest


def test_campaign_merges_worker_metrics():
    registry = MetricsRegistry()
    result = run_campaign(
        CampaignConfig(seed=3, iterations=8), metrics=registry
    )
    counters = registry.counters()
    assert counters["fuzz.programs"] == 8
    assert counters["fuzz.campaign_programs"] == 8
    assert registry.gauge("fuzz.programs_per_sec").value > 0
    assert result.ok


def test_duration_mode_runs_at_least_one_batch():
    result = run_campaign(
        CampaignConfig(seed=4, duration=0.01, jobs=1, chunk_size=2)
    )
    assert result.programs >= 2
    assert result.seconds > 0
