"""Generator determinism, rendering, and the randomness audit."""

import json
import pathlib

from repro.fuzz.generator import (
    DATA_BASE,
    RESULT_DISP,
    GeneratorConfig,
    generate_program,
    program_from_json,
    program_to_json,
    render_program,
)
from repro.x86.emulator import Emulator


def test_same_seed_same_genome():
    a = generate_program(1234)
    b = generate_program(1234)
    assert program_to_json(a) == program_to_json(b)


def test_different_seeds_differ():
    assert program_to_json(generate_program(1)) != program_to_json(
        generate_program(2)
    )


def test_genome_json_roundtrip():
    genome = generate_program(99)
    payload = json.loads(json.dumps(program_to_json(genome)))
    again = program_from_json(payload)
    assert program_to_json(again) == program_to_json(genome)


def test_rendering_is_deterministic():
    genome = generate_program(7)
    p1 = render_program(genome)
    p2 = render_program(genome)
    assert {pc: i.mnemonic for pc, i in p1.instructions.items()} == {
        pc: i.mnemonic for pc, i in p2.instructions.items()
    }
    assert p1.data == p2.data


def test_generated_programs_halt():
    for seed in range(50):
        genome = generate_program(seed)
        emulator = Emulator(render_program(genome))
        emulator.run(max_instructions=50_000)
        assert emulator.halted, f"seed {seed} did not halt"


def test_epilogue_spills_are_disjoint_from_body_accesses():
    """RESULT_DISP must clear the largest body access so the final-state
    check always sees the scratch registers."""
    config = GeneratorConfig()
    assert RESULT_DISP >= 64  # max disp 60 + max size 4
    genome = generate_program(3, config)
    emulator = Emulator(render_program(genome))
    records = emulator.run(max_instructions=50_000)
    stored = {
        store.address for rec in records for store in rec.stores
    }
    # All four scratch registers were spilled to the result area.
    for offset in range(4):
        assert DATA_BASE + RESULT_DISP + 4 * offset in stored


def test_randomness_audit_no_module_level_randomness():
    """Every random draw in repro.fuzz flows from an explicit
    ``random.Random(seed)`` instance — the whole campaign must be
    reproducible from its seed alone."""
    package = pathlib.Path("src/repro/fuzz")
    offenders = []
    for path in sorted(package.glob("*.py")):
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            stripped = line.split("#")[0]
            if "random." in stripped and "random.Random" not in stripped:
                offenders.append(f"{path}:{lineno}: {line.strip()}")
            for banned in ("time.time(", "os.urandom", "uuid.", "secrets."):
                if banned in stripped:
                    offenders.append(f"{path}:{lineno}: {line.strip()}")
    assert not offenders, "\n".join(offenders)
