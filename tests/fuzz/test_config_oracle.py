"""Config-differential oracle: the A/B grid and its helper mechanics.

``test_ab_grid_over_random_configs`` is the acceptance gate for the
config axis: ≥20 seeded random configurations, each driving a generated
program through every front end under both scheduling modes, must be
cycle-identical (plus retire-conserving and widening-monotone) with
zero divergences.
"""

import pytest

import repro.fuzz.config_oracle as oracle_mod
from repro.fuzz.config_oracle import (
    ConfigDivergence,
    ConfigOracleConfig,
    run_config_differential,
    sim_result_diff,
    widen_config,
)
from repro.fuzz.configgen import generate_config
from repro.fuzz.generator import generate_program
from repro.metrics import MetricsRegistry
from repro.timing.config import default_config
from repro.timing.pipeline import SimResult


def test_ab_grid_over_random_configs():
    """Acceptance: template == reference over >= 20 random configs."""
    registry = MetricsRegistry()
    divergent = []
    for seed in range(20):
        genome = generate_program(5000 + seed)
        processor = generate_config(6000 + seed)
        report = run_config_differential(
            genome, processor, metrics=registry
        )
        # 3 front ends x 2 scheduling modes + 1 widened re-sim.
        assert report.simulations == 7
        assert report.trace_length > 0
        if not report.ok:
            divergent.append((seed, report.divergences))
    assert divergent == []
    assert registry.counters()["fuzz.config.pairs"] == 20
    assert "fuzz.config.divergences" not in registry.counters()


def test_default_config_pair_is_clean():
    report = run_config_differential(generate_program(1), default_config())
    assert report.ok
    assert report.config_fields == []


def test_sim_result_diff_names_the_field():
    a = SimResult()
    b = SimResult()
    assert sim_result_diff(a, b) == "equal"
    a.cycles = 100
    b.cycles = 90
    assert "cycles: 100 != 90" in sim_result_diff(a, b)


def test_widen_config_doubles_capacity_axes_only():
    config = generate_config(9)
    wide = widen_config(config)
    assert wide.simple_alus == config.simple_alus * 2
    assert wide.load_store_units == config.load_store_units * 2
    assert wide.retire_width == config.retire_width * 2
    assert wide.window_size == config.window_size * 2
    # Fetch grouping axes are untouched: changing them changes *which*
    # blocks fetch, which legitimately perturbs timing.
    assert wide.fetch_width == config.fetch_width
    assert wide.x86_decode_width == config.x86_decode_width
    assert wide.icache == config.icache


def test_divergence_json_roundtrip():
    d = ConfigDivergence(kind="schedule-ab", frontend="RP", detail="cycles")
    assert ConfigDivergence.from_json(d.to_json()) == d


def test_sim_crash_is_a_finding_not_an_exception(monkeypatch):
    def exploding_run(trace, experiment, metrics=None, scheduling="template"):
        raise RuntimeError("synthetic meltdown")

    monkeypatch.setattr(oracle_mod, "run_experiment", exploding_run)
    report = run_config_differential(
        generate_program(2), default_config(), ConfigOracleConfig()
    )
    assert not report.ok
    assert {d.kind for d in report.divergences} == {"sim-crash"}
    assert any("synthetic meltdown" in d.detail for d in report.divergences)


def test_widening_check_can_be_disabled():
    config = ConfigOracleConfig(check_widening=False)
    report = run_config_differential(
        generate_program(3), generate_config(3), config
    )
    assert report.simulations == 6  # no widened re-sim
    assert report.ok


def test_non_halting_program_raises():
    genome = generate_program(4)
    with pytest.raises(ValueError, match="did not halt"):
        run_config_differential(
            genome,
            default_config(),
            ConfigOracleConfig(max_instructions=5),
        )
