"""Corpus round-trips through the content-addressed artifact store."""

import pytest

from repro.artifacts.store import ArtifactStore
from repro.fuzz.corpus import CorpusError, FuzzCorpus
from repro.fuzz.generator import generate_program, program_to_json
from repro.fuzz.oracle import Divergence


def _divergence(kind="final-state"):
    return Divergence(kind=kind, variant="full", detail="x", frame_pc=0x401000)


def test_save_and_load_roundtrip(tmp_path):
    corpus = FuzzCorpus(ArtifactStore(tmp_path))
    genome = generate_program(42)
    case_id = corpus.save_case(
        genome, [_divergence()], found={"campaign_seed": 1, "index": 9}
    )
    assert len(case_id) == 64

    case = corpus.load_case(case_id)
    assert case["program"] == program_to_json(genome)
    assert case["found"] == {"campaign_seed": 1, "index": 9}
    assert case["divergences"][0]["kind"] == "final-state"

    again = corpus.load_genome(case_id)
    assert program_to_json(again) == program_to_json(genome)


def test_same_genome_dedupes(tmp_path):
    corpus = FuzzCorpus(ArtifactStore(tmp_path))
    genome = generate_program(7)
    id_a = corpus.save_case(genome, [_divergence()])
    id_b = corpus.save_case(genome.copy(), [_divergence("verifier")])
    assert id_a == id_b
    assert len(corpus.list_cases()) == 1


def test_prefix_resolution(tmp_path):
    corpus = FuzzCorpus(ArtifactStore(tmp_path))
    genome = generate_program(13)
    case_id = corpus.save_case(genome, [_divergence()])
    assert corpus.resolve(case_id[:8]) == case_id
    loaded = corpus.load_case(case_id[:8])
    assert loaded["program"] == program_to_json(genome)


def test_unknown_prefix_rejected(tmp_path):
    corpus = FuzzCorpus(ArtifactStore(tmp_path))
    with pytest.raises(CorpusError, match="no fuzz case"):
        corpus.resolve("deadbeef")


def test_ambiguous_prefix_rejected(tmp_path):
    corpus = FuzzCorpus(ArtifactStore(tmp_path))
    ids = set()
    for seed in range(40):
        ids.add(corpus.save_case(generate_program(seed), [_divergence()]))
    # Find two ids sharing a first hex digit (40 cases over 16 digits).
    by_first = {}
    for case_id in ids:
        by_first.setdefault(case_id[0], []).append(case_id)
    prefix = next(k for k, v in by_first.items() if len(v) > 1)
    with pytest.raises(CorpusError, match="ambiguous"):
        corpus.resolve(prefix)


def test_list_cases_labels(tmp_path):
    corpus = FuzzCorpus(ArtifactStore(tmp_path))
    genome = generate_program(5)
    corpus.save_case(genome, [_divergence("assert-fired")])
    (case,) = corpus.list_cases()
    assert "assert-fired" in case["label"]
    assert f"seed={genome.seed}" in case["label"]


# -------------------------------------------------- (program, config) cases


def _config_divergence():
    from repro.fuzz.config_oracle import ConfigDivergence

    return ConfigDivergence(kind="schedule-ab", frontend="RP", detail="x")


def test_config_case_roundtrip(tmp_path):
    from repro.fuzz.configgen import config_to_json, generate_config

    corpus = FuzzCorpus(ArtifactStore(tmp_path))
    genome = generate_program(8)
    config_json = config_to_json(generate_config(8))
    case_id = corpus.save_config_case(
        genome,
        config_json,
        [_config_divergence()],
        found={"campaign_seed": 1, "index": 3, "config_seed": 77},
    )
    case = corpus.load_case(case_id)
    assert case["format"] == 2
    assert case["program"] == program_to_json(genome)
    assert case["config"] == config_json
    assert case["found"]["config_seed"] == 77
    assert case["divergences"][0]["kind"] == "schedule-ab"
    assert "config" in next(
        c["label"] for c in corpus.list_cases() if c["id"] == case_id
    )


def test_same_genome_different_configs_are_distinct_cases(tmp_path):
    from repro.fuzz.configgen import config_to_json, generate_config

    corpus = FuzzCorpus(ArtifactStore(tmp_path))
    genome = generate_program(9)
    id_a = corpus.save_config_case(
        genome, config_to_json(generate_config(1)), [_config_divergence()]
    )
    id_b = corpus.save_config_case(
        genome, config_to_json(generate_config(2)), [_config_divergence()]
    )
    assert id_a != id_b
    # ... and both are distinct from the program-only case of the same
    # genome.
    id_c = corpus.save_case(genome, [_divergence()])
    assert len({id_a, id_b, id_c}) == 3
    assert len(corpus.list_cases()) == 3


def test_unknown_format_still_rejected(tmp_path):
    import json as json_mod

    from repro.artifacts.store import KIND_FUZZ, content_key

    store = ArtifactStore(tmp_path)
    case_id = content_key("fuzz", {"bogus": True})
    store.put_bytes(
        KIND_FUZZ, case_id, json_mod.dumps({"format": 99}).encode()
    )
    corpus = FuzzCorpus(store)
    with pytest.raises(CorpusError, match="format"):
        corpus.load_case(case_id)
