"""Delta-debugging shrinker mechanics (against a synthetic oracle).

The real oracle is deterministic and (after this PR's fixes) clean on
generated programs, so these tests substitute a predicate oracle: a
genome "diverges" iff it still carries marker ops.  That isolates the
ddmin machinery — chunk dropping, restarts, iteration halving, field
simplification, attempt bounding — from optimizer behavior.
"""

import pytest

import repro.fuzz.shrink as shrink_mod
from repro.fuzz.config_oracle import ConfigDivergence, ConfigPairReport
from repro.fuzz.configgen import config_delta
from repro.fuzz.generator import FuzzProgram
from repro.fuzz.oracle import Divergence, ProgramReport
from repro.fuzz.shrink import shrink_config_case, shrink_program
from repro.timing.config import default_config


def _genome(ops):
    return FuzzProgram(
        seed=1,
        iterations=16,
        alias_delta=4,
        reg_init={"eax": 0xDEAD, "ebx": 5, "edx": 0, "ebp": 9},
        data=[7] * 8,
        ops=ops,
    )


def _marker_oracle(monkeypatch, kind="final-state"):
    """Replace the differential oracle: diverges iff a marker op remains."""
    calls = {"count": 0}

    def fake_run(genome, config=None, metrics=None):
        calls["count"] += 1
        report = ProgramReport(seed=genome.seed)
        if any(op.get("marker") for op in genome.ops):
            report.divergences.append(
                Divergence(kind=kind, variant="full", detail="synthetic")
            )
        return report

    monkeypatch.setattr(shrink_mod, "run_differential", fake_run)
    return calls


def test_shrinks_to_the_single_marker_op(monkeypatch):
    _marker_oracle(monkeypatch)
    filler = [{"kind": "cdq"} for _ in range(15)]
    genome = _genome(filler[:7] + [{"kind": "cdq", "marker": True}] + filler[7:])
    result = shrink_program(genome)
    assert result.reduced
    assert result.final_ops == 1
    assert result.genome.ops[0].get("marker")
    # Iterations halved down to the floor; fields zeroed.
    assert result.genome.iterations == 2
    assert result.genome.alias_delta == 0
    assert all(v == 0 for v in result.genome.reg_init.values())
    assert all(w == 0 for w in result.genome.data)


def test_shrink_preserves_divergence_kind(monkeypatch):
    """A candidate that diverges with a *different* kind is rejected."""
    calls = {"count": 0}

    def fake_run(genome, config=None, metrics=None):
        calls["count"] += 1
        report = ProgramReport(seed=genome.seed)
        if any(op.get("marker") for op in genome.ops):
            report.divergences.append(
                Divergence(kind="verifier", variant="full", detail="real")
            )
        else:
            # Everything else "diverges" some unrelated way.
            report.divergences.append(
                Divergence(kind="optimizer-crash", variant="full", detail="noise")
            )
        return report

    monkeypatch.setattr(shrink_mod, "run_differential", fake_run)
    genome = _genome(
        [{"kind": "cdq", "marker": True}] + [{"kind": "cdq"} for _ in range(5)]
    )
    result = shrink_program(genome)
    assert any(op.get("marker") for op in result.genome.ops)


def test_attempt_budget_is_respected(monkeypatch):
    calls = _marker_oracle(monkeypatch)
    genome = _genome(
        [{"kind": "cdq", "marker": True}] + [{"kind": "cdq"} for _ in range(30)]
    )
    result = shrink_program(genome, max_attempts=10)
    # One call classifies the original; at most 10 more judge candidates.
    assert calls["count"] <= 11
    assert result.attempts <= 10


def test_non_divergent_genome_is_rejected(monkeypatch):
    _marker_oracle(monkeypatch)
    genome = _genome([{"kind": "cdq"}])  # no marker: never diverges
    with pytest.raises(ValueError, match="non-divergent"):
        shrink_program(genome)


def test_unrunnable_candidates_count_as_non_divergent(monkeypatch):
    """Shrinker edits can produce genomes that crash the oracle; those
    must be skipped, not crash the shrink."""

    def fake_run(genome, config=None, metrics=None):
        if len(genome.ops) < 2:
            raise ValueError("synthetic: did not halt")
        report = ProgramReport(seed=genome.seed)
        if any(op.get("marker") for op in genome.ops):
            report.divergences.append(
                Divergence(kind="final-state", variant="full", detail="d")
            )
        return report

    monkeypatch.setattr(shrink_mod, "run_differential", fake_run)
    genome = _genome(
        [{"kind": "cdq", "marker": True}] + [{"kind": "cdq"} for _ in range(7)]
    )
    result = shrink_program(genome)
    # Cannot go below 2 ops (the oracle "crashes" there), but the marker
    # plus one filler survive.
    assert result.final_ops == 2
    assert any(op.get("marker") for op in result.genome.ops)


# ----------------------------------------------------------- config axis


def _config_marker_oracle(monkeypatch):
    """Synthetic config oracle: diverges iff a marker op remains AND the
    config still carries the guilty memory_latency=400 knob."""
    calls = {"count": 0}

    def fake_run(genome, processor, config=None, metrics=None):
        calls["count"] += 1
        report = ConfigPairReport(program_seed=genome.seed)
        if (
            any(op.get("marker") for op in genome.ops)
            and processor.memory_latency == 400
        ):
            report.divergences.append(
                ConfigDivergence(
                    kind="schedule-ab", frontend="IC", detail="synthetic"
                )
            )
        return report

    monkeypatch.setattr(shrink_mod, "run_config_differential", fake_run)
    return calls


def test_config_shrink_isolates_the_guilty_knob_and_op(monkeypatch):
    _config_marker_oracle(monkeypatch)
    processor = default_config()
    processor.memory_latency = 400  # guilty
    processor.mul_latency = 8  # irrelevant
    processor.fetch_width = 4  # irrelevant
    genome = _genome(
        [{"kind": "cdq"} for _ in range(5)]
        + [{"kind": "cdq", "marker": True}]
        + [{"kind": "cdq"} for _ in range(5)]
    )
    result = shrink_config_case(genome, processor)
    assert result.final_ops == 1
    assert result.genome.ops[0].get("marker")
    assert config_delta(result.config) == ["memory_latency"]
    assert result.original_fields == 3
    assert result.final_fields == 1
    assert result.reductions > 0


def test_config_shrink_rejects_clean_pair(monkeypatch):
    _config_marker_oracle(monkeypatch)
    genome = _genome([{"kind": "cdq"}])  # no marker
    with pytest.raises(ValueError, match="non-divergent"):
        shrink_config_case(genome, default_config())


def test_config_shrink_respects_the_attempt_budget(monkeypatch):
    calls = _config_marker_oracle(monkeypatch)
    processor = default_config()
    processor.memory_latency = 400
    processor.mul_latency = 8
    genome = _genome(
        [{"kind": "cdq", "marker": True}]
        + [{"kind": "cdq"} for _ in range(30)]
    )
    result = shrink_config_case(genome, processor, max_attempts=10)
    assert result.attempts <= 10
    # One classifying call plus at most max_attempts candidate calls.
    assert calls["count"] <= 11
