"""Parallel runner: serial/parallel equality, caching, harness integration."""

from __future__ import annotations

import pytest

from repro.artifacts.runner import MatrixTask, MatrixTaskError, run_matrix
from repro.artifacts.store import ArtifactStore
from repro.harness import report
from repro.harness.experiment import CONFIGS
from repro.harness.figures import ResultMatrix, run_fig6
from repro.metrics import MetricsRegistry

#: Small, fast workloads — the matrix shape is what's under test.
WORKLOADS = ["vortex", "power"]
TASKS = [
    MatrixTask(workload, CONFIGS[config])
    for workload in WORKLOADS
    for config in ("IC", "RP")
]


def _fingerprint(result):
    return (
        result.workload,
        result.config_name,
        result.ipc_x86,
        result.sim.cycles,
        dict(result.sim.bins),
    )


def test_serial_run_matrix_order_and_results():
    run = run_matrix(TASKS, jobs=1)
    assert [(t.workload, t.config_name) for t in run.telemetry] == [
        (task.workload, task.config.name) for task in TASKS
    ]
    assert all(t.simulated for t in run.telemetry)
    assert all(not t.result_cache_hit for t in run.telemetry)
    assert run.jobs == 1


def test_parallel_equals_serial():
    serial = run_matrix(TASKS, jobs=1)
    parallel = run_matrix(TASKS, jobs=2)
    assert [_fingerprint(r) for r in parallel.results] == [
        _fingerprint(r) for r in serial.results
    ]
    # Deterministic ordering: results align with input tasks.
    for task, result in zip(parallel.tasks, parallel.results):
        assert result.workload == task.workload
        assert result.config_name == task.config.name


def test_warm_store_serves_everything(tmp_path):
    store = ArtifactStore(tmp_path)
    cold = run_matrix(TASKS, jobs=1, store=store)
    warm = run_matrix(TASKS, jobs=1, store=store)
    assert all(t.result_cache_hit for t in warm.telemetry)
    assert not any(t.emulated for t in warm.telemetry)
    assert not any(t.simulated for t in warm.telemetry)
    assert [_fingerprint(r) for r in warm.results] == [
        _fingerprint(r) for r in cold.results
    ]


def test_parallel_warm_store(tmp_path):
    store = ArtifactStore(tmp_path)
    cold = run_matrix(TASKS, jobs=2, store=store)
    warm = run_matrix(TASKS, jobs=2, store=store)
    assert all(t.result_cache_hit for t in warm.telemetry)
    assert [_fingerprint(r) for r in warm.results] == [
        _fingerprint(r) for r in cold.results
    ]


def test_result_matrix_warm_run_zero_emulation(tmp_path):
    store = ArtifactStore(tmp_path)
    cold_matrix = ResultMatrix(store=store)
    cold_table = report.format_fig6(run_fig6(cold_matrix, workloads=WORKLOADS))

    warm_matrix = ResultMatrix(store=ArtifactStore(tmp_path))
    warm_table = report.format_fig6(run_fig6(warm_matrix, workloads=WORKLOADS))

    assert warm_table == cold_table
    assert warm_matrix.traces_emulated == 0
    assert warm_matrix.results_computed == 0
    assert warm_matrix.results_cached == len(WORKLOADS) * 4
    assert "cached" in warm_matrix.summary()


def test_result_matrix_no_store_matches_store(tmp_path):
    plain = report.format_fig6(run_fig6(ResultMatrix(), workloads=["power"]))
    stored = report.format_fig6(
        run_fig6(ResultMatrix(store=ArtifactStore(tmp_path)), workloads=["power"])
    )
    assert plain == stored


def test_matrix_ensure_deduplicates():
    matrix = ResultMatrix()
    pairs = [("power", CONFIGS["IC"])] * 3
    matrix.ensure(pairs)
    assert len(matrix.telemetry) == 1


def test_jobs_clamped_to_task_count():
    run = run_matrix(TASKS[:1], jobs=8)
    assert run.jobs == 1  # one task: runs serially in-process


# ------------------------------------------------------- error handling

#: A task whose worker raises (unknown workload -> KeyError inside the
#: cell computation, not in pool infrastructure).
BAD_TASK = MatrixTask("no-such-workload", CONFIGS["IC"])


@pytest.mark.parametrize("jobs", [1, 2])
def test_task_error_raises_matrix_task_error(jobs):
    """A failing cell must surface its own error, labelled, immediately —
    never be misread as a broken pool and re-run serially."""
    with pytest.raises(MatrixTaskError) as excinfo:
        run_matrix([TASKS[0], BAD_TASK], jobs=jobs)
    error = excinfo.value
    assert error.workload == "no-such-workload"
    assert error.config_name == "IC"
    assert "no-such-workload/IC" in str(error)
    assert isinstance(error.__cause__, KeyError)  # original chained


def test_task_error_does_not_count_pool_fallback():
    registry = MetricsRegistry()
    with pytest.raises(MatrixTaskError):
        run_matrix([BAD_TASK], jobs=2, metrics=registry)
    assert "runner.pool_fallbacks" not in registry.counters()


# ------------------------------------------------- cross-worker metrics


def _deterministic(counters: dict) -> dict:
    """Counter totals that must not depend on worker/process scheduling.

    Emulation and store counters legitimately differ (each pool worker
    keeps its own trace memo and store handle); everything a simulation
    itself measures must not.
    """
    return {
        name: value
        for name, value in counters.items()
        if not name.startswith(("emulator.", "store."))
    }


def test_parallel_metrics_merge_equals_serial():
    serial_reg = MetricsRegistry()
    parallel_reg = MetricsRegistry()
    run_matrix(TASKS, jobs=1, metrics=serial_reg)
    run_matrix(TASKS, jobs=2, metrics=parallel_reg)
    serial = _deterministic(serial_reg.counters())
    parallel = _deterministic(parallel_reg.counters())
    assert serial == parallel
    assert serial["sim.runs"] == len(TASKS)
    assert serial["sim.cycles"] > 0


def test_fig6_parallel_metrics_merge_equals_serial():
    """The satellite acceptance case: a fig6-shaped matrix aggregates
    identical deterministic counter totals under jobs=1 and jobs=2."""
    tasks = [
        MatrixTask(workload, CONFIGS[config])
        for workload in WORKLOADS
        for config in ("IC", "TC", "RP", "RPO")
    ]
    serial_reg = MetricsRegistry()
    parallel_reg = MetricsRegistry()
    run_matrix(tasks, jobs=1, metrics=serial_reg)
    run_matrix(tasks, jobs=2, metrics=parallel_reg)
    assert _deterministic(serial_reg.counters()) == _deterministic(
        parallel_reg.counters()
    )
    # The optimizer pass counters flowed through worker snapshots.
    assert serial_reg.counters()["optimizer.pass.dce.changes"] > 0


def test_store_telemetry_published_once(tmp_path):
    registry = MetricsRegistry()
    store = ArtifactStore(tmp_path)
    run_matrix(TASKS, jobs=1, store=store, metrics=registry)
    cold_writes = registry.counters()["store.writes"]
    assert cold_writes > 0

    run_matrix(TASKS, jobs=1, store=store, metrics=registry)
    counters = registry.counters()
    assert counters["store.writes"] == cold_writes  # delta-published
    assert counters["store.hits"] >= len(TASKS)
