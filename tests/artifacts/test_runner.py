"""Parallel runner: serial/parallel equality, caching, harness integration."""

from __future__ import annotations

import pytest

from repro.artifacts.runner import MatrixTask, run_matrix
from repro.artifacts.store import ArtifactStore
from repro.harness import report
from repro.harness.experiment import CONFIGS
from repro.harness.figures import ResultMatrix, run_fig6

#: Small, fast workloads — the matrix shape is what's under test.
WORKLOADS = ["vortex", "power"]
TASKS = [
    MatrixTask(workload, CONFIGS[config])
    for workload in WORKLOADS
    for config in ("IC", "RP")
]


def _fingerprint(result):
    return (
        result.workload,
        result.config_name,
        result.ipc_x86,
        result.sim.cycles,
        dict(result.sim.bins),
    )


def test_serial_run_matrix_order_and_results():
    run = run_matrix(TASKS, jobs=1)
    assert [(t.workload, t.config_name) for t in run.telemetry] == [
        (task.workload, task.config.name) for task in TASKS
    ]
    assert all(t.simulated for t in run.telemetry)
    assert all(not t.result_cache_hit for t in run.telemetry)
    assert run.jobs == 1


def test_parallel_equals_serial():
    serial = run_matrix(TASKS, jobs=1)
    parallel = run_matrix(TASKS, jobs=2)
    assert [_fingerprint(r) for r in parallel.results] == [
        _fingerprint(r) for r in serial.results
    ]
    # Deterministic ordering: results align with input tasks.
    for task, result in zip(parallel.tasks, parallel.results):
        assert result.workload == task.workload
        assert result.config_name == task.config.name


def test_warm_store_serves_everything(tmp_path):
    store = ArtifactStore(tmp_path)
    cold = run_matrix(TASKS, jobs=1, store=store)
    warm = run_matrix(TASKS, jobs=1, store=store)
    assert all(t.result_cache_hit for t in warm.telemetry)
    assert not any(t.emulated for t in warm.telemetry)
    assert not any(t.simulated for t in warm.telemetry)
    assert [_fingerprint(r) for r in warm.results] == [
        _fingerprint(r) for r in cold.results
    ]


def test_parallel_warm_store(tmp_path):
    store = ArtifactStore(tmp_path)
    cold = run_matrix(TASKS, jobs=2, store=store)
    warm = run_matrix(TASKS, jobs=2, store=store)
    assert all(t.result_cache_hit for t in warm.telemetry)
    assert [_fingerprint(r) for r in warm.results] == [
        _fingerprint(r) for r in cold.results
    ]


def test_result_matrix_warm_run_zero_emulation(tmp_path):
    store = ArtifactStore(tmp_path)
    cold_matrix = ResultMatrix(store=store)
    cold_table = report.format_fig6(run_fig6(cold_matrix, workloads=WORKLOADS))

    warm_matrix = ResultMatrix(store=ArtifactStore(tmp_path))
    warm_table = report.format_fig6(run_fig6(warm_matrix, workloads=WORKLOADS))

    assert warm_table == cold_table
    assert warm_matrix.traces_emulated == 0
    assert warm_matrix.results_computed == 0
    assert warm_matrix.results_cached == len(WORKLOADS) * 4
    assert "cached" in warm_matrix.summary()


def test_result_matrix_no_store_matches_store(tmp_path):
    plain = report.format_fig6(run_fig6(ResultMatrix(), workloads=["power"]))
    stored = report.format_fig6(
        run_fig6(ResultMatrix(store=ArtifactStore(tmp_path)), workloads=["power"])
    )
    assert plain == stored


def test_matrix_ensure_deduplicates():
    matrix = ResultMatrix()
    pairs = [("power", CONFIGS["IC"])] * 3
    matrix.ensure(pairs)
    assert len(matrix.telemetry) == 1


def test_jobs_clamped_to_task_count():
    run = run_matrix(TASKS[:1], jobs=8)
    assert run.jobs == 1  # one task: runs serially in-process
