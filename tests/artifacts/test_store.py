"""Artifact store: keying, atomicity, corruption handling, eviction."""

from __future__ import annotations

import os
import struct
import time
from dataclasses import replace

import pytest

from repro.artifacts import store as store_mod
from repro.artifacts.runner import result_key, trace_key
from repro.artifacts.store import ArtifactStore, content_key
from repro.harness.experiment import CONFIGS
from repro.workloads import build_workload


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "cache")


@pytest.fixture(scope="module")
def vortex_trace():
    return build_workload("vortex")


# ------------------------------------------------------------------ keying


def test_content_key_is_deterministic():
    a = content_key("trace", {"x": 1, "y": [1, 2]})
    b = content_key("trace", {"y": [1, 2], "x": 1})
    assert a == b
    assert len(a) == 64


def test_key_changes_with_kind_and_material():
    material = {"x": 1}
    assert content_key("trace", material) != content_key("result", material)
    assert content_key("trace", material) != content_key("trace", {"x": 2})


def test_trace_key_varies_with_seed_and_scale():
    base = trace_key("bzip2")
    assert trace_key("bzip2", seed=2) != base
    assert trace_key("bzip2", scale=3) != base
    assert trace_key("bzip2") == base  # stable across calls


def test_result_key_config_change_is_a_miss():
    rpo = CONFIGS["RPO"]
    base = result_key("bzip2", rpo)
    assert result_key("bzip2", CONFIGS["RP"]) != base
    # Any nested config field participates in the key.
    tweaked = rpo.with_optimizer(replace(rpo.optimizer, enable_cse=False))
    assert result_key("bzip2", tweaked) != base
    assert result_key("bzip2", rpo) == base


# ------------------------------------------------------------- round trips


def test_bytes_roundtrip(store):
    key = content_key("result", {"k": 1})
    assert store.get_bytes("result", key) is None
    store.put_bytes("result", key, b"payload", label="demo")
    assert store.get_bytes("result", key) == b"payload"
    assert store.telemetry.hits == 1 and store.telemetry.misses == 1


def test_trace_roundtrip(store, vortex_trace):
    key = trace_key("vortex")
    store.put_trace(key, vortex_trace)
    loaded = store.get_trace(key)
    assert loaded is not None
    assert loaded.records == vortex_trace.records


def test_result_roundtrip(store):
    key = content_key("result", {"cell": "demo"})
    store.put_result(key, {"ipc": 1.25}, label="demo")
    assert store.get_result(key) == {"ipc": 1.25}


def test_no_temp_files_left_behind(store):
    key = content_key("result", {"k": "t"})
    store.put_bytes("result", key, b"x" * 1024)
    leftovers = [
        p for p in store.root.rglob("*") if p.is_file() and p.name.startswith(".tmp-")
    ]
    assert leftovers == []


# ------------------------------------------------------------- corruption


def _only_entry_path(store):
    entries = list(store.entries())
    assert len(entries) == 1
    return entries[0].path


def test_corrupt_entry_quarantined_and_recomputed(store):
    key = content_key("result", {"k": "c"})
    store.put_result(key, [1, 2, 3])
    path = _only_entry_path(store)
    data = bytearray(path.read_bytes())
    data[-1] ^= 0xFF  # flip a payload bit
    path.write_bytes(bytes(data))

    assert store.get_result(key) is None  # miss, not an exception
    assert not path.exists()
    assert store.telemetry.corrupt == 1
    assert len(list(store.quarantine_dir.glob("*.art"))) == 1

    store.put_result(key, [1, 2, 3])  # recompute path works
    assert store.get_result(key) == [1, 2, 3]


def test_truncated_entry_quarantined(store):
    key = content_key("result", {"k": "t"})
    store.put_result(key, "hello")
    path = _only_entry_path(store)
    path.write_bytes(path.read_bytes()[:10])
    assert store.get_result(key) is None
    assert store.telemetry.corrupt == 1


def test_version_mismatch_is_a_miss_not_an_error(store):
    key = content_key("result", {"k": "v"})
    store.put_result(key, "payload")
    path = _only_entry_path(store)
    data = bytearray(path.read_bytes())
    # Patch the envelope version field (after the 4-byte magic).
    struct.pack_into("<H", data, 4, store_mod.FORMAT_VERSION + 1)
    path.write_bytes(bytes(data))

    assert store.get_result(key) is None
    assert store.telemetry.stale == 1
    assert store.telemetry.corrupt == 0
    assert not path.exists()  # stale entry dropped, not quarantined


def test_undecodable_pickle_is_a_miss(store):
    key = content_key("result", {"k": "p"})
    store.put_bytes("result", key, b"not a pickle")
    assert store.get_result(key) is None


def test_stale_codec_version_trace_is_a_miss(store, monkeypatch):
    from repro.artifacts import codec

    key = trace_key("vortex", seed=99)
    # Entry written by a "future" codec: envelope is fine, codec version isn't.
    monkeypatch.setattr(codec, "CODEC_VERSION", codec.CODEC_VERSION + 1)
    trace = build_workload("power")
    store.put_trace(key, trace)
    monkeypatch.undo()

    assert store.get_trace(key) is None  # TraceVersionError ⇒ miss
    assert store.telemetry.stale == 1


# --------------------------------------------------------------- eviction


def test_gc_evicts_lru_to_budget(store):
    keys = [content_key("result", {"i": i}) for i in range(4)]
    now = time.time()
    for i, key in enumerate(keys):
        store.put_result(key, b"x" * 4096, label=f"entry{i}")
        path = store._entry_path("result", key)
        os.utime(path, (now - 1000 + i, now - 1000 + i))  # older = smaller i

    sizes = [e.size_bytes for e in store.entries()]
    budget = sum(sizes) - 1  # force at least one eviction
    removed, removed_bytes = store.gc(budget)
    assert removed >= 1 and removed_bytes > 0
    # Oldest entries go first; the newest survives.
    assert store.get_result(keys[-1]) is not None
    assert store.get_result(keys[0]) is None


def test_plan_gc_previews_without_deleting(store):
    keys = [content_key("result", {"i": i}) for i in range(4)]
    now = time.time()
    for i, key in enumerate(keys):
        store.put_result(key, b"x" * 4096, label=f"entry{i}")
        path = store._entry_path("result", key)
        os.utime(path, (now - 1000 + i, now - 1000 + i))

    total = sum(e.size_bytes for e in store.entries())
    budget = total - 1
    plan = store.plan_gc(budget)
    assert len(plan) >= 1
    # Plan is LRU order and nothing was touched on disk.
    assert plan[0].label == "entry0"
    assert store.stats()["entries"] == 4
    # Executing gc with the same budget evicts exactly the planned set.
    removed, removed_bytes = store.gc(budget)
    assert removed == len(plan)
    assert removed_bytes == sum(e.size_bytes for e in plan)


def test_plan_gc_empty_when_under_budget(store):
    store.put_result(content_key("result", {"i": 0}), b"x" * 128)
    assert store.plan_gc(10 * 1024 * 1024) == []


def test_budget_applies_on_write(tmp_path):
    store = ArtifactStore(tmp_path, budget_bytes=1)  # everything over budget
    for i in range(3):
        store.put_result(content_key("result", {"i": i}), b"y" * 2048)
    assert store.stats()["entries"] <= 1


def test_clear_removes_everything(store):
    for i in range(3):
        store.put_result(content_key("result", {"i": i}), i)
    assert store.clear() == 3
    assert store.stats()["entries"] == 0


# ------------------------------------------------------------------- misc


def test_env_cache_dir_override(tmp_path, monkeypatch):
    monkeypatch.setenv(store_mod.ENV_CACHE_DIR, str(tmp_path / "envcache"))
    assert ArtifactStore().root == tmp_path / "envcache"


def test_stats_shape(store, vortex_trace):
    store.put_trace(trace_key("vortex"), vortex_trace)
    stats = store.stats()
    assert stats["entries"] == 1
    assert stats["kinds"]["trace"]["entries"] == 1
    assert stats["bytes"] > 0


# --------------------------------------------------- discard/telemetry


def test_discard_failure_is_counted_and_logged(store, caplog):
    """A deletion failure must be visible: warning + counter, not pass."""
    key = content_key("result", {"victim": 1})
    path = store.put_bytes("result", key, b"payload")

    real_unlink = store_mod.Path.unlink

    def failing_unlink(self, missing_ok=False):
        if self == path:
            raise OSError("device busy")
        return real_unlink(self, missing_ok=missing_ok)

    import logging
    from unittest import mock

    with mock.patch.object(store_mod.Path, "unlink", failing_unlink):
        with caplog.at_level(logging.WARNING, logger="repro.artifacts"):
            store._discard(path)
    assert store.telemetry.discard_failed == 1
    assert any("could not discard" in r.message for r in caplog.records)


def test_discard_missing_file_is_not_a_failure(store):
    store._discard(store.root / "result" / "aa" / "gone.art")
    assert store.telemetry.discard_failed == 0


def test_stale_result_never_drives_hits_negative(store):
    """The hit-to-miss telemetry correction must clamp at zero even if
    telemetry was reset between the read and the decode."""
    key = content_key("result", {"stale": 1})
    store.put_bytes("result", key, b"not a pickle")
    store.telemetry = store_mod.StoreTelemetry()  # simulate external reset
    store.telemetry.hits = 0
    # Force the path where get_bytes's hit is missing from telemetry.
    store._reclassify_hit_as_miss()
    assert store.telemetry.hits == 0
    assert store.telemetry.misses == 1
    assert store.telemetry.stale == 1


def test_stale_result_reclassifies_hit(store):
    key = content_key("result", {"stale": 2})
    store.put_bytes("result", key, b"not a pickle")
    assert store.get_result(key) is None
    assert store.telemetry.hits == 0  # the envelope hit was taken back
    assert store.telemetry.misses == 1
    assert store.telemetry.stale == 1


def test_format_version_bump_invalidates(store):
    """v2 stores must treat v1 entries as stale misses (the documented
    invalidation path for the pickled-layout change)."""
    key = content_key("result", {"old": 1})
    path = store.put_bytes("result", key, b"x")
    data = bytearray(path.read_bytes())
    struct.pack_into("<H", data, 4, store_mod.FORMAT_VERSION - 1)
    path.write_bytes(bytes(data))
    assert store.get_bytes("result", key) is None
    assert store.telemetry.stale == 1
    assert not path.exists()  # stale entry dropped
