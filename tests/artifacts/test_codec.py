"""Binary trace codec: round-trip equivalence with the text format.

The codec must reproduce every captured workload trace exactly — same
records, same instructions, same name — and agree with the line-oriented
``tracefile`` format on all of them.  A hypothesis property explores the
record space (flags, register writes, memory ops, branch info) beyond
what the workloads happen to exercise.
"""

from __future__ import annotations

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.artifacts.codec import (
    decode_trace,
    encode_trace,
    roundtrip_binary,
)
from repro.harness.figures import PAPER_ORDER
from repro.trace.record import MemOp, TraceRecord
from repro.trace.stream import DynamicTrace
from repro.trace.tracefile import (
    TraceFileError,
    TraceVersionError,
    roundtrip as text_roundtrip,
    write_trace,
)
from repro.workloads import build_workload
from repro.x86.instructions import Imm, Instruction, Mem, Mnemonic
from repro.x86.registers import Reg

_TRACES: dict[str, DynamicTrace] = {}


def _trace(name: str) -> DynamicTrace:
    if name not in _TRACES:
        _TRACES[name] = build_workload(name)
    return _TRACES[name]


@pytest.mark.parametrize("name", PAPER_ORDER)
def test_binary_roundtrip_all_workloads(name):
    trace = _trace(name)
    decoded = roundtrip_binary(trace)
    assert decoded.name == trace.name
    assert decoded.records == trace.records


@pytest.mark.parametrize("name", ["bzip2", "excel"])
def test_binary_agrees_with_text_format(name):
    trace = _trace(name)
    assert roundtrip_binary(trace).records == text_roundtrip(trace).records


def test_binary_smaller_than_text():
    trace = _trace("vortex")
    binary = encode_trace(trace)
    text = io.StringIO()
    write_trace(trace, text)
    assert len(binary) < len(text.getvalue()) / 2


def test_bad_magic_rejected():
    import gzip

    with pytest.raises(TraceFileError, match="magic"):
        decode_trace(gzip.compress(b"NOPE" + b"\x00" * 16))


def test_not_gzip_rejected():
    with pytest.raises(TraceFileError, match="gzip"):
        decode_trace(b"plainly not compressed")


def test_version_mismatch_raises_trace_version_error():
    import gzip
    import struct

    payload = gzip.compress(struct.pack("<4sH", b"RUTB", 999) + b"\x00" * 8)
    with pytest.raises(TraceVersionError) as excinfo:
        decode_trace(payload, filename="cached.art")
    assert excinfo.value.found == 999
    assert excinfo.value.supported == 1
    assert "cached.art" in str(excinfo.value)
    assert "999" in str(excinfo.value)


def test_truncated_payload_rejected():
    import gzip

    trace = _trace("power")
    raw = gzip.decompress(encode_trace(trace))
    with pytest.raises(TraceFileError, match="truncated"):
        decode_trace(gzip.compress(raw[: len(raw) // 2]))


# ----------------------------------------------------- hypothesis property

_VALUES = st.integers(min_value=-(2**31), max_value=2**32 - 1)
_ADDRS = st.integers(min_value=0, max_value=2**32 - 1)


def _instruction(pc: int) -> Instruction:
    # Realistic-enough static side; record payloads vary via hypothesis.
    instr = Instruction(
        mnemonic=Mnemonic.MOV,
        operands=(Reg.EAX, Mem(base=Reg.ESI, disp=pc % 128, size=4)),
    )
    instr.address = pc
    instr.length = 3
    return instr


_mem_ops = st.lists(
    st.builds(
        MemOp,
        is_store=st.booleans(),
        address=_ADDRS,
        size=st.sampled_from([1, 2, 4]),
        data=_VALUES,
    ),
    max_size=3,
)


@st.composite
def _records(draw):
    pcs = [0x1000 + 3 * i for i in range(draw(st.integers(1, 12)))]
    instructions = {pc: _instruction(pc) for pc in pcs}
    records = []
    for _ in range(draw(st.integers(1, 25))):
        pc = draw(st.sampled_from(pcs))
        records.append(
            TraceRecord(
                pc=pc,
                instruction=instructions[pc],
                next_pc=draw(_ADDRS),
                reg_writes={
                    Reg(r): draw(_VALUES)
                    for r in draw(st.sets(st.integers(0, 7), max_size=3))
                },
                flags_after=draw(st.none() | st.integers(0, 2**16)),
                mem_ops=tuple(draw(_mem_ops)),
                branch_taken=draw(st.none() | st.booleans()),
            )
        )
    return records


@given(_records())
@settings(max_examples=60, deadline=None)
def test_roundtrip_property(records):
    trace = DynamicTrace(records, name="prop")
    decoded = roundtrip_binary(trace)
    assert decoded.records == records
    assert decoded.name == "prop"
