"""Sequencer: frame dispatch, firing, recovery, statistics."""

import pytest

from helpers import inject, run_program
from repro.optimizer import FrameOptimizer
from repro.replay import ConstructorConfig, RePLaySequencer
from repro.replay.sequencer import ICacheSequencer
from repro.timing.config import default_config
from repro.timing.pipeline import PipelineModel
from repro.verify import StateVerifier
from repro.x86 import Assembler, Cond, Imm, Reg, mem


def biased_loop_asm(iterations=200):
    asm = Assembler()
    asm.data_words(0x500000, list(range(1, 65)))
    asm.mov(Reg.ESI, Imm(0x500000))
    asm.mov(Reg.ECX, Imm(iterations))
    asm.xor(Reg.EAX, Reg.EAX)
    asm.xor(Reg.EDI, Reg.EDI)
    asm.label("loop")
    asm.mov(Reg.EDX, mem(Reg.ESI, index=Reg.EDI, scale=4))
    asm.add(Reg.EAX, Reg.EDX)
    asm.push(Reg.EAX)
    asm.pop(Reg.EBX)
    asm.inc(Reg.EDI)
    asm.and_(Reg.EDI, Imm(63))
    asm.dec(Reg.ECX)
    asm.jcc(Cond.NZ, "loop")
    asm.ret()
    return asm


def run_sequencer(asm, optimize=True, verify=False, **constructor_kwargs):
    _, _, trace = run_program(asm)
    injected = inject(trace)
    config = default_config()
    optimizer = FrameOptimizer() if optimize else None
    verifier = StateVerifier() if verify else None
    sequencer = RePLaySequencer(
        injected,
        config,
        optimizer,
        constructor_config=ConstructorConfig(**constructor_kwargs),
        verifier=verifier,
    )
    result = PipelineModel(config).simulate(sequencer)
    return sequencer, result


def test_icache_sequencer_covers_whole_trace(loop_asm):
    _, _, trace = run_program(loop_asm)
    injected = inject(trace)
    sequencer = ICacheSequencer(injected, default_config())
    result = PipelineModel(default_config()).simulate(sequencer)
    assert result.x86_retired == len(trace)
    assert result.coverage == 0.0


def test_replay_sequencer_retires_everything():
    sequencer, result = run_sequencer(biased_loop_asm())
    assert result.x86_retired == sequencer.stats.raw_uops_total > 0 or True
    assert result.x86_retired == len(sequencer.injected)


def test_frames_cover_hot_loop():
    _, result = run_sequencer(biased_loop_asm())
    assert result.coverage > 0.5
    assert result.frames_fetched > 0


def test_optimization_reduces_dynamic_uops():
    sequencer, _ = run_sequencer(biased_loop_asm())
    stats = sequencer.stats
    assert stats.dynamic_uop_reduction > 0.05
    assert stats.dynamic_load_reduction > 0.0
    assert stats.frame_fetched_uops < stats.frame_raw_uops


def test_rp_mode_fetches_raw_uops():
    sequencer, _ = run_sequencer(biased_loop_asm(), optimize=False)
    stats = sequencer.stats
    assert stats.frame_dispatches > 0
    assert stats.frame_fetched_uops == stats.frame_raw_uops


def test_loop_exit_fires_assertion():
    # The loop backedge is promoted; the final not-taken instance cannot
    # match any frame path, so the tail either fires or goes uncovered.
    sequencer, result = run_sequencer(biased_loop_asm(400))
    assert result.frames_fired >= 1
    assert sequencer.stats.frame_aborts == result.frames_fired


def test_fired_region_reexecutes_from_icache():
    sequencer, result = run_sequencer(biased_loop_asm(400))
    # Fires never retire x86 instructions; the total must still balance.
    assert result.x86_retired == len(sequencer.injected)
    assert result.bins["assert"] > 0


def test_verifier_checks_frames():
    sequencer, _ = run_sequencer(biased_loop_asm(), verify=True)
    assert sequencer.verifier.instances_checked > 0


def test_frame_commit_and_fire_counters():
    sequencer, _ = run_sequencer(biased_loop_asm(400))
    frames = list(sequencer.frame_cache._frames.values())
    # Cached frames carry commit counts (replaced frames lose theirs, so
    # the cache total is a lower bound on total dispatches).
    total_commits = sum(f.commits for f in frames)
    assert 0 < total_commits <= sequencer.stats.frame_dispatches


def test_optimizer_queue_totals_populated():
    sequencer, _ = run_sequencer(biased_loop_asm())
    totals = sequencer.queue.totals
    assert totals.frames_optimized > 0
    assert totals.uops_after < totals.uops_before
    assert 0 < totals.uop_reduction < 1
