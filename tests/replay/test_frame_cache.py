"""Frame cache: LRU capacity in uops, replacement protection."""

from repro.replay import Frame, FrameCache
from repro.uops import Uop, UopOp, UReg


def make_frame(pc: int, uop_count: int = 10, path_salt: int = 0) -> Frame:
    uops = [
        Uop(UopOp.ADD, dst=UReg.EAX, src_a=UReg.EAX, imm=1)
        for _ in range(uop_count)
    ]
    return Frame(
        start_pc=pc,
        x86_pcs=[pc + i + path_salt * 1000 for i in range(uop_count)],
        end_next_pc=pc + uop_count,
        dyn_uops=uops,
        x86_indices=list(range(uop_count)),
        mem_keys=[None] * uop_count,
    )


def test_lookup_hit_and_miss():
    cache = FrameCache()
    frame = make_frame(0x1000)
    frame.build_buffer()
    cache.insert(frame)
    assert cache.lookup(0x1000) is frame
    assert cache.lookup(0x2000) is None
    assert cache.hits == 1 and cache.misses == 1


def test_capacity_evicts_lru():
    cache = FrameCache(capacity_uops=25)
    for i in range(3):
        frame = make_frame(0x1000 + i * 0x100, uop_count=10)
        frame.build_buffer()
        cache.insert(frame)
    assert cache.stored_uops <= 25
    assert cache.lookup(0x1000) is None  # the first one was evicted
    assert cache.evictions == 1


def test_lookup_refreshes_lru():
    cache = FrameCache(capacity_uops=25)
    first = make_frame(0x1000)
    second = make_frame(0x1100)
    for frame in (first, second):
        frame.build_buffer()
        cache.insert(frame)
    cache.lookup(0x1000)  # refresh
    third = make_frame(0x1200)
    third.build_buffer()
    cache.insert(third)
    assert cache.lookup(0x1000) is first
    assert cache.lookup(0x1100) is None


def test_replacement_for_same_pc():
    cache = FrameCache()
    old = make_frame(0x1000, uop_count=10)
    new = make_frame(0x1000, uop_count=12)
    for frame in (old, new):
        frame.build_buffer()
    cache.insert(old)
    cache.insert(new)
    assert cache.lookup(0x1000) is new
    assert cache.stored_uops == 12


def test_proven_frame_resists_smaller_replacement():
    cache = FrameCache()
    proven = make_frame(0x1000, uop_count=12)
    proven.build_buffer()
    proven.commits = 10
    cache.insert(proven)
    challenger = make_frame(0x1000, uop_count=10, path_salt=1)
    challenger.build_buffer()
    assert not cache.insert(challenger)
    assert cache.lookup(0x1000) is proven


def test_larger_frame_replaces_proven():
    cache = FrameCache()
    proven = make_frame(0x1000, uop_count=10)
    proven.build_buffer()
    proven.commits = 10
    cache.insert(proven)
    bigger = make_frame(0x1000, uop_count=20, path_salt=1)
    bigger.build_buffer()
    assert cache.insert(bigger)
    assert cache.lookup(0x1000) is bigger


def test_firing_frame_loses_protection():
    frame = make_frame(0x1000)
    frame.commits = 8
    frame.fires = 3
    assert not frame.proven  # 3*4 > 8


def test_explicit_evict():
    cache = FrameCache()
    frame = make_frame(0x1000)
    frame.build_buffer()
    cache.insert(frame)
    cache.evict(0x1000)
    assert cache.lookup(0x1000) is None
    assert cache.stored_uops == 0


def test_contains_does_not_disturb_stats():
    cache = FrameCache()
    frame = make_frame(0x1000)
    frame.build_buffer()
    cache.insert(frame)
    assert cache.contains(0x1000)
    assert not cache.contains(0x2000)
    assert cache.hits == 0 and cache.misses == 0
