"""Frame constructor: bias promotion, assertion conversion, sizing."""

from helpers import inject, run_program
from repro.replay import BranchBiasTable, ConstructorConfig, FrameConstructor
from repro.uops import UopOp
from repro.x86 import Assembler, Cond, Imm, Reg, mem


def test_bias_promotion_after_threshold():
    table = BranchBiasTable(promotion_threshold=4)
    for _ in range(4):
        assert not table.observe(0x100, True)
    assert table.observe(0x100, True)  # fifth consecutive: promoted
    assert table.is_promoted(0x100, True)


def test_bias_reset_on_direction_change():
    table = BranchBiasTable(promotion_threshold=4)
    for _ in range(6):
        table.observe(0x100, True)
    assert not table.observe(0x100, False)  # flip breaks the run
    assert not table.is_promoted(0x100, True)
    assert not table.is_promoted(0x100, False)


def test_bias_tracks_indirect_targets():
    table = BranchBiasTable(promotion_threshold=2)
    for _ in range(3):
        table.observe(0x200, 0x4000)
    assert table.observe(0x200, 0x4000)
    assert not table.observe(0x200, 0x5000)


def loop_trace():
    asm = Assembler()
    asm.data_words(0x500000, list(range(64)))
    asm.mov(Reg.ESI, Imm(0x500000))
    asm.mov(Reg.ECX, Imm(64))
    asm.xor(Reg.EAX, Reg.EAX)
    asm.label("loop")
    asm.add(Reg.EAX, mem(Reg.ESI))
    asm.add(Reg.ESI, Imm(4))
    asm.dec(Reg.ECX)
    asm.jcc(Cond.NZ, "loop")
    asm.ret()
    _, _, trace = run_program(asm)
    return inject(trace)


def test_frames_emitted_once_branch_promoted():
    constructor = FrameConstructor(ConstructorConfig(promotion_threshold=8))
    frames = []
    for instr in loop_trace():
        frame = constructor.retire(instr)
        if frame is not None:
            frames.append(frame)
    assert frames, "biased loop must produce frames"
    # Later frames span multiple loop iterations (promoted backedge).
    assert any(f.x86_count > 4 for f in frames)


def test_mid_frame_branch_becomes_assertion():
    constructor = FrameConstructor(ConstructorConfig(promotion_threshold=4))
    frames = []
    for instr in loop_trace():
        frame = constructor.retire(instr)
        if frame is not None:
            frames.append(frame)
    multi = next(
        f for f in frames
        if any(u.op is UopOp.ASSERT for u in f.dyn_uops)
    )
    # Asserted direction: backedge taken -> assert the branch condition.
    assertion = next(u for u in multi.dyn_uops if u.op is UopOp.ASSERT)
    assert assertion.cond is not None
    assert assertion.target is None  # assertions carry no branch target


def test_frame_respects_max_uops():
    config = ConstructorConfig(promotion_threshold=2, max_uops=32)
    constructor = FrameConstructor(config)
    for instr in loop_trace():
        frame = constructor.retire(instr)
        if frame is not None:
            assert frame.raw_uop_count <= 32


def test_small_regions_discarded():
    config = ConstructorConfig(min_uops=8, promotion_threshold=1000)
    constructor = FrameConstructor(config)
    # With promotion impossible, every conditional branch ends a region;
    # the ~6-uop loop body falls below min_uops and is discarded (the
    # larger straight-line preamble may still form one frame).
    frames = [
        f for f in (constructor.retire(i) for i in loop_trace()) if f is not None
    ]
    assert len(frames) <= 1
    assert constructor.frames_discarded > 10
    assert all(
        not any(u.op is UopOp.ASSERT for u in f.dyn_uops) for f in frames
    )


def test_frame_path_is_contiguous_trace_slice():
    constructor = FrameConstructor(ConstructorConfig(promotion_threshold=4))
    injected = loop_trace()
    position = {}
    for index, instr in enumerate(injected):
        frame = constructor.retire(instr)
        if frame is not None and frame.x86_count > 4:
            # Find where this frame's first pc occurred.
            start = index - frame.x86_count + 1
            for offset, pc in enumerate(frame.x86_pcs):
                assert injected[start + offset].record.pc == pc
            break


def test_backedge_close_aligns_frames():
    config = ConstructorConfig(promotion_threshold=2, backedge_close_uops=16)
    constructor = FrameConstructor(config)
    closed = []
    for instr in loop_trace():
        frame = constructor.retire(instr)
        if frame is not None:
            closed.append(frame)
    # Once promoted and >= 16 uops, frames end at the loop backedge, so
    # end_next_pc equals the loop head (which is their own start).
    aligned = [f for f in closed if f.end_next_pc == f.start_pc]
    assert aligned


def test_mid_frame_indirect_becomes_value_assert(loop_asm):
    constructor = FrameConstructor(ConstructorConfig(promotion_threshold=2))
    _, _, trace = run_program(loop_asm)
    frames = []
    for instr in inject(trace):
        frame = constructor.retire(instr)
        if frame is not None:
            frames.append(frame)
    spanning = [f for f in frames if any(
        u.op is UopOp.ASSERT_CMP for u in f.dyn_uops)]
    assert spanning, "promoted RET must become a value assertion"
    assertion = next(
        u for u in spanning[0].dyn_uops if u.op is UopOp.ASSERT_CMP
    )
    assert assertion.imm is not None  # expected target embedded
    assert not assertion.writes_flags


def test_abandon_clears_pending():
    constructor = FrameConstructor()
    injected = loop_trace()
    for instr in injected[:3]:
        constructor.retire(instr)
    constructor.abandon()
    assert constructor._pending == []
