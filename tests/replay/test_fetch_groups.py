"""ICache fetch-group construction."""

from helpers import inject, run_program
from repro.replay.fetch_groups import branch_event_for, build_icache_block, is_taken_transfer
from repro.timing.config import default_config
from repro.x86 import Assembler, Cond, Imm, Reg, mem


def straight_line_injected(n=12):
    asm = Assembler()
    for i in range(n):
        asm.add(Reg.EAX, Imm(i + 1))
    asm.ret()
    _, _, trace = run_program(asm)
    return inject(trace)


def test_group_limited_by_decode_width():
    injected = straight_line_injected()
    config = default_config()
    block, count = build_icache_block(injected, 0, config)
    assert count == config.x86_decode_width == 4
    assert block.x86_count == 4


def test_group_limited_by_uop_budget():
    # PUSH = 2 uops each: five pushes exceed the 8-uop fetch width.
    asm = Assembler()
    for _ in range(6):
        asm.push(Reg.EAX)
    for _ in range(6):
        asm.pop(Reg.EBX)
    asm.ret()
    _, _, trace = run_program(asm)
    injected = inject(trace)
    block, count = build_icache_block(injected, 0, default_config())
    assert len(block.uops) <= default_config().fetch_width
    assert count == 4


def test_group_breaks_at_taken_branch():
    asm = Assembler()
    asm.mov(Reg.EAX, Imm(1))
    asm.jmp("far")
    asm.nop()
    asm.label("far")
    asm.mov(Reg.EBX, Imm(2))
    asm.ret()
    _, _, trace = run_program(asm)
    injected = inject(trace)
    block, count = build_icache_block(injected, 0, default_config())
    assert count == 2  # mov + jmp; fetch redirects


def test_not_taken_branch_does_not_break_group():
    asm = Assembler()
    asm.xor(Reg.EAX, Reg.EAX)
    asm.test(Reg.EAX, Reg.EAX)
    asm.jcc(Cond.NZ, "skip")  # not taken
    asm.mov(Reg.EBX, Imm(2))
    asm.label("skip")
    asm.ret()
    _, _, trace = run_program(asm)
    injected = inject(trace)
    block, count = build_icache_block(injected, 1, default_config())
    assert count >= 3  # test, jcc(nt), mov flow together


def test_stop_probe_truncates():
    injected = straight_line_injected()
    target = injected[2].record.pc
    block, count = build_icache_block(
        injected, 0, default_config(), stop_probe=lambda pc: pc == target
    )
    assert count == 2


def test_branch_event_kinds(loop_asm):
    _, _, trace = run_program(loop_asm)
    kinds = set()
    for instr in inject(trace):
        event = branch_event_for(instr, 0)
        if event is not None:
            kinds.add(event.kind)
    assert {"cond", "call", "ret"} <= kinds


def test_is_taken_transfer(loop_asm):
    _, _, trace = run_program(loop_asm)
    injected = inject(trace)
    for instr in injected:
        record = instr.record
        expected = (
            record.instruction.is_branch
            and record.next_pc != record.pc + record.instruction.length
        )
        assert is_taken_transfer(instr) == expected


def test_byte_extent_covers_group():
    injected = straight_line_injected()
    block, count = build_icache_block(injected, 0, default_config())
    assert block.byte_start == injected[0].record.pc
    last = injected[count - 1].record
    assert block.byte_end == last.pc + last.instruction.length
