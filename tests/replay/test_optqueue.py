"""Optimization queue: latency, depth, duplicates, accounting."""

from repro.optimizer import FrameOptimizer, OptimizerConfig
from repro.replay import FrameCache, OptimizationQueue
from repro.replay.frame import Frame
from repro.uops import Uop, UopOp, UReg


def make_frame(pc: int, uop_count: int = 12) -> Frame:
    uops = []
    for i in range(uop_count - 1):
        uops.append(Uop(UopOp.MOV, dst=UReg.ET0, src_a=UReg.EAX))
    uops.append(Uop(UopOp.ADD, dst=UReg.EAX, src_a=UReg.EAX, imm=1))
    return Frame(
        start_pc=pc,
        x86_pcs=[pc + i for i in range(uop_count)],
        end_next_pc=pc + uop_count,
        dyn_uops=uops,
        x86_indices=list(range(uop_count)),
        mem_keys=[None] * uop_count,
    )


def queue_with(optimizer, **kwargs):
    cache = FrameCache()
    return cache, OptimizationQueue(cache, optimizer, **kwargs)


def test_rp_mode_deposits_immediately():
    cache, queue = queue_with(optimizer=None)
    assert queue.submit(make_frame(0x1000), now=0)
    assert cache.lookup(0x1000) is not None


def test_optimizer_latency_delays_visibility():
    cache, queue = queue_with(FrameOptimizer(), cycles_per_uop=10)
    frame = make_frame(0x1000, uop_count=12)
    queue.submit(frame, now=100)
    queue.drain(now=100)
    assert cache.lookup(0x1000) is None  # not ready yet
    queue.drain(now=100 + 10 * 12)
    assert cache.lookup(0x1000) is frame


def test_pipeline_depth_drops_excess_frames():
    cache, queue = queue_with(FrameOptimizer(), depth=2)
    for i in range(4):
        queue.submit(make_frame(0x1000 + 0x100 * i), now=0)
    assert queue.totals.frames_dropped == 2


def test_duplicate_paths_rejected():
    cache, queue = queue_with(optimizer=None)
    assert queue.submit(make_frame(0x1000), now=0)
    assert not queue.submit(make_frame(0x1000), now=0)


def test_evicted_path_can_be_rebuilt():
    cache, queue = queue_with(optimizer=None)
    queue.submit(make_frame(0x1000), now=0)
    cache.evict(0x1000)
    assert queue.submit(make_frame(0x1000), now=0)


def test_in_flight_duplicates_rejected():
    cache, queue = queue_with(FrameOptimizer(), depth=3)
    assert queue.submit(make_frame(0x1000), now=0)
    assert not queue.submit(make_frame(0x1000), now=0)
    assert queue.totals.frames_optimized == 1


def test_totals_account_reduction():
    cache, queue = queue_with(FrameOptimizer())
    queue.submit(make_frame(0x1000), now=0)
    totals = queue.totals
    assert totals.uops_before == 12
    assert totals.uops_after < totals.uops_before  # dead MOVs removed
    assert 0 < totals.uop_reduction < 1
