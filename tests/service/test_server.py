"""Server front end over real loopback sockets, with a fake pool.

Covers admission control (shed, draining, bad requests), the query
request types, cancellation, streaming order, and the drain lifecycle —
all without spawning worker subprocesses (the real-pool end-to-end path
lives in test_loopback.py).
"""

import os
import threading
import time
from concurrent.futures import Future

import pytest

from repro.service.client import Client, ServiceError
from repro.service.protocol import CellSpec


def fake_output(index, task, cached=False, seconds=0.01):
    return {
        "index": index,
        "workload": task.workload,
        "config": task.config.name,
        "entry": {"workload": task.workload, "config": task.config.name},
        "cached": cached,
        "emulated": not cached,
        "seconds": seconds,
        "pid": os.getpid(),
        "snapshot": None,
    }


class ThreadedFakePool:
    """Scheduler-facing pool double that also satisfies Service lifecycle.

    By default every batch resolves immediately; with ``gated=True``
    batches park until the test calls :meth:`release`.
    """

    def __init__(self, gated=False):
        self.gated = gated
        self.batches = []
        self.parked = []
        self.generation = 1
        self.restart_count = 0
        self._lock = threading.Lock()

    # Service lifecycle surface
    def warm(self):
        return [os.getpid()]

    def shutdown(self, wait=True):
        self.release()

    def worker_pids(self):
        return [os.getpid()]

    # Scheduler surface
    def submit_batch(self, batch):
        future = Future()
        with self._lock:
            self.batches.append(batch)
            if self.gated:
                self.parked.append((future, batch))
                return future
        future.set_result([fake_output(i, task) for i, task in batch])
        return future

    def release(self):
        with self._lock:
            parked, self.parked = self.parked, []
        for future, batch in parked:
            if not future.done():
                future.set_result([fake_output(i, task) for i, task in batch])

    def restart(self):
        self.restart_count += 1
        self.generation += 1


def make_client(harness, **kwargs):
    return Client(port=harness.port, timeout=10.0, **kwargs)


def cells(n=1):
    configs = ["IC", "TC", "RP", "RPO"]
    return [CellSpec("gzip", configs[i % len(configs)]) for i in range(n)]


def test_health_and_initial_metrics(harness_factory):
    harness = harness_factory(pool=ThreadedFakePool(), workers=3, max_queue=7)
    client = make_client(harness)

    health = client.health()
    assert health.ok is True
    assert health.queue_depth == 0
    assert health.queue_capacity == 7
    assert health.workers == 3
    assert health.draining is False
    assert health.jobs_active == 0

    metrics = client.metrics()
    # Every service counter is visible (at zero) before any job runs.
    for name in (
        "service.jobs_submitted",
        "service.jobs_done",
        "service.sheds",
        "service.timeouts",
        "service.requeues",
        "service.retries",
        "service.worker_crashes",
        "service.cells_cached",
        "service.cells_computed",
        "service.batches",
    ):
        assert metrics.counters.get(name) == 0, name


def test_submit_streams_and_queries_resolve(harness_factory):
    harness = harness_factory(pool=ThreadedFakePool())
    client = make_client(harness)

    seen = []
    outcome = client.submit(cells(3), on_cell=seen.append)

    assert outcome.ok and outcome.state == "done"
    assert outcome.cells_computed == 3
    assert len(outcome.entries) == 3 and all(outcome.entries)
    assert sorted(c.index for c in seen) == [0, 1, 2]
    assert all(c.cached is False for c in seen)

    status = client.status(outcome.job_id)
    assert status.state == "done" and status.cells_done == 3
    result = client.result(outcome.job_id)
    assert result.entries == outcome.entries

    metrics = client.metrics()
    assert metrics.counters["service.jobs_submitted"] == 1
    assert metrics.counters["service.jobs_done"] == 1
    assert metrics.counters["service.cells_computed"] == 3
    assert metrics.histograms["service.batch_size"]["count"] >= 1
    assert metrics.histograms["service.job_wait_seconds"]["count"] == 1


def test_queue_full_sheds_with_structured_error(harness_factory):
    harness = harness_factory(pool=ThreadedFakePool(), max_queue=0)
    client = make_client(harness)

    with pytest.raises(ServiceError) as exc_info:
        client.submit(cells(1))
    assert exc_info.value.code == "queue_full"
    assert exc_info.value.queue_depth == 0

    metrics = client.metrics()
    assert metrics.counters["service.sheds"] == 1
    assert metrics.counters["service.jobs_submitted"] == 0
    # The shed job left no residue in the table.
    health = client.health()
    assert health.jobs_active == 0


def test_shed_hits_latecomer_while_earlier_jobs_survive(harness_factory):
    pool = ThreadedFakePool(gated=True)
    harness = harness_factory(pool=pool, max_queue=1)
    results = {}

    def submit(name):
        try:
            results[name] = make_client(harness, client_id=name).submit(cells(1))
        except ServiceError as exc:
            results[name] = exc

    # First job occupies the scheduler (gated pool); second fills the
    # queue; third must shed.
    t1 = threading.Thread(target=submit, args=("first",))
    t1.start()
    deadline = time.time() + 10
    while not pool.batches and time.time() < deadline:
        time.sleep(0.01)
    assert pool.batches, "first job never reached the pool"

    t2 = threading.Thread(target=submit, args=("second",))
    t2.start()
    deadline = time.time() + 10
    client = make_client(harness, client_id="probe")
    while client.health().queue_depth < 1 and time.time() < deadline:
        time.sleep(0.01)

    submit("third")  # synchronous: queue is full, shed now
    assert isinstance(results["third"], ServiceError)
    assert results["third"].code == "queue_full"

    pool.release()
    t1.join(timeout=10)
    # Release any batch the scheduler dispatched after the first release.
    deadline = time.time() + 10
    while "second" not in results and time.time() < deadline:
        pool.release()
        time.sleep(0.01)
    t2.join(timeout=10)
    assert results["first"].ok
    assert results["second"].ok


def test_bad_requests_rejected(harness_factory):
    harness = harness_factory(pool=ThreadedFakePool())
    client = make_client(harness)

    with pytest.raises(ServiceError) as exc_info:
        client.submit([])
    assert exc_info.value.code == "bad_request"

    with pytest.raises(ServiceError) as exc_info:
        client.submit([CellSpec("not-a-workload", "IC")])
    assert exc_info.value.code == "bad_request"

    with pytest.raises(ServiceError) as exc_info:
        client.submit([CellSpec("gzip", "NOT-A-CONFIG")])
    assert exc_info.value.code == "bad_request"
    assert "unknown config" in str(exc_info.value)

    with pytest.raises(ServiceError) as exc_info:
        client.submit(cells(1), priority="urgent")
    assert exc_info.value.code == "bad_request"

    # None of those were admitted.
    assert client.metrics().counters["service.jobs_submitted"] == 0


def test_unknown_job_queries(harness_factory):
    harness = harness_factory(pool=ThreadedFakePool())
    client = make_client(harness)
    for method in (client.status, client.result, client.cancel):
        with pytest.raises(ServiceError) as exc_info:
            method("job-404")
        assert exc_info.value.code == "unknown_job"


def test_cancel_queued_job_over_socket(harness_factory):
    pool = ThreadedFakePool(gated=True)
    harness = harness_factory(pool=pool, max_queue=4)
    outcomes = {}

    def submit(name):
        outcomes[name] = make_client(harness, client_id=name).submit(cells(1))

    t1 = threading.Thread(target=submit, args=("running",))
    t1.start()
    deadline = time.time() + 10
    while not pool.batches and time.time() < deadline:
        time.sleep(0.01)

    t2 = threading.Thread(target=submit, args=("queued",))
    t2.start()
    client = make_client(harness, client_id="control")
    deadline = time.time() + 10
    while client.health().queue_depth < 1 and time.time() < deadline:
        time.sleep(0.01)

    # The queued job is job-2 (ids are sequential per service process).
    cancelled = client.cancel("job-2")
    assert cancelled.state == "cancelled"
    t2.join(timeout=10)
    assert outcomes["queued"].state == "cancelled"

    pool.release()
    t1.join(timeout=10)
    assert outcomes["running"].ok
    assert client.metrics().counters["service.jobs_cancelled"] == 1
    # Only the running job's batch ever reached the pool.
    assert len(pool.batches) == 1


def test_drain_rejects_new_submits_and_finishes_admitted(harness_factory):
    pool = ThreadedFakePool(gated=True)
    harness = harness_factory(pool=pool)
    outcomes = {}

    def submit(name):
        outcomes[name] = make_client(harness, client_id=name).submit(cells(2))

    t1 = threading.Thread(target=submit, args=("admitted",))
    t1.start()
    deadline = time.time() + 10
    while not pool.batches and time.time() < deadline:
        time.sleep(0.01)

    client = make_client(harness)
    harness.loop.call_soon_threadsafe(harness.service.request_shutdown)
    deadline = time.time() + 10
    while not harness.service.draining and time.time() < deadline:
        time.sleep(0.01)

    with pytest.raises(ServiceError) as exc_info:
        client.submit(cells(1))
    assert exc_info.value.code == "draining"

    pool.release()
    t1.join(timeout=10)
    assert outcomes["admitted"].ok  # admitted work completed during drain
    harness.stop()
    # Listener is closed after drain: new connections fail outright.
    with pytest.raises(ServiceError) as exc_info:
        make_client(harness).health()
    assert exc_info.value.code == "unreachable"
