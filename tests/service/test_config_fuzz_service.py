"""Service-routed config fuzzing: same digest as a local campaign.

The reproducibility contract of `fuzz config run --service`: shipping
(campaign_seed, index) pairs through the submit path — where the warm
pool regenerates each pair from its seeds — must fold into exactly the
digest a local single-process run produces.
"""

import pytest

from repro.fuzz.campaign import (
    ConfigCampaignConfig,
    run_config_campaign,
)
from repro.fuzz.generator import GeneratorConfig
from repro.service.client import Client


@pytest.fixture(scope="module")
def client(real_service):
    return Client(port=real_service.port, timeout=120.0)


def test_service_campaign_digest_matches_local(client):
    config = ConfigCampaignConfig(seed=7, iterations=3)
    local = run_config_campaign(config)
    remote = run_config_campaign(config, client=client)
    assert remote.pairs == local.pairs == 3
    assert remote.digest == local.digest
    assert remote.simulations == local.simulations
    assert remote.frames_fetched == local.frames_fetched
    assert remote.optimized_slower == local.optimized_slower


def test_service_campaign_rejects_tuned_generator(client):
    config = ConfigCampaignConfig(
        seed=7, iterations=1, generator=GeneratorConfig(max_body_ops=8)
    )
    with pytest.raises(ValueError, match="default"):
        run_config_campaign(config, client=client)
