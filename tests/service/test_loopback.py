"""End-to-end loopback: real warm workers, real store, real sockets.

The acceptance path for the service: a fig6 cell served over the wire
is byte-identical to the serial CLI path's ledger entry, a warm
resubmission is served from the artifact store without re-emulation
(and is at least 5x faster), and the queue/batch metrics are visible in
the ``metrics`` response.  One module-scoped service keeps the cost to
a single pool warm-up.
"""

import json

import pytest

from repro.artifacts.runner import MatrixTask, compute_cell
from repro.harness.experiment import CONFIGS
from repro.metrics.ledger import result_entry
from repro.service.client import Client
from repro.service.protocol import CellSpec

#: One fig6 row: gzip under (IC, TC) — two configs sharing one dynamic
#: trace, so they land in one warm-worker batch.
FIG6_CELLS = [CellSpec("gzip", "IC"), CellSpec("gzip", "TC")]


@pytest.fixture(scope="module")
def client(real_service):
    return Client(port=real_service.port, timeout=120.0)


@pytest.fixture(scope="module")
def first_outcome(client):
    """The cold submission every test in this module builds on."""
    streamed = []
    outcome = client.submit(FIG6_CELLS, on_cell=streamed.append)
    outcome.streamed = streamed
    return outcome


def canonical(entry) -> bytes:
    return json.dumps(entry, sort_keys=True).encode()


def test_cold_submit_computes_and_streams(first_outcome):
    assert first_outcome.ok, first_outcome.error
    assert first_outcome.cells_computed == 2
    assert first_outcome.cells_cached == 0
    assert len(first_outcome.streamed) == 2
    assert all(not cell.cached for cell in first_outcome.streamed)
    for entry, spec in zip(first_outcome.entries, FIG6_CELLS):
        assert entry["workload"] == spec.workload
        assert entry["config"] == spec.config
        assert entry["cycles"] > 0


def test_served_cell_byte_identical_to_serial_path(first_outcome):
    """The wire entry equals the serial CLI path's ledger entry, byte for
    byte (same result_entry serialization on both sides)."""
    for index, spec in enumerate(FIG6_CELLS):
        task = MatrixTask(spec.workload, CONFIGS[spec.config])
        result, _telemetry, _snapshot = compute_cell(task, store=None)
        serial_entry = result_entry(spec.workload, spec.config, result)
        assert canonical(first_outcome.entries[index]) == canonical(serial_entry)


def test_warm_resubmit_is_cached_and_5x_faster(client, first_outcome):
    streamed = []
    warm = client.submit(FIG6_CELLS, on_cell=streamed.append)
    assert warm.ok
    assert warm.cells_cached == 2
    assert warm.cells_computed == 0  # store hit: no re-emulation
    assert all(cell.cached for cell in streamed)
    assert [canonical(e) for e in warm.entries] == [
        canonical(e) for e in first_outcome.entries
    ]
    assert warm.seconds * 5 <= first_outcome.seconds, (
        f"warm {warm.seconds:.3f}s vs cold {first_outcome.seconds:.3f}s"
    )


def test_metrics_expose_queue_batch_and_cache_activity(client, first_outcome):
    metrics = client.metrics()
    counters = metrics.counters
    assert counters["service.jobs_submitted"] >= 1
    assert counters["service.jobs_done"] >= 1
    assert counters["service.cells_computed"] >= 2
    assert counters["service.batches"] >= 1
    assert counters["service.timeouts"] == 0
    assert counters["service.sheds"] == 0
    batch_size = metrics.histograms["service.batch_size"]
    assert batch_size["count"] >= 1
    assert batch_size["max"] == 2  # both fig6 configs in one batch
    assert metrics.histograms["service.job_service_seconds"]["count"] >= 1
    assert metrics.gauges["service.workers"] == 1
    # Worker-side simulator metrics merged into the service registry.
    assert any(not name.startswith("service.") for name in counters)


def test_health_reflects_served_work(client, first_outcome):
    health = client.health()
    assert health.ok
    assert health.jobs_completed >= 1
    assert health.queue_depth == 0
    assert not health.draining
