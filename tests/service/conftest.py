"""Shared fixtures: a service running on a background-thread event loop.

The blocking :class:`repro.service.client.Client` needs a live server to
talk to; pytest runs in the main thread, so the asyncio service runs on
its own thread's event loop and tests drive it over real loopback
sockets.  ``ServiceHarness`` optionally swaps the real process pool for
a test-controlled fake so protocol/lifecycle tests stay subprocess-free.
"""

import asyncio
import threading

import pytest

from repro.metrics import MetricsRegistry
from repro.service.server import Service, ServiceConfig


class ServiceHarness:
    """Run one Service on a dedicated thread; stop it deterministically."""

    def __init__(self, config: ServiceConfig, pool=None):
        self.config = config
        self.registry = MetricsRegistry()
        self.service: Service | None = None
        self.loop: asyncio.AbstractEventLoop | None = None
        self._pool_override = pool
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    # --------------------------------------------------------------- thread

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        self.loop = asyncio.get_running_loop()
        self.service = Service(self.config, registry=self.registry)
        if self._pool_override is not None:
            self.service.pool = self._pool_override
            self.service.scheduler.pool = self._pool_override
        try:
            await self.service.start()
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            raise
        self._ready.set()
        await self.service.wait_closed()

    # ------------------------------------------------------------------ api

    def start(self) -> "ServiceHarness":
        self._thread.start()
        if not self._ready.wait(timeout=60):
            raise TimeoutError("service did not start within 60s")
        if self._startup_error is not None:
            raise RuntimeError("service failed to start") from self._startup_error
        return self

    @property
    def port(self) -> int:
        assert self.service is not None and self.service.port is not None
        return self.service.port

    def call(self, coroutine_or_fn, *args):
        """Run a callable on the service loop thread; return its result."""
        assert self.loop is not None
        if asyncio.iscoroutine(coroutine_or_fn):
            future = asyncio.run_coroutine_threadsafe(coroutine_or_fn, self.loop)
        else:
            future = asyncio.run_coroutine_threadsafe(
                _as_coroutine(coroutine_or_fn, args), self.loop
            )
        return future.result(timeout=30)

    def stop(self, timeout: float = 60):
        """Drain and join; safe to call twice."""
        if self.loop is not None and self._thread.is_alive():
            self.loop.call_soon_threadsafe(self.service.request_shutdown)
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            raise TimeoutError("service thread did not shut down")


async def _as_coroutine(fn, args):
    return fn(*args)


@pytest.fixture(scope="module")
def real_service(tmp_path_factory):
    """A module-scoped service with a real one-worker pool (slow start)."""
    config = ServiceConfig(
        port=0,
        workers=1,
        cache_dir=str(tmp_path_factory.mktemp("service-cache")),
    )
    harness = ServiceHarness(config).start()
    yield harness
    harness.stop()


@pytest.fixture
def harness_factory(tmp_path):
    """Build ServiceHarness instances that always get torn down."""
    harnesses = []

    def build(pool=None, **config_kwargs):
        config_kwargs.setdefault("port", 0)  # ephemeral
        config_kwargs.setdefault("cache_dir", str(tmp_path / "cache"))
        harness = ServiceHarness(ServiceConfig(**config_kwargs), pool=pool)
        harnesses.append(harness)
        return harness.start()

    yield build
    for harness in harnesses:
        try:
            harness.stop()
        except TimeoutError:
            pass  # silent-ok: teardown best-effort; the test already failed
