"""Scheduler behaviour against a controllable fake worker pool.

Every scenario runs on a real asyncio loop (via ``asyncio.run`` — no
pytest-asyncio in this environment) with a :class:`FakePool` whose
futures the test resolves, never resolves, or seeds with
:class:`BrokenProcessPool`, exercising batching, the store
short-circuit, timeout-requeue, the restart-on-runaway-worker path, and
crash-retry without spawning a single subprocess.
"""

import asyncio
from collections import Counter as TallyCounter
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from repro.artifacts.runner import MatrixTask, result_key
from repro.artifacts.store import ArtifactStore
from repro.harness.experiment import CONFIGS, ExperimentResult
from repro.metrics import MetricsRegistry
from repro.metrics.ledger import result_entry
from repro.service.jobs import Job, JobQueue
from repro.service.protocol import CellResult, JobDone
from repro.service.scheduler import Scheduler
from repro.timing.pipeline import SimResult


@dataclass(frozen=True)
class FakeConfig:
    name: str


def make_task(workload="gzip", config="IC", scale=None, seed=1):
    return MatrixTask(
        workload=workload, config=FakeConfig(config), scale=scale, seed=seed
    )


def fake_output(index, task, cached=False, seconds=0.01):
    return {
        "index": index,
        "workload": task.workload,
        "config": task.config.name,
        "entry": {"workload": task.workload, "config": task.config.name},
        "cached": cached,
        "emulated": not cached,
        "seconds": seconds,
        "pid": 12345,
        "snapshot": None,
    }


class FakePool:
    """Pool double: records batches, lets the test script each future."""

    def __init__(self, script=None):
        self.batches = []
        self.generation = 1
        self.restart_count = 0
        #: Callables applied per submit (in order); the last one repeats.
        self.script = list(script or [])

    def submit_batch(self, batch):
        self.batches.append(batch)
        future = Future()
        if self.script:
            behave = self.script.pop(0) if len(self.script) > 1 else self.script[0]
            behave(future, batch)
        return future

    def restart(self):
        self.restart_count += 1
        self.generation += 1


def resolve_ok(future, batch):
    future.set_result([fake_output(index, task) for index, task in batch])


def resolve_crash(future, batch):
    future.set_exception(BrokenProcessPool("a worker died"))


def never_resolve(future, batch):
    pass


def resolve_running(future, batch):
    # Mark the future as already executing: Future.cancel() will return
    # False, which is how the scheduler detects runaway in-worker work.
    future.set_running_or_notify_cancel()


async def run_job(scheduler, queue, job, wait=10.0):
    """Push one job, run the scheduler until the job's JobDone arrives."""
    watcher = asyncio.Queue()
    job.subscribe(watcher)
    scheduler.start()
    queue.push(job)
    scheduler.wake()

    async def _until_done():
        while True:
            message = await watcher.get()
            if isinstance(message, JobDone):
                return message

    final = await asyncio.wait_for(_until_done(), wait)
    scheduler.drain()
    scheduler.wake()
    await asyncio.wait_for(scheduler.drained.wait(), wait)
    return final


def make_scheduler(pool, store=None, registry=None, **kwargs):
    registry = registry or MetricsRegistry()
    queue = JobQueue(max_depth=8)
    scheduler = Scheduler(queue, pool, store, registry, **kwargs)
    return scheduler, queue, registry


def test_batching_groups_by_trace_and_chunks():
    pool = FakePool(script=[resolve_ok])
    scheduler, queue, registry = make_scheduler(pool, max_batch=2)
    cells = [
        make_task("gzip", "IC"),
        make_task("gzip", "TC"),
        make_task("gzip", "RP"),  # 3rd gzip cell: forces a second chunk
        make_task("bzip2", "IC"),
        make_task("gzip", "IC", scale=2),  # different trace, own batch
    ]
    job = Job(job_id="j1", client="c", cells=cells)

    final = asyncio.run(run_job(scheduler, queue, job))

    assert final.state == "done"
    assert job.cells_computed == 5
    shapes = TallyCounter(
        (batch[0][1].workload, batch[0][1].scale, len(batch))
        for batch in pool.batches
    )
    assert shapes == TallyCounter(
        {
            ("gzip", None, 2): 1,
            ("gzip", None, 1): 1,
            ("bzip2", None, 1): 1,
            ("gzip", 2, 1): 1,
        }
    )
    assert registry.counter("service.batches").value == 4
    histogram = registry.histogram("service.batch_size")
    assert histogram.count == 4
    assert histogram.total == 5


def test_store_hits_never_touch_the_pool(tmp_path):
    store = ArtifactStore(tmp_path / "cache")
    config = CONFIGS["IC"]
    result = ExperimentResult(
        config_name="IC",
        workload="gzip",
        sim=SimResult(cycles=1000, x86_retired=1500),
    )
    key = result_key("gzip", config, None, 1)
    store.put_result(key, result, label="gzip/IC")

    pool = FakePool(script=[resolve_ok])
    scheduler, queue, registry = make_scheduler(pool, store=store)
    job = Job(
        job_id="j1",
        client="c",
        cells=[MatrixTask(workload="gzip", config=config)],
    )
    streamed = []

    async def scenario():
        watcher = asyncio.Queue()
        job.subscribe(watcher)
        final = await run_job(scheduler, queue, job)
        while not watcher.empty():
            streamed.append(watcher.get_nowait())
        return final

    final = asyncio.run(scenario())

    assert final.state == "done"
    assert pool.batches == []  # served entirely from the store
    assert job.cells_cached == 1 and job.cells_computed == 0
    assert registry.counter("service.cells_cached").value == 1
    cell = next(m for m in streamed if isinstance(m, CellResult))
    assert cell.cached is True
    assert cell.entry == result_entry("gzip", "IC", result)


def test_timeout_requeues_once_then_fails():
    pool = FakePool(script=[never_resolve])
    scheduler, queue, registry = make_scheduler(pool)
    job = Job(job_id="j1", client="c", cells=[make_task()], timeout=0.05)

    final = asyncio.run(run_job(scheduler, queue, job))

    assert final.state == "timeout"
    assert "timed out after" in final.error
    assert job.retries == 1
    assert registry.counter("service.timeouts").value == 2
    assert registry.counter("service.requeues").value == 1
    assert registry.counter("service.jobs_timeout").value == 1
    # Pending (never-started) pool work is revoked by cancel(), so no
    # pool restart was needed.
    assert pool.restart_count == 0
    timeout_events = [e for e in registry.events if e[1] == "job_timeout"]
    assert len(timeout_events) == 2


def test_timeout_keeps_finished_entries_across_requeue():
    def resolve_gzip_only(future, batch):
        # gzip batch completes instantly; bzip2 batch hangs forever.
        if batch[0][1].workload == "gzip":
            resolve_ok(future, batch)

    pool = FakePool(script=[resolve_gzip_only])
    scheduler, queue, registry = make_scheduler(pool)
    job = Job(
        job_id="j1",
        client="c",
        cells=[make_task("gzip", "IC"), make_task("bzip2", "IC")],
        timeout=0.2,
    )

    final = asyncio.run(run_job(scheduler, queue, job))

    assert final.state == "timeout"
    assert job.entries[0] is not None  # gzip survived the requeue
    assert job.entries[1] is None
    # The retry only re-dispatched the unfinished bzip2 cell.
    assert len(pool.batches) == 3
    retry_batch = pool.batches[2]
    assert [task.workload for _, task in retry_batch] == ["bzip2"]


def test_timeout_with_running_worker_restarts_pool():
    pool = FakePool(script=[resolve_running])
    scheduler, queue, registry = make_scheduler(pool)
    job = Job(job_id="j1", client="c", cells=[make_task()], timeout=0.05)

    final = asyncio.run(run_job(scheduler, queue, job))

    assert final.state == "timeout"
    # Both expiries found a worker mid-cell; each restarted the pool.
    assert pool.restart_count == 2
    assert registry.counter("service.worker_restarts").value == 2


def test_crash_retries_batch_once_then_succeeds():
    pool = FakePool(script=[resolve_crash, resolve_ok])
    scheduler, queue, registry = make_scheduler(pool)
    job = Job(job_id="j1", client="c", cells=[make_task()])

    final = asyncio.run(run_job(scheduler, queue, job))

    assert final.state == "done"
    assert len(pool.batches) == 2
    assert pool.restart_count == 1
    assert registry.counter("service.worker_crashes").value == 1
    assert registry.counter("service.retries").value == 1
    assert registry.counter("service.jobs_done").value == 1


def test_crash_twice_fails_job_but_not_service():
    pool = FakePool(script=[resolve_crash])
    scheduler, queue, registry = make_scheduler(pool)
    job = Job(job_id="j1", client="c", cells=[make_task()])

    final = asyncio.run(run_job(scheduler, queue, job))

    assert final.state == "failed"
    assert "crashed twice" in final.error
    assert registry.counter("service.worker_crashes").value == 2
    assert registry.counter("service.jobs_failed").value == 1


def test_cell_bug_fails_job_without_retry():
    def resolve_bug(future, batch):
        future.set_exception(ValueError("no such workload: nope"))

    pool = FakePool(script=[resolve_bug])
    scheduler, queue, registry = make_scheduler(pool)
    job = Job(job_id="j1", client="c", cells=[make_task("nope")])

    final = asyncio.run(run_job(scheduler, queue, job))

    assert final.state == "failed"
    assert "no such workload" in final.error
    assert len(pool.batches) == 1  # never retried
    assert pool.restart_count == 0


def test_cancel_queued_job_never_runs():
    pool = FakePool(script=[resolve_ok])
    scheduler, queue, registry = make_scheduler(pool)
    job = Job(job_id="j1", client="c", cells=[make_task()])
    job.cancel_requested = True

    final = asyncio.run(run_job(scheduler, queue, job))

    assert final.state == "cancelled"
    assert pool.batches == []
    assert registry.counter("service.jobs_cancelled").value == 1


def test_queue_depth_gauge_tracks_pops():
    pool = FakePool(script=[resolve_ok])
    scheduler, queue, registry = make_scheduler(pool)
    job = Job(job_id="j1", client="c", cells=[make_task()])

    asyncio.run(run_job(scheduler, queue, job))

    assert registry.gauge("service.queue_depth").value == 0
    assert registry.histogram("service.job_wait_seconds").count >= 1
    assert registry.histogram("service.job_service_seconds").count == 1
