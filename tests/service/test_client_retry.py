"""Client retry semantics: jittered backoff for idempotent requests only."""

import socket
import threading

import pytest

import repro.service.client as client_mod
from repro.service.client import Client, ServiceError, ServiceShed, _backoff_delay
from repro.service.protocol import (
    CellSpec,
    ErrorResponse,
    HealthResponse,
    decode_request,
    encode_message,
)


@pytest.fixture
def sleeps(monkeypatch):
    """Capture backoff sleeps instead of actually waiting."""
    recorded = []
    monkeypatch.setattr(client_mod, "_sleep", recorded.append)
    return recorded


def _refused_port() -> int:
    """A loopback port with nothing listening on it."""
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


class _ScriptedServer:
    """Accept connections one by one, running a handler per connection."""

    def __init__(self, handlers):
        self.handlers = list(handlers)
        self.listener = socket.socket()
        self.listener.bind(("127.0.0.1", 0))
        self.listener.listen(8)
        self.port = self.listener.getsockname()[1]
        self.thread = threading.Thread(target=self._serve, daemon=True)
        self.thread.start()

    def _serve(self):
        for handler in self.handlers:
            conn, _ = self.listener.accept()
            try:
                handler(conn)
            finally:
                conn.close()
        self.listener.close()


def _drop(conn):
    """Close immediately: the client sees EOF mid-request."""


def _health_ok(conn):
    reader = conn.makefile("rb")
    decode_request(reader.readline())
    conn.sendall(
        encode_message(
            HealthResponse(ok=True, queue_depth=0, queue_capacity=4, workers=1)
        )
    )


def _shed(conn):
    reader = conn.makefile("rb")
    decode_request(reader.readline())
    conn.sendall(
        encode_message(
            ErrorResponse(
                code="queue_full",
                message="scripted shed",
                queue_depth=4,
                retry_after=3.25,
            )
        )
    )


def test_backoff_delay_is_jittered_exponential():
    for attempt in range(4):
        full = 0.1 * 2**attempt
        for _ in range(50):
            delay = _backoff_delay(attempt, base=0.1, cap=2.0)
            assert full * 0.5 <= delay <= full
    # The cap bounds late attempts.
    assert _backoff_delay(attempt=10, base=0.1, cap=2.0) <= 2.0


def test_idempotent_request_retries_then_raises(sleeps):
    client = Client(port=_refused_port(), timeout=2, retries=2)
    with pytest.raises(ServiceError) as excinfo:
        client.health()
    assert excinfo.value.code == "unreachable"
    assert len(sleeps) == 2  # one backoff per retry, then the final raise
    assert sleeps[0] < sleeps[1] * 2  # jitter aside, delays grow


def test_idempotent_request_recovers_after_transient_failure(sleeps):
    server = _ScriptedServer([_drop, _health_ok])
    client = Client(port=server.port, timeout=5, retries=3)
    health = client.health()
    assert health.ok
    assert len(sleeps) == 1  # exactly one retry was needed


def test_queue_full_is_typed_shed_and_never_retried(sleeps):
    server = _ScriptedServer([_shed])
    client = Client(port=server.port, timeout=5, retries=3)
    with pytest.raises(ServiceShed) as excinfo:
        client.submit([CellSpec(workload="gzip", config="IC")])
    assert excinfo.value.code == "queue_full"
    assert excinfo.value.retry_after == 3.25
    assert sleeps == []  # sheds are the caller's decision, not a retry loop


def test_submit_is_never_retried_on_connection_failure(sleeps):
    client = Client(port=_refused_port(), timeout=2, retries=3)
    with pytest.raises(ServiceError) as excinfo:
        client.submit([CellSpec(workload="gzip", config="IC")])
    assert excinfo.value.code == "unreachable"
    assert sleeps == []  # a submit may have side effects: no auto-retry
