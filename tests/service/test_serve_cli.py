"""`serve` / `submit` CLI lifecycle: real subprocess, SIGTERM drain.

This is the test the CI smoke job mirrors: start a server process on an
ephemeral port, submit over the wire with the `submit` subcommand,
SIGTERM the server, and assert it drains within its deadline leaving no
orphaned worker processes behind.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parents[2] / "src")


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _read_startup(proc, deadline=60.0):
    """Parse the bound port and worker pids from the server's stderr."""
    port, pids = None, None
    end = time.time() + deadline
    while time.time() < end and (port is None or pids is None):
        line = proc.stderr.readline()
        if not line:
            raise AssertionError(
                f"server exited during startup (rc={proc.poll()})"
            )
        if "listening on" in line:
            port = int(line.split(":")[-1].split()[0].rstrip(")"))
        elif "worker pids:" in line:
            pids = [int(p) for p in line.split("worker pids:")[1].split()]
    assert port is not None and pids is not None, "startup lines not seen"
    return port, pids


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    return True


@pytest.fixture
def server(tmp_path):
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.harness", "serve",
            "--port", "0", "--workers", "1",
            "--cache-dir", str(tmp_path / "cache"),
            "--drain-timeout", "30",
        ],
        env=_env(),
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        port, pids = _read_startup(proc)
        yield proc, port, pids
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.stderr.close()
        proc.wait(timeout=10)


def test_serve_submit_sigterm_drain_no_orphans(server, tmp_path):
    proc, port, worker_pids = server
    assert worker_pids and all(_alive(pid) for pid in worker_pids)

    # Submit one two-cell job through the CLI client (--json output).
    submit = subprocess.run(
        [
            sys.executable, "-m", "repro.harness", "submit",
            "--workloads", "gzip", "--configs", "IC,TC",
            "--port", str(port), "--json",
        ],
        env=_env(),
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert submit.returncode == 0, submit.stderr
    lines = [json.loads(line) for line in submit.stdout.splitlines() if line]
    assert len(lines) == 2
    assert {(cell["workload"], cell["config"]) for cell in lines} == {
        ("gzip", "IC"), ("gzip", "TC"),
    }
    assert all(cell["entry"]["cycles"] > 0 for cell in lines)
    assert "job job-1 done: 2 cells" in submit.stderr

    # Warm resubmission: every cell served from the artifact store.
    resubmit = subprocess.run(
        [
            sys.executable, "-m", "repro.harness", "submit",
            "--workloads", "gzip", "--configs", "IC,TC",
            "--port", str(port), "--json",
        ],
        env=_env(),
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert resubmit.returncode == 0, resubmit.stderr
    warm_lines = [json.loads(s) for s in resubmit.stdout.splitlines() if s]
    assert all(cell["cached"] for cell in warm_lines)
    # Byte-identical entries between the cold and warm runs.
    assert sorted(
        json.dumps(c["entry"], sort_keys=True) for c in warm_lines
    ) == sorted(json.dumps(c["entry"], sort_keys=True) for c in lines)

    # Drain: SIGTERM must exit cleanly within 10s, reaping every worker.
    proc.send_signal(signal.SIGTERM)
    start = time.monotonic()
    rc = proc.wait(timeout=10)
    elapsed = time.monotonic() - start
    assert rc == 0, f"serve exited {rc}"
    assert elapsed <= 10
    for pid in worker_pids:
        assert not _alive(pid), f"worker {pid} orphaned after drain"


def test_submit_against_dead_port_fails_cleanly():
    result = subprocess.run(
        [
            sys.executable, "-m", "repro.harness", "submit",
            "--workloads", "gzip", "--configs", "IC",
            "--port", "1",  # nothing listens there
        ],
        env=_env(),
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode == 1
    assert "unreachable" in result.stderr
