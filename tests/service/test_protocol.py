"""Wire protocol: round-trips, version gating, malformed input."""

import json

import pytest

from repro.service.protocol import (
    PROTOCOL_VERSION,
    CancelledResponse,
    CancelRequest,
    CellResult,
    CellSpec,
    ErrorResponse,
    HealthRequest,
    HealthResponse,
    JobDone,
    MetricsRequest,
    MetricsResponse,
    ProtocolError,
    REQUEST_TYPES,
    RESPONSE_TYPES,
    ResultRequest,
    ResultResponse,
    StatusRequest,
    StatusResponse,
    SubmitRequest,
    SubmittedResponse,
    decode_request,
    decode_response,
    encode_message,
)

REQUESTS = [
    SubmitRequest(
        cells=[CellSpec("gzip", "IC"), CellSpec("bzip2", "RPO", scale=2, seed=7)],
        priority="interactive",
        timeout=12.5,
        client="host-123",
    ),
    StatusRequest(job_id="job-1"),
    ResultRequest(job_id="job-2"),
    CancelRequest(job_id="job-3"),
    HealthRequest(),
    MetricsRequest(),
]

RESPONSES = [
    SubmittedResponse(job_id="job-1", cells_total=4, position=2),
    CellResult(
        job_id="job-1",
        index=3,
        workload="gzip",
        config="IC",
        cached=True,
        seconds=0.25,
        entry={"ipc_x86": 1.25, "cycles": 1000, "bins": {"busy": 7}},
    ),
    JobDone(
        job_id="job-1", state="done", cells_total=4, cells_cached=2,
        cells_computed=2, seconds=3.5, error=None,
    ),
    StatusResponse(job_id="job-1", state="running", cells_total=4, cells_done=1),
    ResultResponse(job_id="job-1", state="done", entries=[{"a": 1}, None]),
    CancelledResponse(job_id="job-1", state="cancelled"),
    HealthResponse(
        ok=True, uptime_seconds=9.5, queue_depth=3, queue_capacity=64,
        jobs_active=1, jobs_completed=7, workers=2, draining=False,
    ),
    MetricsResponse(
        counters={"service.jobs_done": 3},
        gauges={"service.queue_depth": 1.0},
        histograms={"service.batch_size": {"count": 2, "sum": 6.0, "min": 2, "max": 4}},
    ),
    ErrorResponse(code="queue_full", message="queue full", queue_depth=64),
]


@pytest.mark.parametrize("message", REQUESTS, ids=lambda m: m.TYPE)
def test_request_round_trip(message):
    assert decode_request(encode_message(message)) == message


@pytest.mark.parametrize("message", RESPONSES, ids=lambda m: m.TYPE)
def test_response_round_trip(message):
    assert decode_response(encode_message(message)) == message


def test_every_type_is_covered():
    assert {m.TYPE for m in REQUESTS} == set(REQUEST_TYPES)
    assert {m.TYPE for m in RESPONSES} == set(RESPONSE_TYPES)


def test_entry_payload_survives_exactly():
    entry = {"ipc_x86": 1.2345678901234567, "bins": {"busy": 10, "idle": 0}}
    cell = CellResult(job_id="j", index=0, entry=entry)
    decoded = decode_response(encode_message(cell))
    assert json.dumps(decoded.entry, sort_keys=True) == json.dumps(
        entry, sort_keys=True
    )


@pytest.mark.parametrize("version", [0, 2, 99, None, "1"])
def test_unknown_version_rejected(version):
    line = json.dumps({"v": version, "type": "health"})
    with pytest.raises(ProtocolError) as exc_info:
        decode_request(line)
    assert exc_info.value.code == "unsupported_version"


def test_missing_version_rejected():
    with pytest.raises(ProtocolError) as exc_info:
        decode_request(json.dumps({"type": "health"}))
    assert exc_info.value.code == "unsupported_version"


def test_unknown_type_rejected():
    line = json.dumps({"v": PROTOCOL_VERSION, "type": "frobnicate"})
    with pytest.raises(ProtocolError) as exc_info:
        decode_request(line)
    assert exc_info.value.code == "unknown_type"


def test_request_types_not_valid_responses():
    line = encode_message(HealthRequest())
    decoded = decode_request(line)
    assert isinstance(decoded, HealthRequest)
    # 'health' is both a request and a response type name; the decoded
    # classes must differ by direction.
    assert not isinstance(decode_response(line), HealthRequest)


def test_malformed_json_rejected():
    with pytest.raises(ProtocolError) as exc_info:
        decode_request(b"{not json}\n")
    assert exc_info.value.code == "malformed"


def test_non_object_rejected():
    with pytest.raises(ProtocolError) as exc_info:
        decode_request(b"[1, 2, 3]\n")
    assert exc_info.value.code == "malformed"


def test_bad_cell_spec_rejected():
    line = json.dumps(
        {"v": PROTOCOL_VERSION, "type": "submit", "cells": [{"bogus": 1}]}
    )
    with pytest.raises(ProtocolError) as exc_info:
        decode_request(line)
    assert exc_info.value.code == "malformed"


def test_unknown_fields_ignored_within_version():
    line = json.dumps(
        {"v": PROTOCOL_VERSION, "type": "status", "job_id": "job-9",
         "future_field": True}
    )
    assert decode_request(line) == StatusRequest(job_id="job-9")


def test_decoded_cells_are_cellspecs():
    decoded = decode_request(encode_message(REQUESTS[0]))
    assert all(isinstance(cell, CellSpec) for cell in decoded.cells)
