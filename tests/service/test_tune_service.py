"""Service-routed tune sweeps: byte-identical to a local sweep.

The reproducibility contract of `tune sweep --service`: shipping
points as kind="tune" cells — where the server lowers each payload
onto the same MatrixTask a local sweep builds — must return entries
(and therefore a sweep digest) identical to a local run, even though
the service computes against its own artifact store.
"""

import pytest

from repro.artifacts.store import ArtifactStore
from repro.service.client import Client, ServiceError
from repro.service.protocol import CellSpec
from repro.tune.engine import SweepSettings, run_sweep
from repro.tune.space import FULL_PASS_SPEC, TunePoint, TuneSpace


@pytest.fixture(scope="module")
def client(real_service):
    return Client(port=real_service.port, timeout=120.0)


SPACE = TuneSpace(
    workloads=("gzip",),
    pass_specs=(None, FULL_PASS_SPEC),
    fill_max_uops=(16,),
)


def test_service_sweep_digest_matches_local(client, tmp_path):
    settings = SweepSettings(scale=0)
    local = run_sweep(SPACE, settings, store=ArtifactStore(tmp_path))
    remote = run_sweep(SPACE, settings, client=client)
    assert remote.digest == local.digest
    assert remote.records == local.records
    assert len(remote.records) == 3
    assert remote.cells_cached + remote.cells_computed == 3


def test_bad_tune_payload_rejected_at_admission(client):
    bad = CellSpec(
        workload="gzip",
        config="tune-bogus",
        scale=0,
        kind="tune",
        payload={"frame_max_uops": 4},  # below the constructor minimum
    )
    with pytest.raises(ServiceError) as excinfo:
        client.submit([bad])
    assert excinfo.value.code == "bad_request"
    assert "frame_max_uops" in str(excinfo.value)


def test_missing_tune_payload_rejected(client):
    with pytest.raises(ServiceError) as excinfo:
        client.submit(
            [CellSpec(workload="gzip", config="tune-x", kind="tune")]
        )
    assert excinfo.value.code == "bad_request"


def test_unknown_workload_in_tune_cell_rejected(client):
    spec = CellSpec(
        workload="no-such-workload",
        config="tune-x",
        kind="tune",
        payload=TunePoint().to_json(),
    )
    with pytest.raises(ServiceError) as excinfo:
        client.submit([spec])
    assert excinfo.value.code == "bad_request"
