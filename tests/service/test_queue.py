"""JobQueue: backpressure/shed, priority classes, per-client fairness."""

import pytest

from repro.service.jobs import Job, JobQueue, JobTable, QueueFullError


def make_job(job_id, client="c1", priority="batch"):
    return Job(job_id=job_id, client=client, cells=[], priority=priority)


def test_fifo_within_one_client():
    queue = JobQueue(max_depth=8)
    for n in range(3):
        queue.push(make_job(f"job-{n}"))
    assert [queue.pop().job_id for _ in range(3)] == ["job-0", "job-1", "job-2"]
    assert queue.pop() is None
    assert queue.depth == 0


def test_shed_at_bound():
    queue = JobQueue(max_depth=2)
    queue.push(make_job("job-1"))
    queue.push(make_job("job-2"))
    with pytest.raises(QueueFullError) as exc_info:
        queue.push(make_job("job-3"))
    assert exc_info.value.depth == 2
    assert exc_info.value.max_depth == 2
    # The shed job left no residue: admitted jobs drain in order.
    assert queue.depth == 2
    assert queue.pop().job_id == "job-1"


def test_shed_ordering_under_concurrent_clients():
    """With the queue full, every client's next push sheds — not just the
    noisy one — and the jobs already admitted keep their fair order."""
    queue = JobQueue(max_depth=4)
    for n in range(3):
        queue.push(make_job(f"noisy-{n}", client="noisy"))
    queue.push(make_job("quiet-0", client="quiet"))
    for client in ("noisy", "quiet", "late"):
        with pytest.raises(QueueFullError):
            queue.push(make_job("extra", client=client))
    popped = [queue.pop().job_id for _ in range(4)]
    # Round-robin: quiet's single job is served second, not last.
    assert popped == ["noisy-0", "quiet-0", "noisy-1", "noisy-2"]


def test_force_push_bypasses_bound():
    queue = JobQueue(max_depth=1)
    queue.push(make_job("job-1"))
    queue.push(make_job("requeued"), force=True)  # timeout requeue path
    assert queue.depth == 2


def test_interactive_pops_before_batch():
    queue = JobQueue(max_depth=8)
    queue.push(make_job("batch-1", priority="batch"))
    queue.push(make_job("batch-2", priority="batch"))
    queue.push(make_job("live-1", priority="interactive"))
    assert queue.pop().job_id == "live-1"
    assert queue.pop().job_id == "batch-1"


def test_unknown_priority_rejected():
    queue = JobQueue(max_depth=8)
    with pytest.raises(ValueError):
        queue.push(make_job("job-1", priority="urgent"))


def test_per_client_round_robin():
    queue = JobQueue(max_depth=16)
    for n in range(4):
        queue.push(make_job(f"a-{n}", client="a"))
    queue.push(make_job("b-0", client="b"))
    queue.push(make_job("b-1", client="b"))
    popped = [queue.pop().job_id for _ in range(6)]
    assert popped == ["a-0", "b-0", "a-1", "b-1", "a-2", "a-3"]


def test_remove_queued_job():
    queue = JobQueue(max_depth=8)
    queue.push(make_job("job-1"))
    queue.push(make_job("job-2"))
    removed = queue.remove("job-1")
    assert removed is not None and removed.job_id == "job-1"
    assert queue.remove("job-1") is None
    assert queue.depth == 1
    assert queue.pop().job_id == "job-2"


def test_position_respects_priority_boundary():
    queue = JobQueue(max_depth=8)
    queue.push(make_job("batch-1", priority="batch"))
    queue.push(make_job("live-1", priority="interactive"))
    assert queue.position("live-1") < queue.position("batch-1")
    assert queue.position("missing") == -1


def test_empty_client_does_not_stall_rotation():
    queue = JobQueue(max_depth=8)
    queue.push(make_job("a-0", client="a"))
    assert queue.pop().job_id == "a-0"
    # Client "a" is now an empty entry in the rotation; a new client's
    # job must still pop immediately.
    queue.push(make_job("b-0", client="b"))
    assert queue.pop().job_id == "b-0"


def test_job_table_ids_and_discard():
    table = JobTable()
    job1 = table.create("c1", [])
    job2 = table.create("c2", [])
    assert job1.job_id != job2.job_id
    assert table.get(job1.job_id) is job1
    assert len(table.unfinished()) == 2
    table.discard(job1.job_id)
    assert table.get(job1.job_id) is None
    assert len(table) == 1


def test_reset_for_requeue_keeps_finished_entries():
    job = Job(job_id="j", client="c", cells=[None, None], state="running")
    job.entries[0] = {"done": True}
    job.started_at = 1.0
    job.reset_for_requeue()
    assert job.state == "queued"
    assert job.started_at == 0.0
    assert job.entries == [{"done": True}, None]
    assert job.cells_done == 1
