"""Trace-cache baseline: fill unit, cache, partial-match sequencing."""

from helpers import inject, run_program
from repro.timing.config import default_config
from repro.timing.pipeline import PipelineModel
from repro.tracecache import FillUnit, FillUnitConfig, TraceCache, TraceCacheSequencer
from repro.x86 import Assembler, Cond, Imm, Reg, mem


def loop_injected(iterations=100):
    asm = Assembler()
    asm.data_words(0x500000, list(range(64)))
    asm.mov(Reg.ESI, Imm(0x500000))
    asm.mov(Reg.ECX, Imm(iterations))
    asm.xor(Reg.EAX, Reg.EAX)
    asm.label("loop")
    asm.add(Reg.EAX, mem(Reg.ESI))
    asm.add(Reg.ESI, Imm(4))
    asm.cmp(Reg.ESI, Imm(0x500000 + 63 * 4))
    asm.jcc(Cond.B, "nowrap")
    asm.mov(Reg.ESI, Imm(0x500000))
    asm.label("nowrap")
    asm.dec(Reg.ECX)
    asm.jcc(Cond.NZ, "loop")
    asm.ret()
    _, _, trace = run_program(asm)
    return inject(trace)


def test_fill_unit_bounds_branches():
    config = FillUnitConfig(max_uops=64, max_branches=2)
    fill = FillUnit(config)
    lines = [l for l in (fill.retire(i) for i in loop_injected()) if l]
    assert lines
    for line in lines:
        branches = sum(
            1 for i in line.instructions if i.record.instruction.is_conditional
        )
        assert branches <= 2


def test_fill_unit_bounds_uops():
    config = FillUnitConfig(max_uops=16, max_branches=8)
    fill = FillUnit(config)
    lines = [l for l in (fill.retire(i) for i in loop_injected()) if l]
    assert all(line.uop_count <= 16 for line in lines)


def test_fill_unit_terminates_at_indirect(loop_asm):
    _, _, trace = run_program(loop_asm)
    fill = FillUnit()
    lines = [l for l in (fill.retire(i) for i in inject(trace)) if l]
    rets = [l for l in lines if l.instructions[-1].record.instruction.is_indirect]
    assert rets  # RETs close trace lines


def test_trace_cache_lru_capacity():
    cache = TraceCache(capacity_uops=20)
    fill = FillUnit(FillUnitConfig(max_uops=10))
    inserted = 0
    for instr in loop_injected():
        line = fill.retire(instr)
        if line is not None:
            cache.insert(line)
            inserted += 1
        if inserted > 5:
            break
    assert cache.stored_uops <= 20


def test_sequencer_runs_and_covers():
    injected = loop_injected(300)
    config = default_config()
    sequencer = TraceCacheSequencer(injected, config)
    result = PipelineModel(config).simulate(sequencer)
    assert result.x86_retired == len(injected)
    assert result.coverage > 0.3  # hot loop served from the trace cache
    assert sequencer.trace_cache.hits > 0


def test_partial_match_truncates_not_fires():
    injected = loop_injected(300)
    config = default_config()
    sequencer = TraceCacheSequencer(injected, config)
    result = PipelineModel(config).simulate(sequencer)
    # Traces are not atomic: no assertion recovery cycles ever.
    assert result.bins["assert"] == 0
    assert result.frames_fired == 0
