"""Alias classification (symbolic memory equivalence, paper §6.4)."""

from repro.optimizer import AliasClass, classify_alias, observed_disjoint, same_address
from repro.optimizer.optuop import LiveIn, OptUop
from repro.uops import UopOp, UReg


def mem_uop(base=UReg.ESI, index=None, scale=1, disp=0, size=4,
            observed=None, store=False) -> OptUop:
    uop = OptUop(
        op=UopOp.STORE if store else UopOp.LOAD,
        slot=0,
        src_a=LiveIn(base) if base is not None else None,
        src_b=LiveIn(index) if index is not None else None,
        scale=scale,
        imm=disp,
        size=size,
        observed_address=observed,
    )
    return uop


def test_same_symbol_same_disp_is_must():
    a = mem_uop(disp=8)
    b = mem_uop(disp=8, store=True)
    assert classify_alias(a, b) is AliasClass.MUST
    assert same_address(a, b)


def test_same_symbol_disjoint_disp_is_no():
    assert classify_alias(mem_uop(disp=0), mem_uop(disp=4)) is AliasClass.NO


def test_same_symbol_overlapping_ranges_is_must():
    a = mem_uop(disp=0, size=4)
    b = mem_uop(disp=2, size=4)
    assert classify_alias(a, b) is AliasClass.MUST
    assert not same_address(a, b)  # overlap is not equality


def test_different_base_is_may():
    a = mem_uop(base=UReg.ESI)
    b = mem_uop(base=UReg.EDI)
    assert classify_alias(a, b) is AliasClass.MAY


def test_different_index_is_may():
    a = mem_uop(index=UReg.EAX, scale=4)
    b = mem_uop(index=UReg.EBX, scale=4)
    assert classify_alias(a, b) is AliasClass.MAY


def test_same_index_different_scale_is_may():
    a = mem_uop(index=UReg.EAX, scale=4)
    b = mem_uop(index=UReg.EAX, scale=2)
    assert classify_alias(a, b) is AliasClass.MAY


def test_absolute_addresses_compare_literally():
    a = mem_uop(base=None, disp=0x1000)
    b = mem_uop(base=None, disp=0x1004)
    assert classify_alias(a, b) is AliasClass.NO
    c = mem_uop(base=None, disp=0x1002, size=4)
    assert classify_alias(a, c) is AliasClass.MUST


def test_size_matters_for_same_address():
    a = mem_uop(disp=0, size=4)
    b = mem_uop(disp=0, size=2)
    assert not same_address(a, b)


def test_observed_disjoint_requires_observations():
    a = mem_uop(observed=None)
    b = mem_uop(observed=0x2000)
    assert not observed_disjoint(a, b)


def test_observed_disjoint_true_and_false():
    a = mem_uop(observed=0x1000)
    b = mem_uop(observed=0x2000)
    c = mem_uop(observed=0x1002)
    assert observed_disjoint(a, b)
    assert not observed_disjoint(a, c)
