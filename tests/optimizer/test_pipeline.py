"""Pass pipeline: ordering, fixpoint, ablation flags, and Figure 2."""

import pytest

from helpers import buffer_from_uops
from repro.harness.fig2 import build_figure2_frame, optimize_at_scopes
from repro.optimizer import FrameOptimizer, OptimizerConfig
from repro.uops import Uop, UopOp, UReg


def test_fixpoint_cascade_cp_then_ra_then_dce():
    # RA exposes a copy; CP folds a constant; DCE sweeps — requires the
    # loop over passes ("synergistic actions", paper §6.4).
    uops = [
        Uop(UopOp.LIMM, dst=UReg.EAX, imm=8),
        Uop(UopOp.MOV, dst=UReg.EBX, src_a=UReg.EAX),
        Uop(UopOp.ADD, dst=UReg.ECX, src_a=UReg.EBX, imm=2, writes_flags=True),
        Uop(UopOp.MOV, dst=UReg.EAX, src_a=UReg.ECX),
    ]
    buf = buffer_from_uops(uops)
    result = FrameOptimizer().optimize(buf)
    # The LIMM's value folds into every consumer; CP turns the copy into
    # a duplicate LIMM that CSE merges back into slot 0.  Only live-out
    # defs survive (EAX/EBX/ECX, the ADD also carrying live-out flags).
    assert result.uops_after == 3
    assert not buf.uops[1].valid
    assert buf.uops[3].op is UopOp.LIMM and buf.uops[3].imm == 10
    assert result.stats.iterations >= 2


def test_disabled_pass_not_run():
    config = OptimizerConfig().disabled("sf")
    assert not config.enable_sf
    optimizer = FrameOptimizer(config)
    names = [p.name for p in optimizer._passes]
    assert "sf" not in names and "dce" in names


@pytest.mark.parametrize("name", ["asst", "cp", "cse", "nop", "ra", "sf"])
def test_each_ablation_flag(name):
    config = OptimizerConfig().disabled(name)
    flags = [
        config.enable_asst,
        config.enable_cp,
        config.enable_cse,
        config.enable_nop,
        config.enable_ra,
        config.enable_sf,
    ]
    assert flags.count(False) == 1


def test_dce_always_enabled():
    config = OptimizerConfig(
        enable_nop=False,
        enable_cp=False,
        enable_cse=False,
        enable_ra=False,
        enable_sf=False,
        enable_asst=False,
    )
    optimizer = FrameOptimizer(config)
    assert [p.name for p in optimizer._passes] == ["dce"]


def test_optimization_cycles_model():
    frame = build_figure2_frame()
    buf = frame.build_buffer()
    result = FrameOptimizer(OptimizerConfig(cycles_per_uop=10)).optimize(buf)
    assert result.optimization_cycles == 10 * result.uops_before


def test_figure2_frame_level_matches_paper():
    """The paper's headline Figure 2 claim: 17 -> 10 uops, 5 -> 3 loads."""
    results = {r.scope: r for r in optimize_at_scopes()}
    assert results["unoptimized"].uops == 17
    assert results["unoptimized"].loads == 5
    assert results["frame"].uops == 10
    assert results["frame"].loads == 3


def test_figure2_scope_ordering():
    """More scope can never hurt: frame <= inter <= block <= unoptimized."""
    results = {r.scope: r for r in optimize_at_scopes()}
    assert (
        results["frame"].uops
        <= results["inter"].uops
        <= results["block"].uops
        <= results["unoptimized"].uops
    )


def test_figure2_block_scope_matches_paper_intra_block():
    """Paper's intra-block column keeps 13 of 17 micro-operations."""
    results = {r.scope: r for r in optimize_at_scopes()}
    assert results["block"].uops == 13
    assert results["block"].loads == 5  # no cross-block load removal


def test_reduction_property():
    frame = build_figure2_frame()
    buf = frame.build_buffer()
    result = FrameOptimizer().optimize(buf)
    assert result.uops_removed == 7
    assert result.loads_removed == 2
    assert abs(result.reduction - 7 / 17) < 1e-9
