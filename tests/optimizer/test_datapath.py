"""Optimizer datapath primitive-cost model (paper §4)."""

from repro.harness.fig2 import build_figure2_frame
from repro.optimizer import FrameOptimizer
from repro.optimizer.datapath import (
    InstrumentedBuffer,
    PrimitiveCounts,
    check_latency_budget,
    instrument,
)
from repro.workloads import build_workload
from repro.trace import MicroOpInjector
from repro.replay import ConstructorConfig, FrameConstructor


def optimize_instrumented(frame):
    buffer = instrument(frame)
    result = FrameOptimizer().optimize(buffer)
    return buffer, result


def test_counts_accumulate_on_figure2():
    frame = build_figure2_frame()
    buffer, result = optimize_instrumented(frame)
    counts = buffer.counts
    assert counts.removals == result.uops_removed == 7
    assert counts.field_operations > 0
    assert counts.total > 0


def test_instrumented_buffer_matches_plain_optimization():
    plain = build_figure2_frame()
    plain.build_buffer()
    plain_result = FrameOptimizer().optimize(plain.buffer)

    instrumented = build_figure2_frame()
    _, inst_result = optimize_instrumented(instrumented)
    assert inst_result.uops_after == plain_result.uops_after
    assert instrumented.buffer.dump() == plain.buffer.dump()


def test_remapping_not_counted():
    frame = build_figure2_frame()
    buffer = instrument(frame)
    # Construction (the Remapper) finished without tallying primitives.
    assert buffer.counts.total == 0


def test_figure2_fits_paper_latency_budget():
    frame = build_figure2_frame()
    buffer, result = optimize_instrumented(frame)
    assert check_latency_budget(buffer.counts, result.uops_before)


def test_large_frame_fits_paper_latency_budget():
    trace = build_workload("eon")
    injected = MicroOpInjector().inject_trace(trace)
    constructor = FrameConstructor(ConstructorConfig(promotion_threshold=2))
    checked = 0
    for instr in injected:
        frame = constructor.retire(instr)
        if frame is None or frame.raw_uop_count < 64:
            continue
        buffer, result = optimize_instrumented(frame)
        assert check_latency_budget(buffer.counts, result.uops_before), (
            f"frame @ {frame.start_pc:#x}: {buffer.counts.total} primitives "
            f"exceed 10 cycles/uop x {result.uops_before} uops"
        )
        checked += 1
        if checked >= 5:
            break
    assert checked >= 1


def test_primitive_counts_cycles_rounding():
    counts = PrimitiveCounts(field_operations=5)
    assert counts.cycles(ops_per_cycle=2) == 3
    assert counts.cycles(ops_per_cycle=1) == 5
