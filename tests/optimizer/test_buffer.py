"""Optimization buffer: remapping, dependency lists, live-outs."""

import pytest

from helpers import buffer_from_uops
from repro.optimizer import BufferError, DefRef, LiveIn
from repro.uops import Uop, UopOp, UReg
from repro.x86.instructions import Cond


def simple_uops():
    return [
        Uop(UopOp.LIMM, dst=UReg.EAX, imm=1),  # slot 0
        Uop(UopOp.ADD, dst=UReg.EBX, src_a=UReg.EAX, src_b=UReg.ECX,
            writes_flags=True),  # slot 1
        Uop(UopOp.MOV, dst=UReg.EAX, src_a=UReg.EBX),  # slot 2
        Uop(UopOp.ASSERT, cond=Cond.Z),  # slot 3, reads slot 1's flags
    ]


def test_remap_binds_live_ins_and_defs():
    buf = buffer_from_uops(simple_uops())
    add = buf.uops[1]
    assert add.src_a == DefRef(0)  # EAX defined by slot 0
    assert add.src_b == LiveIn(UReg.ECX)  # never defined in frame


def test_dst_equals_slot_number():
    buf = buffer_from_uops(simple_uops())
    for slot, uop in enumerate(buf.uops):
        assert uop.slot == slot


def test_flags_chain_tracked():
    buf = buffer_from_uops(simple_uops())
    assertion = buf.uops[3]
    assert assertion.flags_src == 1
    assert buf.flags_children[1] == {3}


def test_live_out_is_last_writer():
    buf = buffer_from_uops(simple_uops())
    assert buf.live_out[UReg.EAX] == DefRef(2)
    assert buf.live_out[UReg.EBX] == DefRef(1)
    assert UReg.ECX not in buf.live_out  # unwritten regs stay live-in
    assert buf.flags_live_out_slot == 1


def test_dependency_lists_populated():
    buf = buffer_from_uops(simple_uops())
    assert buf.value_children[0] == {1}
    assert buf.value_children[1] == {2}


def test_parent_lookup_is_slot_indexing():
    buf = buffer_from_uops(simple_uops())
    assert buf.parent(DefRef(1)) is buf.uops[1]
    assert buf.parent(LiveIn(UReg.ECX)) is None


def test_undefined_temp_rejected():
    with pytest.raises(BufferError, match="undefined temporary"):
        buffer_from_uops([Uop(UopOp.MOV, dst=UReg.EAX, src_a=UReg.ET0)])


def test_replace_all_uses_rewires_children_and_liveout():
    buf = buffer_from_uops(simple_uops())
    count = buf.replace_all_uses(2, DefRef(1))
    assert count >= 1
    assert buf.live_out[UReg.EAX] == DefRef(1)
    assert not buf.value_children[2]


def test_invalidate_with_children_rejected():
    buf = buffer_from_uops(simple_uops())
    with pytest.raises(BufferError, match="children"):
        buf.invalidate(0)


def test_invalidate_detaches_from_parents():
    buf = buffer_from_uops(simple_uops())
    buf.replace_all_uses(2, DefRef(1))
    buf.invalidate(2)
    assert not buf.uops[2].valid
    assert 2 not in buf.value_children[1]


def test_replace_flags_uses():
    uops = [
        Uop(UopOp.SUB, dst=None, src_a=UReg.EAX, imm=1, writes_flags=True),
        Uop(UopOp.SUB, dst=None, src_a=UReg.EAX, imm=1, writes_flags=True),
        Uop(UopOp.ASSERT, cond=Cond.Z),
    ]
    buf = buffer_from_uops(uops)
    assert buf.uops[2].flags_src == 1
    buf.replace_flags_uses(1, 0)
    assert buf.uops[2].flags_src == 0
    assert buf.flags_live_out_slot == 0


def test_value_protected_slots_frame_vs_block():
    uops = [
        Uop(UopOp.LIMM, dst=UReg.EAX, imm=1),  # block 0, overwritten later
        Uop(UopOp.BR, cond=Cond.Z, target=0, taken=True),  # block boundary
        Uop(UopOp.LIMM, dst=UReg.EAX, imm=2),  # block 1, final
    ]
    buf = buffer_from_uops(uops, block_starts=[0, 2])
    frame_protected = buf.value_protected_slots("frame")
    block_protected = buf.value_protected_slots("block")
    assert 0 not in frame_protected  # atomic frame: only final EAX matters
    assert 2 in frame_protected
    assert 0 in block_protected  # control may exit between the blocks
    assert 2 in block_protected


def test_mem_slots_in_order():
    uops = [
        Uop(UopOp.STORE, src_a=UReg.ESP, imm=-4, src_data=UReg.EBP),
        Uop(UopOp.LIMM, dst=UReg.EAX, imm=0),
        Uop(UopOp.LOAD, dst=UReg.EBX, src_a=UReg.ESP, imm=-4),
    ]
    buf = buffer_from_uops(uops)
    assert buf.mem_slots() == [0, 2]


def test_counts():
    buf = buffer_from_uops(simple_uops())
    assert buf.valid_count() == 4
    assert buf.load_count() == 0
    assert buf.store_count() == 0


def test_dump_lists_valid_slots():
    buf = buffer_from_uops(simple_uops())
    dump = buf.dump()
    assert dump.count("\n") == 3  # four lines
    assert "EAX" in dump
