"""Surgical unit tests for the individual optimization passes."""

from helpers import buffer_from_uops
from repro.optimizer import DefRef, LiveIn, OptContext
from repro.optimizer.passes import (
    CommonSubexpression,
    ConstantPropagation,
    DeadCodeElimination,
    NopRemoval,
    Reassociation,
    StoreForwarding,
    ValueAssertion,
)
from repro.uops import Uop, UopOp, UReg
from repro.x86.instructions import Cond


def ctx(**kwargs) -> OptContext:
    return OptContext(**kwargs)


# ------------------------------------------------------------ NOP removal


def test_nop_removes_nops_and_jmps():
    buf = buffer_from_uops(
        [
            Uop(UopOp.NOP),
            Uop(UopOp.JMP, target=0x100),
            Uop(UopOp.ADD, dst=UReg.EAX, src_a=UReg.EAX, imm=1),
        ]
    )
    changes = NopRemoval()(buf, ctx())
    assert changes == 2
    assert buf.valid_count() == 1


def test_nop_keeps_conditional_and_indirect():
    buf = buffer_from_uops(
        [
            Uop(UopOp.BR, cond=Cond.Z, target=0x10),
            Uop(UopOp.JMPI, src_a=UReg.EAX),
        ]
    )
    assert NopRemoval()(buf, ctx()) == 0


# --------------------------------------------------- constant propagation


def test_cp_folds_limm_into_alu_imm():
    buf = buffer_from_uops(
        [
            Uop(UopOp.LIMM, dst=UReg.EBX, imm=5),
            Uop(UopOp.ADD, dst=UReg.EAX, src_a=UReg.EAX, src_b=UReg.EBX,
                writes_flags=True),
        ]
    )
    ConstantPropagation()(buf, ctx())
    add = buf.uops[1]
    assert add.src_b is None and add.imm == 5


def test_cp_commutative_swap_for_constant_left():
    buf = buffer_from_uops(
        [
            Uop(UopOp.LIMM, dst=UReg.EBX, imm=5),
            Uop(UopOp.ADD, dst=UReg.EAX, src_a=UReg.EBX, src_b=UReg.ECX),
        ]
    )
    ConstantPropagation()(buf, ctx())
    add = buf.uops[1]
    assert add.src_a == LiveIn(UReg.ECX) and add.imm == 5


def test_cp_folds_constants_into_address():
    buf = buffer_from_uops(
        [
            Uop(UopOp.LIMM, dst=UReg.ESI, imm=0x1000),
            Uop(UopOp.LOAD, dst=UReg.EAX, src_a=UReg.ESI, imm=8),
        ]
    )
    ConstantPropagation()(buf, ctx())
    load = buf.uops[1]
    assert load.src_a is None and load.imm == 0x1008


def test_cp_evaluates_constant_chains():
    buf = buffer_from_uops(
        [
            Uop(UopOp.LIMM, dst=UReg.EAX, imm=6),
            Uop(UopOp.ADD, dst=UReg.EBX, src_a=UReg.EAX, imm=4),
            Uop(UopOp.MOV, dst=UReg.ECX, src_a=UReg.EBX),
        ]
    )
    ConstantPropagation()(buf, ctx())
    assert buf.uops[1].op is UopOp.LIMM and buf.uops[1].imm == 10
    assert buf.uops[2].op is UopOp.LIMM and buf.uops[2].imm == 10


def test_cp_keeps_flag_writer_with_live_flags():
    buf = buffer_from_uops(
        [
            Uop(UopOp.LIMM, dst=UReg.EAX, imm=6),
            Uop(UopOp.ADD, dst=UReg.EBX, src_a=UReg.EAX, imm=4,
                writes_flags=True),
            Uop(UopOp.ASSERT, cond=Cond.NZ),
        ]
    )
    ConstantPropagation()(buf, ctx())
    # Flags are consumed by the assertion: the ADD cannot become LIMM.
    assert buf.uops[1].op is UopOp.ADD


def test_cp_zeroing_idiom():
    buf = buffer_from_uops(
        [
            Uop(UopOp.XOR, dst=UReg.EAX, src_a=UReg.EAX, src_b=UReg.EAX,
                writes_flags=True),
            Uop(UopOp.ADD, dst=UReg.EBX, src_a=UReg.EBX, src_b=UReg.EAX,
                writes_flags=True),
        ]
    )
    ConstantPropagation()(buf, ctx())
    add = buf.uops[1]
    assert add.src_b is None and add.imm == 0


def test_cp_identity_add_becomes_mov():
    buf = buffer_from_uops(
        [
            Uop(UopOp.ADD, dst=UReg.EAX, src_a=UReg.EBX, imm=0),
        ]
    )
    ConstantPropagation()(buf, ctx())
    assert buf.uops[0].op is UopOp.MOV


def test_cp_jmpi_with_constant_target_becomes_jmp():
    buf = buffer_from_uops(
        [
            Uop(UopOp.LIMM, dst=UReg.ET2, imm=0x4010),
            Uop(UopOp.JMPI, src_a=UReg.ET2),
        ]
    )
    ConstantPropagation()(buf, ctx())
    assert buf.uops[1].op is UopOp.JMP and buf.uops[1].target == 0x4010


def test_cp_discharges_true_value_assertion():
    buf = buffer_from_uops(
        [
            Uop(UopOp.LIMM, dst=UReg.ET2, imm=0x4010),
            Uop(UopOp.ASSERT_CMP, cond=Cond.Z, cmp_kind=UopOp.SUB,
                src_a=UReg.ET2, imm=0x4010),
        ]
    )
    ConstantPropagation()(buf, ctx())
    assert not buf.uops[1].valid


def test_cp_keeps_false_value_assertion():
    buf = buffer_from_uops(
        [
            Uop(UopOp.LIMM, dst=UReg.ET2, imm=0x4010),
            Uop(UopOp.ASSERT_CMP, cond=Cond.Z, cmp_kind=UopOp.SUB,
                src_a=UReg.ET2, imm=0x9999),
        ]
    )
    ConstantPropagation()(buf, ctx())
    assert buf.uops[1].valid


# --------------------------------------------------------- reassociation


def test_ra_copy_propagation():
    buf = buffer_from_uops(
        [
            Uop(UopOp.MOV, dst=UReg.EDX, src_a=UReg.ECX),
            Uop(UopOp.OR, dst=UReg.EDX, src_a=UReg.EDX, src_b=UReg.EBX,
                writes_flags=True),
        ]
    )
    Reassociation()(buf, ctx())
    assert buf.uops[1].src_a == LiveIn(UReg.ECX)


def test_ra_flattens_stack_pointer_chain():
    # Two PUSH-style updates: the second store re-points at live-in ESP.
    buf = buffer_from_uops(
        [
            Uop(UopOp.SUB, dst=UReg.ESP, src_a=UReg.ESP, imm=4),
            Uop(UopOp.STORE, src_a=UReg.ESP, imm=-4, src_data=UReg.EBX),
            Uop(UopOp.SUB, dst=UReg.ESP, src_a=UReg.ESP, imm=4),
        ]
    )
    Reassociation()(buf, ctx())
    store = buf.uops[1]
    assert store.src_a == LiveIn(UReg.ESP) and store.imm == -8
    # The second SUB folds through the first: ESP.in + (-8).
    assert buf.uops[2].src_a == LiveIn(UReg.ESP)
    assert buf.uops[2].op is UopOp.ADD and buf.uops[2].imm == -8


def test_ra_folds_into_flag_dead_alu_only():
    buf = buffer_from_uops(
        [
            Uop(UopOp.ADD, dst=UReg.EAX, src_a=UReg.EBX, imm=4),
            Uop(UopOp.ADD, dst=UReg.ECX, src_a=UReg.EAX, imm=2,
                writes_flags=True),
            Uop(UopOp.ASSERT, cond=Cond.NZ),  # consumes slot 1's flags
        ]
    )
    Reassociation()(buf, ctx())
    # Folding would change slot 1's CF/OF, and its flags are live.
    assert buf.uops[1].src_a == DefRef(0)


def test_ra_add_of_two_defs_becomes_lea():
    buf = buffer_from_uops(
        [
            Uop(UopOp.ADD, dst=UReg.EAX, src_a=UReg.EBX, imm=4),
            Uop(UopOp.ADD, dst=UReg.ECX, src_a=UReg.EDX, src_b=UReg.EAX),
        ]
    )
    Reassociation()(buf, ctx())
    lea = buf.uops[1]
    assert lea.op is UopOp.LEA
    assert lea.src_b == LiveIn(UReg.EBX) and lea.imm == 4


def test_ra_folds_lea_into_memory_child():
    buf = buffer_from_uops(
        [
            Uop(UopOp.LEA, dst=UReg.ESI, src_a=UReg.EBX, src_b=UReg.EDI,
                scale=4, imm=0x10),
            Uop(UopOp.LOAD, dst=UReg.EAX, src_a=UReg.ESI, imm=4),
        ]
    )
    Reassociation()(buf, ctx())
    load = buf.uops[1]
    assert load.src_a == LiveIn(UReg.EBX)
    assert load.src_b == LiveIn(UReg.EDI)
    assert load.scale == 4 and load.imm == 0x14


# ------------------------------------------------------------------- CSE


def test_cse_removes_duplicate_alu():
    buf = buffer_from_uops(
        [
            Uop(UopOp.ADD, dst=UReg.EAX, src_a=UReg.EBX, imm=8),
            Uop(UopOp.ADD, dst=UReg.ECX, src_a=UReg.EBX, imm=8),
            Uop(UopOp.MOV, dst=UReg.EDX, src_a=UReg.ECX),
        ]
    )
    CommonSubexpression()(buf, ctx())
    assert not buf.uops[1].valid
    assert buf.uops[2].src_a == DefRef(0)


def test_cse_removes_redundant_load():
    load = lambda dst: Uop(UopOp.LOAD, dst=dst, src_a=UReg.ESI, imm=0)
    buf = buffer_from_uops([load(UReg.EAX), load(UReg.EBX)])
    changes = CommonSubexpression()(buf, ctx())
    assert changes == 1
    assert not buf.uops[1].valid
    assert buf.live_out[UReg.EBX] == DefRef(0)


def test_cse_blocked_by_must_alias_store():
    buf = buffer_from_uops(
        [
            Uop(UopOp.LOAD, dst=UReg.EAX, src_a=UReg.ESI, imm=0),
            Uop(UopOp.STORE, src_a=UReg.ESI, imm=0, src_data=UReg.EBX),
            Uop(UopOp.LOAD, dst=UReg.ECX, src_a=UReg.ESI, imm=0),
        ]
    )
    CommonSubexpression()(buf, ctx())
    assert buf.uops[2].valid  # store forwarding's case, not CSE's


def test_cse_passes_disjoint_same_base_store():
    buf = buffer_from_uops(
        [
            Uop(UopOp.LOAD, dst=UReg.EAX, src_a=UReg.ESI, imm=0),
            Uop(UopOp.STORE, src_a=UReg.ESI, imm=16, src_data=UReg.EBX),
            Uop(UopOp.LOAD, dst=UReg.ECX, src_a=UReg.ESI, imm=0),
        ]
    )
    CommonSubexpression()(buf, ctx())
    assert not buf.uops[2].valid
    assert not buf.uops[1].unsafe  # statically disjoint: no speculation


def test_cse_speculates_past_may_alias_store():
    first = Uop(UopOp.LOAD, dst=UReg.EAX, src_a=UReg.ESI, imm=0)
    first.mem_address = 0x1000
    store = Uop(UopOp.STORE, src_a=UReg.EDI, imm=0, src_data=UReg.EBX)
    store.mem_address = 0x2000  # observed disjoint
    second = Uop(UopOp.LOAD, dst=UReg.ECX, src_a=UReg.ESI, imm=0)
    second.mem_address = 0x1000
    buf = buffer_from_uops([first, store, second])
    context = ctx(speculation=True)
    CommonSubexpression()(buf, context)
    assert not buf.uops[2].valid
    assert buf.uops[1].unsafe
    assert buf.uops[1].unsafe_guards == [0]
    assert context.stats.loads_removed_speculatively == 1


def test_cse_no_speculation_when_disabled():
    first = Uop(UopOp.LOAD, dst=UReg.EAX, src_a=UReg.ESI, imm=0)
    first.mem_address = 0x1000
    store = Uop(UopOp.STORE, src_a=UReg.EDI, imm=0, src_data=UReg.EBX)
    store.mem_address = 0x2000
    second = Uop(UopOp.LOAD, dst=UReg.ECX, src_a=UReg.ESI, imm=0)
    second.mem_address = 0x1000
    buf = buffer_from_uops([first, store, second])
    CommonSubexpression()(buf, ctx(speculation=False))
    assert buf.uops[2].valid


def test_cse_no_speculation_when_observed_alias():
    first = Uop(UopOp.LOAD, dst=UReg.EAX, src_a=UReg.ESI, imm=0)
    first.mem_address = 0x1000
    store = Uop(UopOp.STORE, src_a=UReg.EDI, imm=0, src_data=UReg.EBX)
    store.mem_address = 0x1000  # actually aliased during construction
    second = Uop(UopOp.LOAD, dst=UReg.ECX, src_a=UReg.ESI, imm=0)
    second.mem_address = 0x1000
    buf = buffer_from_uops([first, store, second])
    CommonSubexpression()(buf, ctx(speculation=True))
    assert buf.uops[2].valid


# -------------------------------------------------------- store forwarding


def test_sf_forwards_store_to_load():
    buf = buffer_from_uops(
        [
            Uop(UopOp.STORE, src_a=UReg.ESP, imm=-4, src_data=UReg.EBP),
            Uop(UopOp.LOAD, dst=UReg.EBX, src_a=UReg.ESP, imm=-4),
            Uop(UopOp.ADD, dst=UReg.EAX, src_a=UReg.EBX, imm=1),
        ]
    )
    StoreForwarding()(buf, ctx())
    assert not buf.uops[1].valid
    assert buf.uops[2].src_a == LiveIn(UReg.EBP)
    assert buf.live_out[UReg.EBX] == LiveIn(UReg.EBP)


def test_sf_never_removes_stores():
    buf = buffer_from_uops(
        [
            Uop(UopOp.STORE, src_a=UReg.ESP, imm=-4, src_data=UReg.EBP),
            Uop(UopOp.LOAD, dst=UReg.EBX, src_a=UReg.ESP, imm=-4),
        ]
    )
    StoreForwarding()(buf, ctx())
    assert buf.uops[0].valid


def test_sf_requires_full_width():
    buf = buffer_from_uops(
        [
            Uop(UopOp.STORE, src_a=UReg.ESP, imm=-4, src_data=UReg.EBP, size=2),
            Uop(UopOp.LOAD, dst=UReg.EBX, src_a=UReg.ESP, imm=-4, size=2),
        ]
    )
    StoreForwarding()(buf, ctx())
    assert buf.uops[1].valid  # narrow stores truncate: memory must supply


def test_sf_blocked_by_partial_overlap():
    buf = buffer_from_uops(
        [
            Uop(UopOp.STORE, src_a=UReg.ESP, imm=0, src_data=UReg.EBP),
            Uop(UopOp.STORE, src_a=UReg.ESP, imm=2, src_data=UReg.EAX, size=2),
            Uop(UopOp.LOAD, dst=UReg.EBX, src_a=UReg.ESP, imm=0),
        ]
    )
    StoreForwarding()(buf, ctx())
    assert buf.uops[2].valid


def test_sf_speculates_and_marks_unsafe():
    store1 = Uop(UopOp.STORE, src_a=UReg.ESP, imm=-4, src_data=UReg.EBP)
    store1.mem_address = 0xF000
    wild = Uop(UopOp.STORE, src_a=UReg.EDI, imm=0, src_data=UReg.EAX)
    wild.mem_address = 0x2000
    load = Uop(UopOp.LOAD, dst=UReg.EBX, src_a=UReg.ESP, imm=-4)
    load.mem_address = 0xF000
    buf = buffer_from_uops([store1, wild, load])
    context = ctx(speculation=True)
    StoreForwarding()(buf, context)
    assert not buf.uops[2].valid
    assert buf.uops[1].unsafe and buf.uops[1].unsafe_guards == [0]


# ------------------------------------------------------------------- DCE


def test_dce_removes_dead_chain():
    buf = buffer_from_uops(
        [
            Uop(UopOp.LIMM, dst=UReg.ET0, imm=1),
            Uop(UopOp.ADD, dst=UReg.ET1, src_a=UReg.ET0, imm=2),
        ]
    )
    changes = DeadCodeElimination()(buf, ctx())
    assert changes == 2
    assert buf.valid_count() == 0


def test_dce_keeps_live_out_values():
    buf = buffer_from_uops([Uop(UopOp.LIMM, dst=UReg.EAX, imm=1)])
    assert DeadCodeElimination()(buf, ctx()) == 0


def test_dce_keeps_live_flags():
    buf = buffer_from_uops(
        [Uop(UopOp.SUB, dst=None, src_a=UReg.EAX, imm=1, writes_flags=True)]
    )
    # The compare is the frame's last flag writer: flags are live-out.
    assert DeadCodeElimination()(buf, ctx()) == 0


def test_dce_removes_overwritten_flag_def():
    buf = buffer_from_uops(
        [
            Uop(UopOp.SUB, dst=None, src_a=UReg.EAX, imm=1, writes_flags=True),
            Uop(UopOp.SUB, dst=None, src_a=UReg.EAX, imm=2, writes_flags=True),
        ]
    )
    DeadCodeElimination()(buf, ctx())
    assert not buf.uops[0].valid and buf.uops[1].valid


def test_dce_never_removes_stores_or_asserts():
    buf = buffer_from_uops(
        [
            Uop(UopOp.STORE, src_a=UReg.ESP, imm=-4, src_data=UReg.EBP),
            Uop(UopOp.ASSERT, cond=Cond.Z),
        ]
    )
    assert DeadCodeElimination()(buf, ctx()) == 0


def test_dce_block_scope_protects_block_boundaries():
    uops = [
        Uop(UopOp.LIMM, dst=UReg.EAX, imm=1),  # block 0
        Uop(UopOp.BR, cond=Cond.Z, target=0, taken=True),
        Uop(UopOp.LIMM, dst=UReg.EAX, imm=2),  # block 1
    ]
    frame_buf = buffer_from_uops(uops, block_starts=[0, 2])
    DeadCodeElimination()(frame_buf, ctx(scope="frame"))
    assert not frame_buf.uops[0].valid  # frame scope: first def dead

    block_buf = buffer_from_uops(
        [u.copy() for u in uops], block_starts=[0, 2]
    )
    DeadCodeElimination()(block_buf, ctx(scope="block"))
    assert block_buf.uops[0].valid  # may be observed at the block exit


# -------------------------------------------------------- value assertion


def test_asst_fuses_cmp_and_assert():
    buf = buffer_from_uops(
        [
            Uop(UopOp.SUB, dst=None, src_a=UReg.EAX, imm=5, writes_flags=True),
            Uop(UopOp.ASSERT, cond=Cond.Z),
        ]
    )
    changes = ValueAssertion()(buf, ctx())
    assert changes == 1
    assert not buf.uops[0].valid
    fused = buf.uops[1]
    assert fused.op is UopOp.ASSERT_CMP
    assert fused.cmp_kind is UopOp.SUB and fused.imm == 5
    assert fused.writes_flags  # flags were architecturally live-out
    assert buf.flags_live_out_slot == 1


def test_asst_requires_dead_value():
    buf = buffer_from_uops(
        [
            Uop(UopOp.SUB, dst=UReg.EAX, src_a=UReg.EAX, imm=5,
                writes_flags=True),
            Uop(UopOp.ASSERT, cond=Cond.Z),
        ]
    )
    # EAX is live-out, so the SUB cannot be absorbed.
    assert ValueAssertion()(buf, ctx()) == 0


def test_asst_requires_single_flag_consumer():
    buf = buffer_from_uops(
        [
            Uop(UopOp.SUB, dst=None, src_a=UReg.EAX, imm=5, writes_flags=True),
            Uop(UopOp.ASSERT, cond=Cond.Z),
            Uop(UopOp.BR, cond=Cond.S, target=0x10),
        ]
    )
    assert ValueAssertion()(buf, ctx()) == 0
