"""Explicit pass-spec strings: parsing, aliases, flag equivalence."""

import pytest

from repro.harness.experiment import ExperimentConfig
from repro.optimizer.pipeline import (
    PASS_ALIASES,
    PASS_NAMES,
    FrameOptimizer,
    OptimizerConfig,
    format_pass_spec,
    parse_pass_spec,
)
from repro.timing.config import ConfigError


def test_parse_canonical_spec():
    assert parse_pass_spec(",".join(PASS_NAMES)) == PASS_NAMES


def test_parse_resolves_legend_aliases():
    assert parse_pass_spec("asst,dce") == ("va", "dce")
    assert PASS_ALIASES == {"asst": "va"}


def test_parse_tolerates_whitespace_and_preserves_order():
    assert parse_pass_spec(" sf , cp , dce ") == ("sf", "cp", "dce")


@pytest.mark.parametrize(
    "spec, match",
    [
        ("cp,,dce", "empty pass name"),
        ("cp,warp,dce", "unknown pass"),
        ("cp,cp,dce", "duplicate pass"),
        ("asst,va,dce", "duplicate pass"),  # alias collides with target
        ("cp,sf", "must appear in the spec"),  # dce is mandatory
        ("", "empty pass name"),
    ],
)
def test_parse_rejects_malformed_specs(spec, match):
    with pytest.raises(ConfigError, match=match) as excinfo:
        parse_pass_spec(spec)
    assert excinfo.value.field == "optimizer.pass_spec"


def test_format_is_the_inverse_of_parse():
    spec = "ra,nop,dce"
    assert format_pass_spec(parse_pass_spec(spec)) == spec


def test_spec_overrides_enable_flags():
    # With a spec the per-pass booleans are ignored entirely.
    config = OptimizerConfig(pass_spec="cp,dce", enable_cp=False)
    assert config.resolved_pass_names() == ("cp", "dce")


def test_disabled_flag_equals_leave_one_out_spec():
    for name in ("nop", "cp", "ra", "cse", "sf", "asst"):
        by_flag = OptimizerConfig().disabled(name).resolved_pass_names()
        resolved = PASS_ALIASES.get(name, name)
        by_spec = OptimizerConfig(
            pass_spec=format_pass_spec(
                tuple(n for n in PASS_NAMES if n != resolved)
            )
        ).resolved_pass_names()
        assert by_flag == by_spec


def test_optimizer_builds_passes_in_spec_order():
    optimizer = FrameOptimizer(OptimizerConfig(pass_spec="sf,cp,dce"))
    assert len(optimizer._passes) == 3
    default = FrameOptimizer(OptimizerConfig())
    assert len(default._passes) == len(PASS_NAMES)


def test_bad_spec_fails_at_optimizer_construction():
    with pytest.raises(ConfigError, match="unknown pass"):
        FrameOptimizer(OptimizerConfig(pass_spec="hoist,dce"))


def test_pass_spec_lands_in_the_experiment_fingerprint():
    base = ExperimentConfig(name="RPO", frontend="replay", optimize=True)
    tuned = ExperimentConfig(
        name="RPO",
        frontend="replay",
        optimize=True,
        optimizer=OptimizerConfig(pass_spec="cp,dce"),
    )
    assert base.fingerprint() != tuned.fingerprint()
