"""Property-based correctness: optimized frames preserve semantics.

For randomly generated straight-line uop frames, optimization at any
scope and with any pass subset must leave the frame's architectural
effects — final registers, final flags, and stored bytes — exactly
unchanged.  This is the machine-checked version of the State Verifier's
guarantee, explored over a much wider input space.
"""

from hypothesis import given, settings, strategies as st

from helpers import buffer_from_uops
from repro.optimizer import FrameOptimizer, OptimizerConfig
from repro.uops import Uop, UopOp, UReg
from repro.verify.frame_exec import execute_frame
from repro.x86.instructions import Cond

ARCH = [UReg(i) for i in range(8)]

_alu_ops = st.sampled_from(
    [UopOp.ADD, UopOp.SUB, UopOp.AND, UopOp.OR, UopOp.XOR, UopOp.MUL]
)
_regs = st.sampled_from(ARCH)
_small_imm = st.integers(min_value=-64, max_value=64)


@st.composite
def uop_strategy(draw):
    kind = draw(st.sampled_from(["alu", "alu_imm", "limm", "mov", "load",
                                 "store", "shift", "nop"]))
    if kind == "alu":
        return Uop(
            draw(_alu_ops),
            dst=draw(_regs),
            src_a=draw(_regs),
            src_b=draw(_regs),
            writes_flags=draw(st.booleans()),
        )
    if kind == "alu_imm":
        return Uop(
            draw(_alu_ops),
            dst=draw(_regs),
            src_a=draw(_regs),
            imm=draw(_small_imm),
            writes_flags=draw(st.booleans()),
        )
    if kind == "limm":
        return Uop(UopOp.LIMM, dst=draw(_regs), imm=draw(_small_imm))
    if kind == "mov":
        return Uop(UopOp.MOV, dst=draw(_regs), src_a=draw(_regs))
    if kind == "load":
        return Uop(
            UopOp.LOAD,
            dst=draw(_regs),
            src_a=draw(st.sampled_from([UReg.ESI, UReg.EDI, UReg.ESP])),
            imm=draw(st.integers(min_value=-16, max_value=16)) * 4,
        )
    if kind == "store":
        return Uop(
            UopOp.STORE,
            src_a=draw(st.sampled_from([UReg.ESI, UReg.EDI, UReg.ESP])),
            imm=draw(st.integers(min_value=-16, max_value=16)) * 4,
            src_data=draw(_regs),
        )
    if kind == "shift":
        return Uop(
            draw(st.sampled_from([UopOp.SHL, UopOp.SHR, UopOp.SAR])),
            dst=draw(_regs),
            src_a=draw(_regs),
            imm=draw(st.integers(min_value=0, max_value=31)),
            writes_flags=draw(st.booleans()),
        )
    return Uop(UopOp.NOP)


frame_strategy = st.lists(uop_strategy(), min_size=2, max_size=24)
regs_strategy = st.lists(
    st.integers(min_value=0, max_value=0xFFFFFFFF), min_size=8, max_size=8
)
flags_strategy = st.tuples(
    st.booleans(), st.booleans(), st.booleans(), st.booleans()
)


def observe(buffer, live_in, flags):
    outcome = execute_frame(buffer, live_in, flags, lambda address: (address * 37) & 0xFF)
    stores = {}
    for address, size, value in outcome.stores:
        for i in range(size):
            stores[(address + i) & 0xFFFFFFFF] = (value >> (8 * i)) & 0xFF
    return outcome.final_regs, outcome.final_flags, stores


@given(frame_strategy, regs_strategy, flags_strategy)
@settings(max_examples=120, deadline=None)
def test_full_optimization_preserves_semantics(uops, reg_values, flags):
    live_in = {UReg(i): reg_values[i] for i in range(8)}
    reference = buffer_from_uops([u.copy() for u in uops])
    expected = observe(reference, live_in, flags)

    optimized = buffer_from_uops([u.copy() for u in uops])
    FrameOptimizer().optimize(optimized)
    assert observe(optimized, live_in, flags) == expected


@given(frame_strategy, regs_strategy, flags_strategy,
       st.sampled_from(["block", "inter", "frame"]))
@settings(max_examples=60, deadline=None)
def test_every_scope_preserves_semantics(uops, reg_values, flags, scope):
    live_in = {UReg(i): reg_values[i] for i in range(8)}
    reference = buffer_from_uops([u.copy() for u in uops])
    expected = observe(reference, live_in, flags)

    optimized = buffer_from_uops([u.copy() for u in uops])
    FrameOptimizer(OptimizerConfig(scope=scope)).optimize(optimized)
    assert observe(optimized, live_in, flags) == expected


@given(frame_strategy, regs_strategy, flags_strategy,
       st.sampled_from(["asst", "cp", "cse", "nop", "ra", "sf"]))
@settings(max_examples=60, deadline=None)
def test_every_ablation_preserves_semantics(uops, reg_values, flags, disabled):
    live_in = {UReg(i): reg_values[i] for i in range(8)}
    reference = buffer_from_uops([u.copy() for u in uops])
    expected = observe(reference, live_in, flags)

    optimized = buffer_from_uops([u.copy() for u in uops])
    FrameOptimizer(OptimizerConfig().disabled(disabled)).optimize(optimized)
    assert observe(optimized, live_in, flags) == expected


@given(frame_strategy)
@settings(max_examples=60, deadline=None)
def test_optimization_never_adds_uops_or_memory_ops(uops):
    buffer = buffer_from_uops([u.copy() for u in uops])
    stores_before = buffer.store_count()
    loads_before = buffer.load_count()
    count_before = buffer.valid_count()
    FrameOptimizer().optimize(buffer)
    assert buffer.valid_count() <= count_before
    assert buffer.store_count() == stores_before  # stores never removed
    assert buffer.load_count() <= loads_before


@given(frame_strategy)
@settings(max_examples=40, deadline=None)
def test_optimization_is_idempotent(uops):
    buffer = buffer_from_uops([u.copy() for u in uops])
    optimizer = FrameOptimizer()
    optimizer.optimize(buffer)
    first = buffer.valid_count()
    optimizer.optimize(buffer)
    assert buffer.valid_count() == first
