"""Property tests: arbitrary pass subsets/orders stay correct.

Two layers.  Pure spec algebra: any sampled subset/order round-trips
through parse/format and resolves to the class sequence the pipeline
will run.  Semantics: running sampled specs as differential-oracle
variants never diverges from the emulator — optimization correctness
is order- and subset-independent, which is what licenses the tune
subsystem to search that space freely.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fuzz.generator import generate_program
from repro.fuzz.oracle import OracleConfig, run_differential, variant_config
from repro.optimizer.pipeline import (
    PASS_NAMES,
    FrameOptimizer,
    OptimizerConfig,
    format_pass_spec,
    parse_pass_spec,
)

_OPTIONAL = [n for n in PASS_NAMES if n != "dce"]

#: A random subset of the optional passes in a random order, with the
#: mandatory dce terminal appended — every spec the planner can emit.
_specs = st.permutations(_OPTIONAL).flatmap(
    lambda order: st.integers(min_value=0, max_value=len(order)).map(
        lambda k: format_pass_spec(tuple(order[:k]) + ("dce",))
    )
)


@given(_specs)
@settings(max_examples=100, deadline=None)
def test_spec_round_trips_and_resolves_in_order(spec):
    names = parse_pass_spec(spec)
    assert format_pass_spec(names) == spec
    assert names[-1] == "dce" and len(set(names)) == len(names)
    config = OptimizerConfig(pass_spec=spec)
    assert config.resolved_pass_names() == names
    # The optimizer instantiates exactly those passes, in spec order.
    built = [type(p).__name__ for p in FrameOptimizer(config)._passes]
    assert built == [
        type(p).__name__
        for p in FrameOptimizer(
            OptimizerConfig(pass_spec=format_pass_spec(names))
        )._passes
    ]
    assert len(built) == len(names)


@given(_specs, st.integers(min_value=1, max_value=40))
@settings(max_examples=20, deadline=None)
def test_sampled_specs_keep_the_oracle_clean(spec, seed):
    """Differential check: any subset/order commits the same
    architectural state as the unoptimized emulator."""
    config = OracleConfig(variants=("full", f"spec:{spec}"))
    report = run_differential(generate_program(seed), config)
    assert report.ok, (spec, seed, report.divergences)


def test_variant_config_accepts_specs_and_rejects_bad_ones():
    assert variant_config("spec:sf,cp,dce").pass_spec == "sf,cp,dce"
    with pytest.raises(ValueError, match="pass_spec"):
        variant_config("spec:sf,cp")  # missing the dce terminal
