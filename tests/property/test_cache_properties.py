"""Property tests on cache invariants."""

from hypothesis import given, settings, strategies as st

from repro.timing import Cache, CacheConfig

_addresses = st.lists(
    st.integers(min_value=0, max_value=0xFFFF), min_size=1, max_size=300
)


@given(_addresses)
@settings(max_examples=60, deadline=None)
def test_hits_plus_misses_equals_accesses(addresses):
    cache = Cache(CacheConfig(size_bytes=1024, line_bytes=64, associativity=2))
    for address in addresses:
        cache.access(address)
    assert cache.hits + cache.misses == len(addresses)


@given(_addresses)
@settings(max_examples=60, deadline=None)
def test_occupancy_never_exceeds_capacity(addresses):
    config = CacheConfig(size_bytes=512, line_bytes=64, associativity=2)
    cache = Cache(config)
    for address in addresses:
        cache.access(address)
    for ways in cache._sets:
        assert len(ways) <= config.associativity


@given(_addresses)
@settings(max_examples=60, deadline=None)
def test_immediate_rereference_always_hits(addresses):
    cache = Cache(CacheConfig(size_bytes=1024, line_bytes=64, associativity=2))
    for address in addresses:
        cache.access(address)
        assert cache.access(address)


@given(st.integers(min_value=0, max_value=0xFFFF),
       st.integers(min_value=1, max_value=256))
@settings(max_examples=60, deadline=None)
def test_access_range_touches_every_line(address, size):
    cache = Cache(CacheConfig(size_bytes=1 << 20, line_bytes=64,
                              associativity=16))
    # One transaction = one statistic: a single (cold) miss, however many
    # lines the range spans ...
    assert not cache.access_range(address, size)
    assert cache.misses == 1 and cache.hits == 0
    # ... yet every spanned line was filled: re-probing each line hits.
    first = address >> 6
    last = (address + size - 1) >> 6
    for line in range(first, last + 1):
        assert cache.access(line << 6)
    assert cache.hits == last - first + 1
    # And the whole-range re-access is a single hit.
    assert cache.access_range(address, size)
    assert cache.accesses == 2 + (last - first + 1)
