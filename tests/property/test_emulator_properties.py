"""Property tests: emulator vs uop-interpreter agreement on random ALU code.

Generates random straight-line arithmetic programs and checks that the
decode flows + uop interpreter reproduce the emulator's architectural
effects exactly — the decode-flow half of the State Verifier, explored
randomly.
"""

from hypothesis import given, settings, strategies as st

from repro.trace import DynamicTrace, MicroOpInjector
from repro.uops import UopState, UReg, execute_uop
from repro.x86 import Assembler, Emulator, Imm, Reg, mem

_regs = st.sampled_from(list(Reg))
_values = st.integers(min_value=0, max_value=0xFFFFFFFF)


@st.composite
def alu_instruction(draw):
    kind = draw(
        st.sampled_from(
            ["mov_imm", "add", "sub", "and", "or", "xor", "imul", "inc",
             "dec", "neg", "not", "shl", "shr", "sar", "cmp", "test", "lea"]
        )
    )
    dst = draw(_regs)
    if dst is Reg.ESP:  # keep the stack pointer sane
        dst = Reg.EAX
    src = draw(_regs)
    imm = Imm(draw(st.integers(min_value=-1000, max_value=1000)))
    return kind, dst, src, imm


@given(st.lists(alu_instruction(), min_size=1, max_size=30),
       st.lists(_values, min_size=8, max_size=8))
@settings(max_examples=80, deadline=None)
def test_random_alu_programs_agree(instructions, seeds):
    asm = Assembler()
    for i, seed in enumerate(seeds):
        if Reg(i) is not Reg.ESP:
            asm.mov(Reg(i), Imm(seed))
    for kind, dst, src, imm in instructions:
        if kind == "mov_imm":
            asm.mov(dst, imm)
        elif kind == "add":
            asm.add(dst, src)
        elif kind == "sub":
            asm.sub(dst, src)
        elif kind == "and":
            asm.and_(dst, src)
        elif kind == "or":
            asm.or_(dst, src)
        elif kind == "xor":
            asm.xor(dst, src)
        elif kind == "imul":
            asm.imul(dst, src)
        elif kind == "inc":
            asm.inc(dst)
        elif kind == "dec":
            asm.dec(dst)
        elif kind == "neg":
            asm.neg(dst)
        elif kind == "not":
            asm.not_(dst)
        elif kind == "shl":
            asm.shl(dst, Imm(abs(imm.value) % 32))
        elif kind == "shr":
            asm.shr(dst, Imm(abs(imm.value) % 32))
        elif kind == "sar":
            asm.sar(dst, Imm(abs(imm.value) % 32))
        elif kind == "cmp":
            asm.cmp(dst, src)
        elif kind == "test":
            asm.test(dst, src)
        elif kind == "lea":
            base = src if src is not Reg.ESP else Reg.EAX
            asm.lea(dst, mem(base, disp=imm.value))
    asm.ret()

    program = asm.assemble()
    emulator = Emulator(program)
    trace = DynamicTrace(emulator.run(10_000))

    shadow = Emulator(program)
    state = UopState()
    state.regs[UReg.ESP] = shadow.regs[Reg.ESP]
    state.memory_fallback = lambda address: shadow.memory.read(address, 1)
    injector = MicroOpInjector()
    for record in trace:
        for uop in injector.inject(record).uops:
            execute_uop(state, uop)
        for reg, expected in record.reg_writes.items():
            assert state.regs[int(reg)] == expected
        if record.flags_after is not None:
            assert state.flags_word() == record.flags_after
