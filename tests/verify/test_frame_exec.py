"""Frame execution engine details."""

import pytest

from helpers import buffer_from_uops
from repro.uops import Uop, UopOp, UReg
from repro.verify.frame_exec import FrameExecutionError, execute_frame
from repro.x86.instructions import Cond

ZERO_FLAGS = (False, False, False, False)


def regs(**overrides):
    base = {UReg(i): 0 for i in range(8)}
    for name, value in overrides.items():
        base[UReg[name]] = value
    return base


def run(uops, live_in=None, flags=ZERO_FLAGS, memory=None):
    buffer = buffer_from_uops(uops)
    reader = (memory or {}).get
    return buffer, execute_frame(buffer, live_in or regs(), flags, reader)


def test_live_out_defaults_to_live_in():
    _, outcome = run([Uop(UopOp.NOP)], live_in=regs(EDI=7))
    assert outcome.final_regs[UReg.EDI] == 7


def test_stores_accumulate_in_order():
    uops = [
        Uop(UopOp.LIMM, dst=UReg.ET0, imm=0xAA),
        Uop(UopOp.STORE, src_a=UReg.ESI, imm=0, src_data=UReg.ET0),
        Uop(UopOp.LIMM, dst=UReg.ET1, imm=0xBB),
        Uop(UopOp.STORE, src_a=UReg.ESI, imm=0, src_data=UReg.ET1),
    ]
    _, outcome = run(uops, live_in=regs(ESI=0x100))
    # Both stores execute (frames never drop stores); last value wins.
    assert len(outcome.stores) == 2
    assert outcome.stores[-1] == (0x100, 4, 0xBB)


def test_load_sees_earlier_frame_store():
    uops = [
        Uop(UopOp.LIMM, dst=UReg.ET0, imm=0x42),
        Uop(UopOp.STORE, src_a=UReg.ESI, imm=4, src_data=UReg.ET0),
        Uop(UopOp.LOAD, dst=UReg.EAX, src_a=UReg.ESI, imm=4),
    ]
    _, outcome = run(uops, live_in=regs(ESI=0x200))
    assert outcome.final_regs[UReg.EAX] == 0x42
    assert outcome.loads == [(0x204, 4)]


def test_addresses_computed_from_values_not_annotations():
    load = Uop(UopOp.LOAD, dst=UReg.EAX, src_a=UReg.ESI, imm=8)
    memory = {0x308 + i: 0x10 + i for i in range(4)}
    _, outcome = run([load], live_in=regs(ESI=0x300), memory=memory)
    assert outcome.loads == [(0x308, 4)]
    assert outcome.final_regs[UReg.EAX] == 0x13121110


def test_firing_assertion_stops_execution():
    uops = [
        Uop(UopOp.SUB, dst=None, src_a=UReg.EAX, imm=1, writes_flags=True),
        Uop(UopOp.ASSERT, cond=Cond.Z),  # fires: EAX=0 so 0-1 != 0
        Uop(UopOp.LIMM, dst=UReg.EBX, imm=9),
    ]
    buffer, outcome = run(uops)
    assert outcome.fired and outcome.firing_slot == 1
    assert outcome.final_regs[UReg.EBX] == 0  # slot 2 never ran... rollback


def test_flags_live_out_from_last_writer():
    uops = [
        Uop(UopOp.SUB, dst=None, src_a=UReg.EAX, imm=0, writes_flags=True),
    ]
    _, outcome = run(uops)  # 0 - 0 = 0 -> ZF
    from repro.x86.registers import Flag

    assert outcome.final_flags & (1 << Flag.ZF)


def test_flags_pass_through_when_unwritten():
    _, outcome = run([Uop(UopOp.NOP)], flags=(True, False, True, False))
    from repro.x86.registers import Flag

    assert outcome.final_flags & (1 << Flag.CF)
    assert outcome.final_flags & (1 << Flag.SF)


def test_missing_memory_is_an_error():
    load = Uop(UopOp.LOAD, dst=UReg.EAX, src_a=UReg.ESI, imm=0)
    buffer = buffer_from_uops([load])
    with pytest.raises(FrameExecutionError, match="initial memory map"):
        execute_frame(buffer, regs(), ZERO_FLAGS, lambda a: None)


def test_division_by_zero_is_an_error():
    div = Uop(UopOp.DIVQ, dst=UReg.EAX, src_a=UReg.EAX, src_b=UReg.EBX)
    buffer = buffer_from_uops([div])
    with pytest.raises(FrameExecutionError, match="division"):
        execute_frame(buffer, regs(), ZERO_FLAGS, lambda a: 0)
