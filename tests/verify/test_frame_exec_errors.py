"""Frame-execution error paths and assertion-fire rollback.

``execute_frame`` is the oracle both the State Verifier and the fuzz
replay leg stand on; these tests pin down its failure modes — dangling
slot references after invalidation, memory-map gaps at byte granularity,
division faults — and the atomic-rollback contract of a fired frame.
"""

import pytest

from helpers import buffer_from_uops
from repro.uops import Uop, UopOp, UReg
from repro.verify.frame_exec import FrameExecutionError, execute_frame
from repro.x86.instructions import Cond
from repro.x86.registers import Flag

ZERO_FLAGS = (False, False, False, False)


def regs(**overrides):
    base = {UReg(i): 0 for i in range(8)}
    for name, value in overrides.items():
        base[UReg[name]] = value
    return base


def run(uops, live_in=None, flags=ZERO_FLAGS, memory=None):
    buffer = buffer_from_uops(uops)
    reader = (memory or {}).get
    return buffer, execute_frame(buffer, live_in or regs(), flags, reader)


# ------------------------------------------------------- dangling slots


def test_use_of_invalidated_value_slot_is_an_error():
    uops = [
        Uop(UopOp.LIMM, dst=UReg.EAX, imm=5),
        Uop(UopOp.ADD, dst=UReg.EBX, src_a=UReg.EAX, imm=1),
    ]
    buffer = buffer_from_uops(uops)
    # Slot 1 reads slot 0 through a DefRef; invalidating the producer
    # without rewiring the consumer must fail loudly, not read garbage.
    assert any(
        getattr(operand, "slot", None) == 0
        for operand in (buffer.uops[1].src_a, buffer.uops[1].src_b)
    )
    buffer.uops[0].valid = False
    with pytest.raises(FrameExecutionError, match="unset slot"):
        execute_frame(buffer, regs(), ZERO_FLAGS, lambda a: 0)


def test_use_of_invalidated_flags_slot_is_an_error():
    uops = [
        Uop(UopOp.SUB, dst=None, src_a=UReg.EAX, imm=1, writes_flags=True),
        Uop(UopOp.ASSERT, cond=Cond.NZ),
    ]
    buffer = buffer_from_uops(uops)
    assert buffer.uops[1].flags_src == 0
    buffer.uops[0].valid = False
    with pytest.raises(FrameExecutionError, match="unset flags slot"):
        execute_frame(buffer, regs(), ZERO_FLAGS, lambda a: 0)


# --------------------------------------------------------- memory gaps


def test_partially_covered_load_is_an_error():
    """Memory-map coverage is per byte: one known byte is not enough."""
    load = Uop(UopOp.LOAD, dst=UReg.EAX, src_a=UReg.ESI, imm=0)
    buffer = buffer_from_uops([load])
    memory = {0x100: 0xAB}  # bytes 0x101..0x103 unknown
    with pytest.raises(FrameExecutionError, match="initial memory map"):
        execute_frame(buffer, regs(ESI=0x100), ZERO_FLAGS, memory.get)


def test_frame_store_covers_a_following_load():
    """Bytes written inside the frame never consult the memory map."""
    uops = [
        Uop(UopOp.LIMM, dst=UReg.ET0, imm=0x11223344),
        Uop(UopOp.STORE, src_a=UReg.ESI, imm=0, src_data=UReg.ET0),
        Uop(UopOp.LOAD, dst=UReg.EAX, src_a=UReg.ESI, imm=0),
    ]
    _, outcome = run(uops, live_in=regs(ESI=0x400))
    assert outcome.final_regs[UReg.EAX] == 0x11223344


# ----------------------------------------------------------- divisions


def test_divr_by_zero_is_an_error():
    div = Uop(UopOp.DIVR, dst=UReg.EDX, src_a=UReg.EAX, src_b=UReg.EBX)
    buffer = buffer_from_uops([div])
    with pytest.raises(FrameExecutionError, match="division by zero"):
        execute_frame(buffer, regs(EAX=10), ZERO_FLAGS, lambda a: 0)


# ------------------------------------------------- assertion-fire paths


def _firing_uops():
    return [
        Uop(UopOp.LIMM, dst=UReg.EBX, imm=0xBEEF),
        Uop(UopOp.LIMM, dst=UReg.ET0, imm=0x77),
        Uop(UopOp.STORE, src_a=UReg.ESI, imm=0, src_data=UReg.ET0),
        Uop(UopOp.SUB, dst=None, src_a=UReg.EAX, imm=1, writes_flags=True),
        Uop(UopOp.ASSERT, cond=Cond.Z),  # EAX=0: 0-1 != 0 -> fires
        Uop(UopOp.LIMM, dst=UReg.EDX, imm=0xDEAD),
    ]


def test_fired_frame_rolls_back_registers():
    _, outcome = run(_firing_uops(), live_in=regs(EBX=1, EDX=2, ESI=0x500))
    assert outcome.fired and outcome.firing_slot == 4
    assert not outcome.committed
    # Writes before AND after the firing slot roll back to live-in.
    assert outcome.final_regs[UReg.EBX] == 1
    assert outcome.final_regs[UReg.EDX] == 2


def test_fired_frame_rolls_back_flags():
    live_in_flags = (True, False, True, False)  # CF, SF set at entry
    _, outcome = run(
        _firing_uops(), live_in=regs(ESI=0x500), flags=live_in_flags
    )
    assert outcome.fired
    # The SUB before the assert wrote flags; atomic rollback must
    # restore the entry flag word regardless.
    assert bool(outcome.final_flags & (1 << Flag.CF))
    assert bool(outcome.final_flags & (1 << Flag.SF))
    assert not outcome.final_flags & (1 << Flag.ZF)


def test_fire_stops_execution_but_reports_prior_stores():
    """Stores preceding the fire are reported (the caller decides what a
    fire means for them); nothing after the firing slot executes."""
    _, outcome = run(_firing_uops(), live_in=regs(ESI=0x500))
    assert outcome.stores == [(0x500, 4, 0x77)]
    assert UReg.EDX not in {  # slot 5 never ran
        reg for reg, value in outcome.final_regs.items() if value == 0xDEAD
    }


def test_assert_cmp_fires_on_value_mismatch():
    uops = [
        Uop(
            UopOp.ASSERT_CMP,
            cond=Cond.Z,
            cmp_kind=UopOp.SUB,
            src_a=UReg.EAX,
            imm=0x1234,
            writes_flags=False,
        ),
    ]
    _, hit = run(uops, live_in=regs(EAX=0x1234))
    assert not hit.fired
    _, miss = run(uops, live_in=regs(EAX=0x9999))
    assert miss.fired and miss.firing_slot == 0


def test_holding_assertion_does_not_fire():
    uops = [
        Uop(UopOp.SUB, dst=None, src_a=UReg.EAX, imm=0, writes_flags=True),
        Uop(UopOp.ASSERT, cond=Cond.Z),  # 0-0 == 0: holds
        Uop(UopOp.LIMM, dst=UReg.EDX, imm=7),
    ]
    _, outcome = run(uops)
    assert not outcome.fired and outcome.firing_slot is None
    assert outcome.final_regs[UReg.EDX] == 7
