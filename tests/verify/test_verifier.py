"""State Verifier: frame-boundary equivalence checks (paper §5.1.3)."""

import pytest

from helpers import inject, run_program
from repro.optimizer import FrameOptimizer
from repro.optimizer.optuop import DefRef, LiveIn
from repro.replay import FrameConstructor
from repro.uops import UopOp, UReg
from repro.verify import ArchTracker, MemoryMaps, StateVerifier, VerificationError
from repro.verify.frame_exec import execute_frame
from repro.x86 import Assembler, Cond, Imm, Reg, mem


def build_region(asm_builder, start_offset=0, count=None):
    """Run a program, frame-ify [start, start+count), return pieces."""
    program, _, trace = run_program(asm_builder)
    injected = inject(trace)
    count = count or len(injected) - 1
    region = injected[start_offset : start_offset + count]
    frame = FrameConstructor().build_frame(region, region[-1].record.next_pc)
    frame.build_buffer()
    tracker = ArchTracker()
    from repro.x86.emulator import DEFAULT_STACK_TOP

    tracker.regs[int(Reg.ESP)] = DEFAULT_STACK_TOP - 4  # after exit push
    for instr in injected[:start_offset]:
        tracker.apply(instr.record)
    records = [i.record for i in region]
    return frame, records, tracker


def stack_program():
    asm = Assembler()
    asm.data_words(0x500000, [11, 22, 33])
    asm.mov(Reg.ESI, Imm(0x500000))
    asm.push(Reg.ESI)
    asm.mov(Reg.EAX, mem(Reg.ESI))
    asm.add(Reg.EAX, mem(Reg.ESI, disp=4))
    asm.pop(Reg.EBX)
    asm.mov(mem(Reg.ESI, disp=8), Reg.EAX)
    asm.ret()
    return asm


def test_unoptimized_frame_verifies():
    frame, records, tracker = build_region(stack_program())
    verifier = StateVerifier()
    report = verifier.verify_frame_instance(frame, records, tracker)
    assert not report.fired
    assert verifier.instances_checked == 1


def test_optimized_frame_verifies():
    frame, records, tracker = build_region(stack_program())
    FrameOptimizer().optimize(frame.buffer)
    StateVerifier().verify_frame_instance(frame, records, tracker)


def test_corrupted_frame_detected_register():
    frame, records, tracker = build_region(stack_program())
    FrameOptimizer().optimize(frame.buffer)
    # Sabotage: rebind a live-out register to the wrong producer.
    frame.buffer.live_out[UReg.EBX] = LiveIn(UReg.EDI)
    with pytest.raises(VerificationError, match="EBX"):
        StateVerifier().verify_frame_instance(frame, records, tracker)


def test_corrupted_frame_detected_store():
    frame, records, tracker = build_region(stack_program())
    FrameOptimizer().optimize(frame.buffer)
    store = next(u for u in frame.buffer.uops if u.valid and u.is_store)
    store.imm = (store.imm or 0) + 4  # store lands at the wrong address
    with pytest.raises(VerificationError, match="memory"):
        StateVerifier().verify_frame_instance(frame, records, tracker)


def test_memory_maps_first_load_and_final_store():
    frame, records, tracker = build_region(stack_program())
    maps = MemoryMaps.from_records(records)
    # The pushed word is written before ever being read: not in initial.
    esp_after_push = tracker.regs[int(Reg.ESP)] - 4
    assert esp_after_push not in maps.initial
    assert esp_after_push in maps.final
    # Data words are loaded from the initial image.
    assert 0x500000 in maps.initial


def test_frame_exec_detects_uncovered_load():
    frame, records, tracker = build_region(stack_program())
    outcome_reader = MemoryMaps.from_records(records)

    def broken_reader(address):
        return None  # pretend the initial map is empty

    from repro.verify.frame_exec import FrameExecutionError

    with pytest.raises(FrameExecutionError, match="initial memory map"):
        execute_frame(
            frame.buffer,
            tracker.live_in_regs(),
            tracker.live_in_flags(),
            broken_reader,
        )


def test_frame_exec_reports_firing_assertion():
    asm = Assembler()
    asm.mov(Reg.EAX, Imm(1))
    asm.test(Reg.EAX, Reg.EAX)
    asm.jcc(Cond.Z, "skip")  # not taken
    asm.mov(Reg.EBX, Imm(5))
    asm.label("skip")
    asm.mov(Reg.ECX, Imm(6))
    asm.ret()
    frame, records, tracker = build_region(asm)
    # Force the wrong live-in so the (not-taken) assertion fires.
    tracker.regs[int(Reg.EAX)] = 0
    maps = MemoryMaps.from_records(records)
    # EAX is set inside the frame... use a frame slice starting after mov.
    outcome = execute_frame(
        frame.buffer,
        tracker.live_in_regs(),
        tracker.live_in_flags(),
        maps.read_initial,
    )
    assert not outcome.fired  # EAX is defined inside the frame: no fire


def test_flags_live_out_compared():
    asm = Assembler()
    asm.mov(Reg.EAX, Imm(5))
    asm.cmp(Reg.EAX, Imm(5))  # ZF=1 at the boundary
    asm.ret()
    frame, records, tracker = build_region(asm, count=2)
    FrameOptimizer().optimize(frame.buffer)
    StateVerifier().verify_frame_instance(frame, records, tracker)


def test_arch_tracker_follows_writes(loop_asm):
    program, emulator, trace = run_program(loop_asm)
    tracker = ArchTracker()
    from repro.x86.emulator import DEFAULT_STACK_TOP

    tracker.regs[int(Reg.ESP)] = DEFAULT_STACK_TOP - 4
    for record in trace:
        tracker.apply(record)
    for reg in Reg:
        assert tracker.regs[int(reg)] == emulator.regs[reg]
    assert tracker.flags == emulator.flags_word()
