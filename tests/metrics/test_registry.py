"""MetricsRegistry: instruments, snapshots, and merge algebra."""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, strategies as st

from repro.metrics import MetricsRegistry, get_registry
from repro.metrics.registry import SNAPSHOT_VERSION


def test_counter_inc_and_default_step():
    reg = MetricsRegistry()
    reg.counter("a").inc()
    reg.counter("a").inc(4)
    assert reg.counters()["a"] == 5


def test_counter_identity_per_name():
    reg = MetricsRegistry()
    assert reg.counter("x") is reg.counter("x")
    assert reg.counter("x") is not reg.counter("y")


def test_gauge_last_write_wins():
    reg = MetricsRegistry()
    reg.gauge("depth").set(3)
    reg.gauge("depth").set(7)
    assert reg.snapshot()["gauges"]["depth"] == 7


def test_histogram_stats():
    reg = MetricsRegistry()
    for value in (1.0, 2.0, 6.0):
        reg.histogram("h").observe(value)
    data = reg.snapshot()["histograms"]["h"]
    assert data["count"] == 3
    assert data["sum"] == pytest.approx(9.0)
    assert data["min"] == pytest.approx(1.0)
    assert data["max"] == pytest.approx(6.0)


def test_timer_observes_elapsed_seconds():
    reg = MetricsRegistry()
    with reg.timer("t"):
        pass
    data = reg.snapshot()["histograms"]["t"]
    assert data["count"] == 1
    assert data["min"] >= 0.0


def test_event_ring_buffer_bounded():
    reg = MetricsRegistry(event_capacity=4)
    for index in range(10):
        reg.event("tick", n=index)
    events = reg.snapshot()["events"]
    assert len(events) == 4
    assert [fields["n"] for _, _, fields in events] == [6, 7, 8, 9]


def test_snapshot_is_picklable_and_detached():
    reg = MetricsRegistry()
    reg.counter("c").inc(2)
    reg.event("e", k="v")
    snap = pickle.loads(pickle.dumps(reg.snapshot()))
    assert snap["version"] == SNAPSHOT_VERSION
    assert snap["counters"]["c"] == 2
    reg.counter("c").inc()
    assert snap["counters"]["c"] == 2  # detached copy


def test_merge_counters_add_and_histograms_combine():
    a = MetricsRegistry()
    b = MetricsRegistry()
    a.counter("c").inc(2)
    b.counter("c").inc(3)
    b.counter("only_b").inc()
    a.histogram("h").observe(1.0)
    b.histogram("h").observe(5.0)
    a.merge(b.snapshot())
    snap = a.snapshot()
    assert snap["counters"]["c"] == 5
    assert snap["counters"]["only_b"] == 1
    h = snap["histograms"]["h"]
    assert (h["count"], h["min"], h["max"]) == (2, 1.0, 5.0)


def test_merge_accepts_registry_and_snapshot():
    a = MetricsRegistry()
    b = MetricsRegistry()
    b.counter("c").inc()
    a.merge(b)
    a.merge(b.snapshot())
    assert a.counters()["c"] == 2


def test_clear_resets_everything():
    reg = MetricsRegistry()
    reg.counter("c").inc()
    reg.gauge("g").set(1)
    reg.histogram("h").observe(1.0)
    reg.event("e")
    reg.clear()
    snap = reg.snapshot()
    assert snap["counters"] == {}
    assert snap["gauges"] == {}
    assert snap["histograms"] == {}
    assert snap["events"] == []


def test_global_registry_singleton():
    assert get_registry() is get_registry()


# ------------------------------------------------------- merge algebra

_counter_maps = st.dictionaries(
    st.sampled_from(["a", "b", "c", "d"]),
    st.integers(min_value=0, max_value=1_000_000),
    max_size=4,
)


def _registry_from(counts: dict[str, int]) -> MetricsRegistry:
    reg = MetricsRegistry()
    for name, value in counts.items():
        reg.counter(name).inc(value)
    return reg


@given(_counter_maps, _counter_maps, _counter_maps)
def test_merge_is_associative_and_commutative(x, y, z):
    """Worker-snapshot merging must not depend on completion order.

    run_matrix merges per-cell snapshots in task order, but the property
    guarantees any order gives the same totals — the foundation of the
    serial == parallel metric-equality contract.
    """
    left = _registry_from(x)
    left.merge(_registry_from(y).snapshot())
    left.merge(_registry_from(z).snapshot())

    right = _registry_from(z)
    right.merge(_registry_from(y).snapshot())
    right.merge(_registry_from(x).snapshot())

    inner = _registry_from(y)
    inner.merge(_registry_from(z).snapshot())
    grouped = _registry_from(x)
    grouped.merge(inner.snapshot())

    assert left.counters() == right.counters() == grouped.counters()
