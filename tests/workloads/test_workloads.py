"""Workload registry and trace sanity for all fourteen benchmarks."""

import pytest

from repro.workloads import (
    all_workloads,
    build_workload,
    desktop_workloads,
    get_workload,
    spec_workloads,
)


def test_fourteen_workloads_registered():
    workloads = all_workloads()
    assert len(workloads) == 14
    assert len(spec_workloads()) == 7
    assert len(desktop_workloads()) == 7


def test_paper_names_present():
    names = {w.name for w in all_workloads()}
    assert names == {
        "bzip2", "crafty", "eon", "gzip", "parser", "twolf", "vortex",
        "access", "dream", "excel", "lotus", "photo", "power", "sound",
    }


def test_unknown_workload_raises():
    with pytest.raises(KeyError, match="unknown workload"):
        get_workload("doom")


def test_paper_reference_numbers_recorded():
    bzip2 = get_workload("bzip2")
    assert bzip2.paper_uop_reduction == pytest.approx(0.23)
    assert bzip2.paper_load_reduction == pytest.approx(0.30)
    assert bzip2.paper_ipc_gain == pytest.approx(0.28)


def test_workload_determinism():
    first = build_workload("twolf", seed=3)
    second = build_workload("twolf", seed=3)
    assert len(first) == len(second)
    assert all(
        a.pc == b.pc and a.reg_writes == b.reg_writes
        for a, b in zip(first.records, second.records)
    )


def test_seed_changes_data_not_structure():
    first = build_workload("parser", seed=1)
    second = build_workload("parser", seed=2)
    # Different data -> different dynamic paths, same static program shape.
    assert first.stats().unique_pcs == second.stats().unique_pcs


@pytest.mark.parametrize("workload", [w.name for w in all_workloads()])
def test_every_workload_builds_and_terminates(workload):
    trace = build_workload(workload)
    stats = trace.stats()
    assert 5_000 <= stats.x86_instructions <= 120_000
    assert stats.loads > 0
    assert stats.conditional_branches > 0


def test_scale_grows_trace():
    small = build_workload("lotus", scale=1)
    large = build_workload("lotus", scale=2)
    assert len(large) > 1.5 * len(small)
