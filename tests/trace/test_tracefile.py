"""Trace-file round-tripping."""

import io

import pytest

from helpers import run_program
from repro.harness import CONFIGS, run_experiment
from repro.trace.tracefile import (
    TraceFileError,
    dump_trace,
    load_trace,
    read_trace,
    roundtrip,
    write_trace,
)
from repro.workloads import build_workload


def assert_traces_equal(a, b):
    assert len(a) == len(b)
    assert a.name == b.name
    for left, right in zip(a.records, b.records):
        assert left.pc == right.pc
        assert left.next_pc == right.next_pc
        assert left.reg_writes == right.reg_writes
        assert left.flags_after == right.flags_after
        assert left.mem_ops == right.mem_ops
        assert left.branch_taken == right.branch_taken
        assert left.instruction.mnemonic is right.instruction.mnemonic
        assert left.instruction.length == right.instruction.length


def test_roundtrip_loop_program(loop_asm):
    _, _, trace = run_program(loop_asm)
    trace.name = "loop"
    assert_traces_equal(trace, roundtrip(trace))


def test_roundtrip_workload():
    trace = build_workload("lotus")
    assert_traces_equal(trace, roundtrip(trace))


def test_file_roundtrip(tmp_path, loop_asm):
    _, _, trace = run_program(loop_asm)
    trace.name = "disk"
    path = tmp_path / "loop.trace"
    dump_trace(trace, str(path))
    assert_traces_equal(trace, load_trace(str(path)))


def test_loaded_trace_simulates_identically(loop_asm):
    _, _, trace = run_program(loop_asm)
    trace.name = "sim"
    reloaded = roundtrip(trace)
    original = run_experiment(trace, CONFIGS["RPO"])
    replayed = run_experiment(reloaded, CONFIGS["RPO"])
    assert original.ipc_x86 == replayed.ipc_x86
    assert original.sim.bins == replayed.sim.bins


def test_bad_header_rejected():
    with pytest.raises(TraceFileError, match="not a trace"):
        read_trace(io.StringIO("BOGUS\n"))


def test_version_mismatch_rejected():
    with pytest.raises(TraceFileError, match="version"):
        read_trace(io.StringIO("TRACE 99 x 0\n"))


def test_version_mismatch_names_versions_and_file():
    from repro.trace.tracefile import FORMAT_VERSION, TraceVersionError

    with pytest.raises(TraceVersionError) as excinfo:
        read_trace(io.StringIO("TRACE 99 x 0\n"), filename="old.trace")
    error = excinfo.value
    assert error.found == 99
    assert error.supported == FORMAT_VERSION
    message = str(error)
    assert "99" in message and str(FORMAT_VERSION) in message
    assert "old.trace" in message


def test_version_mismatch_defaults_to_stream_name():
    from repro.trace.tracefile import TraceVersionError

    with pytest.raises(TraceVersionError, match="<stream>"):
        read_trace(io.StringIO("TRACE 99 x 0\n"))


def test_truncated_trace_rejected(loop_asm):
    _, _, trace = run_program(loop_asm)
    trace.name = "t"
    buffer = io.StringIO()
    write_trace(trace, buffer)
    lines = buffer.getvalue().splitlines()
    truncated = "\n".join(lines[:-5]) + "\n"
    with pytest.raises(TraceFileError, match="declares"):
        read_trace(io.StringIO(truncated))
