"""Trace records and memory-op overlap tests."""

from repro.trace import MemOp, TraceRecord
from repro.x86.instructions import Imm, Instruction, Mnemonic
from repro.x86.registers import Reg


def test_memop_overlap_same_word():
    a = MemOp(is_store=True, address=0x100, size=4, data=0)
    b = MemOp(is_store=False, address=0x102, size=2, data=0)
    assert a.overlaps(b) and b.overlaps(a)


def test_memop_adjacent_no_overlap():
    a = MemOp(is_store=True, address=0x100, size=4, data=0)
    b = MemOp(is_store=False, address=0x104, size=4, data=0)
    assert not a.overlaps(b)


def test_memop_byte_within_word():
    word = MemOp(is_store=True, address=0x100, size=4, data=0)
    byte = MemOp(is_store=False, address=0x103, size=1, data=0)
    assert word.overlaps(byte)


def test_record_load_store_partition():
    record = TraceRecord(
        pc=0x1000,
        instruction=Instruction(Mnemonic.NOP),
        next_pc=0x1001,
        mem_ops=(
            MemOp(is_store=False, address=0x10, size=4, data=1),
            MemOp(is_store=True, address=0x20, size=4, data=2),
        ),
    )
    assert len(record.loads) == 1 and record.loads[0].address == 0x10
    assert len(record.stores) == 1 and record.stores[0].address == 0x20


def test_record_branch_classification():
    add = TraceRecord(
        pc=0, instruction=Instruction(Mnemonic.ADD, (Reg.EAX, Imm(1))), next_pc=4
    )
    assert not add.is_branch and not add.is_conditional_branch
