"""Micro-Op Injector: dynamic annotation of decoded uops."""

import pytest

from helpers import inject, run_program
from repro.trace import DynamicTrace, InjectionError, MicroOpInjector, MemOp, TraceRecord
from repro.uops import UopOp
from repro.x86 import Assembler, Cond, Imm, Reg, mem
from repro.x86.instructions import Instruction, Mnemonic


def test_mem_addresses_attached_in_order(loop_asm):
    _, _, trace = run_program(loop_asm)
    injected = inject(trace)
    for instr in injected:
        mem_uops = [u for u in instr.uops if u.is_mem]
        assert len(mem_uops) == len(instr.record.mem_ops)
        for uop, mem_op in zip(mem_uops, instr.record.mem_ops):
            assert uop.mem_address == mem_op.address
            assert uop.is_store == mem_op.is_store


def test_branch_outcomes_attached(loop_asm):
    _, _, trace = run_program(loop_asm)
    for instr in inject(trace):
        if instr.record.is_conditional_branch:
            branch = [u for u in instr.uops if u.op is UopOp.BR]
            assert len(branch) == 1
            assert branch[0].taken == instr.record.branch_taken
            assert branch[0].dyn_target == instr.record.next_pc


def test_indirect_targets_attached(loop_asm):
    _, _, trace = run_program(loop_asm)
    for instr in inject(trace):
        if instr.record.instruction.mnemonic is Mnemonic.RET:
            jmpi = [u for u in instr.uops if u.op is UopOp.JMPI]
            assert jmpi[0].dyn_target == instr.record.next_pc


def test_each_injection_returns_fresh_uops(loop_asm):
    """Dynamic annotations on one instance must not leak into another."""
    _, _, trace = run_program(loop_asm)
    injector = MicroOpInjector()
    records = [r for r in trace if r.mem_ops]
    first = injector.inject(records[0])
    second = injector.inject(records[0])
    assert first.uops[0] is not second.uops[0]


def test_mismatched_mem_ops_rejected():
    instr = Instruction(Mnemonic.MOV, (Reg.EAX, mem(Reg.ESI)))
    instr.length = 2
    record = TraceRecord(pc=0, instruction=instr, next_pc=2, mem_ops=())
    with pytest.raises(InjectionError, match="more"):
        MicroOpInjector().inject(record)


def test_extra_mem_ops_rejected():
    instr = Instruction(Mnemonic.MOV, (Reg.EAX, Reg.EBX))
    instr.length = 2
    record = TraceRecord(
        pc=0,
        instruction=instr,
        next_pc=2,
        mem_ops=(MemOp(is_store=False, address=0, size=4, data=0),),
    )
    with pytest.raises(InjectionError, match="recorded"):
        MicroOpInjector().inject(record)


def test_stats_counted(loop_asm):
    _, _, trace = run_program(loop_asm)
    injector = MicroOpInjector()
    injector.inject_trace(trace)
    assert injector.x86_count == len(trace)
    assert injector.uop_count > injector.x86_count


def test_trace_stats(loop_asm):
    _, _, trace = run_program(loop_asm)
    stats = trace.stats()
    assert stats.x86_instructions == len(trace)
    assert stats.loads > 0 and stats.stores > 0
    assert 0.9 <= stats.taken_ratio <= 1.0  # loop branch almost always taken
    assert stats.unique_pcs < stats.x86_instructions
