"""Setup shim so editable installs work without the ``wheel`` package.

The offline environment lacks ``wheel``; ``pip install -e . --no-use-pep517
--no-build-isolation`` (or plain ``pip install -e .`` on machines with
wheel) both work.
"""

from setuptools import setup

setup()
