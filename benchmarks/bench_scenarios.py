"""Scenario subsystem throughput: family generation and trace import.

Two rates size real scenario sweeps: how fast family members expand
from specs into built traces (generation gates cold matrix runs), and
how fast the importer moves external traces across the interchange
boundary (decode + strict validation + canonical re-encode).  With
``--json PATH`` both land in a BENCH_* summary for EXPERIMENTS.md.
"""

import pathlib
import tempfile

from repro.artifacts.codec import dump_trace_binary
from repro.scenarios.families import expand_spec
from repro.scenarios.importer import import_trace
from repro.scenarios.spec import FamilySpec
from repro.workloads.base import build_workload

_GEN_SPECS = [
    FamilySpec(family="loopy", seed=11, count=8),
    FamilySpec(family="branchy", seed=11, count=8),
    FamilySpec(family="redund", seed=11, count=8),
]


def _generate() -> int:
    records = 0
    for spec in _GEN_SPECS:
        for workload in expand_spec(spec):
            program = workload.build(1, 1)
            records += len(program.instructions)
    return records


def test_bench_family_generation(benchmark, bench_records):
    instructions = benchmark.pedantic(_generate, rounds=3, iterations=1)
    members = sum(spec.count for spec in _GEN_SPECS)
    assert instructions > 0
    seconds = benchmark.stats.stats.mean
    bench_records["scenarios_generation"] = {
        "families": len(_GEN_SPECS),
        "members": members,
        "static_instructions": instructions,
        "members_per_sec": round(members / seconds, 1),
    }


def test_bench_import_throughput(benchmark, bench_records):
    trace = build_workload("gzip")
    with tempfile.TemporaryDirectory() as tmp:
        source = pathlib.Path(tmp) / "gzip.rutb"
        dump_trace_binary(trace, str(source))

        def _import():
            return import_trace(source, root=tmp)

        report = benchmark.pedantic(_import, rounds=3, iterations=1)
    assert report.records == len(trace)
    seconds = benchmark.stats.stats.mean
    bench_records["scenarios_import"] = {
        "records": report.records,
        "records_per_sec": round(report.records / seconds, 1),
        "digest": report.digest,
    }
