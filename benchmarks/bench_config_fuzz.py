"""Config-axis fuzz throughput: (program, config) pairs/sec.

Each benched pair runs ~7 full pipeline simulations (3 front ends × 2
scheduling modes + the widened monotonicity re-sim), so pairs/sec is
what sizes config-axis campaign budgets — the CI smoke's 50 pairs, the
acceptance run's 200.  With ``--json PATH`` the suite writes serial and
parallel rates side by side for EXPERIMENTS.md.
"""

from repro.fuzz.campaign import ConfigCampaignConfig, run_config_campaign

ITERATIONS = 12
_SEED = 11


def _campaign(jobs: int):
    return run_config_campaign(
        ConfigCampaignConfig(
            seed=_SEED, iterations=ITERATIONS, jobs=jobs, chunk_size=3
        )
    )


def test_bench_config_fuzz_serial(benchmark, bench_records):
    result = benchmark.pedantic(lambda: _campaign(1), rounds=2, iterations=1)
    assert result.ok
    assert result.pairs == ITERATIONS
    bench_records["config_fuzz_serial"] = {
        "jobs": 1,
        "pairs": result.pairs,
        "simulations": result.simulations,
        "pairs_per_sec": round(result.pairs_per_sec, 2),
        "digest": result.digest,
    }


def test_bench_config_fuzz_parallel(benchmark, bench_records):
    result = benchmark.pedantic(lambda: _campaign(4), rounds=2, iterations=1)
    assert result.ok
    assert result.pairs == ITERATIONS
    bench_records["config_fuzz_jobs4"] = {
        "jobs": 4,
        "pairs": result.pairs,
        "simulations": result.simulations,
        "pairs_per_sec": round(result.pairs_per_sec, 2),
        "digest": result.digest,
    }
    # Reproducibility is part of the contract being benched: the digest
    # must not depend on how the campaign was parallelised.
    serial = bench_records.get("config_fuzz_serial")
    if serial is not None:
        assert serial["digest"] == result.digest
