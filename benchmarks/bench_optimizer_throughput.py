"""Optimizer engine micro-benchmarks.

Measures the software optimizer's throughput on realistic frames — the
quantity the paper's hardware datapath (10 cycles/uop, 3-deep pipeline,
§5.1.4) abstracts — and checks the latency model's arithmetic.
"""

from repro.harness.fig2 import build_figure2_frame
from repro.optimizer import FrameOptimizer, OptimizerConfig
from repro.replay import ConstructorConfig, FrameConstructor
from repro.trace import MicroOpInjector
from repro.workloads import build_workload


def _fresh_buffer():
    frame = build_figure2_frame()
    return frame.build_buffer()


def test_bench_optimize_figure2_frame(benchmark):
    result = benchmark.pedantic(
        lambda: FrameOptimizer().optimize(_fresh_buffer()),
        rounds=20,
        iterations=1,
    )
    assert result.uops_after == 10


def _large_frame():
    trace = build_workload("bzip2")
    injected = MicroOpInjector().inject_trace(trace)
    constructor = FrameConstructor(ConstructorConfig(promotion_threshold=2))
    best = None
    for instr in injected:
        frame = constructor.retire(instr)
        if frame is not None and (best is None or frame.raw_uop_count > best.raw_uop_count):
            best = frame
        if best is not None and best.raw_uop_count >= 200:
            break
    assert best is not None
    return best


def test_bench_optimize_large_frame(benchmark, bench_records):
    template = _large_frame()

    def optimize_fresh():
        frame = template
        frame.buffer = None  # rebuild the buffer each round
        frame.sched_template = None  # schedule template follows the buffer
        buffer = frame.build_buffer()
        return FrameOptimizer().optimize(buffer)

    result = benchmark.pedantic(optimize_fresh, rounds=5, iterations=1)
    assert result.uops_after < result.uops_before
    # The modeled hardware latency: 10 cycles per incoming uop.
    assert result.optimization_cycles == 10 * result.uops_before
    bench_records["optimize_large_frame"] = {
        "seconds": round(benchmark.stats.stats.mean, 5),
        "uops_before": result.uops_before,
        "uops_after": result.uops_after,
    }


def test_bench_simulation_throughput(benchmark, bench_records):
    """End-to-end simulator speed on one workload/config pair."""
    from repro.harness import CONFIGS, run_experiment

    trace = build_workload("lotus")

    result = benchmark.pedantic(
        lambda: run_experiment(trace, CONFIGS["RPO"]), rounds=3, iterations=1
    )
    assert result.sim.x86_retired == len(trace)
    seconds = benchmark.stats.stats.mean
    bench_records["simulate_lotus_rpo"] = {
        "seconds": round(seconds, 4),
        "x86_per_sec": round(result.sim.x86_retired / seconds),
        "cycles": result.sim.cycles,
    }
