"""Artifact store: cold vs warm wall-time, text vs binary codec throughput.

Quantifies the capture-once/simulate-many win: a warm artifact store must
serve the experiment matrix orders of magnitude faster than recomputing
it, and the binary codec must beat the text format on both size and
speed.  Prints comparison tables alongside the assertions.
"""

from __future__ import annotations

import io
import time

from repro.artifacts.codec import decode_trace, encode_trace
from repro.artifacts.runner import MatrixTask, run_matrix
from repro.artifacts.store import ArtifactStore
from repro.harness.experiment import CONFIGS
from repro.trace.tracefile import read_trace, write_trace
from repro.workloads import build_workload

TASKS = [
    MatrixTask(workload, CONFIGS[config])
    for workload in ("vortex", "power", "eon")
    for config in ("IC", "RP", "RPO")
]


def test_bench_cold_vs_warm_matrix(tmp_path, benchmark):
    store = ArtifactStore(tmp_path / "cache")

    start = time.perf_counter()
    cold = run_matrix(TASKS, store=store)
    cold_seconds = time.perf_counter() - start

    warm = benchmark.pedantic(
        run_matrix, args=(TASKS,), kwargs={"store": store}, rounds=1, iterations=1
    )
    warm_seconds = warm.seconds

    print()
    print(f"{'run':<6} {'seconds':>9} {'emulated':>9} {'simulated':>10} {'hits':>6}")
    for label, run, seconds in (
        ("cold", cold, cold_seconds),
        ("warm", warm, warm_seconds),
    ):
        print(
            f"{label:<6} {seconds:>9.3f} "
            f"{sum(t.emulated for t in run.telemetry):>9} "
            f"{sum(t.simulated for t in run.telemetry):>10} "
            f"{sum(t.result_cache_hit for t in run.telemetry):>6}"
        )
    print(f"speedup: {cold_seconds / warm_seconds:.0f}x")

    assert all(t.result_cache_hit for t in warm.telemetry)
    assert sum(t.emulated for t in warm.telemetry) == 0
    assert warm_seconds < cold_seconds
    assert [r.ipc_x86 for r in warm.results] == [r.ipc_x86 for r in cold.results]


def test_bench_codec_throughput(benchmark):
    trace = build_workload("crafty")
    records = len(trace)

    start = time.perf_counter()
    text_buffer = io.StringIO()
    write_trace(trace, text_buffer)
    text_encode = time.perf_counter() - start
    text_bytes = len(text_buffer.getvalue())

    start = time.perf_counter()
    text_buffer.seek(0)
    read_trace(text_buffer)
    text_decode = time.perf_counter() - start

    start = time.perf_counter()
    binary = encode_trace(trace)
    binary_encode = time.perf_counter() - start
    binary_bytes = len(binary)

    decoded = benchmark.pedantic(decode_trace, args=(binary,), rounds=1, iterations=1)
    start = time.perf_counter()
    decode_trace(binary)
    binary_decode = time.perf_counter() - start

    def rate(seconds: float) -> str:
        return f"{records / seconds:>12,.0f}" if seconds else f"{'inf':>12}"

    print()
    print(f"codec    {'bytes':>10} {'enc rec/s':>12} {'dec rec/s':>12}")
    print(f"text     {text_bytes:>10,} {rate(text_encode)} {rate(text_decode)}")
    print(f"binary   {binary_bytes:>10,} {rate(binary_encode)} {rate(binary_decode)}")
    print(f"size ratio: {text_bytes / binary_bytes:.1f}x smaller")

    assert decoded.records == trace.records
    assert binary_bytes < text_bytes / 2
