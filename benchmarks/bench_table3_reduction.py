"""Table 3: micro-operations and loads removed by the optimizer.

Shape checks (paper §6.2): ~21% of dynamic uops and ~22% of dynamic
loads removed on average, with removal correlating with IPC gains.
"""

from repro.harness.figures import run_table3
from repro.harness.report import format_table3


def test_bench_table3(matrix, benchmark):
    rows = benchmark.pedantic(run_table3, args=(matrix,), rounds=1, iterations=1)
    print()
    print(format_table3(rows))

    average = rows[-1]
    assert average.name == "Average"
    # Paper averages: 21% uops, 22% loads, 17% IPC.
    assert 0.10 <= average.uops_removed <= 0.35
    assert 0.10 <= average.loads_removed <= 0.40
    assert 0.08 <= average.ipc_increase <= 0.60

    per_app = rows[:-1]
    # Removal happens essentially everywhere.
    assert sum(r.uops_removed > 0.03 for r in per_app) >= 12
    # Rough correlation between removal and IPC gain (paper §6.2): the
    # high-removal half should out-gain the low-removal half.
    ranked = sorted(per_app, key=lambda r: r.uops_removed)
    low = sum(r.ipc_increase for r in ranked[:7]) / 7
    high = sum(r.ipc_increase for r in ranked[7:]) / 7
    assert high > low
