"""Sensitivity analyses for the design choices DESIGN.md calls out.

Not figures from the paper, but the knobs the paper fixes by fiat —
frame size (8-256 uops), branch-promotion threshold, and the optimizer's
10-cycles-per-uop latency — swept to show the reproduction behaves
sensibly around the paper's operating point.
"""

from dataclasses import replace

import pytest

from repro.harness.experiment import CONFIGS, run_experiment
from repro.optimizer import OptimizerConfig
from repro.replay import ConstructorConfig
from repro.workloads import build_workload

WORKLOAD = "eon"


@pytest.fixture(scope="module")
def trace():
    return build_workload(WORKLOAD)


def test_bench_frame_size_sweep(trace, benchmark):
    def sweep():
        results = {}
        for max_uops in (32, 64, 128, 256):
            config = replace(
                CONFIGS["RPO"],
                name=f"RPO-max{max_uops}",
                constructor=ConstructorConfig(
                    max_uops=max_uops,
                    backedge_close_uops=max(8, max_uops // 2),
                ),
            )
            results[max_uops] = run_experiment(trace, config, WORKLOAD)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for max_uops, result in results.items():
        print(f"  max_uops={max_uops:3d}: IPC={result.ipc_x86:.2f} "
              f"uop_red={result.uop_reduction:.1%} cover={result.coverage:.0%}")
    # Larger frames expose more cross-block redundancy (paper §3 / Fig 9):
    # uop reduction grows with frame size.
    reductions = [results[n].uop_reduction for n in (32, 64, 128, 256)]
    assert reductions[-1] > reductions[0]
    # The paper's 256-uop operating point performs at least as well as
    # tiny frames.
    assert results[256].ipc_x86 >= results[32].ipc_x86 * 0.9


def test_bench_promotion_threshold_sweep(trace, benchmark):
    def sweep():
        results = {}
        for threshold in (4, 16, 64):
            config = replace(
                CONFIGS["RPO"],
                name=f"RPO-promo{threshold}",
                constructor=ConstructorConfig(promotion_threshold=threshold),
            )
            results[threshold] = run_experiment(trace, config, WORKLOAD)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for threshold, result in results.items():
        print(f"  promotion={threshold:3d}: IPC={result.ipc_x86:.2f} "
              f"cover={result.coverage:.0%} fires={result.sim.frames_fired}")
    # A very conservative threshold delays coverage on a short trace.
    assert results[64].coverage <= results[4].coverage + 0.02
    # All operating points remain functional and profitable.
    rp = run_experiment(trace, CONFIGS["RP"], WORKLOAD)
    for result in results.values():
        assert result.ipc_x86 > rp.ipc_x86 * 0.85


def test_bench_optimizer_latency_sweep(trace, benchmark):
    def sweep():
        results = {}
        for cycles_per_uop in (0, 10, 100):
            config = replace(
                CONFIGS["RPO"],
                name=f"RPO-lat{cycles_per_uop}",
                optimizer=OptimizerConfig(cycles_per_uop=cycles_per_uop),
            )
            results[cycles_per_uop] = run_experiment(trace, config, WORKLOAD)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for cycles_per_uop, result in results.items():
        print(f"  {cycles_per_uop:3d} cyc/uop: IPC={result.ipc_x86:.2f} "
              f"cover={result.coverage:.0%}")
    # A free optimizer is no worse than the paper's 10-cycles/uop point;
    # a 10x slower one loses much of the benefit on a short trace (its
    # coverage halves) but the system stays functional.
    assert results[0].ipc_x86 >= results[10].ipc_x86 * 0.98
    assert results[100].ipc_x86 >= results[10].ipc_x86 * 0.25
    assert results[100].coverage < results[10].coverage
