"""Shared state for the benchmark suite.

A session-scoped :class:`ResultMatrix` lets every bench reuse the same
(workload, configuration) simulations, mirroring how the paper reports
one set of runs across all its tables and figures.
"""

import pytest

from repro.harness.figures import ResultMatrix


@pytest.fixture(scope="session")
def matrix() -> ResultMatrix:
    return ResultMatrix()
