"""Shared state for the benchmark suite.

A session-scoped :class:`ResultMatrix` lets every bench reuse the same
(workload, configuration) simulations, mirroring how the paper reports
one set of runs across all its tables and figures.

``--json PATH`` additionally writes a machine-readable summary of any
bench that populates the ``bench_records`` fixture, e.g.::

    python -m pytest benchmarks/bench_fuzz_throughput.py \
        --json BENCH_fuzz_throughput.json
"""

import json
import pathlib

import pytest

from repro.harness.figures import ResultMatrix


def pytest_addoption(parser):
    parser.addoption(
        "--json",
        action="store",
        default=None,
        dest="bench_json",
        help="write a JSON summary of bench results to this path",
    )


@pytest.fixture(scope="session")
def matrix() -> ResultMatrix:
    return ResultMatrix()


@pytest.fixture(scope="session")
def bench_records(request):
    """Mutable dict benches drop summary records into; flushed to the
    ``--json`` path (if given) when the session ends."""
    records: dict = {}
    yield records
    path = request.config.getoption("bench_json")
    if path and records:
        pathlib.Path(path).write_text(
            json.dumps(records, indent=2, sort_keys=True) + "\n"
        )
