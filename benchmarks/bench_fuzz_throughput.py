"""Fuzz campaign throughput: programs/sec, serial vs ``--jobs N``.

Each benched campaign is the full differential pipeline — generate,
emulate, construct frames, optimize under every pass subset, verify —
so programs/sec here is the number that sizes real campaigns (a 10k-run
budget, the CI smoke budget).  With ``--json PATH`` the suite writes
the serial and parallel rates side by side for EXPERIMENTS.md.
"""

from repro.fuzz.campaign import CampaignConfig, run_campaign

ITERATIONS = 40
_SEED = 11


def _campaign(jobs: int):
    return run_campaign(
        CampaignConfig(seed=_SEED, iterations=ITERATIONS, jobs=jobs, chunk_size=10)
    )


def test_bench_fuzz_campaign_serial(benchmark, bench_records):
    result = benchmark.pedantic(lambda: _campaign(1), rounds=2, iterations=1)
    assert result.ok
    assert result.programs == ITERATIONS
    bench_records["fuzz_serial"] = {
        "jobs": 1,
        "programs": result.programs,
        "programs_per_sec": round(result.programs_per_sec, 2),
        "digest": result.digest,
    }


def test_bench_fuzz_campaign_parallel(benchmark, bench_records):
    result = benchmark.pedantic(lambda: _campaign(4), rounds=2, iterations=1)
    assert result.ok
    assert result.programs == ITERATIONS
    bench_records["fuzz_jobs4"] = {
        "jobs": 4,
        "programs": result.programs,
        "programs_per_sec": round(result.programs_per_sec, 2),
        "digest": result.digest,
    }
    # Reproducibility is part of the contract being benched: the digest
    # must not depend on how the campaign was parallelised.
    serial = bench_records.get("fuzz_serial")
    if serial is not None:
        assert serial["digest"] == result.digest
