"""Autotuning sweep throughput: tune cells/sec, serial vs parallel.

Each cell is one full trace-driven simulation at the smoke scale, so
cells/sec is what sizes sweep budgets — the CI smoke's 6 points, the
default space's 19.  Runs uncached (no store) so the number measures
simulation throughput, not artifact-store hit rate; the digest check
rides along because reproducibility across ``jobs`` is part of the
contract being benched.  With ``--json PATH`` both rates are written
for EXPERIMENTS.md.
"""

from repro.tune.engine import SweepSettings, run_sweep
from repro.tune.space import smoke_space

_SCALE = 0
_SPACE = smoke_space(("gzip",))


def _sweep(jobs: int):
    return run_sweep(_SPACE, SweepSettings(scale=_SCALE, jobs=jobs))


def _record(result) -> dict:
    return {
        "jobs": result.jobs,
        "cells": len(result.records),
        "cells_per_sec": round(len(result.records) / result.seconds, 2),
        "digest": result.digest,
    }


def test_bench_tune_sweep_serial(benchmark, bench_records):
    result = benchmark.pedantic(lambda: _sweep(1), rounds=2, iterations=1)
    assert len(result.records) == 6
    assert result.cells_computed == 6  # storeless: nothing cached
    bench_records["tune_sweep_serial"] = _record(result)


def test_bench_tune_sweep_parallel(benchmark, bench_records):
    result = benchmark.pedantic(lambda: _sweep(4), rounds=2, iterations=1)
    assert len(result.records) == 6
    bench_records["tune_sweep_jobs4"] = _record(result)
    serial = bench_records.get("tune_sweep_serial")
    if serial is not None:
        assert serial["digest"] == result.digest
