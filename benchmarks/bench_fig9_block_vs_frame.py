"""Figure 9: intra-block vs frame-level optimization scope.

Shape checks (paper §6.3): block-level optimization offers some benefit,
but frame-level optimization yields substantially more — and (like
SoundForge in the paper) block-level can even lose to basic rePLay once
the optimizer's latency outweighs its meagre gains.
"""

from repro.harness.figures import run_fig9
from repro.harness.report import format_fig9

#: A representative subset ("a select group of traces", paper §6.3).
SELECTED = ["bzip2", "crafty", "eon", "vortex", "excel", "photo", "sound"]


def test_bench_fig9(matrix, benchmark):
    rows = benchmark.pedantic(
        run_fig9, args=(matrix, SELECTED), rounds=1, iterations=1
    )
    print()
    print(format_fig9(rows))

    frame_avg = sum(r.frame_speedup for r in rows) / len(rows)
    block_avg = sum(r.block_speedup for r in rows) / len(rows)
    # Frame-level scope must clearly beat intra-block scope on average.
    assert frame_avg > block_avg
    assert frame_avg > 0.08
    # Per-application: frame >= block for the large majority.
    assert sum(r.frame_speedup >= r.block_speedup - 0.02 for r in rows) >= len(rows) - 1
