"""Figure 6: x86 IPC under IC / TC / RP / RPO across all 14 workloads.

Shape checks (paper §6.1): the optimizing rePLay configuration wins on
(nearly) all applications; the average RPO-over-RP gain is in the same
band as the paper's 17%; gains are highly variable per application.
"""

from repro.harness.figures import PAPER_ORDER, run_fig6
from repro.harness.report import format_fig6


def test_bench_fig6(matrix, benchmark):
    rows = benchmark.pedantic(run_fig6, args=(matrix,), rounds=1, iterations=1)
    print()
    print(format_fig6(rows))

    assert [r.name for r in rows] == PAPER_ORDER
    gains = [r.rpo_gain_over_rp for r in rows]
    average_gain = sum(gains) / len(gains)

    # Paper: +17% average, "highly variable from application to
    # application"; all but one application improved.
    assert 0.08 <= average_gain <= 0.60
    assert sum(g > 0 for g in gains) >= len(gains) - 2
    assert max(gains) - min(gains) > 0.15  # strong variability

    # RPO is the best configuration for most applications (paper: all
    # but gzip).
    wins = sum(
        1 for r in rows if r.ipc["RPO"] >= max(r.ipc.values()) - 1e-9
    )
    assert wins >= 10

    # rePLay coverage enables the gains: most workloads are majority-
    # covered (paper: 86% SPEC / 72% desktop average).
    covered = [r.coverage for r in rows]
    assert sum(c > 0.5 for c in covered) >= 10
