"""Figure 6: x86 IPC under IC / TC / RP / RPO across all 14 workloads.

Shape checks (paper §6.1): the optimizing rePLay configuration wins on
(nearly) all applications; the average RPO-over-RP gain is in the same
band as the paper's 17%; gains are highly variable per application.

With ``--json PATH`` the per-workload IPC matrix, coverage, and wall
time land in a machine-readable baseline (CI uploads it as the
``BENCH_fig6_ipc.json`` artifact), so IPC drift between commits is a
diff, not a re-run.
"""

from repro.harness.figures import PAPER_ORDER, run_fig6
from repro.harness.report import format_fig6


def test_bench_fig6(matrix, benchmark, bench_records):
    rows = benchmark.pedantic(run_fig6, args=(matrix,), rounds=1, iterations=1)
    print()
    print(format_fig6(rows))

    gains = [r.rpo_gain_over_rp for r in rows]
    bench_records["fig6"] = {
        "seconds": round(benchmark.stats.stats.mean, 3),
        "average_rpo_over_rp": round(sum(gains) / len(gains), 4),
        "workloads": {
            r.name: {
                "ipc": {k: round(v, 4) for k, v in r.ipc.items()},
                "coverage": round(r.coverage, 4),
            }
            for r in rows
        },
    }

    assert [r.name for r in rows] == PAPER_ORDER
    gains = [r.rpo_gain_over_rp for r in rows]
    average_gain = sum(gains) / len(gains)

    # Paper: +17% average, "highly variable from application to
    # application"; all but one application improved.
    assert 0.08 <= average_gain <= 0.60
    assert sum(g > 0 for g in gains) >= len(gains) - 2
    assert max(gains) - min(gains) > 0.15  # strong variability

    # RPO is the best configuration for most applications (paper: all
    # but gzip).
    wins = sum(
        1 for r in rows if r.ipc["RPO"] >= max(r.ipc.values()) - 1e-9
    )
    assert wins >= 10

    # rePLay coverage enables the gains: most workloads are majority-
    # covered (paper: 86% SPEC / 72% desktop average).
    covered = [r.coverage for r in rows]
    assert sum(c > 0.5 for c in covered) >= 10
