"""Figure 10: the impact of individual optimizations (leave-one-out).

Shape checks (paper §6.4): the passes are synergistic — no single pass
accounts for everything; reassociation is the clear gateway optimization
(disabling it hurts most); and disabling store forwarding *helps* the
aliasing-heavy Excel analogue.
"""

from dataclasses import replace

from repro.harness.experiment import CONFIGS, run_experiment
from repro.harness.figures import FIG10_WORKLOADS, run_fig10
from repro.harness.report import format_fig10
from repro.optimizer import OptimizerConfig


def test_bench_fig10(matrix, benchmark):
    rows = benchmark.pedantic(run_fig10, args=(matrix,), rounds=1, iterations=1)
    print()
    print(format_fig10(rows))

    assert [r.name for r in rows] == FIG10_WORKLOADS
    # Score each pass by how much its absence costs, averaged over the
    # workloads where optimization is clearly positive (relative scale is
    # meaningless when RPO ~= RP).
    positive = [
        r for r in rows
        if matrix.run(r.name, CONFIGS["RPO"]).ipc_x86
        > 1.02 * matrix.run(r.name, CONFIGS["RP"]).ipc_x86
    ]
    assert len(positive) >= 3
    variants = rows[0].relative_ipc.keys()
    averages = {
        v: sum(r.relative_ipc[v] for r in positive) / len(positive)
        for v in variants
    }

    # Reassociation is the most important single optimization (paper:
    # "There is one clear trend: reassociation is a significant
    # optimization").
    assert averages["ra"] == min(averages.values())
    assert averages["ra"] < 0.8  # losing RA costs a clear chunk

    # CSE dominates on bzip2 (paper: "On the bzip2 benchmark, the effect
    # of CSE is dominant").
    bzip2 = next(r for r in rows if r.name == "bzip2")
    assert bzip2.relative_ipc["cse"] == min(bzip2.relative_ipc.values())

    # Excel's unsafe-store aliasing: "Excel exhibits an increase in
    # effective IPC when the Store Forwarding optimization is disabled"
    # (paper §6.4) — check the raw IPC comparison.
    trace = matrix.trace("excel")
    rpo = matrix.run("excel", CONFIGS["RPO"])
    no_sf = run_experiment(
        trace,
        replace(
            CONFIGS["RPO"],
            name="RPO-no-sf",
            optimizer=OptimizerConfig().disabled("sf"),
        ),
        workload_name="excel",
    )
    assert no_sf.ipc_x86 > rpo.ipc_x86
