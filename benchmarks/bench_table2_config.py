"""Table 2: processor configuration rendering (and construction cost)."""

from repro.harness.figures import run_table2
from repro.timing import PipelineModel, default_config


def test_bench_table2(benchmark):
    text = benchmark.pedantic(run_table2, rounds=10, iterations=1)
    print()
    print(text)
    for expected in ("8-wide", "18-bit gshare", "512", "50 cycles"):
        assert expected in text


def test_bench_pipeline_construction(benchmark):
    model = benchmark.pedantic(
        lambda: PipelineModel(default_config()), rounds=10, iterations=1
    )
    assert model.config.fetch_width == 8
