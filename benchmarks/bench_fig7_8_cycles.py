"""Figures 7 and 8: cycle breakdowns for RP vs RPO.

Shape checks (paper §6.1): the optimizer's major impact is a reduction
in Frame cycles (paper: ~21% net), assert cycles stay a small fraction
of execution, and every cycle is accounted to exactly one bin.
"""

from repro.harness.figures import PAPER_ORDER, run_fig7_8
from repro.harness.report import format_fig7_8


def test_bench_fig7_spec(matrix, benchmark):
    spec = PAPER_ORDER[:7]
    rows = benchmark.pedantic(
        run_fig7_8, args=(matrix, spec), rounds=1, iterations=1
    )
    print()
    print(format_fig7_8(rows))
    _check_breakdown(rows)


def test_bench_fig8_desktop(matrix, benchmark):
    desktop = PAPER_ORDER[7:]
    rows = benchmark.pedantic(
        run_fig7_8, args=(matrix, desktop), rounds=1, iterations=1
    )
    print()
    print(format_fig7_8(rows))
    _check_breakdown(rows)


def _check_breakdown(rows):
    by_key = {(r.name, r.config): r for r in rows}
    names = {r.name for r in rows}

    frame_rp = sum(by_key[(n, "RP")].bins["frame"] for n in names)
    frame_rpo = sum(by_key[(n, "RPO")].bins["frame"] for n in names)
    # The optimizer's main effect: fewer Frame cycles (paper: ~21%).
    assert frame_rpo < frame_rp
    reduction = 1 - frame_rpo / frame_rp
    assert 0.05 <= reduction <= 0.60

    for row in rows:
        accounted = sum(row.bins.values())
        # Fetch-side accounting covers (almost) the entire run.
        assert accounted <= row.cycles
        assert accounted >= 0.9 * row.cycles
        # Assert-recovery cycles remain a modest fraction (paper: <3%
        # average; we allow a looser bound on scaled-down traces).
        assert row.bins["assert"] <= 0.35 * row.cycles
