"""Hash-ring routing throughput: cell-key lookups/sec.

The gateway computes one ring lookup per cell at planning time (and
re-plans on every eviction), so lookups/sec bounds how fast a huge
matrix can be sharded.  Also records the remap fraction for a node
join on an 8-node ring — the locality number the consistent-hashing
design buys (vs 0.5 for naive modulo placement).
"""

from repro.cluster.ring import HashRing

NODES = [f"10.0.0.{i}:9400" for i in range(1, 9)]
KEYS = [f"cell:w{i % 40}:cfg{i % 7}:None:{i}" for i in range(5000)]


def _route_all(ring: HashRing) -> int:
    return sum(1 for key in KEYS if ring.owner(key) is not None)


def test_bench_ring_lookup(benchmark, bench_records):
    ring = HashRing(NODES)
    routed = benchmark(_route_all, ring)
    assert routed == len(KEYS)

    before = HashRing(NODES)
    after = HashRing(NODES)
    after.add("10.0.1.99:9400")
    moved = sum(1 for k in KEYS if before.owner(k) != after.owner(k))
    remap_fraction = moved / len(KEYS)
    assert remap_fraction < 0.3  # ~1/9 expected; far under modulo's 0.5

    lookups_per_sec = len(KEYS) / benchmark.stats.stats.mean
    bench_records["ring_routing"] = {
        "nodes": len(NODES),
        "keys": len(KEYS),
        "lookups_per_sec": round(lookups_per_sec),
        "join_remap_fraction": round(remap_fraction, 4),
    }
