"""Figure 2: the crafty running example at all optimization scopes.

The frame-level result must match the paper exactly: 7 of 17
micro-operations removed, including 2 of the 5 loads.
"""

from repro.harness.fig2 import figure2_report, optimize_at_scopes


def test_bench_figure2(benchmark):
    results = benchmark.pedantic(optimize_at_scopes, rounds=3, iterations=1)
    print()
    print(figure2_report())
    by_scope = {r.scope: r for r in results}
    assert by_scope["unoptimized"].uops == 17
    assert by_scope["unoptimized"].loads == 5
    assert by_scope["frame"].uops == 10  # paper: 7 of 17 removed
    assert by_scope["frame"].loads == 3  # paper: 2 of 5 loads removed
    assert by_scope["block"].uops == 13  # paper's intra-block column
    assert (
        by_scope["frame"].uops
        <= by_scope["inter"].uops
        <= by_scope["block"].uops
    )
