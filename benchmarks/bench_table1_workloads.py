"""Table 1: the experimental workload set.

Regenerates the workload summary (our synthetic analogue of the paper's
trace table) and benchmarks trace generation itself.
"""

from repro.harness.figures import PAPER_ORDER, run_table1
from repro.harness.report import format_table1
from repro.workloads import all_workloads, build_workload


def test_bench_table1(matrix, benchmark):
    rows = benchmark.pedantic(run_table1, args=(matrix,), rounds=1, iterations=1)
    print()
    print(format_table1(rows))
    assert [r.name for r in rows] == PAPER_ORDER
    # 7 SPECint + 7 desktop, as in the paper.
    assert sum(r.category == "SPECint" for r in rows) == 7
    assert all(r.x86_instructions >= 5_000 for r in rows)


def test_bench_trace_generation_speed(benchmark):
    trace = benchmark.pedantic(
        build_workload, args=("twolf",), rounds=1, iterations=1
    )
    assert len(trace) > 5_000
