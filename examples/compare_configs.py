#!/usr/bin/env python3
"""Compare the paper's four processor configurations on one workload.

Runs a chosen workload (default: bzip2) under ICache, Trace Cache, basic
rePLay, and optimizing rePLay, printing x86 IPC and the Figure 7/8-style
cycle breakdown for each.

Run with::

    python examples/compare_configs.py [workload]
"""

import sys

from repro.harness import CONFIGS, run_experiment
from repro.timing.pipeline import BINS
from repro.workloads import all_workloads, build_workload


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "bzip2"
    available = [w.name for w in all_workloads()]
    if name not in available:
        print(f"unknown workload {name!r}; choose from {available}")
        raise SystemExit(1)

    trace = build_workload(name)
    stats = trace.stats()
    print(f"workload {name}: {stats.x86_instructions:,} x86 instructions, "
          f"{stats.loads:,} loads, {stats.conditional_branches:,} branches\n")

    header = f"{'config':6s} {'IPC':>6s} {'cycles':>9s} {'cover':>6s}  " + \
        " ".join(f"{b:>8s}" for b in BINS)
    print(header)
    print("-" * len(header))
    for config_name in ("IC", "TC", "RP", "RPO"):
        result = run_experiment(trace, CONFIGS[config_name])
        bins = " ".join(f"{result.sim.bins[b]:8,d}" for b in BINS)
        print(f"{config_name:6s} {result.ipc_x86:6.2f} {result.sim.cycles:9,d} "
              f"{result.coverage:6.0%}  {bins}")

    rp = run_experiment(trace, CONFIGS["RP"])
    rpo = run_experiment(trace, CONFIGS["RPO"])
    print(f"\nRPO over RP: {rpo.ipc_x86 / rp.ipc_x86 - 1:+.1%} IPC, "
          f"{rpo.uop_reduction:.1%} of dynamic uops removed, "
          f"{rpo.load_reduction:.1%} of dynamic loads removed")


if __name__ == "__main__":
    main()
