#!/usr/bin/env python3
"""Quickstart: build a tiny x86 program, watch rePLay optimize it.

Walks the full pipeline end to end:

1. assemble an x86-subset program with the library's assembler DSL;
2. execute it on the functional emulator to capture a dynamic trace;
3. decode the trace into rePLay micro-operations;
4. construct an atomic frame and run the optimization engine on it;
5. simulate the trace under the RP and RPO processor configurations.

Run with::

    python examples/quickstart.py
"""

from repro.x86 import Assembler, Cond, Emulator, Imm, Reg, mem
from repro.trace import DynamicTrace, MicroOpInjector
from repro.replay import FrameConstructor
from repro.optimizer import FrameOptimizer
from repro.harness import CONFIGS, run_experiment


def build_program():
    """A loop that sums an array through a small helper function."""
    asm = Assembler()
    asm.data_words(0x500000, list(range(1, 257)))
    asm.mov(Reg.ESI, Imm(0x500000))
    asm.mov(Reg.ECX, Imm(256))
    asm.xor(Reg.EAX, Reg.EAX)
    asm.label("loop")
    asm.push(Reg.ECX)
    asm.call("accumulate")
    asm.pop(Reg.ECX)
    asm.add(Reg.ESI, Imm(4))
    asm.and_(Reg.ESI, Imm(0x5003FC))  # wrap within the table
    asm.dec(Reg.ECX)
    asm.jcc(Cond.NZ, "loop")
    asm.ret()
    asm.label("accumulate")
    asm.push(Reg.EBP)
    asm.mov(Reg.EBP, Reg.ESP)
    asm.mov(Reg.EDX, mem(Reg.ESI))
    asm.add(Reg.EAX, Reg.EDX)
    asm.pop(Reg.EBP)
    asm.ret()
    return asm.assemble()


def main() -> None:
    program = build_program()

    # 1-2. Execute and capture the dynamic trace.
    emulator = Emulator(program)
    trace = DynamicTrace(emulator.run(), name="quickstart")
    print(f"trace: {len(trace)} x86 instructions, "
          f"final EAX = {emulator.regs[Reg.EAX]}")

    # 3. Decode into micro-operations.
    injector = MicroOpInjector()
    injected = injector.inject_trace(trace)
    print(f"decoded: {injector.uop_count} uops "
          f"({injector.uops_per_x86:.2f} uops per x86 instruction)")

    # 4. Build one frame by hand (one loop iteration) and optimize it.
    start = next(
        i for i, instr in enumerate(injected)
        if instr.record.pc == program.labels["loop"] and i > 20
    )
    region = injected[start : start + 12]
    frame = FrameConstructor().build_frame(region, region[-1].record.next_pc)
    buffer = frame.build_buffer()
    print("\n--- frame before optimization ---")
    print(buffer.dump())
    result = FrameOptimizer().optimize(buffer)
    print(f"\n--- after optimization: {result.uops_before} -> "
          f"{result.uops_after} uops, {result.loads_before} -> "
          f"{result.loads_after} loads ---")
    print(buffer.dump())

    # 5. Full trace-driven simulation, basic rePLay vs optimizing rePLay.
    print("\n--- simulation ---")
    for name in ("IC", "RP", "RPO"):
        experiment = run_experiment(trace, CONFIGS[name])
        print(f"{name:4s} IPC = {experiment.ipc_x86:.2f}  "
              f"(coverage {experiment.coverage:.0%})")


if __name__ == "__main__":
    main()
