#!/usr/bin/env python3
"""Reproduce the paper's Figure 2: optimization scope on a crafty fragment.

Shows the same procedure fragment optimized at intra-block, inter-block,
and frame-level scope.  The paper's frame-level result — seven of the
seventeen micro-operations removed, including two of the five loads —
is reproduced exactly.

Run with::

    python examples/figure2_crafty.py
"""

from repro.harness.fig2 import figure2_report, optimize_at_scopes


def main() -> None:
    print(figure2_report())
    results = {r.scope: r for r in optimize_at_scopes()}
    removed = results["unoptimized"].uops - results["frame"].uops
    loads_removed = results["unoptimized"].loads - results["frame"].loads
    print(
        f"frame-level scope removed {removed} of "
        f"{results['unoptimized'].uops} micro-operations "
        f"({loads_removed} of {results['unoptimized'].loads} loads) — "
        f"the paper reports 7 of 17 (2 of 5 loads)."
    )


if __name__ == "__main__":
    main()
