#!/usr/bin/env python3
"""Author your own workload and measure what the optimizer removes.

Demonstrates the pattern a downstream user follows to study a new
kernel: write it in the assembler DSL, capture a trace, and run it with
frame verification enabled so every optimized frame is checked against
the original instruction stream's architectural effects.

The kernel here is a string-table interning loop: hash a short string,
probe a table, and insert on miss — a mix of byte loads, stack spills,
and a data-dependent probe branch.

Run with::

    python examples/custom_workload.py
"""

import random
from dataclasses import replace

from repro.x86 import Assembler, Cond, Emulator, Imm, Reg, mem
from repro.trace import DynamicTrace
from repro.harness import CONFIGS, run_experiment

TABLE = 0x0050_0000  # 256 slots
STRINGS = 0x0050_2000


def build_program(seed: int = 7):
    rng = random.Random(seed)
    asm = Assembler()
    # Pre-populated table: the probe branch is biased from the start, so
    # the frame constructor sees a stable hot path immediately.
    asm.data_words(TABLE, [rng.randrange(1, 1 << 16) for _ in range(256)])
    asm.data_bytes(STRINGS, bytes(rng.choice(b"abcdefgh") for _ in range(2048)))

    asm.mov(Reg.ECX, Imm(3000))
    asm.xor(Reg.EDI, Reg.EDI)  # string offset
    asm.label("loop")
    # hash = (s[0]*31 + s[1]) & 255
    asm.movzx(Reg.EAX, mem(index=Reg.EDI, disp=STRINGS, size=1))
    asm.imul(Reg.EAX, Imm(31))
    asm.movzx(Reg.EDX, mem(index=Reg.EDI, disp=STRINGS + 1, size=1))
    asm.add(Reg.EAX, Reg.EDX)
    asm.and_(Reg.EAX, Imm(255))
    # probe: empty slot -> insert; else bump hit counter via a spill
    asm.mov(Reg.EBX, mem(index=Reg.EAX, scale=4, disp=TABLE))
    asm.test(Reg.EBX, Reg.EBX)
    asm.jcc(Cond.Z, "insert")
    asm.push(Reg.EBX)
    asm.inc(Reg.EBX)
    asm.pop(Reg.EDX)  # forwarded by the optimizer
    asm.mov(mem(index=Reg.EAX, scale=4, disp=TABLE), Reg.EBX)
    asm.jmp("next")
    asm.label("insert")
    asm.mov(mem(index=Reg.EAX, scale=4, disp=TABLE), Reg.EDI)
    asm.label("next")
    asm.add(Reg.EDI, Imm(2))
    asm.and_(Reg.EDI, Imm(2047 - 2))
    asm.dec(Reg.ECX)
    asm.jcc(Cond.NZ, "loop")
    asm.ret()
    return asm.assemble()


def main() -> None:
    program = build_program()
    trace = DynamicTrace(Emulator(program).run(), name="interning")
    print(f"custom workload: {len(trace):,} x86 instructions")

    rp = run_experiment(trace, CONFIGS["RP"])
    # verify=True runs the State Verifier on every distinct frame path.
    rpo = run_experiment(trace, replace(CONFIGS["RPO"], verify=True))
    print(f"RP  IPC = {rp.ipc_x86:.2f}")
    print(f"RPO IPC = {rpo.ipc_x86:.2f} ({rpo.ipc_x86 / rp.ipc_x86 - 1:+.1%})")
    print(f"dynamic uops removed:  {rpo.uop_reduction:.1%}")
    print(f"dynamic loads removed: {rpo.load_reduction:.1%}")
    print(f"frames verified against the trace: {rpo.frames_verified}")


if __name__ == "__main__":
    main()
