#!/usr/bin/env python3
"""Inspect the hardware optimizer's datapath work (paper §4).

The paper claims a pipelined hardware optimizer with a latency of 10
cycles per micro-operation is enough to run these optimizations.  This
example instruments the optimization buffer, counts the dataflow-
traversal / field-manipulation / add-remove primitives each pass
actually performs on real frames, and checks the work fits the paper's
latency budget.

Run with::

    python examples/datapath_analysis.py [workload]
"""

import sys

from repro.optimizer import FrameOptimizer, check_latency_budget, instrument
from repro.replay import ConstructorConfig, FrameConstructor
from repro.trace import MicroOpInjector
from repro.workloads import all_workloads, build_workload


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "crafty"
    available = [w.name for w in all_workloads()]
    if name not in available:
        print(f"unknown workload {name!r}; choose from {available}")
        raise SystemExit(1)

    trace = build_workload(name)
    injected = MicroOpInjector().inject_trace(trace)
    constructor = FrameConstructor(ConstructorConfig(promotion_threshold=4))
    optimizer = FrameOptimizer()

    print(f"{'frame':>10s} {'uops':>5s} {'kept':>5s} "
          f"{'parent':>7s} {'child':>6s} {'field':>6s} {'rm':>4s} "
          f"{'dp cyc':>7s} {'budget':>7s}")
    seen: set[tuple] = set()
    shown = 0
    for instr in injected:
        frame = constructor.retire(instr)
        if frame is None or frame.raw_uop_count < 24:
            continue
        if frame.path_key in seen:
            continue
        seen.add(frame.path_key)
        buffer = instrument(frame)
        result = optimizer.optimize(buffer)
        counts = buffer.counts
        budget = 10 * result.uops_before
        ok = check_latency_budget(counts, result.uops_before)
        print(f"{frame.start_pc:#10x} {result.uops_before:5d} "
              f"{result.uops_after:5d} {counts.parent_lookups:7d} "
              f"{counts.child_iterations:6d} {counts.field_operations:6d} "
              f"{counts.removals:4d} {counts.cycles(2):7d} {budget:7d}"
              + ("" if ok else "  OVER BUDGET"))
        shown += 1
        if shown >= 10:
            break
    print("\n(datapath cycles assume 2 primitives/cycle; the budget is the")
    print(" paper's modeled 10 cycles per incoming micro-operation)")


if __name__ == "__main__":
    main()
