"""Experiment runner: one (workload, configuration) simulation.

The four configurations of Figure 6:

* ``IC``  — conventional ICache front end;
* ``TC``  — trace cache (fill unit, non-atomic lines);
* ``RP``  — basic rePLay (frames, no optimization);
* ``RPO`` — rePLay with the optimization engine.

``run_experiment`` wires the Micro-Op Injector, the chosen sequencer, and
the timing model together and returns an :class:`ExperimentResult`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace

from repro.trace.injector import MicroOpInjector
from repro.trace.stream import DynamicTrace
from repro.optimizer.pipeline import FrameOptimizer, OptimizerConfig
from repro.replay.constructor import ConstructorConfig
from repro.replay.sequencer import ICacheSequencer, RePLaySequencer, SequencerStats
from repro.timing.config import ProcessorConfig, default_config, large_icache_config
from repro.timing.pipeline import PipelineModel, SimResult
from repro.tracecache.sequencer import TraceCacheSequencer
from repro.verify.verifier import StateVerifier


@dataclass(frozen=True)
class ExperimentConfig:
    """One named processor/front-end configuration."""

    name: str
    frontend: str  # 'icache' | 'tcache' | 'replay'
    optimize: bool = False
    optimizer: OptimizerConfig = field(default_factory=OptimizerConfig)
    constructor: ConstructorConfig = field(default_factory=ConstructorConfig)
    processor: ProcessorConfig = field(default_factory=default_config)
    verify: bool = False

    def with_optimizer(self, optimizer: OptimizerConfig) -> "ExperimentConfig":
        return replace(self, optimizer=optimizer)

    def fingerprint(self) -> dict:
        """Every field that determines simulation output, as plain data.

        The artifact store mixes this into the result cache key, so any
        config change — a disabled pass, a resized cache — is a cache
        miss, never a stale hit.
        """
        return asdict(self)


#: The paper's four headline configurations (Figure 6).  ``IC64`` is the
#: 64kB-ICache reference mentioned in §5.3.
CONFIGS: dict[str, ExperimentConfig] = {
    "IC": ExperimentConfig(name="IC", frontend="icache"),
    "IC64": ExperimentConfig(
        name="IC64", frontend="icache", processor=large_icache_config()
    ),
    "TC": ExperimentConfig(name="TC", frontend="tcache"),
    "RP": ExperimentConfig(name="RP", frontend="replay", optimize=False),
    "RPO": ExperimentConfig(name="RPO", frontend="replay", optimize=True),
}


@dataclass
class ExperimentResult:
    """Everything measured in one run."""

    config_name: str
    workload: str
    sim: SimResult
    sequencer_stats: SequencerStats | None = None
    optimizer_totals: object | None = None
    uops_per_x86: float = 0.0
    frames_verified: int = 0

    @property
    def ipc_x86(self) -> float:
        return self.sim.ipc_x86

    @property
    def uop_reduction(self) -> float:
        """Dynamic uop reduction (Table 3 'Micro-ops Removed')."""
        if self.sequencer_stats is None:
            return 0.0
        return self.sequencer_stats.dynamic_uop_reduction

    @property
    def load_reduction(self) -> float:
        """Dynamic load reduction (Table 3 'Loads Removed')."""
        if self.sequencer_stats is None:
            return 0.0
        return self.sequencer_stats.dynamic_load_reduction

    @property
    def coverage(self) -> float:
        return self.sim.coverage


def run_experiment(
    trace: DynamicTrace,
    config: ExperimentConfig,
    workload_name: str | None = None,
) -> ExperimentResult:
    """Simulate one workload trace under one configuration."""
    injector = MicroOpInjector()
    injected = injector.inject_trace(trace)

    verifier = StateVerifier() if (config.verify and config.optimize) else None
    if config.frontend == "icache":
        sequencer = ICacheSequencer(injected, config.processor)
    elif config.frontend == "tcache":
        sequencer = TraceCacheSequencer(injected, config.processor)
    elif config.frontend == "replay":
        optimizer = FrameOptimizer(config.optimizer) if config.optimize else None
        sequencer = RePLaySequencer(
            injected,
            config.processor,
            optimizer,
            constructor_config=config.constructor,
            verifier=verifier,
        )
    else:
        raise ValueError(f"unknown frontend {config.frontend!r}")

    pipeline = PipelineModel(config.processor)
    sim = pipeline.simulate(sequencer)

    result = ExperimentResult(
        config_name=config.name,
        workload=workload_name or trace.name,
        sim=sim,
        uops_per_x86=injector.uops_per_x86,
    )
    if isinstance(sequencer, RePLaySequencer):
        result.sequencer_stats = sequencer.stats
        result.optimizer_totals = sequencer.queue.totals
        if verifier is not None:
            result.frames_verified = verifier.instances_checked
    elif isinstance(sequencer, ICacheSequencer):
        result.sequencer_stats = sequencer.stats
    return result


def run_configs(
    trace: DynamicTrace,
    configs: list[ExperimentConfig],
    workload_name: str | None = None,
) -> dict[str, ExperimentResult]:
    """Run several configurations over one trace."""
    return {
        config.name: run_experiment(trace, config, workload_name)
        for config in configs
    }
