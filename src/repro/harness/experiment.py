"""Experiment runner: one (workload, configuration) simulation.

The four configurations of Figure 6:

* ``IC``  — conventional ICache front end;
* ``TC``  — trace cache (fill unit, non-atomic lines);
* ``RP``  — basic rePLay (frames, no optimization);
* ``RPO`` — rePLay with the optimization engine.

``run_experiment`` wires the Micro-Op Injector, the chosen sequencer, and
the timing model together and returns an :class:`ExperimentResult`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace

from repro.metrics import MetricsRegistry, get_registry
from repro.trace.injector import MicroOpInjector
from repro.trace.stream import DynamicTrace
from repro.optimizer.pipeline import FrameOptimizer, OptimizerConfig
from repro.replay.constructor import ConstructorConfig
from repro.replay.sequencer import ICacheSequencer, RePLaySequencer, SequencerStats
from repro.timing.config import ProcessorConfig, default_config, large_icache_config
from repro.timing.pipeline import PipelineModel, SimResult
from repro.tracecache.sequencer import TraceCacheSequencer
from repro.verify.verifier import StateVerifier


@dataclass(frozen=True)
class ExperimentConfig:
    """One named processor/front-end configuration."""

    name: str
    frontend: str  # 'icache' | 'tcache' | 'replay'
    optimize: bool = False
    optimizer: OptimizerConfig = field(default_factory=OptimizerConfig)
    constructor: ConstructorConfig = field(default_factory=ConstructorConfig)
    processor: ProcessorConfig = field(default_factory=default_config)
    verify: bool = False

    def with_optimizer(self, optimizer: OptimizerConfig) -> "ExperimentConfig":
        return replace(self, optimizer=optimizer)

    def fingerprint(self) -> dict:
        """Every field that determines simulation output, as plain data.

        The artifact store mixes this into the result cache key, so any
        config change — a disabled pass, a resized cache — is a cache
        miss, never a stale hit.
        """
        return asdict(self)


#: The paper's four headline configurations (Figure 6).  ``IC64`` is the
#: 64kB-ICache reference mentioned in §5.3.
CONFIGS: dict[str, ExperimentConfig] = {
    "IC": ExperimentConfig(name="IC", frontend="icache"),
    "IC64": ExperimentConfig(
        name="IC64", frontend="icache", processor=large_icache_config()
    ),
    "TC": ExperimentConfig(name="TC", frontend="tcache"),
    "RP": ExperimentConfig(name="RP", frontend="replay", optimize=False),
    "RPO": ExperimentConfig(name="RPO", frontend="replay", optimize=True),
}


@dataclass
class ExperimentResult:
    """Everything measured in one run."""

    config_name: str
    workload: str
    sim: SimResult
    sequencer_stats: SequencerStats | None = None
    optimizer_totals: object | None = None
    uops_per_x86: float = 0.0
    frames_verified: int = 0

    @property
    def ipc_x86(self) -> float:
        return self.sim.ipc_x86

    @property
    def uop_reduction(self) -> float:
        """Dynamic uop reduction (Table 3 'Micro-ops Removed')."""
        if self.sequencer_stats is None:
            return 0.0
        return self.sequencer_stats.dynamic_uop_reduction

    @property
    def load_reduction(self) -> float:
        """Dynamic load reduction (Table 3 'Loads Removed')."""
        if self.sequencer_stats is None:
            return 0.0
        return self.sequencer_stats.dynamic_load_reduction

    @property
    def coverage(self) -> float:
        return self.sim.coverage


def run_experiment(
    trace: DynamicTrace,
    config: ExperimentConfig,
    workload_name: str | None = None,
    metrics: MetricsRegistry | None = None,
    scheduling: str = "template",
) -> ExperimentResult:
    """Simulate one workload trace under one configuration.

    Measurements land in ``metrics`` (the process-global registry when
    not given): simulation counters, the seven cycle-accounting bins,
    sequencer/frame-cache activity, and per-pass optimizer changes.
    ``scheduling`` selects the timing model's uop-scheduling path
    ('template' fast path or the object-walking 'reference'); the two
    are cycle-identical by contract (DESIGN.md §11).
    """
    registry = metrics if metrics is not None else get_registry()
    # Fail before any emulation or sequencer state is built: sequencers
    # consume the same geometry (frame cache capacity, fetch width), so
    # a degenerate config must not get as far as constructing them.
    config.processor.validate()
    injector = MicroOpInjector()
    injected = injector.inject_trace(trace)

    verifier = StateVerifier() if (config.verify and config.optimize) else None
    if config.frontend == "icache":
        sequencer = ICacheSequencer(injected, config.processor)
    elif config.frontend == "tcache":
        sequencer = TraceCacheSequencer(
            injected, config.processor, fill_config=config.processor.fill_unit
        )
    elif config.frontend == "replay":
        optimizer = (
            FrameOptimizer(config.optimizer, metrics=registry)
            if config.optimize
            else None
        )
        sequencer = RePLaySequencer(
            injected,
            config.processor,
            optimizer,
            constructor_config=config.constructor,
            verifier=verifier,
        )
    else:
        raise ValueError(f"unknown frontend {config.frontend!r}")

    pipeline = PipelineModel(config.processor, scheduling=scheduling)
    with registry.timer("time.simulate"):
        sim = pipeline.simulate(sequencer)

    result = ExperimentResult(
        config_name=config.name,
        workload=workload_name or trace.name,
        sim=sim,
        uops_per_x86=injector.uops_per_x86,
    )
    if isinstance(sequencer, RePLaySequencer):
        result.sequencer_stats = sequencer.stats
        result.optimizer_totals = sequencer.queue.totals
        if verifier is not None:
            result.frames_verified = verifier.instances_checked
    elif isinstance(sequencer, ICacheSequencer):
        result.sequencer_stats = sequencer.stats
    _publish_metrics(registry, config, sequencer, sim, result)
    return result


def _publish_metrics(
    registry: MetricsRegistry, config, sequencer, sim, result
) -> None:
    """Fold one simulation's component counters into the registry.

    Components keep plain-int counters on their hot paths; this single
    coarse publication step is what keeps metrics overhead negligible
    while still exposing every layer's activity.
    """
    counter = registry.counter
    counter("sim.runs").inc()
    counter("sim.cycles").inc(sim.cycles)
    counter("sim.x86_retired").inc(sim.x86_retired)
    counter("sim.uops_fetched").inc(sim.uops_fetched)
    counter("sim.loads_executed").inc(sim.loads_executed)
    counter("sim.stores_executed").inc(sim.stores_executed)
    counter("sim.branch_mispredicts").inc(sim.branch_mispredicts)
    counter("sim.frames_fetched").inc(sim.frames_fetched)
    counter("sim.frames_fired").inc(sim.frames_fired)
    for bin_name, cycles in sim.bins.items():
        counter(f"timing.bin.{bin_name}").inc(cycles)
    counter("timing.window_occupancy_sum").inc(sim.window_occupancy_sum)
    counter("timing.window_occupancy_samples").inc(sim.window_occupancy_samples)
    registry.histogram("timing.window_occupancy_mean").observe(
        sim.window_occupancy_mean
    )
    stats = result.sequencer_stats
    if stats is not None:
        counter("sequencer.raw_uops_total").inc(stats.raw_uops_total)
        counter("sequencer.frame_dispatches").inc(stats.frame_dispatches)
        counter("sequencer.frame_aborts").inc(stats.frame_aborts)
        counter("sequencer.unsafe_aborts").inc(stats.unsafe_aborts)
        counter("sequencer.cooldown_skips").inc(stats.cooldown_skips)
        counter("sequencer.frame_raw_uops").inc(stats.frame_raw_uops)
        counter("sequencer.frame_fetched_uops").inc(stats.frame_fetched_uops)
    if isinstance(sequencer, RePLaySequencer):
        cache = sequencer.frame_cache
        counter("frame_cache.hits").inc(cache.hits)
        counter("frame_cache.misses").inc(cache.misses)
        counter("frame_cache.evictions").inc(cache.evictions)
        counter("frame_cache.displacements").inc(cache.displacements)
        counter("frame_cache.rejections").inc(cache.rejections)
        totals = sequencer.queue.totals
        counter("optimizer.frames_optimized").inc(totals.frames_optimized)
        counter("optimizer.frames_dropped").inc(totals.frames_dropped)
        counter("optimizer.uops_removed").inc(totals.uops_removed)
        counter("optimizer.loads_removed").inc(totals.loads_removed)
        counter("optimizer.loads_removed_speculatively").inc(
            totals.loads_removed_speculatively
        )
        counter("optimizer.stores_marked_unsafe").inc(totals.stores_marked_unsafe)
    registry.event(
        "experiment",
        workload=result.workload,
        config=config.name,
        cycles=sim.cycles,
        ipc_x86=round(sim.ipc_x86, 4),
    )


def run_configs(
    trace: DynamicTrace,
    configs: list[ExperimentConfig],
    workload_name: str | None = None,
) -> dict[str, ExperimentResult]:
    """Run several configurations over one trace."""
    return {
        config.name: run_experiment(trace, config, workload_name)
        for config in configs
    }
