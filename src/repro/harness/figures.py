"""Experiment runners: one function per table/figure of the paper.

Each ``run_*`` function returns plain data structures (suitable for both
the CLI's text tables and the benchmark assertions), computed via a
shared :class:`ResultMatrix` so a (workload, config) pair is only ever
simulated once per process.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

from repro.artifacts.runner import MatrixTask, TaskTelemetry, compute_trace, run_matrix
from repro.artifacts.store import ArtifactStore
from repro.harness.experiment import CONFIGS, ExperimentConfig, ExperimentResult, run_experiment
from repro.optimizer.pipeline import OptimizerConfig
from repro.timing.pipeline import BINS
from repro.trace.stream import DynamicTrace
from repro.workloads import all_workloads, build_workload, get_workload

#: Workload order used throughout the paper's figures.
PAPER_ORDER = [
    "bzip2",
    "crafty",
    "eon",
    "gzip",
    "parser",
    "twolf",
    "vortex",
    "access",
    "dream",
    "excel",
    "lotus",
    "photo",
    "power",
    "sound",
]

#: The subset shown in Figure 10.
FIG10_WORKLOADS = ["bzip2", "crafty", "vortex", "dream", "excel"]

#: Figure 10 ablation legend order.
FIG10_VARIANTS = ["asst", "cp", "cse", "nop", "ra", "sf"]


class ResultMatrix:
    """Caches traces and (workload, config) simulation results.

    Three cache layers, cheapest first: this process's memory, the
    on-disk :class:`ArtifactStore` (``store``, survives across runs), and
    recomputation — fanned across a process pool when ``jobs > 1``.
    ``telemetry`` records where every cell came from; :meth:`summary`
    renders the cache-hit counters the CLI prints after a run.
    """

    def __init__(
        self,
        scale: int | None = None,
        seed: int = 1,
        store: ArtifactStore | None = None,
        jobs: int = 1,
    ) -> None:
        self.scale = scale
        self.seed = seed
        self.store = store
        self.jobs = max(1, jobs)
        self._traces: dict[str, DynamicTrace] = {}
        self._results: dict[tuple[str, str], ExperimentResult] = {}
        self.telemetry: list[TaskTelemetry] = []

    def trace(self, workload: str) -> DynamicTrace:
        if workload not in self._traces:
            telemetry = TaskTelemetry(workload=workload, config_name="-")
            start = time.perf_counter()
            self._traces[workload] = compute_trace(
                workload, self.scale, self.seed, self.store, telemetry
            )
            telemetry.seconds = time.perf_counter() - start
            self.telemetry.append(telemetry)
        return self._traces[workload]

    def ensure(self, pairs: list[tuple[str, ExperimentConfig]]) -> None:
        """Resolve many (workload, config) cells at once.

        Missing cells run through :func:`repro.artifacts.runner.run_matrix`
        — in parallel when ``jobs > 1`` — and land in the in-memory map,
        so the subsequent per-cell :meth:`run` calls are pure lookups.
        """
        tasks: list[MatrixTask] = []
        seen: set[tuple[str, str]] = set()
        for workload, config in pairs:
            cell = (workload, config.name)
            if cell in self._results or cell in seen:
                continue
            seen.add(cell)
            tasks.append(
                MatrixTask(workload, config, scale=self.scale, seed=self.seed)
            )
        if not tasks:
            return
        run = run_matrix(tasks, jobs=self.jobs, store=self.store)
        for task, result in zip(run.tasks, run.results):
            self._results[(task.workload, task.config.name)] = result
        self.telemetry.extend(run.telemetry)

    def run(self, workload: str, config: ExperimentConfig) -> ExperimentResult:
        key = (workload, config.name)
        if key not in self._results:
            self.ensure([(workload, config)])
        return self._results[key]

    # ------------------------------------------------------ run summary

    @property
    def results_cached(self) -> int:
        return sum(t.result_cache_hit for t in self.telemetry)

    @property
    def results_computed(self) -> int:
        return sum(t.simulated for t in self.telemetry)

    @property
    def traces_cached(self) -> int:
        return sum(t.trace_cache_hit for t in self.telemetry)

    @property
    def traces_emulated(self) -> int:
        return sum(t.emulated for t in self.telemetry)

    def summary(self) -> str:
        """One-line cache/parallelism accounting for this run."""
        if self.store is not None:
            stats = self.store.stats()
            mb = stats["bytes"] / (1024 * 1024)
            cache = f"{stats['root']} ({stats['entries']} entries, {mb:.1f} MB)"
        else:
            cache = "disabled"
        return (
            f"[repro.artifacts] results: {self.results_computed} computed, "
            f"{self.results_cached} cached | traces: "
            f"{self.traces_emulated} emulated, {self.traces_cached} cached | "
            f"jobs: {self.jobs} | cache: {cache}"
        )


# ----------------------------------------------------------------- tables


@dataclass
class Table1Row:
    name: str
    category: str
    x86_instructions: int
    loads: int
    stores: int
    conditional_branches: int
    taken_ratio: float
    description: str


def run_table1(matrix: ResultMatrix | None = None) -> list[Table1Row]:
    """Workload set summary (Table 1 analogue)."""
    matrix = matrix or ResultMatrix()
    rows = []
    for name in PAPER_ORDER:
        workload = get_workload(name)
        stats = matrix.trace(name).stats()
        rows.append(
            Table1Row(
                name=name,
                category=workload.category,
                x86_instructions=stats.x86_instructions,
                loads=stats.loads,
                stores=stats.stores,
                conditional_branches=stats.conditional_branches,
                taken_ratio=stats.taken_ratio,
                description=workload.description,
            )
        )
    return rows


def run_table2() -> str:
    """Processor configuration (Table 2)."""
    from repro.timing.config import default_config

    return default_config().table2()


@dataclass
class Fig6Row:
    name: str
    ipc: dict[str, float]  # config name -> x86 IPC
    rpo_gain_over_rp: float
    coverage: float


def run_fig6(
    matrix: ResultMatrix | None = None, workloads: list[str] | None = None
) -> list[Fig6Row]:
    """x86 IPC under IC / TC / RP / RPO (Figure 6)."""
    matrix = matrix or ResultMatrix()
    names = workloads or PAPER_ORDER
    matrix.ensure(
        [(name, CONFIGS[c]) for name in names for c in ("IC", "TC", "RP", "RPO")]
    )
    rows = []
    for name in names:
        ipc = {}
        for config_name in ("IC", "TC", "RP", "RPO"):
            ipc[config_name] = matrix.run(name, CONFIGS[config_name]).ipc_x86
        gain = ipc["RPO"] / ipc["RP"] - 1.0 if ipc["RP"] else 0.0
        rows.append(
            Fig6Row(
                name=name,
                ipc=ipc,
                rpo_gain_over_rp=gain,
                coverage=matrix.run(name, CONFIGS["RPO"]).coverage,
            )
        )
    return rows


@dataclass
class CycleBreakdownRow:
    name: str
    config: str
    cycles: int
    bins: dict[str, int]


def run_fig7_8(
    matrix: ResultMatrix | None = None, workloads: list[str] | None = None
) -> list[CycleBreakdownRow]:
    """Per-benchmark cycle breakdown for RP and RPO (Figures 7 and 8)."""
    matrix = matrix or ResultMatrix()
    names = workloads or PAPER_ORDER
    matrix.ensure([(name, CONFIGS[c]) for name in names for c in ("RP", "RPO")])
    rows = []
    for name in names:
        for config_name in ("RP", "RPO"):
            result = matrix.run(name, CONFIGS[config_name])
            rows.append(
                CycleBreakdownRow(
                    name=name,
                    config=config_name,
                    cycles=result.sim.cycles,
                    bins=dict(result.sim.bins),
                )
            )
    return rows


@dataclass
class Table3Row:
    name: str
    uops_removed: float
    loads_removed: float
    ipc_increase: float
    paper_uops_removed: float = 0.0
    paper_loads_removed: float = 0.0
    paper_ipc_increase: float = 0.0


def run_table3(
    matrix: ResultMatrix | None = None, workloads: list[str] | None = None
) -> list[Table3Row]:
    """Dynamic uop/load reduction and IPC increase (Table 3).

    The final row is the all-workload average, as in the paper.
    """
    matrix = matrix or ResultMatrix()
    names = workloads or PAPER_ORDER
    matrix.ensure([(name, CONFIGS[c]) for name in names for c in ("RP", "RPO")])
    rows = []
    for name in names:
        rp = matrix.run(name, CONFIGS["RP"])
        rpo = matrix.run(name, CONFIGS["RPO"])
        workload = get_workload(name)
        rows.append(
            Table3Row(
                name=name,
                uops_removed=rpo.uop_reduction,
                loads_removed=rpo.load_reduction,
                ipc_increase=rpo.ipc_x86 / rp.ipc_x86 - 1.0 if rp.ipc_x86 else 0.0,
                paper_uops_removed=workload.paper_uop_reduction,
                paper_loads_removed=workload.paper_load_reduction,
                paper_ipc_increase=workload.paper_ipc_gain,
            )
        )
    average = Table3Row(
        name="Average",
        uops_removed=sum(r.uops_removed for r in rows) / len(rows),
        loads_removed=sum(r.loads_removed for r in rows) / len(rows),
        ipc_increase=sum(r.ipc_increase for r in rows) / len(rows),
        paper_uops_removed=0.21,
        paper_loads_removed=0.22,
        paper_ipc_increase=0.17,
    )
    return rows + [average]


@dataclass
class Fig9Row:
    name: str
    block_speedup: float  # intra-block-only optimization, vs RP
    frame_speedup: float  # frame-level optimization, vs RP


def run_fig9(
    matrix: ResultMatrix | None = None, workloads: list[str] | None = None
) -> list[Fig9Row]:
    """Intra-block vs frame-level optimization IPC speedups (Figure 9)."""
    matrix = matrix or ResultMatrix()
    block_config = replace(
        CONFIGS["RPO"],
        name="RPO-block",
        optimizer=OptimizerConfig(scope="block"),
    )
    names = workloads or PAPER_ORDER
    matrix.ensure(
        [
            (name, config)
            for name in names
            for config in (CONFIGS["RP"], CONFIGS["RPO"], block_config)
        ]
    )
    rows = []
    for name in names:
        rp = matrix.run(name, CONFIGS["RP"]).ipc_x86
        frame = matrix.run(name, CONFIGS["RPO"]).ipc_x86
        block = matrix.run(name, block_config).ipc_x86
        rows.append(
            Fig9Row(
                name=name,
                block_speedup=block / rp - 1.0 if rp else 0.0,
                frame_speedup=frame / rp - 1.0 if rp else 0.0,
            )
        )
    return rows


@dataclass
class Fig10Row:
    name: str
    relative_ipc: dict[str, float]  # disabled-pass -> position on the RP..RPO scale


def run_fig10(
    matrix: ResultMatrix | None = None, workloads: list[str] | None = None
) -> list[Fig10Row]:
    """Leave-one-out pass ablation (Figure 10).

    0.0 on the scale = RP (no optimization), 1.0 = RPO (all passes).
    A value above 1.0 means disabling the pass *helped* (the paper's
    Excel-with-SF case).
    """
    matrix = matrix or ResultMatrix()
    variant_configs = {
        variant: replace(
            CONFIGS["RPO"],
            name=f"RPO-no-{variant}",
            optimizer=OptimizerConfig().disabled(variant),
        )
        for variant in FIG10_VARIANTS
    }
    names = workloads or FIG10_WORKLOADS
    matrix.ensure(
        [
            (name, config)
            for name in names
            for config in (
                CONFIGS["RP"],
                CONFIGS["RPO"],
                *variant_configs.values(),
            )
        ]
    )
    rows = []
    for name in names:
        rp = matrix.run(name, CONFIGS["RP"]).ipc_x86
        rpo = matrix.run(name, CONFIGS["RPO"]).ipc_x86
        span = rpo - rp
        relative = {}
        for variant, config in variant_configs.items():
            ipc = matrix.run(name, config).ipc_x86
            relative[variant] = (ipc - rp) / span if span else 0.0
        rows.append(Fig10Row(name=name, relative_ipc=relative))
    return rows
