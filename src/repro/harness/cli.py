"""Command-line entry point: regenerate any table or figure.

Usage::

    python -m repro.harness table1
    python -m repro.harness fig6 table3 --jobs 4
    python -m repro.harness all --scale 2
    python -m repro.harness fig6 --no-cache       # force recompute
    python -m repro.harness fig6 --emit-stats run.json   # write a run ledger
    python -m repro.harness fig6 --profile        # cProfile hotspots to stderr
    python -m repro.harness stats run.json        # pretty-print a run ledger
    python -m repro.harness cache stats           # inspect the artifact cache
    python -m repro.harness cache ls
    python -m repro.harness cache gc --max-mb 256
    python -m repro.harness cache clear
    python -m repro.harness fuzz run --seed 1 --iterations 10000 --jobs 4
    python -m repro.harness fuzz repro <case-id>  # replay a stored divergence
    python -m repro.harness fuzz corpus ls

Experiment runs go through the :mod:`repro.artifacts` store, so a warm
second run does zero workload emulation; a one-line cache/parallelism
summary is printed to stderr (stdout stays byte-identical between cold
and warm runs, and with or without ``--emit-stats``).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.artifacts.store import ArtifactStore
from repro.harness import figures, report
from repro.metrics import (
    LedgerError,
    build_run_ledger,
    format_ledger,
    get_registry,
    profiled,
    read_ledger,
    write_ledger,
)

EXPERIMENTS = ("table1", "table2", "fig2", "fig6", "fig7", "fig8", "fig9", "fig10", "table3")


def _render(name: str, matrix: figures.ResultMatrix) -> str:
    if name == "table1":
        return report.format_table1(figures.run_table1(matrix))
    if name == "table2":
        return "Table 2: processor configuration\n" + figures.run_table2()
    if name == "fig2":
        from repro.harness.fig2 import figure2_report

        return figure2_report()
    if name == "fig6":
        return report.format_fig6(figures.run_fig6(matrix))
    if name in ("fig7", "fig8"):
        workloads = figures.PAPER_ORDER[:7] if name == "fig7" else figures.PAPER_ORDER[7:]
        return report.format_fig7_8(figures.run_fig7_8(matrix, workloads))
    if name == "fig9":
        return report.format_fig9(figures.run_fig9(matrix))
    if name == "fig10":
        return report.format_fig10(figures.run_fig10(matrix))
    if name == "table3":
        return report.format_table3(figures.run_table3(matrix))
    raise ValueError(f"unknown experiment {name!r}")


def _add_cache_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="artifact cache root (default: $REPRO_UOPT_CACHE_DIR "
        "or ~/.cache/repro-uopt)",
    )


def _add_stats_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--emit-stats",
        metavar="FILE",
        default=None,
        help="write a versioned JSON run ledger to FILE after the run",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="wrap the run in cProfile and print hotspots to stderr",
    )


def _format_age(seconds: float) -> str:
    """Entry age for ``cache ls``, clamped at zero.

    A future mtime (clock skew, restored backups, touched files) must
    never render a negative age.
    """
    seconds = max(0.0, seconds)
    if seconds < 1.0:
        return "<1s"
    return f"{seconds:.0f}s"


def cache_main(argv: list[str]) -> int:
    """The ``cache`` subcommand: ls / stats / clear / gc."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness cache",
        description="Inspect or trim the artifact cache.",
    )
    parser.add_argument("action", choices=("ls", "stats", "clear", "gc"))
    parser.add_argument(
        "--max-mb",
        type=float,
        default=None,
        help="gc: evict least-recently-used entries down to this size",
    )
    _add_cache_flags(parser)
    _add_stats_flags(parser)
    args = parser.parse_args(argv)

    store = ArtifactStore(args.cache_dir)
    with profiled(enabled=args.profile):
        _cache_action(parser, args, store)
    if args.emit_stats:
        _emit_cache_ledger(argv, args, store)
    return 0


def _cache_action(parser, args, store: ArtifactStore) -> None:
    if args.action == "ls":
        entries = sorted(store.entries(), key=lambda e: (e.kind, e.label, e.key))
        for entry in entries:
            age = _format_age(time.time() - entry.mtime)
            print(
                f"{entry.kind:<7} {entry.key[:16]}  {entry.size_bytes:>10,}B  "
                f"{age:>9} old  {entry.label}"
            )
        print(f"{len(entries)} entries in {store.root}")
    elif args.action == "stats":
        stats = store.stats()
        print(f"cache root   {stats['root']}")
        for kind, info in stats["kinds"].items():
            mb = info["bytes"] / (1024 * 1024)
            print(f"{kind:<12} {info['entries']} entries, {mb:.2f} MB")
        total_mb = stats["bytes"] / (1024 * 1024)
        print(f"total        {stats['entries']} entries, {total_mb:.2f} MB")
        print(f"quarantined  {stats['quarantined']}")
        if stats["budget_bytes"] is not None:
            print(f"budget       {stats['budget_bytes'] / (1024 * 1024):.0f} MB")
    elif args.action == "clear":
        removed = store.clear()
        print(f"removed {removed} entries from {store.root}")
    elif args.action == "gc":
        if args.max_mb is None:
            parser.error("gc requires --max-mb")
        removed, removed_bytes = store.gc(int(args.max_mb * 1024 * 1024))
        print(
            f"evicted {removed} entries ({removed_bytes / (1024 * 1024):.2f} MB) "
            f"from {store.root}"
        )


class _NoMatrix:
    """Stand-in for :class:`figures.ResultMatrix` on runs without one
    (the ``cache`` subcommand), so every subcommand can ledger."""

    telemetry: list = []
    _results: dict = {}
    jobs = 1
    scale = None
    seed = None

    def __init__(self, store: ArtifactStore | None) -> None:
        self.store = store


def _emit_cache_ledger(argv: list[str], args, store: ArtifactStore) -> None:
    ledger = build_run_ledger(
        argv, [f"cache-{args.action}"], _NoMatrix(store), registry=get_registry()
    )
    write_ledger(args.emit_stats, ledger)
    print(f"[repro.metrics] run ledger written to {args.emit_stats}", file=sys.stderr)


def stats_main(argv: list[str]) -> int:
    """The ``stats`` subcommand: pretty-print a run ledger."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness stats",
        description="Pretty-print a run ledger written by --emit-stats.",
    )
    parser.add_argument("ledger", help="path to a run-ledger JSON file")
    args = parser.parse_args(argv)
    try:
        ledger = read_ledger(args.ledger)
    except (OSError, LedgerError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    try:
        print(format_ledger(ledger))
    except BrokenPipeError:  # e.g. `stats run.json | head`
        sys.stderr.close()  # suppress the interpreter's epilogue warning
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "cache":
        return cache_main(argv[1:])
    if argv and argv[0] == "stats":
        return stats_main(argv[1:])
    if argv and argv[0] == "fuzz":
        from repro.fuzz.cli import fuzz_main

        return fuzz_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=EXPERIMENTS + ("all",),
        help="which tables/figures to regenerate ('cache' subcommand: "
        "ls/stats/clear/gc the artifact store)",
    )
    parser.add_argument(
        "--scale", type=int, default=None, help="workload scale factor"
    )
    parser.add_argument("--seed", type=int, default=1, help="workload data seed")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the experiment matrix (1 = serial)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the artifact store: recompute everything, write nothing",
    )
    _add_cache_flags(parser)
    _add_stats_flags(parser)
    args = parser.parse_args(argv)

    store = None if args.no_cache else ArtifactStore(args.cache_dir)
    matrix = figures.ResultMatrix(
        scale=args.scale, seed=args.seed, store=store, jobs=args.jobs
    )
    names = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    with profiled(enabled=args.profile):
        for name in names:
            print(_render(name, matrix))
            print()
    print(matrix.summary(), file=sys.stderr)
    if args.emit_stats:
        ledger = build_run_ledger(argv, names, matrix, registry=get_registry())
        write_ledger(args.emit_stats, ledger)
        print(
            f"[repro.metrics] run ledger written to {args.emit_stats}",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
