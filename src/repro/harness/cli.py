"""Command-line entry point: regenerate any table or figure.

Usage::

    python -m repro.harness table1
    python -m repro.harness fig6 table3
    python -m repro.harness all --scale 2
"""

from __future__ import annotations

import argparse
import sys

from repro.harness import figures, report

EXPERIMENTS = ("table1", "table2", "fig2", "fig6", "fig7", "fig8", "fig9", "fig10", "table3")


def _render(name: str, matrix: figures.ResultMatrix) -> str:
    if name == "table1":
        return report.format_table1(figures.run_table1(matrix))
    if name == "table2":
        return "Table 2: processor configuration\n" + figures.run_table2()
    if name == "fig2":
        from repro.harness.fig2 import figure2_report

        return figure2_report()
    if name == "fig6":
        return report.format_fig6(figures.run_fig6(matrix))
    if name in ("fig7", "fig8"):
        workloads = figures.PAPER_ORDER[:7] if name == "fig7" else figures.PAPER_ORDER[7:]
        return report.format_fig7_8(figures.run_fig7_8(matrix, workloads))
    if name == "fig9":
        return report.format_fig9(figures.run_fig9(matrix))
    if name == "fig10":
        return report.format_fig10(figures.run_fig10(matrix))
    if name == "table3":
        return report.format_table3(figures.run_table3(matrix))
    raise ValueError(f"unknown experiment {name!r}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=EXPERIMENTS + ("all",),
        help="which tables/figures to regenerate",
    )
    parser.add_argument(
        "--scale", type=int, default=None, help="workload scale factor"
    )
    parser.add_argument("--seed", type=int, default=1, help="workload data seed")
    args = parser.parse_args(argv)

    names = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    matrix = figures.ResultMatrix(scale=args.scale, seed=args.seed)
    for name in names:
        print(_render(name, matrix))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
