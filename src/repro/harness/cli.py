"""Command-line entry point: regenerate any table or figure.

Usage::

    python -m repro.harness table1
    python -m repro.harness fig6 table3 --jobs 4
    python -m repro.harness all --scale 2
    python -m repro.harness fig6 --no-cache       # force recompute
    python -m repro.harness fig6 --emit-stats run.json   # write a run ledger
    python -m repro.harness fig6 --profile        # cProfile hotspots to stderr
    python -m repro.harness stats run.json        # pretty-print a run ledger
    python -m repro.harness cache stats           # inspect the artifact cache
    python -m repro.harness cache ls
    python -m repro.harness cache gc --max-mb 256
    python -m repro.harness cache gc --max-mb 256 --dry-run
    python -m repro.harness cache clear
    python -m repro.harness serve --port 9417 --workers 4   # batch service
    python -m repro.harness submit fig6 --port 9417         # job -> service
    python -m repro.harness cluster spawn --runners 2       # sharded fleet
    python -m repro.harness cluster serve --nodes 127.0.0.1:9417,127.0.0.1:9418
    python -m repro.harness submit --workloads 'gzip,loopy-*' --configs IC,TC
    python -m repro.harness scenarios gen --families loopy,branchy
    python -m repro.harness scenarios run --workloads 'redund-*' --jobs 4
    python -m repro.harness scenarios import trace.rutb
    python -m repro.harness scenarios characterize loopy-s1-003
    python -m repro.harness tune sweep --space smoke --jobs 4
    python -m repro.harness tune sweep --service 127.0.0.1:9417 --out sweep.json
    python -m repro.harness tune report sweep.json
    python -m repro.harness tune pgo sweep.json --jobs 4
    python -m repro.harness fuzz run --seed 1 --iterations 10000 --jobs 4
    python -m repro.harness fuzz config run --seed 1 --iterations 200
    python -m repro.harness fuzz repro <case-id>  # replay a stored divergence
    python -m repro.harness fuzz corpus ls

Experiment runs go through the :mod:`repro.artifacts` store, so a warm
second run does zero workload emulation; a one-line cache/parallelism
summary is printed to stderr (stdout stays byte-identical between cold
and warm runs, and with or without ``--emit-stats``).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.artifacts.store import ArtifactStore
from repro.harness import figures, report
from repro.metrics import (
    LedgerError,
    build_run_ledger,
    format_ledger,
    get_registry,
    profiled,
    read_ledger,
    write_ledger,
)

EXPERIMENTS = ("table1", "table2", "fig2", "fig6", "fig7", "fig8", "fig9", "fig10", "table3")


def _render(name: str, matrix: figures.ResultMatrix) -> str:
    if name == "table1":
        return report.format_table1(figures.run_table1(matrix))
    if name == "table2":
        return "Table 2: processor configuration\n" + figures.run_table2()
    if name == "fig2":
        from repro.harness.fig2 import figure2_report

        return figure2_report()
    if name == "fig6":
        return report.format_fig6(figures.run_fig6(matrix))
    if name in ("fig7", "fig8"):
        workloads = figures.PAPER_ORDER[:7] if name == "fig7" else figures.PAPER_ORDER[7:]
        return report.format_fig7_8(figures.run_fig7_8(matrix, workloads))
    if name == "fig9":
        return report.format_fig9(figures.run_fig9(matrix))
    if name == "fig10":
        return report.format_fig10(figures.run_fig10(matrix))
    if name == "table3":
        return report.format_table3(figures.run_table3(matrix))
    raise ValueError(f"unknown experiment {name!r}")


def _add_cache_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="artifact cache root (default: $REPRO_UOPT_CACHE_DIR "
        "or ~/.cache/repro-uopt)",
    )


def _add_stats_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--emit-stats",
        metavar="FILE",
        default=None,
        help="write a versioned JSON run ledger to FILE after the run",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="wrap the run in cProfile and print hotspots to stderr",
    )


def _format_age(seconds: float) -> str:
    """Entry age for ``cache ls``, clamped at zero.

    A future mtime (clock skew, restored backups, touched files) must
    never render a negative age, and a weeks-old entry renders as
    ``Nd Hh`` rather than an overflowing raw count.
    """
    seconds = max(0.0, seconds)
    if seconds < 1.0:
        return "<1s"
    if seconds < 60.0:
        return f"{seconds:.0f}s"
    if seconds < 3600.0:
        return f"{int(seconds // 60)}m {int(seconds % 60)}s"
    if seconds < 86400.0:
        return f"{int(seconds // 3600)}h {int(seconds % 3600 // 60)}m"
    return f"{int(seconds // 86400)}d {int(seconds % 86400 // 3600)}h"


def cache_main(argv: list[str]) -> int:
    """The ``cache`` subcommand: ls / stats / clear / gc."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness cache",
        description="Inspect or trim the artifact cache.",
    )
    parser.add_argument("action", choices=("ls", "stats", "clear", "gc"))
    parser.add_argument(
        "--max-mb",
        type=float,
        default=None,
        help="gc: evict least-recently-used entries down to this size",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="gc: print what would be evicted without deleting anything",
    )
    _add_cache_flags(parser)
    _add_stats_flags(parser)
    args = parser.parse_args(argv)

    store = ArtifactStore(args.cache_dir)
    with profiled(enabled=args.profile):
        _cache_action(parser, args, store)
    if args.emit_stats:
        _emit_cache_ledger(argv, args, store)
    return 0


def _cache_action(parser, args, store: ArtifactStore) -> None:
    if args.action == "ls":
        entries = sorted(store.entries(), key=lambda e: (e.kind, e.label, e.key))
        for entry in entries:
            age = _format_age(time.time() - entry.mtime)
            print(
                f"{entry.kind:<7} {entry.key[:16]}  {entry.size_bytes:>10,}B  "
                f"{age:>9} old  {entry.label}"
            )
        print(f"{len(entries)} entries in {store.root}")
    elif args.action == "stats":
        stats = store.stats()
        print(f"cache root   {stats['root']}")
        for kind, info in stats["kinds"].items():
            mb = info["bytes"] / (1024 * 1024)
            print(f"{kind:<12} {info['entries']} entries, {mb:.2f} MB")
        total_mb = stats["bytes"] / (1024 * 1024)
        print(f"total        {stats['entries']} entries, {total_mb:.2f} MB")
        print(f"quarantined  {stats['quarantined']}")
        if stats["budget_bytes"] is not None:
            print(f"budget       {stats['budget_bytes'] / (1024 * 1024):.0f} MB")
    elif args.action == "clear":
        removed = store.clear()
        print(f"removed {removed} entries from {store.root}")
    elif args.action == "gc":
        if args.max_mb is None:
            parser.error("gc requires --max-mb")
        max_bytes = int(args.max_mb * 1024 * 1024)
        if args.dry_run:
            plan = store.plan_gc(max_bytes)
            for entry in plan:
                age = _format_age(time.time() - entry.mtime)
                print(
                    f"would evict {entry.kind:<7} {entry.key[:16]}  "
                    f"{entry.size_bytes:>10,}B  {age:>9} old  {entry.label}"
                )
            plan_bytes = sum(entry.size_bytes for entry in plan)
            print(
                f"dry run: would evict {len(plan)} entries "
                f"({plan_bytes / (1024 * 1024):.2f} MB) from {store.root}"
            )
        else:
            removed, removed_bytes = store.gc(max_bytes)
            print(
                f"evicted {removed} entries ({removed_bytes / (1024 * 1024):.2f} MB) "
                f"from {store.root}"
            )


class _NoMatrix:
    """Stand-in for :class:`figures.ResultMatrix` on runs without one
    (the ``cache`` subcommand), so every subcommand can ledger."""

    telemetry: list = []
    _results: dict = {}
    jobs = 1
    scale = None
    seed = None

    def __init__(self, store: ArtifactStore | None) -> None:
        self.store = store


def _emit_cache_ledger(argv: list[str], args, store: ArtifactStore) -> None:
    ledger = build_run_ledger(
        argv, [f"cache-{args.action}"], _NoMatrix(store), registry=get_registry()
    )
    write_ledger(args.emit_stats, ledger)
    print(f"[repro.metrics] run ledger written to {args.emit_stats}", file=sys.stderr)


def serve_main(argv: list[str]) -> int:
    """The ``serve`` subcommand: run the batch simulation service."""
    import asyncio
    import logging

    from repro.service.server import DEFAULT_PORT, ServiceConfig, serve_forever

    parser = argparse.ArgumentParser(
        prog="python -m repro.harness serve",
        description="Run the async batch simulation service "
        "(JSON lines over TCP; drain with SIGTERM).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=DEFAULT_PORT,
        help=f"TCP port (default {DEFAULT_PORT}; 0 = pick an ephemeral port)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="warm worker processes in the persistent pool",
    )
    parser.add_argument(
        "--max-queue", type=int, default=64,
        help="bounded queue depth; submits beyond it shed with queue_full",
    )
    parser.add_argument(
        "--timeout", type=float, default=None,
        help="default per-job wall-clock timeout in seconds (unset = none)",
    )
    parser.add_argument(
        "--max-batch", type=int, default=8,
        help="max cells dispatched to one worker as a single batch",
    )
    parser.add_argument(
        "--drain-timeout", type=float, default=60.0,
        help="seconds to wait for in-flight jobs on SIGTERM before failing them",
    )
    _add_cache_flags(parser)
    _add_stats_flags(parser)
    args = parser.parse_args(argv)

    logging.basicConfig(
        level=logging.INFO, format="[%(name)s] %(message)s", stream=sys.stderr
    )
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        max_queue=args.max_queue,
        default_timeout=args.timeout,
        max_batch=args.max_batch,
        cache_dir=args.cache_dir,
        drain_timeout=args.drain_timeout,
    )
    with profiled(enabled=args.profile):
        service = asyncio.run(serve_forever(config, registry=get_registry()))
    if args.emit_stats:
        ledger = build_run_ledger(
            argv, ["serve"], _NoMatrix(service.store), registry=get_registry()
        )
        write_ledger(args.emit_stats, ledger)
        print(
            f"[repro.metrics] run ledger written to {args.emit_stats}",
            file=sys.stderr,
        )
    return 0


#: Named matrices the ``submit`` subcommand can expand client-side.
#: (fig9/fig10 use ablated optimizer variants that are not addressable
#: by name over protocol v1.)
SUBMIT_EXPERIMENTS = ("fig6", "fig7", "fig8", "table3")


def _submit_cells(args) -> list:
    from repro.harness.figures import PAPER_ORDER
    from repro.service.protocol import CellSpec

    if args.experiment:
        if args.workloads or args.configs:
            raise SystemExit(
                "submit: give either an experiment name or "
                "--workloads/--configs, not both"
            )
        if args.experiment == "fig6":
            workloads, configs = PAPER_ORDER, ("IC", "TC", "RP", "RPO")
        elif args.experiment == "fig7":
            workloads, configs = PAPER_ORDER[:7], ("RP", "RPO")
        elif args.experiment == "fig8":
            workloads, configs = PAPER_ORDER[7:], ("RP", "RPO")
        else:  # table3
            workloads, configs = PAPER_ORDER, ("RP", "RPO")
    else:
        if not (args.workloads and args.configs):
            raise SystemExit(
                "submit: need an experiment name or both --workloads and "
                "--configs"
            )
        from repro.workloads.base import resolve_workloads

        try:
            workloads = resolve_workloads(
                [w for w in args.workloads.split(",") if w]
            )
        except KeyError as exc:
            raise SystemExit(f"submit: {exc.args[0]}")
        configs = [c for c in args.configs.split(",") if c]
    return [
        CellSpec(workload=w, config=c, scale=args.scale, seed=args.seed)
        for w in workloads
        for c in configs
    ]


def submit_main(argv: list[str]) -> int:
    """The ``submit`` subcommand: run a job on a running service."""
    import json

    from repro.service.client import DEFAULT_PORT, Client, ServiceError
    from repro.service.protocol import PRIORITIES

    parser = argparse.ArgumentParser(
        prog="python -m repro.harness submit",
        description="Submit a (workload x config) job to a running "
        "`serve` instance and stream its cells as they finish.",
    )
    parser.add_argument(
        "experiment", nargs="?", default=None, choices=SUBMIT_EXPERIMENTS,
        help="named matrix to submit (or use --workloads/--configs)",
    )
    parser.add_argument(
        "--workloads", default=None, metavar="A,loopy-*,...",
        help="workload names or globs, expanded client-side via the "
        "shared resolver",
    )
    parser.add_argument(
        "--configs", default=None, metavar="IC,TC,...",
        help="config names from the CONFIGS registry (IC, IC64, TC, RP, RPO)",
    )
    parser.add_argument("--scale", type=int, default=None)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT)
    parser.add_argument(
        "--priority", choices=PRIORITIES, default="batch",
        help="queue priority class",
    )
    parser.add_argument(
        "--timeout", type=float, default=None,
        help="per-job wall-clock timeout in seconds",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print one sorted-key JSON object per cell instead of a table",
    )
    args = parser.parse_args(argv)
    cells = _submit_cells(args)

    def on_cell(cell) -> None:
        if args.json:
            print(
                json.dumps(
                    {
                        "index": cell.index,
                        "workload": cell.workload,
                        "config": cell.config,
                        "cached": cell.cached,
                        "entry": cell.entry,
                    },
                    sort_keys=True,
                ),
                flush=True,
            )
        else:
            origin = "cached" if cell.cached else f"{cell.seconds:.2f}s"
            print(
                f"{cell.workload:<8} {cell.config:<6} "
                f"IPC {cell.entry['ipc_x86']:.3f}  "
                f"{cell.entry['cycles']:>10,} cycles  [{origin}]",
                flush=True,
            )

    client = Client(host=args.host, port=args.port)
    try:
        outcome = client.submit(
            cells, priority=args.priority, timeout=args.timeout, on_cell=on_cell
        )
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(
        f"[repro.service] job {outcome.job_id} {outcome.state}: "
        f"{len(outcome.entries)} cells ({outcome.cells_cached} cached, "
        f"{outcome.cells_computed} computed) in {outcome.seconds:.2f}s",
        file=sys.stderr,
    )
    if not outcome.ok:
        if outcome.error:
            print(f"error: {outcome.error}", file=sys.stderr)
        return 1
    return 0


def stats_main(argv: list[str]) -> int:
    """The ``stats`` subcommand: pretty-print a run ledger."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness stats",
        description="Pretty-print a run ledger written by --emit-stats.",
    )
    parser.add_argument("ledger", help="path to a run-ledger JSON file")
    args = parser.parse_args(argv)
    try:
        ledger = read_ledger(args.ledger)
    except (OSError, LedgerError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    try:
        print(format_ledger(ledger))
    except BrokenPipeError:  # e.g. `stats run.json | head`
        sys.stderr.close()  # suppress the interpreter's epilogue warning
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "cache":
        return cache_main(argv[1:])
    if argv and argv[0] == "stats":
        return stats_main(argv[1:])
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])
    if argv and argv[0] == "submit":
        return submit_main(argv[1:])
    if argv and argv[0] == "cluster":
        from repro.cluster.cli import cluster_main

        return cluster_main(argv[1:])
    if argv and argv[0] == "fuzz":
        from repro.fuzz.cli import fuzz_main

        return fuzz_main(argv[1:])
    if argv and argv[0] == "tune":
        from repro.tune.cli import tune_main

        return tune_main(argv[1:])
    if argv and argv[0] == "scenarios":
        from repro.scenarios.cli import scenarios_main

        return scenarios_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        choices=EXPERIMENTS + ("all",),
        help="which tables/figures to regenerate ('cache' subcommand: "
        "ls/stats/clear/gc the artifact store)",
    )
    parser.add_argument(
        "--scale", type=int, default=None, help="workload scale factor"
    )
    parser.add_argument("--seed", type=int, default=1, help="workload data seed")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the experiment matrix (1 = serial)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the artifact store: recompute everything, write nothing",
    )
    _add_cache_flags(parser)
    _add_stats_flags(parser)
    args = parser.parse_args(argv)

    store = None if args.no_cache else ArtifactStore(args.cache_dir)
    matrix = figures.ResultMatrix(
        scale=args.scale, seed=args.seed, store=store, jobs=args.jobs
    )
    names = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    with profiled(enabled=args.profile):
        for name in names:
            print(_render(name, matrix))
            print()
    print(matrix.summary(), file=sys.stderr)
    if args.emit_stats:
        ledger = build_run_ledger(argv, names, matrix, registry=get_registry())
        write_ledger(args.emit_stats, ledger)
        print(
            f"[repro.metrics] run ledger written to {args.emit_stats}",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
