"""Text rendering of the experiment results (the paper's tables/figures)."""

from __future__ import annotations

from repro.harness.figures import (
    CycleBreakdownRow,
    Fig6Row,
    Fig9Row,
    Fig10Row,
    Table1Row,
    Table3Row,
)
from repro.timing.pipeline import BINS


def _table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_table1(rows: list[Table1Row]) -> str:
    body = [
        [
            r.name,
            r.category,
            f"{r.x86_instructions:,}",
            f"{r.loads:,}",
            f"{r.stores:,}",
            f"{r.conditional_branches:,}",
            f"{r.taken_ratio:.2f}",
        ]
        for r in rows
    ]
    return "Table 1: Experimental workload (synthetic analogues)\n" + _table(
        ["Name", "Type", "x86 insts", "loads", "stores", "cond BR", "taken"],
        body,
    )


def format_fig6(rows: list[Fig6Row]) -> str:
    body = [
        [
            r.name,
            f"{r.ipc['IC']:.2f}",
            f"{r.ipc['TC']:.2f}",
            f"{r.ipc['RP']:.2f}",
            f"{r.ipc['RPO']:.2f}",
            f"{r.rpo_gain_over_rp:+.0%}",
            f"{r.coverage:.0%}",
        ]
        for r in rows
    ]
    avg_gain = sum(r.rpo_gain_over_rp for r in rows) / len(rows)
    return (
        "Figure 6: x86 IPC per configuration (8-wide, 15-cycle BR resolution)\n"
        + _table(["App", "IC", "TC", "RP", "RPO", "RPO/RP", "cover"], body)
        + f"\nAverage RPO-over-RP IPC increase: {avg_gain:+.0%} (paper: +17%)"
    )


def format_fig7_8(rows: list[CycleBreakdownRow]) -> str:
    body = []
    for r in rows:
        body.append(
            [r.name, r.config, f"{r.cycles:,}"]
            + [f"{r.bins.get(b, 0):,}" for b in BINS]
        )
    return (
        "Figures 7/8: execution-cycle breakdown by fetch event\n"
        + _table(["App", "Cfg", "cycles"] + list(BINS), body)
    )


def format_table3(rows: list[Table3Row]) -> str:
    body = [
        [
            r.name,
            f"{r.uops_removed:.0%}",
            f"{r.loads_removed:.0%}",
            f"{r.ipc_increase:+.0%}",
            f"{r.paper_uops_removed:.0%}" if r.paper_uops_removed else "-",
            f"{r.paper_loads_removed:.0%}" if r.paper_loads_removed else "-",
            f"{r.paper_ipc_increase:+.0%}" if r.paper_ipc_increase else "-",
        ]
        for r in rows
    ]
    return (
        "Table 3: micro-operations and loads removed by the optimizer\n"
        + _table(
            [
                "App",
                "uops rm",
                "loads rm",
                "IPC +",
                "paper uops",
                "paper loads",
                "paper IPC",
            ],
            body,
        )
    )


def format_fig9(rows: list[Fig9Row]) -> str:
    body = [
        [r.name, f"{r.block_speedup:+.0%}", f"{r.frame_speedup:+.0%}"]
        for r in rows
    ]
    return (
        "Figure 9: IPC speedup over RP, intra-block vs frame-level scope\n"
        + _table(["App", "Block", "Frame"], body)
    )


def format_fig10(rows: list[Fig10Row]) -> str:
    if not rows:
        return "Figure 10: (no rows)"
    variants = list(rows[0].relative_ipc)
    body = [
        [r.name] + [f"{r.relative_ipc[v]:.2f}" for v in variants] for r in rows
    ]
    return (
        "Figure 10: relative IPC with one optimization disabled\n"
        "(0.00 = RP / no optimization, 1.00 = RPO / all optimizations)\n"
        + _table(["App"] + [f"no {v.upper()}" for v in variants], body)
    )
