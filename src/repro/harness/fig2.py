"""The paper's Figure 2 running example: a crafty procedure fragment.

Builds the PUSH/PUSH/MOV/MOV/XOR/MOV/OR/JZ + POP/POP/RET region, runs it
through the translator and the optimizer at each optimization scope, and
reports the uop counts — reproducing the paper's narrative that
frame-level scope removes seven of the seventeen micro-operations,
including two of the five loads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.x86 import Assembler, Cond, Emulator, Imm, Reg, mem
from repro.trace import DynamicTrace, MicroOpInjector
from repro.replay import FrameConstructor
from repro.replay.frame import Frame
from repro.optimizer import FrameOptimizer, OptimizerConfig


def build_crafty_fragment():
    """Assemble the call site + procedure from Figure 2."""
    asm = Assembler()
    asm.mov(Reg.EBX, Imm(0x1234))
    asm.mov(Reg.EBP, Imm(0x5678))
    asm.push(Imm(0x42))  # second argument -> [ESP+10h] inside the callee
    asm.push(Imm(0x17))  # first argument  -> [ESP+0Ch]
    asm.call("func")
    asm.add(Reg.ESP, Imm(8))
    asm.ret()
    asm.label("func")
    asm.push(Reg.EBP)  # uops 01-02
    asm.push(Reg.EBX)  # uops 03-04
    asm.mov(Reg.ECX, mem(Reg.ESP, disp=0x0C))  # uop 05
    asm.mov(Reg.EBX, mem(Reg.ESP, disp=0x10))  # uop 06
    asm.xor(Reg.EAX, Reg.EAX)  # uop 07
    asm.mov(Reg.EDX, Reg.ECX)  # uop 08
    asm.or_(Reg.EDX, Reg.EBX)  # uop 09
    # In crafty the JZ skips a distinct block; the branch target must not
    # be the fall-through or the constructor (rightly) drops it as a
    # degenerate branch instead of converting it to an assertion.
    asm.jcc(Cond.Z, "zero_case")  # uop 10 (never taken on this trace)
    asm.pop(Reg.EBX)  # uops 11-12
    asm.pop(Reg.EBP)  # uops 13-14
    asm.ret()  # uops 15-17
    asm.label("zero_case")  # skipped block: gives the JZ a real target
    asm.mov(Reg.EAX, Imm(1))
    asm.ret()
    return asm.assemble()


def build_figure2_frame() -> Frame:
    """Construct the procedure region (PUSH EBP ... RET) as a raw frame."""
    program = build_crafty_fragment()
    trace = DynamicTrace(Emulator(program).run())
    injected = MicroOpInjector().inject_trace(trace)
    start = next(
        i for i, instr in enumerate(injected)
        if instr.record.pc == program.labels["func"]
    )
    region = injected[start : start + 11]  # PUSH ... RET inclusive
    constructor = FrameConstructor()
    return constructor.build_frame(region, region[-1].record.next_pc)


@dataclass
class ScopeResult:
    """Optimization outcome at one scope."""

    scope: str
    uops: int
    loads: int
    listing: str


def optimize_at_scopes() -> list[ScopeResult]:
    """Optimize the fragment at each of the paper's scopes."""
    results = []
    raw = build_figure2_frame()
    raw.build_buffer()
    results.append(
        ScopeResult(
            scope="unoptimized",
            uops=raw.uop_count,
            loads=raw.load_count,
            listing=raw.buffer.dump(),
        )
    )
    for scope in ("block", "inter", "frame"):
        frame = build_figure2_frame()
        buffer = frame.build_buffer()
        optimizer = FrameOptimizer(OptimizerConfig(scope=scope))
        frame.opt_result = optimizer.optimize(buffer)
        results.append(
            ScopeResult(
                scope=scope,
                uops=frame.uop_count,
                loads=frame.load_count,
                listing=buffer.dump(),
            )
        )
    return results


def figure2_report() -> str:
    """Human-readable Figure 2 walkthrough."""
    parts = ["Figure 2: optimization scope on the crafty fragment\n"]
    for result in optimize_at_scopes():
        parts.append(
            f"--- {result.scope}: {result.uops} uops, {result.loads} loads ---"
        )
        parts.append(result.listing)
        parts.append("")
    return "\n".join(parts)
