"""Experiment harness: configurations, runners, and report formatting."""

from repro.harness.experiment import (
    CONFIGS,
    ExperimentConfig,
    ExperimentResult,
    run_configs,
    run_experiment,
)
from repro.harness.figures import (
    FIG10_VARIANTS,
    FIG10_WORKLOADS,
    PAPER_ORDER,
    ResultMatrix,
    run_fig6,
    run_fig7_8,
    run_fig9,
    run_fig10,
    run_table1,
    run_table2,
    run_table3,
)

__all__ = [
    "CONFIGS",
    "ExperimentConfig",
    "ExperimentResult",
    "FIG10_VARIANTS",
    "FIG10_WORKLOADS",
    "PAPER_ORDER",
    "ResultMatrix",
    "run_configs",
    "run_experiment",
    "run_fig6",
    "run_fig7_8",
    "run_fig9",
    "run_fig10",
    "run_table1",
    "run_table2",
    "run_table3",
]
