"""Trace-cache baseline (paper §5.3): fill unit, cache, sequencer."""

from repro.tracecache.fill_unit import FillUnit, FillUnitConfig, TraceLine
from repro.tracecache.sequencer import TraceCacheSequencer
from repro.tracecache.trace_cache import TraceCache

__all__ = [
    "FillUnit",
    "FillUnitConfig",
    "TraceCache",
    "TraceCacheSequencer",
    "TraceLine",
]
