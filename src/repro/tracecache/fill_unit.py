"""Trace-cache fill unit (paper §5.3).

Continuously builds trace lines from the retired instruction stream: a
line holds up to three conditional branches (or ends at an indirect
transfer) and a bounded number of uops.  Unlike frames, traces are *not*
atomic — control may leave a trace at any embedded branch — so no
assertion conversion or cross-block optimization is possible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.timing.config import FillUnitConfig
from repro.trace.injector import InjectedInstruction

__all__ = ["FillUnit", "FillUnitConfig", "TraceLine"]


@dataclass
class TraceLine:
    """One trace-cache line."""

    start_pc: int
    x86_pcs: list[int]
    instructions: list[InjectedInstruction] = field(repr=False, default_factory=list)
    uop_count: int = 0

    @property
    def x86_count(self) -> int:
        return len(self.x86_pcs)


class FillUnit:
    """Accumulates retired instructions into trace lines."""

    def __init__(self, config: FillUnitConfig | None = None) -> None:
        self.config = config or FillUnitConfig()
        self._pending: list[InjectedInstruction] = []
        self._pending_uops = 0
        self._pending_branches = 0
        self.lines_emitted = 0

    def retire(self, instr: InjectedInstruction) -> TraceLine | None:
        """Feed one retired instruction; returns a completed line or None."""
        if self._pending_uops + len(instr.uops) > self.config.max_uops:
            line = self._finish()
            self._append(instr)
            if self._terminates(instr):
                return line or self._finish()
            return line
        self._append(instr)
        if self._terminates(instr):
            return self._finish()
        return None

    def _append(self, instr: InjectedInstruction) -> None:
        self._pending.append(instr)
        self._pending_uops += len(instr.uops)
        if instr.record.instruction.is_conditional:
            self._pending_branches += 1

    def _terminates(self, instr: InjectedInstruction) -> bool:
        if instr.record.instruction.is_indirect:
            return True
        return self._pending_branches >= self.config.max_branches

    def _finish(self) -> TraceLine | None:
        pending = self._pending
        self._pending = []
        self._pending_uops = 0
        self._pending_branches = 0
        if not pending:
            return None
        line = TraceLine(
            start_pc=pending[0].record.pc,
            x86_pcs=[i.record.pc for i in pending],
            instructions=pending,
            uop_count=sum(len(i.uops) for i in pending),
        )
        self.lines_emitted += 1
        return line
