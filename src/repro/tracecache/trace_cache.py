"""Trace cache storage: LRU over uop capacity, one line per start PC."""

from __future__ import annotations

from collections import OrderedDict

from repro.tracecache.fill_unit import TraceLine


class TraceCache:
    """LRU trace store, capacity-bounded in micro-operations."""

    def __init__(self, capacity_uops: int = 16 * 1024) -> None:
        self.capacity_uops = capacity_uops
        self._lines: OrderedDict[int, TraceLine] = OrderedDict()
        self._stored_uops = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._lines)

    @property
    def stored_uops(self) -> int:
        return self._stored_uops

    def lookup(self, pc: int) -> TraceLine | None:
        line = self._lines.get(pc)
        if line is None:
            self.misses += 1
            return None
        self._lines.move_to_end(pc)
        self.hits += 1
        return line

    def insert(self, line: TraceLine) -> None:
        existing = self._lines.pop(line.start_pc, None)
        if existing is not None:
            self._stored_uops -= existing.uop_count
        self._lines[line.start_pc] = line
        self._stored_uops += line.uop_count
        while self._stored_uops > self.capacity_uops and len(self._lines) > 1:
            _, evicted = self._lines.popitem(last=False)
            self._stored_uops -= evicted.uop_count
            self.evictions += 1
