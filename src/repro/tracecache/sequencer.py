"""Trace-cache sequencer (the paper's TC baseline configuration).

On a trace-cache hit, the line streams at full fetch width across its
embedded branches; because traces are not atomic, a path divergence
simply truncates the fetch at the diverging instruction (early exit) —
no recovery is needed, but no cross-block optimization is possible
either.
"""

from __future__ import annotations

from repro.trace.injector import InjectedInstruction
from repro.replay.fetch_groups import build_icache_block, event_from_decode
from repro.replay.sequencer import ICacheSequencer
from repro.timing.config import ProcessorConfig
from repro.timing.pipeline import FetchBlock
from repro.tracecache.fill_unit import FillUnit, FillUnitConfig, TraceLine
from repro.tracecache.trace_cache import TraceCache


class TraceCacheSequencer(ICacheSequencer):
    """Fetch from the trace cache when possible, else the ICache."""

    def __init__(
        self,
        injected: list[InjectedInstruction],
        config: ProcessorConfig,
        fill_config: FillUnitConfig | None = None,
    ) -> None:
        super().__init__(injected, config)
        self.fill_unit = FillUnit(fill_config)
        self.trace_cache = TraceCache(config.frame_cache_uops)

    def next_block(self, cycle: int) -> FetchBlock | None:
        if self.index >= len(self.injected):
            return None
        pc = self.injected[self.index].record.pc
        line = self.trace_cache.lookup(pc)
        if line is not None:
            matched = self._match_length(line)
            if matched > 0:
                return self._dispatch_line(line, matched)
        block, count = build_icache_block(
            self.injected, self.index, self.config, builder=self.sched_builder
        )
        self._retire_region(count)
        return block

    def _match_length(self, line: TraceLine) -> int:
        """Number of leading line instructions matching the upcoming path."""
        injected = self.injected
        base = self.index
        matched = 0
        for offset, pc in enumerate(line.x86_pcs):
            if base + offset >= len(injected) or injected[base + offset].record.pc != pc:
                break
            matched += 1
        return matched

    def _dispatch_line(self, line: TraceLine, matched: int) -> FetchBlock:
        uops: list = []
        addresses: list = []
        events = []
        sched: list = []
        builder = self.sched_builder
        # Use the *current* instances so dynamic annotations (addresses,
        # branch outcomes) are right for this execution; decode facts and
        # schedule tuples come from the per-instruction template cache.
        instances = self.injected[self.index : self.index + matched]
        for instr in instances:
            decode = builder.instr_decode(instr)
            event = event_from_decode(decode, instr.record, len(uops))
            if event is not None:
                events.append(event)
            sched.extend(decode.sched)
            for uop in instr.uops:
                uops.append(uop)
                addresses.append(uop.mem_address)
        self._retire_region(matched)
        return FetchBlock(
            source="tcache",
            uops=uops,
            addresses=addresses,
            x86_count=matched,
            pc=line.start_pc,
            branch_events=events,
            sched=sched,
        )

    def _retire_region(self, count: int) -> None:
        for _ in range(count):
            line = self.fill_unit.retire(self.injected[self.index])
            if line is not None:
                self.trace_cache.insert(line)
            self.index += 1
