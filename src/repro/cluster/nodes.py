"""Runner-node state and the async JSON-lines client the gateway uses.

A :class:`RunnerNode` is the gateway's view of one ``repro.service``
server: its address, health (consecutive probe failures, up/down), the
deque of pending :class:`~repro.cluster.gateway.Slice` work planned for
it, and the slice currently in flight.  The deque is deliberately a
plain data structure on the gateway's single event loop — the stealing
logic pops from its *back* while the node's own worker pops from the
front, with no locking needed.

:class:`NodeLink` is the asyncio twin of the blocking
:class:`repro.service.client.Client`: one connection per request, and a
streaming ``submit`` that forwards each ``cell`` message to a callback
as it lands.  Structured error answers become :class:`NodeError`
(``queue_full`` becomes :class:`NodeShed` carrying ``retry_after`` so
the dispatch loop can back off instead of failing the slice).
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field

from repro.service.protocol import (
    ERR_QUEUE_FULL,
    CellResult,
    ErrorResponse,
    HealthRequest,
    JobDone,
    MetricsRequest,
    ProtocolError,
    SubmitRequest,
    SubmittedResponse,
    decode_response,
    encode_message,
)

#: Mirror of the service server's raised stream line limit.
_LINE_LIMIT = 4 * 1024 * 1024


class NodeError(RuntimeError):
    """A structured error (or transport failure) talking to one node."""

    def __init__(self, code: str, message: str) -> None:
        self.code = code
        super().__init__(f"{code}: {message}")


class NodeShed(NodeError):
    """The node's queue is full; retry after ``retry_after`` seconds."""

    def __init__(self, message: str, retry_after: float | None) -> None:
        super().__init__(ERR_QUEUE_FULL, message)
        self.retry_after = retry_after if retry_after is not None else 1.0


class NodeUnreachable(NodeError):
    """Transport-level failure: refused, reset, or EOF mid-stream."""

    def __init__(self, message: str) -> None:
        super().__init__("unreachable", message)


def parse_address(address: str) -> tuple[str, int]:
    """Split ``host:port`` (the port is the last colon-separated field)."""
    host, sep, port = address.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"node address must be host:port, got {address!r}")
    return host or "127.0.0.1", int(port)


class NodeLink:
    """One async request (or submit stream) against a runner node."""

    def __init__(self, address: str, timeout: float | None = None) -> None:
        self.address = address
        self.host, self.port = parse_address(address)
        self.timeout = timeout

    async def _connect(self):
        try:
            return await asyncio.open_connection(
                self.host, self.port, limit=_LINE_LIMIT
            )
        except OSError as exc:
            raise NodeUnreachable(
                f"cannot connect to {self.address}: {exc}"
            ) from exc

    async def _read_message(self, reader: asyncio.StreamReader):
        try:
            line = await asyncio.wait_for(reader.readline(), self.timeout)
        except asyncio.TimeoutError as exc:
            raise NodeUnreachable(
                f"{self.address} did not answer within {self.timeout}s"
            ) from exc
        except OSError as exc:
            raise NodeUnreachable(f"{self.address} reset: {exc}") from exc
        if not line:
            raise NodeUnreachable(f"{self.address} closed the connection")
        try:
            message = decode_response(line)
        except ProtocolError as exc:
            raise NodeError(exc.code, str(exc)) from exc
        if isinstance(message, ErrorResponse):
            if message.code == ERR_QUEUE_FULL:
                raise NodeShed(message.message, message.retry_after)
            raise NodeError(message.code, message.message)
        return message

    async def request(self, message):
        """One request, one response, one connection."""
        reader, writer = await self._connect()
        try:
            writer.write(encode_message(message))
            await writer.drain()
            return await self._read_message(reader)
        except OSError as exc:
            raise NodeUnreachable(f"{self.address} reset: {exc}") from exc
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.TimeoutError):
                pass  # silent-ok: peer already tore the socket down

    async def health(self):
        return await self.request(HealthRequest())

    async def metrics(self):
        return await self.request(MetricsRequest())

    async def submit(
        self,
        cells,
        priority: str = "batch",
        timeout: float | None = None,
        client: str = "gateway",
        on_cell=None,
        on_submitted=None,
    ) -> JobDone:
        """Submit one sub-job and stream it to completion.

        ``on_cell(CellResult)`` fires per streamed cell (awaited if it
        returns an awaitable); returns the final :class:`JobDone`.
        ``on_submitted(SubmittedResponse)`` fires once, as soon as the
        node acknowledges the sub-job — the gateway records the
        node-side ``job_id`` there so a client cancel can be propagated
        to the node while the slice is still streaming.
        """
        request = SubmitRequest(
            cells=list(cells), priority=priority, timeout=timeout, client=client
        )
        reader, writer = await self._connect()
        try:
            writer.write(encode_message(request))
            await writer.drain()
            submitted = await self._read_message(reader)
            if not isinstance(submitted, SubmittedResponse):
                raise NodeError(
                    "protocol", f"expected 'submitted', got {submitted.TYPE!r}"
                )
            if on_submitted is not None:
                on_submitted(submitted)
            while True:
                message = await self._read_message(reader)
                if isinstance(message, CellResult):
                    if on_cell is not None:
                        result = on_cell(message)
                        if asyncio.iscoroutine(result):
                            await result
                elif isinstance(message, JobDone):
                    return message
        except OSError as exc:
            raise NodeUnreachable(f"{self.address} reset: {exc}") from exc
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.TimeoutError):
                pass  # silent-ok: peer already tore the socket down


@dataclass
class RunnerNode:
    """The gateway's bookkeeping for one runner."""

    address: str
    up: bool = True
    consecutive_failures: int = 0
    #: Pending slices planned for this node (front = next to dispatch;
    #: thieves pop from the back).
    pending: deque = field(default_factory=deque)
    #: Slice currently streaming on this node's worker (None = idle).
    inflight: object | None = None
    #: Last health probe's reported queue depth (gauge fodder).
    queue_depth: int = 0
    #: Last health probe's reported worker count (fleet-size reporting).
    workers: int = 0
    #: Set to nudge this node's worker when new work (anywhere) arrives.
    kick: asyncio.Event = field(default_factory=asyncio.Event)

    @property
    def backlog(self) -> int:
        """Pending slices (in-flight excluded: it cannot be stolen)."""
        return len(self.pending)

    def link(self, timeout: float | None = None) -> NodeLink:
        return NodeLink(self.address, timeout=timeout)
