"""Runner subprocess management for ``cluster spawn``.

Spawns ``python -m repro.harness serve --port 0`` children and
discovers each one's actually-bound port from the parseable
``listening on host:port`` line the server prints the moment its socket
binds (before the slow pool warm-up) — no fixed-port races, no
sleeping-and-hoping.  After discovery a daemon thread keeps draining
the child's stderr into a bounded ring so the pipe can never fill up
and block the runner.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field

#: Matches the server's startup line, e.g.
#: ``[repro.service] listening on 127.0.0.1:45123 (workers=2, ...)``.
LISTENING_RE = re.compile(r"listening on ([\w.\-]+):(\d+)")


class SpawnError(RuntimeError):
    """A runner child failed to start (or never announced its port)."""


@dataclass
class RunnerProcess:
    """One spawned ``serve`` child and its discovered address."""

    process: subprocess.Popen
    address: str
    #: Bounded tail of the child's stderr (diagnostics on failure).
    stderr_tail: deque = field(default_factory=lambda: deque(maxlen=400))

    @property
    def pid(self) -> int:
        return self.process.pid

    def alive(self) -> bool:
        return self.process.poll() is None


def spawn_runner(
    workers: int = 1,
    host: str = "127.0.0.1",
    max_queue: int = 64,
    cache_dir: str | None = None,
    startup_timeout: float = 120.0,
    extra_args: tuple[str, ...] = (),
    forward_stderr: bool = False,
) -> RunnerProcess:
    """Spawn one runner and block until its port is known.

    The child prints its ``listening on`` line immediately after bind,
    so this returns in milliseconds even though worker warm-up takes
    seconds; ``startup_timeout`` only bounds the pathological case.
    """
    command = [
        sys.executable, "-m", "repro.harness", "serve",
        "--host", host, "--port", "0",
        "--workers", str(workers),
        "--max-queue", str(max_queue),
    ]
    if cache_dir:
        command += ["--cache-dir", cache_dir]
    command += list(extra_args)
    env = dict(os.environ)
    env.setdefault("PYTHONUNBUFFERED", "1")
    process = subprocess.Popen(
        command,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    assert process.stderr is not None
    tail: deque = deque(maxlen=400)
    address: str | None = None
    deadline = time.monotonic() + startup_timeout
    while time.monotonic() < deadline:
        line = process.stderr.readline()
        if not line:
            break  # child exited (or closed stderr) before announcing
        tail.append(line)
        if forward_stderr:
            sys.stderr.write(line)
        match = LISTENING_RE.search(line)
        if match:
            address = f"{match.group(1)}:{match.group(2)}"
            break
    if address is None:
        process.terminate()
        process.wait(timeout=10)
        raise SpawnError(
            "runner never announced its port; stderr tail:\n" + "".join(tail)
        )
    runner = RunnerProcess(process=process, address=address, stderr_tail=tail)

    def _drain() -> None:
        for line in process.stderr:
            runner.stderr_tail.append(line)
            if forward_stderr:
                sys.stderr.write(line)

    threading.Thread(
        target=_drain, daemon=True, name=f"runner-stderr-{process.pid}"
    ).start()
    return runner


def spawn_runners(
    count: int,
    startup_timeout: float = 120.0,
    cache_dir: str | None = None,
    **kwargs,
) -> list[RunnerProcess]:
    """Spawn ``count`` runners; on any failure, terminate the survivors.

    When ``cache_dir`` is given each runner gets its own ``runner{i}``
    subdirectory — separate per-node artifact stores are the locality
    model the hash ring exists for (a warm hit must be a *local* hit).
    """
    runners: list[RunnerProcess] = []
    try:
        for i in range(count):
            runner_cache = (
                os.path.join(cache_dir, f"runner{i}") if cache_dir else None
            )
            runners.append(
                spawn_runner(
                    startup_timeout=startup_timeout,
                    cache_dir=runner_cache,
                    **kwargs,
                )
            )
    except Exception:
        terminate_runners(runners)
        raise
    return runners


def terminate_runners(
    runners: list[RunnerProcess], timeout: float = 30.0
) -> None:
    """SIGTERM every runner (clean drain) and reap; SIGKILL stragglers."""
    for runner in runners:
        if runner.alive():
            runner.process.send_signal(signal.SIGTERM)
    deadline = time.monotonic() + timeout
    for runner in runners:
        remaining = max(0.1, deadline - time.monotonic())
        try:
            runner.process.wait(timeout=remaining)
        except subprocess.TimeoutExpired:
            runner.process.kill()
            runner.process.wait(timeout=10)
