"""repro.cluster: sharded multi-node simulation gateway.

Scales :mod:`repro.service` from one warm pool to a fleet.  A
**gateway** accepts the existing JSON-lines protocol (plus a minimal
HTTP/1.1 JSON adapter on the same port) and shards incoming cells
across N runner nodes — each an ordinary ``python -m repro.harness
serve`` instance — via a consistent hash ring keyed on the
artifact-store cell key, so a resubmitted cell lands on the node whose
store (and in-worker caches) already hold it.

Pieces, one module each:

* :mod:`repro.cluster.ring` — the consistent hash ring (virtual nodes,
  deterministic SHA-256 placement, bounded remap on join/leave);
* :mod:`repro.cluster.nodes` — per-runner state plus the async
  JSON-lines client the gateway drives nodes with;
* :mod:`repro.cluster.gateway` — admission, slice planning, per-node
  dispatch workers, work stealing, health probing/eviction, and
  cluster-wide metrics aggregation;
* :mod:`repro.cluster.httpfront` — the zero-dependency HTTP/1.1 JSON
  adapter (connections are protocol-sniffed, so one port serves both);
* :mod:`repro.cluster.spawn` — runner subprocess management for
  ``cluster spawn``;
* :mod:`repro.cluster.cli` — the ``cluster`` subcommand family.

The load-bearing correctness gate: a cell served through the gateway is
byte-identical to the serial path — the gateway never re-serializes
``entry`` payloads, it forwards the node's canonical
:func:`repro.metrics.ledger.result_entry` dicts verbatim.
"""

from repro.cluster.ring import HashRing

__all__ = ["HashRing"]
