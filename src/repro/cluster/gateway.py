"""The cluster gateway: admission, routing, stealing, eviction.

One gateway fronts N runner nodes (each an ordinary ``repro.service``
server).  A submitted job's cells are planned into **slices** — per-node
groups of at most ``max_slice`` cells, keyed by the consistent hash
ring over each cell's artifact-store key — and every node's dispatch
worker streams its slices to its runner over the JSON-lines protocol,
forwarding each ``cell`` entry verbatim (byte identity with the serial
path is inherited from the nodes, never re-derived here).

Scheduling dynamics:

* **locality-first routing** — the ring places a cell on the node that
  computed it last time, so warm artifact-store hits stay local; the
  ``cluster.cells_routed`` / ``cluster.cells_routed_owner`` counters
  measure exactly this (the acceptance test asserts ≥90% on a warm
  resubmission);
* **work stealing** — a node worker whose pending deque has drained
  below the watermark steals one *batch*-class slice from the back of
  the deepest queue, trading locality for tail latency only when it
  would otherwise idle;
* **health/eviction** — periodic ``health`` probes; after
  ``max_failures`` consecutive failures (or any transport error while
  dispatching) a node leaves the ring, its pending slices replan onto
  the survivors, and an in-flight slice requeues once — finished cells
  kept — before its job fails.  A node that probes healthy again
  rejoins the ring;
* **shed backoff** — a node answering ``queue_full`` keeps the slice on
  the gateway, which retries after the node's suggested
  ``retry_after`` (jittered) instead of failing or hot-looping.

The gateway speaks protocol v1 unchanged (``submit`` via
:class:`repro.service.client.Client` works against it as-is) and sniffs
HTTP request lines on the same port, handing those connections to
:mod:`repro.cluster.httpfront`.
"""

from __future__ import annotations

import asyncio
import logging
import random
import time
from dataclasses import dataclass, field

from repro.cluster.nodes import (
    NodeError,
    NodeLink,
    NodeShed,
    NodeUnreachable,
    RunnerNode,
)
from repro.cluster.ring import DEFAULT_REPLICAS, HashRing
from repro.metrics import MetricsRegistry, get_registry
from repro.service import jobs as jobstates
from repro.service.jobs import Job, JobTable
from repro.service.protocol import (
    ERR_BAD_REQUEST,
    ERR_DRAINING,
    ERR_QUEUE_FULL,
    ERR_UNKNOWN_JOB,
    ERR_UNSUPPORTED_VERSION,
    PRIORITIES,
    CancelledResponse,
    CancelRequest,
    CellResult,
    CellSpec,
    ErrorResponse,
    HealthRequest,
    HealthResponse,
    JobDone,
    MetricsRequest,
    MetricsResponse,
    ProtocolError,
    ResultRequest,
    ResultResponse,
    StatusRequest,
    StatusResponse,
    SubmitRequest,
    SubmittedResponse,
    decode_request,
    encode_message,
)

log = logging.getLogger("repro.cluster")

DEFAULT_PORT = 9427

_LINE_LIMIT = 4 * 1024 * 1024

#: Counters pre-touched at construction so an aggregated ``metrics``
#: response shows every cluster counter (at zero) from the first request.
_COUNTERS = (
    "cluster.jobs_submitted",
    "cluster.jobs_done",
    "cluster.jobs_failed",
    "cluster.jobs_timeout",
    "cluster.jobs_cancelled",
    "cluster.cancels_propagated",
    "cluster.sheds",
    "cluster.cells_routed",
    "cluster.cells_routed_owner",
    "cluster.cells_done",
    "cluster.cells_cached",
    "cluster.steals",
    "cluster.cells_stolen",
    "cluster.requeues",
    "cluster.evictions",
    "cluster.rejoins",
    "cluster.node_sheds",
)

_HTTP_METHODS = (
    b"GET ", b"POST ", b"PUT ", b"DELETE ", b"HEAD ", b"OPTIONS ", b"PATCH ",
)


def looks_like_http(first_line: bytes) -> bool:
    """A request line like ``GET /healthz HTTP/1.1`` (vs a JSON line)."""
    return first_line.startswith(_HTTP_METHODS) and b" HTTP/1." in first_line


def ring_key(spec: CellSpec) -> str:
    """The routing key for one cell — the artifact-store cell key.

    Experiment cells route on :func:`repro.artifacts.runner.cell_key`
    (the result key the nodes' stores use), so a cell lands on the node
    whose store computed it.  Config-fuzz cells have no store entry;
    their seed material is the key, which still spreads a campaign
    evenly and deterministically.  Unresolvable cells fall back to a
    literal key — the owning node rejects them with the real error.
    """
    if spec.kind == "config_fuzz":
        payload = spec.payload or {}
        return (
            f"configfuzz:{payload.get('campaign_seed')}:{payload.get('index')}"
        )
    if spec.kind == "tune":
        from repro.artifacts.runner import result_key
        from repro.tune.space import TunePoint

        try:
            point = TunePoint.from_json(spec.payload or {})
            return result_key(
                spec.workload, point.experiment_config(), spec.scale, spec.seed
            )
        except (KeyError, TypeError, ValueError):
            # Unresolvable point: route on the literal payload; the
            # owning node rejects the cell with the real error.
            payload = spec.payload or {}
            return f"tune:{spec.workload}:{sorted(payload.items())!r}"
    from repro.artifacts.runner import cell_key

    try:
        return cell_key(spec.workload, spec.config, spec.scale, spec.seed)
    except (KeyError, ValueError):
        return f"cell:{spec.workload}:{spec.config}:{spec.scale}:{spec.seed}"


@dataclass
class GatewayConfig:
    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    nodes: tuple[str, ...] = ()
    replicas: int = DEFAULT_REPLICAS
    max_jobs: int = 256  # unfinished jobs admitted before shedding
    max_slice: int = 8  # cells per slice (steal/requeue granularity)
    node_timeout: float | None = 600.0  # per-line read deadline on node links
    probe_interval: float = 2.0
    probe_timeout: float = 10.0
    max_failures: int = 2  # consecutive failed probes before eviction
    steal_watermark: int = 1  # steal when own backlog drops below this
    slice_retries: int = 1  # in-flight requeues per slice before job failure
    drain_timeout: float = 60.0


@dataclass
class Slice:
    """One node's share of a job: (original index, spec, ring key) cells."""

    job: Job
    cells: list[tuple[int, CellSpec, str]]
    retries: int = 0
    #: The node-side sub-job id while this slice is streaming (set from
    #: the node's ``submitted`` ack); lets a client cancel reach the node.
    node_job_id: str | None = None

    @property
    def priority(self) -> str:
        return self.job.priority


@dataclass
class _JobState:
    """Gateway-side extras the shared Job dataclass does not carry."""

    outstanding: int = 0  # slices planned but not yet fully handled
    keys: list[str] = field(default_factory=list)  # per-cell ring keys


class Gateway:
    """One running cluster gateway."""

    def __init__(
        self, config: GatewayConfig, registry: MetricsRegistry | None = None
    ) -> None:
        if not config.nodes:
            raise ValueError("gateway needs at least one runner node")
        self.config = config
        self.registry = registry if registry is not None else get_registry()
        self.table = JobTable()
        self.nodes: dict[str, RunnerNode] = {
            address: RunnerNode(address) for address in config.nodes
        }
        self.ring = HashRing(list(config.nodes), replicas=config.replicas)
        self.draining = False
        self.started_at = time.monotonic()
        self.port: int | None = None
        self._state: dict[str, _JobState] = {}
        self._server: asyncio.base_events.Server | None = None
        self._workers: list[asyncio.Task] = []
        self._health_task: asyncio.Task | None = None
        self._stopping = False
        self._job_finished = asyncio.Event()
        self._closed = asyncio.Event()
        self._shutdown_task: asyncio.Task | None = None
        for name in _COUNTERS:
            self.registry.counter(name)
        self.registry.gauge("cluster.nodes_up").set(len(self.nodes))

    # ----------------------------------------------------------- lifecycle

    async def start(self, on_bound=None) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            limit=_LINE_LIMIT,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        log.info(
            "listening on %s:%d (nodes=%s)",
            self.config.host, self.port, ",".join(self.nodes),
        )
        if on_bound is not None:
            on_bound(self)
        loop = asyncio.get_running_loop()
        self._workers = [
            loop.create_task(self._node_worker(node))
            for node in self.nodes.values()
        ]
        self._health_task = loop.create_task(self._health_loop())

    def request_shutdown(self) -> None:
        """Signal-handler entry: start one drain-and-stop task."""
        if self._shutdown_task is None:
            self._shutdown_task = asyncio.get_running_loop().create_task(
                self.shutdown()
            )

    async def shutdown(self) -> None:
        self.draining = True
        unfinished = self.table.unfinished()
        log.info("draining: %d unfinished job(s)", len(unfinished))
        deadline = time.monotonic() + self.config.drain_timeout
        while self.table.unfinished():
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                log.warning(
                    "drain timeout (%.0fs) expired; failing leftover jobs",
                    self.config.drain_timeout,
                )
                for job in self.table.unfinished():
                    self._fail_job(
                        job, "gateway shut down before the job finished"
                    )
                break
            self._job_finished.clear()
            try:
                await asyncio.wait_for(self._job_finished.wait(), remaining)
            except asyncio.TimeoutError:
                pass  # silent-ok: loop re-checks the deadline and leftovers
        self._stopping = True
        if self._health_task is not None:
            self._health_task.cancel()
        for task in self._workers:
            task.cancel()
        await asyncio.gather(
            *self._workers,
            *([self._health_task] if self._health_task else []),
            return_exceptions=True,
        )
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._closed.set()
        log.info("shutdown complete")

    async def wait_closed(self) -> None:
        await self._closed.wait()

    # --------------------------------------------------------- connections

    async def _send(self, writer: asyncio.StreamWriter, message) -> None:
        writer.write(encode_message(message))
        await writer.drain()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            line = await reader.readline()
            if line and looks_like_http(line):
                from repro.cluster.httpfront import handle_http

                await handle_http(self, reader, writer, line)
                return
            while line:
                try:
                    request = decode_request(line)
                except ProtocolError as exc:
                    await self._send(
                        writer, ErrorResponse(code=exc.code, message=str(exc))
                    )
                    if exc.code == ERR_UNSUPPORTED_VERSION:
                        break
                    line = await reader.readline()
                    continue
                if isinstance(request, SubmitRequest):
                    await self._handle_submit(request, writer)
                elif isinstance(request, StatusRequest):
                    await self._send(writer, self.status(request.job_id))
                elif isinstance(request, ResultRequest):
                    await self._send(writer, self.result(request.job_id))
                elif isinstance(request, CancelRequest):
                    await self._send(writer, self.cancel(request.job_id))
                elif isinstance(request, HealthRequest):
                    await self._send(writer, self.health())
                elif isinstance(request, MetricsRequest):
                    await self._send(writer, await self.metrics())
                line = await reader.readline()
        except (ConnectionResetError, BrokenPipeError):
            pass  # silent-ok: client went away; its job (if any) continues
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass  # silent-ok: peer already tore the socket down

    async def _handle_submit(
        self, request: SubmitRequest, writer: asyncio.StreamWriter
    ) -> None:
        admitted = self.admit(request)
        if isinstance(admitted, ErrorResponse):
            await self._send(writer, admitted)
            return
        job = admitted
        stream: asyncio.Queue = asyncio.Queue()
        job.subscribe(stream)
        try:
            await self._send(
                writer,
                SubmittedResponse(
                    job_id=job.job_id, cells_total=len(job.cells), position=0
                ),
            )
            while True:
                message = await stream.get()
                await self._send(writer, message)
                if isinstance(message, JobDone):
                    break
        finally:
            job.unsubscribe(stream)

    # ----------------------------------------------------------- admission

    def admit(self, request: SubmitRequest) -> Job | ErrorResponse:
        """Validate, create the job, and plan its slices onto the ring."""
        if self.draining:
            return ErrorResponse(
                code=ERR_DRAINING, message="gateway is draining; resubmit later"
            )
        if not request.cells:
            return ErrorResponse(
                code=ERR_BAD_REQUEST, message="submit carries no cells"
            )
        if request.priority not in PRIORITIES:
            return ErrorResponse(
                code=ERR_BAD_REQUEST,
                message=f"unknown priority {request.priority!r} "
                f"(choose from {list(PRIORITIES)})",
            )
        active = len(self.table.unfinished())
        if active >= self.config.max_jobs:
            self.registry.counter("cluster.sheds").inc()
            return ErrorResponse(
                code=ERR_QUEUE_FULL,
                message=f"gateway at capacity ({active}/{self.config.max_jobs} "
                "jobs)",
                queue_depth=active,
                retry_after=round(min(10.0, 0.5 + 0.05 * active), 2),
            )
        if not any(node.up for node in self.nodes.values()):
            return ErrorResponse(
                code=ERR_BAD_REQUEST, message="no runner nodes available"
            )
        job = self.table.create(
            client=request.client or "anonymous",
            cells=list(request.cells),
            priority=request.priority,
            timeout=request.timeout,
        )
        state = self._state[job.job_id] = _JobState(
            keys=[ring_key(spec) for spec in request.cells]
        )
        job.state = jobstates.RUNNING
        job.started_at = time.monotonic()
        self.registry.counter("cluster.jobs_submitted").inc()
        cells = [
            (index, spec, state.keys[index])
            for index, spec in enumerate(job.cells)
        ]
        self._plan(job, cells, retries=0)
        return job

    # ------------------------------------------------------------ planning

    def _plan(
        self,
        job: Job,
        cells: list[tuple[int, CellSpec, str]],
        retries: int,
    ) -> None:
        """Group cells by ring owner, chunk to max_slice, and enqueue."""
        per_node: dict[str, list[tuple[int, CellSpec, str]]] = {}
        for index, spec, key in cells:
            owner = self.ring.owner(key)
            if owner is None:
                self._fail_job(job, "no runner nodes available")
                return
            per_node.setdefault(owner, []).append((index, spec, key))
        for address, node_cells in per_node.items():
            node = self.nodes[address]
            for start in range(0, len(node_cells), self.config.max_slice):
                chunk = node_cells[start : start + self.config.max_slice]
                self._enqueue(node, Slice(job=job, cells=chunk, retries=retries))

    def _enqueue(self, node: RunnerNode, slice_: Slice) -> None:
        state = self._state.get(slice_.job.job_id)
        if state is not None:
            state.outstanding += 1
        node.pending.append(slice_)
        for peer in self.nodes.values():
            peer.kick.set()  # idle peers may steal this

    # ------------------------------------------------------ node dispatch

    async def _node_worker(self, node: RunnerNode) -> None:
        try:
            while not self._stopping:
                slice_ = await self._next_slice(node)
                if slice_ is None:
                    continue
                try:
                    await self._run_slice(node, slice_)
                finally:
                    self._slice_done(slice_)
        except asyncio.CancelledError:
            raise
        except Exception:  # pragma: no cover - worker must never die silently
            log.exception("node worker %s crashed", node.address)
            raise

    async def _next_slice(self, node: RunnerNode) -> Slice | None:
        if not node.up:
            await asyncio.sleep(0.2)  # evicted: idle until a probe rejoins it
            return None
        if node.pending:
            return node.pending.popleft()
        # Backlog has drained below the watermark (empty, in fact — the
        # worker only gets here with nothing of its own left): steal.
        victim = self._steal_victim(node)
        if victim is not None:
            slice_ = victim.pending.pop()  # back of the deque: coldest work
            self.registry.counter("cluster.steals").inc()
            self.registry.counter("cluster.cells_stolen").inc(len(slice_.cells))
            log.info(
                "%s stole a %d-cell slice from %s",
                node.address, len(slice_.cells), victim.address,
            )
            return slice_
        node.kick.clear()
        try:
            # Bounded wait so steal opportunities (and eviction-driven
            # replans) are re-checked even without an enqueue kick.
            await asyncio.wait_for(node.kick.wait(), timeout=0.5)
        except asyncio.TimeoutError:
            pass  # silent-ok: periodic re-check is the point
        return None

    def _steal_victim(self, thief: RunnerNode) -> RunnerNode | None:
        """Deepest up-node queue holding a stealable batch-class slice."""
        victim: RunnerNode | None = None
        for node in self.nodes.values():
            if node is thief or not node.up:
                continue
            if len(node.pending) <= self.config.steal_watermark:
                continue
            if node.pending[-1].priority != "batch":
                continue  # interactive work keeps its locality
            if victim is None or len(node.pending) > len(victim.pending):
                victim = node
        return victim

    async def _run_slice(self, node: RunnerNode, slice_: Slice) -> None:
        job = slice_.job
        if job.finished:
            return
        todo = [
            (index, spec, key)
            for index, spec, key in slice_.cells
            if job.entries[index] is None
        ]
        if not todo:
            return
        node.inflight = slice_
        try:
            self.registry.counter("cluster.cells_routed").inc(len(todo))
            owner_hits = sum(
                1 for _, _, key in todo if self.ring.owner(key) == node.address
            )
            self.registry.counter("cluster.cells_routed_owner").inc(owner_hits)
            index_map = {
                local: index for local, (index, _, _) in enumerate(todo)
            }

            def on_cell(cell: CellResult) -> None:
                original = index_map.get(cell.index)
                if original is not None:
                    self._deliver(job, original, cell)

            link = node.link(timeout=self.config.node_timeout)
            done = await self._submit_with_backoff(
                link, job, [spec for _, spec, _ in todo], on_cell, slice_
            )
            if done.state != jobstates.DONE:
                if (
                    job.cancel_requested
                    and done.state == jobstates.CANCELLED
                ):
                    # The cancel we propagated came back around: not a
                    # failure.  _slice_done -> _maybe_complete finishes
                    # the job as CANCELLED once every slice accounts.
                    pass
                else:
                    self._fail_job(
                        job,
                        done.error
                        or f"node {node.address} finished a slice as "
                        f"{done.state}",
                        state=done.state
                        if done.state in (jobstates.TIMEOUT,)
                        else jobstates.FAILED,
                    )
        except NodeUnreachable as exc:
            log.warning("node %s failed mid-slice: %s", node.address, exc)
            self._evict(node, str(exc))
            self._requeue_slice(slice_, reason=str(exc))
        except NodeError as exc:
            # A structured rejection (bad_request, draining...) would fail
            # identically anywhere: fail the job with the node's error.
            self._fail_job(job, f"node {node.address}: {exc}")
        finally:
            node.inflight = None
            slice_.node_job_id = None

    async def _submit_with_backoff(
        self,
        link: NodeLink,
        job: Job,
        specs: list[CellSpec],
        on_cell,
        slice_: Slice,
    ) -> JobDone:
        """Submit one slice, backing off on ``queue_full`` sheds."""

        def on_submitted(submitted) -> None:
            slice_.node_job_id = submitted.job_id
            # A cancel may have arrived in the window between dispatch
            # and the node's ack; catch up now rather than letting the
            # sub-job run to completion.
            if job.cancel_requested:
                self._spawn_cancel(link.address, submitted.job_id)

        while True:
            try:
                return await link.submit(
                    specs,
                    priority=job.priority,
                    timeout=job.timeout,
                    client=f"gateway/{job.client}",
                    on_cell=on_cell,
                    on_submitted=on_submitted,
                )
            except NodeShed as exc:
                self.registry.counter("cluster.node_sheds").inc()
                delay = min(10.0, exc.retry_after) * (0.5 + random.random() / 2)
                log.info(
                    "node %s shed a slice; retrying in %.2fs",
                    link.address, delay,
                )
                await asyncio.sleep(delay)
                if job.finished:
                    return JobDone(job_id=job.job_id, state=job.state)

    # ------------------------------------------------- failure / requeue

    def _requeue_slice(self, slice_: Slice, reason: str) -> None:
        """Requeue an in-flight slice once; fail its job on the second loss."""
        job = slice_.job
        if job.finished:
            return
        remaining = [
            (index, spec, key)
            for index, spec, key in slice_.cells
            if job.entries[index] is None
        ]
        if not remaining:
            return
        if slice_.retries >= self.config.slice_retries:
            self._fail_job(
                job,
                f"slice lost {slice_.retries + 1} times "
                f"(last: {reason}); giving up",
            )
            return
        self.registry.counter("cluster.requeues").inc()
        self._plan(job, remaining, retries=slice_.retries + 1)

    def _evict(self, node: RunnerNode, reason: str) -> None:
        """Remove a failed node from the ring; replan its pending work."""
        if not node.up:
            return
        node.up = False
        node.consecutive_failures = max(
            node.consecutive_failures, self.config.max_failures
        )
        self.ring.remove(node.address)
        self.registry.counter("cluster.evictions").inc()
        self.registry.gauge("cluster.nodes_up").set(
            sum(1 for n in self.nodes.values() if n.up)
        )
        log.warning("evicting node %s: %s", node.address, reason)
        pending = list(node.pending)
        node.pending.clear()
        for slice_ in pending:
            self._slice_done(slice_)
            if not slice_.job.finished:
                remaining = [
                    (index, spec, key)
                    for index, spec, key in slice_.cells
                    if slice_.job.entries[index] is None
                ]
                if remaining:
                    # Never dispatched: rerouting is not a retry.
                    self._plan(slice_.job, remaining, retries=slice_.retries)

    def _rejoin(self, node: RunnerNode) -> None:
        node.up = True
        node.consecutive_failures = 0
        self.ring.add(node.address)
        self.registry.counter("cluster.rejoins").inc()
        self.registry.gauge("cluster.nodes_up").set(
            sum(1 for n in self.nodes.values() if n.up)
        )
        log.info("node %s rejoined the ring", node.address)
        node.kick.set()

    # ------------------------------------------------------------ delivery

    def _deliver(self, job: Job, index: int, cell: CellResult) -> None:
        if job.finished or job.entries[index] is not None:
            return
        job.entries[index] = cell.entry
        if cell.cached:
            job.cells_cached += 1
            self.registry.counter("cluster.cells_cached").inc()
        else:
            job.cells_computed += 1
        self.registry.counter("cluster.cells_done").inc()
        job.publish(
            CellResult(
                job_id=job.job_id,
                index=index,
                workload=cell.workload,
                config=cell.config,
                cached=cell.cached,
                seconds=cell.seconds,
                entry=cell.entry,
            )
        )

    def _slice_done(self, slice_: Slice) -> None:
        state = self._state.get(slice_.job.job_id)
        if state is None:
            return
        state.outstanding -= 1
        if state.outstanding <= 0:
            self._maybe_complete(slice_.job)

    def _maybe_complete(self, job: Job) -> None:
        if job.finished:
            return
        if job.cancel_requested:
            self._finish(job, jobstates.CANCELLED)
        elif all(entry is not None for entry in job.entries):
            self._finish(job, jobstates.DONE)
        else:
            # Every slice accounted for but cells missing: a requeue path
            # failed without failing the job (should not happen).
            self._finish(
                job, jobstates.FAILED, error="job lost cells without a cause"
            )

    def _fail_job(
        self, job: Job, error: str, state: str = jobstates.FAILED
    ) -> None:
        if job.finished:
            return
        for node in self.nodes.values():
            kept = [s for s in node.pending if s.job is not job]
            dropped = len(node.pending) - len(kept)
            if dropped:
                node.pending.clear()
                node.pending.extend(kept)
                job_state = self._state.get(job.job_id)
                if job_state is not None:
                    job_state.outstanding -= dropped
        self._finish(job, state, error=error)

    def _finish(self, job: Job, state: str, error: str | None = None) -> None:
        job.state = state
        job.error = error
        job.finished_at = time.monotonic()
        self._state.pop(job.job_id, None)
        self.registry.counter(f"cluster.jobs_{state}").inc()
        self.registry.histogram("cluster.job_service_seconds").observe(
            job.seconds
        )
        job.publish(
            JobDone(
                job_id=job.job_id,
                state=state,
                cells_total=len(job.cells),
                cells_cached=job.cells_cached,
                cells_computed=job.cells_computed,
                seconds=job.seconds,
                error=error,
            )
        )
        self._job_finished.set()

    # ------------------------------------------------------------- queries

    def status(self, job_id: str) -> StatusResponse | ErrorResponse:
        job = self.table.get(job_id)
        if job is None:
            return ErrorResponse(
                code=ERR_UNKNOWN_JOB,
                message=f"unknown job {job_id!r}",
                job_id=job_id,
            )
        return StatusResponse(
            job_id=job.job_id,
            state=job.state,
            cells_total=len(job.cells),
            cells_done=job.cells_done,
            position=-1,
        )

    def result(self, job_id: str) -> ResultResponse | ErrorResponse:
        job = self.table.get(job_id)
        if job is None:
            return ErrorResponse(
                code=ERR_UNKNOWN_JOB,
                message=f"unknown job {job_id!r}",
                job_id=job_id,
            )
        return ResultResponse(
            job_id=job.job_id, state=job.state, entries=list(job.entries)
        )

    def cancel(self, job_id: str) -> CancelledResponse | ErrorResponse:
        job = self.table.get(job_id)
        if job is None:
            return ErrorResponse(
                code=ERR_UNKNOWN_JOB,
                message=f"unknown job {job_id!r}",
                job_id=job_id,
            )
        if job.finished:
            return CancelledResponse(job_id=job.job_id, state=job.state)
        job.cancel_requested = True
        state = self._state.get(job.job_id)
        inflight = any(
            node.inflight is not None and node.inflight.job is job
            for node in self.nodes.values()
        )
        for node in self.nodes.values():
            kept = [s for s in node.pending if s.job is not job]
            dropped = len(node.pending) - len(kept)
            if dropped:
                node.pending.clear()
                node.pending.extend(kept)
                if state is not None:
                    state.outstanding -= dropped
        if not inflight:
            self._finish(job, jobstates.CANCELLED)
            return CancelledResponse(job_id=job.job_id, state=job.state)
        # Propagate to every node whose in-flight slice belongs to this
        # job: the node finishes its sub-job as cancelled between batch
        # completions instead of running the remaining cells, and the
        # streaming _run_slice sees the cancelled JobDone as expected.
        # _maybe_complete then finishes the job once slices account.
        for node in self.nodes.values():
            slice_ = node.inflight
            if (
                slice_ is not None
                and slice_.job is job
                and slice_.node_job_id is not None
            ):
                self._spawn_cancel(node.address, slice_.node_job_id)
        return CancelledResponse(job_id=job.job_id, state=job.state)

    def _spawn_cancel(self, address: str, node_job_id: str) -> None:
        asyncio.get_running_loop().create_task(
            self._propagate_cancel(address, node_job_id)
        )

    async def _propagate_cancel(self, address: str, node_job_id: str) -> None:
        link = NodeLink(address, timeout=self.config.probe_timeout)
        try:
            await link.request(CancelRequest(job_id=node_job_id))
        except NodeError as exc:
            # Best-effort: a node we cannot reach finishes the sub-job
            # on its own and the health loop handles the node itself.
            log.warning(
                "cancel propagation to %s (job %s) failed: %s",
                address, node_job_id, exc,
            )
        else:
            self.registry.counter("cluster.cancels_propagated").inc()

    def health(self) -> HealthResponse:
        nodes_up = sum(1 for node in self.nodes.values() if node.up)
        return HealthResponse(
            ok=nodes_up > 0,
            uptime_seconds=time.monotonic() - self.started_at,
            queue_depth=sum(len(node.pending) for node in self.nodes.values()),
            queue_capacity=self.config.max_jobs,
            jobs_active=len(self.table.unfinished()),
            jobs_completed=int(
                self.registry.counter("cluster.jobs_done").value
            ),
            workers=sum(
                node.workers for node in self.nodes.values() if node.up
            ),
            draining=self.draining,
        )

    async def metrics(self) -> MetricsResponse:
        """Cluster-wide view: gateway metrics merged with node snapshots.

        Uses the associative :meth:`MetricsRegistry.merge` — counters
        add across nodes (``service.cells_computed`` becomes the fleet
        total), gauges last-write-win, histograms combine moments.
        """
        merged = MetricsRegistry()
        merged.merge(self.registry.snapshot())
        up = [node for node in self.nodes.values() if node.up]
        answers = await asyncio.gather(
            *(
                node.link(timeout=self.config.probe_timeout).metrics()
                for node in up
            ),
            return_exceptions=True,
        )
        for node, answer in zip(up, answers):
            if isinstance(answer, MetricsResponse):
                merged.merge_parts(
                    counters=answer.counters,
                    gauges=answer.gauges,
                    histograms=answer.histograms,
                )
            elif isinstance(answer, BaseException):
                log.warning(
                    "metrics probe of %s failed: %s", node.address, answer
                )
        snapshot = merged.snapshot()
        return MetricsResponse(
            counters=snapshot["counters"],
            gauges=snapshot["gauges"],
            histograms=snapshot["histograms"],
        )

    # -------------------------------------------------------------- health

    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.probe_interval)
            await asyncio.gather(
                *(self._probe(node) for node in self.nodes.values())
            )

    async def _probe(self, node: RunnerNode) -> None:
        try:
            health = await node.link(timeout=self.config.probe_timeout).health()
        except NodeError as exc:
            node.consecutive_failures += 1
            if node.up and node.consecutive_failures >= self.config.max_failures:
                self._evict(node, f"health probe failed: {exc}")
            return
        node.consecutive_failures = 0
        node.queue_depth = health.queue_depth
        node.workers = health.workers
        self.registry.gauge(f"cluster.node.{node.address}.queue_depth").set(
            health.queue_depth
        )
        if not node.up and not health.draining:
            self._rejoin(node)


async def gateway_forever(
    config: GatewayConfig,
    registry: MetricsRegistry | None = None,
    on_bound=None,
) -> Gateway:
    """Run a gateway until SIGTERM/SIGINT drains it; returns the gateway."""
    import signal

    gateway = Gateway(config, registry=registry)
    await gateway.start(on_bound=on_bound)
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, gateway.request_shutdown)
    await gateway.wait_closed()
    return gateway
