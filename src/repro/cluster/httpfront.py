"""Zero-dependency HTTP/1.1 JSON adapter for the cluster gateway.

The gateway's listener sniffs each connection's first line; anything
that looks like an HTTP request line lands here.  One request per
connection (``Connection: close``), stdlib-only parsing — this is a
front door for curl and dashboards, not a web framework.

Endpoint table (mirrored in DESIGN.md §15):

====== ========================= ==========================================
Method Path                      Maps to
====== ========================= ==========================================
GET    /healthz                  ``health`` (cluster-level liveness)
GET    /metrics                  ``metrics`` (aggregated across nodes)
POST   /v1/jobs                  ``submit``; body ``{"cells": [...],
                                 "priority", "timeout", "wait"}`` — with
                                 ``wait`` (default true) the response is
                                 the finished job, else 202 + job id
GET    /v1/jobs/{id}             ``status``
GET    /v1/jobs/{id}/result      ``result`` (entries so far; None gaps)
DELETE /v1/jobs/{id}             ``cancel``
====== ========================= ==========================================

Structured protocol errors map onto status codes: ``bad_request`` → 400,
``unknown_job`` → 404, ``queue_full`` → 429 with a ``Retry-After``
header, ``draining`` → 503.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import logging

from repro.service.protocol import (
    ERR_BAD_REQUEST,
    ERR_DRAINING,
    ERR_QUEUE_FULL,
    ERR_UNKNOWN_JOB,
    CellSpec,
    ErrorResponse,
    JobDone,
    SubmitRequest,
)

log = logging.getLogger("repro.cluster")

#: Request bodies beyond this are rejected (matches the line-protocol
#: stream limit; a 10k-cell sweep fits comfortably).
_MAX_BODY = 4 * 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

_ERROR_STATUS = {
    ERR_BAD_REQUEST: 400,
    ERR_UNKNOWN_JOB: 404,
    ERR_QUEUE_FULL: 429,
    ERR_DRAINING: 503,
}


class _HttpError(Exception):
    def __init__(self, status: int, message: str) -> None:
        self.status = status
        self.message = message
        super().__init__(message)


def _response_bytes(
    status: int, payload: dict, extra_headers: dict | None = None
) -> bytes:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    headers = [
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (extra_headers or {}).items():
        headers.append(f"{name}: {value}")
    return ("\r\n".join(headers) + "\r\n\r\n").encode("ascii") + body


def _error_payload(error: ErrorResponse) -> tuple[int, dict, dict]:
    status = _ERROR_STATUS.get(error.code, 500)
    payload = {"error": error.code, "message": error.message}
    if error.job_id is not None:
        payload["job_id"] = error.job_id
    if error.queue_depth is not None:
        payload["queue_depth"] = error.queue_depth
    headers = {}
    if error.retry_after is not None:
        payload["retry_after"] = error.retry_after
        headers["Retry-After"] = f"{error.retry_after:g}"
    return status, payload, headers


async def _read_request(
    reader: asyncio.StreamReader, first_line: bytes
) -> tuple[str, str, dict]:
    try:
        method, path, _version = first_line.decode("ascii").split(None, 2)
    except (UnicodeDecodeError, ValueError) as exc:
        raise _HttpError(400, f"malformed request line: {exc}") from exc
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    body: dict = {}
    length = int(headers.get("content-length", "0") or "0")
    if length > _MAX_BODY:
        raise _HttpError(413, f"body of {length} bytes exceeds {_MAX_BODY}")
    if length:
        raw = await reader.readexactly(length)
        try:
            body = json.loads(raw)
        except ValueError as exc:
            raise _HttpError(400, f"body is not valid JSON: {exc}") from exc
        if not isinstance(body, dict):
            raise _HttpError(400, "body must be a JSON object")
    return method.upper(), path, body


def _decode_cells(body: dict) -> list[CellSpec]:
    cells = body.get("cells")
    if not isinstance(cells, list) or not cells:
        raise _HttpError(400, "body needs a non-empty 'cells' list")
    specs = []
    for cell in cells:
        if not isinstance(cell, dict):
            raise _HttpError(400, "each cell must be a JSON object")
        try:
            specs.append(CellSpec(**cell))
        except TypeError as exc:
            raise _HttpError(400, f"bad cell spec: {exc}") from exc
    return specs


def _job_payload(message) -> dict:
    payload = dataclasses.asdict(message)
    payload["type"] = message.TYPE
    return payload


async def _submit(gateway, body: dict) -> bytes:
    wait = body.get("wait", True)
    request = SubmitRequest(
        cells=_decode_cells(body),
        priority=body.get("priority", "batch"),
        timeout=body.get("timeout"),
        client=str(body.get("client", "http")),
    )
    admitted = gateway.admit(request)
    if isinstance(admitted, ErrorResponse):
        status, payload, headers = _error_payload(admitted)
        return _response_bytes(status, payload, headers)
    job = admitted
    if not wait:
        return _response_bytes(
            202, {"job_id": job.job_id, "cells_total": len(job.cells)}
        )
    stream: asyncio.Queue = asyncio.Queue()
    job.subscribe(stream)
    try:
        while not job.finished:
            message = await stream.get()
            if isinstance(message, JobDone):
                break
    finally:
        job.unsubscribe(stream)
    return _response_bytes(
        200,
        {
            "job_id": job.job_id,
            "state": job.state,
            "entries": list(job.entries),
            "cells_cached": job.cells_cached,
            "cells_computed": job.cells_computed,
            "seconds": job.seconds,
            "error": job.error,
        },
    )


async def handle_http(
    gateway,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    first_line: bytes,
) -> None:
    """Serve one HTTP request against the gateway, then close."""
    try:
        method, path, body = await _read_request(reader, first_line)
        route = (method, path)
        if route == ("GET", "/healthz"):
            health = gateway.health()
            response = _response_bytes(
                200 if health.ok else 503, _job_payload(health)
            )
        elif route == ("GET", "/metrics"):
            response = _response_bytes(
                200, _job_payload(await gateway.metrics())
            )
        elif route == ("POST", "/v1/jobs"):
            response = await _submit(gateway, body)
        elif method in ("GET", "DELETE") and path.startswith("/v1/jobs/"):
            tail = path[len("/v1/jobs/") :]
            if method == "GET" and tail.endswith("/result"):
                answer = gateway.result(tail[: -len("/result")])
            elif method == "GET":
                answer = gateway.status(tail)
            else:
                answer = gateway.cancel(tail)
            if isinstance(answer, ErrorResponse):
                status, payload, headers = _error_payload(answer)
                response = _response_bytes(status, payload, headers)
            else:
                response = _response_bytes(200, _job_payload(answer))
        else:
            response = _response_bytes(
                405 if path in ("/healthz", "/metrics", "/v1/jobs") else 404,
                {"error": "no_route", "message": f"no route {method} {path}"},
            )
    except _HttpError as exc:
        response = _response_bytes(
            exc.status, {"error": "bad_request", "message": exc.message}
        )
    except asyncio.IncompleteReadError:
        return  # peer hung up mid-body; nothing to answer
    except Exception as exc:  # surface, never kill the gateway
        log.exception("HTTP handler failed")
        response = _response_bytes(
            500, {"error": "internal", "message": f"{type(exc).__name__}: {exc}"}
        )
    writer.write(response)
    await writer.drain()
