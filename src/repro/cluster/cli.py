"""The ``cluster`` subcommand family.

Usage::

    python -m repro.harness cluster serve --nodes 127.0.0.1:9417,127.0.0.1:9418
    python -m repro.harness cluster spawn --runners 2 --workers-per-runner 2
    python -m repro.harness submit fig6 --port <gateway port>   # unchanged

``serve`` fronts already-running runner nodes; ``spawn`` stands up N
runner subprocesses first (ephemeral ports, discovered from their
``listening on`` lines) and tears them down after the gateway drains.
Both print a parseable ``[repro.cluster] listening on host:port`` line
as soon as the gateway socket binds, and ``spawn`` adds a
``runner pids: ...`` line so wrappers can assert a clean shutdown.
"""

from __future__ import annotations

import argparse
import sys


def _add_gateway_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0,
        help="gateway TCP port (default 0 = pick an ephemeral port)",
    )
    parser.add_argument(
        "--replicas", type=int, default=None,
        help="virtual nodes per runner on the hash ring (default 64)",
    )
    parser.add_argument(
        "--max-slice", type=int, default=8,
        help="max cells per dispatched slice (steal/requeue granularity)",
    )
    parser.add_argument(
        "--max-jobs", type=int, default=256,
        help="unfinished jobs admitted before shedding with queue_full",
    )
    parser.add_argument(
        "--steal-watermark", type=int, default=1,
        help="pending slices a node must exceed before idle peers steal",
    )
    parser.add_argument(
        "--probe-interval", type=float, default=2.0,
        help="seconds between node health probes",
    )
    parser.add_argument(
        "--max-failures", type=int, default=2,
        help="consecutive failed probes before a node is evicted",
    )
    parser.add_argument(
        "--drain-timeout", type=float, default=60.0,
        help="seconds to wait for in-flight jobs on SIGTERM",
    )


def _gateway_config(args, nodes: tuple[str, ...]):
    from repro.cluster.gateway import GatewayConfig
    from repro.cluster.ring import DEFAULT_REPLICAS

    return GatewayConfig(
        host=args.host,
        port=args.port,
        nodes=nodes,
        replicas=args.replicas if args.replicas else DEFAULT_REPLICAS,
        max_jobs=args.max_jobs,
        max_slice=args.max_slice,
        steal_watermark=args.steal_watermark,
        probe_interval=args.probe_interval,
        max_failures=args.max_failures,
        drain_timeout=args.drain_timeout,
    )


def _announce(gateway) -> None:
    print(
        f"[repro.cluster] listening on {gateway.config.host}:{gateway.port} "
        f"(nodes={','.join(gateway.nodes)})",
        file=sys.stderr,
        flush=True,
    )


def _run_gateway(args, nodes: tuple[str, ...]) -> int:
    import asyncio
    import logging

    from repro.cluster.gateway import gateway_forever
    from repro.metrics import get_registry

    logging.basicConfig(
        level=logging.INFO, format="[%(name)s] %(message)s", stream=sys.stderr
    )
    asyncio.run(
        gateway_forever(
            _gateway_config(args, nodes),
            registry=get_registry(),
            on_bound=_announce,
        )
    )
    return 0


def serve_cluster_main(argv: list[str]) -> int:
    from repro.cluster.nodes import parse_address

    parser = argparse.ArgumentParser(
        prog="python -m repro.harness cluster serve",
        description="Front already-running `serve` nodes with a sharding "
        "gateway (JSON lines + HTTP on one port; drain with SIGTERM).",
    )
    parser.add_argument(
        "--nodes", required=True, metavar="HOST:PORT,...",
        help="comma-separated runner addresses",
    )
    _add_gateway_flags(parser)
    args = parser.parse_args(argv)
    nodes = tuple(n for n in args.nodes.split(",") if n)
    if not nodes:
        parser.error("--nodes needs at least one host:port")
    for node in nodes:
        try:
            parse_address(node)
        except ValueError as exc:
            parser.error(str(exc))
    return _run_gateway(args, nodes)


def spawn_cluster_main(argv: list[str]) -> int:
    from repro.cluster.spawn import SpawnError, spawn_runners, terminate_runners

    parser = argparse.ArgumentParser(
        prog="python -m repro.harness cluster spawn",
        description="Spawn N runner subprocesses on ephemeral ports and "
        "front them with a gateway; SIGTERM drains everything.",
    )
    parser.add_argument(
        "--runners", type=int, default=2,
        help="runner subprocesses to spawn (each its own warm pool)",
    )
    parser.add_argument(
        "--workers-per-runner", type=int, default=2,
        help="warm worker processes inside each runner",
    )
    parser.add_argument(
        "--runner-max-queue", type=int, default=64,
        help="per-runner bounded queue depth",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="artifact cache root; each runner stores under its own "
        "runner{i} subdirectory (warm hits stay node-local)",
    )
    parser.add_argument(
        "--runner-stderr", action="store_true",
        help="forward runner stderr through the gateway's stderr",
    )
    _add_gateway_flags(parser)
    args = parser.parse_args(argv)
    if args.runners < 1:
        parser.error("--runners must be >= 1")

    try:
        runners = spawn_runners(
            args.runners,
            workers=args.workers_per_runner,
            max_queue=args.runner_max_queue,
            cache_dir=args.cache_dir,
            forward_stderr=args.runner_stderr,
        )
    except SpawnError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(
        "[repro.cluster] runner pids: "
        + " ".join(str(runner.pid) for runner in runners),
        file=sys.stderr,
        flush=True,
    )
    try:
        return _run_gateway(args, tuple(r.address for r in runners))
    finally:
        terminate_runners(runners)
        print("[repro.cluster] runners terminated", file=sys.stderr, flush=True)


def cluster_main(argv: list[str]) -> int:
    if argv and argv[0] == "serve":
        return serve_cluster_main(argv[1:])
    if argv and argv[0] == "spawn":
        return spawn_cluster_main(argv[1:])
    print(
        "usage: python -m repro.harness cluster {serve,spawn} ...",
        file=sys.stderr,
    )
    return 2
