"""Consistent hash ring: cell key → owning runner node.

The routing invariant the cluster is built on: the same cell key always
maps to the same node while the node set is stable, and when a node
joins or leaves only ~1/N of the key space remaps (and every remapped
key moves to/from exactly the joining/leaving node — no unrelated
churn).  That is what keeps artifact-store warm hits local: a
resubmitted cell lands on the node whose store already holds its
result.

Placement is deterministic by construction — SHA-256 over
``"{node}#{replica}"`` for the ring points and over the key for
lookups, so every gateway (and every test) computes identical
placements with no dependence on platform hash randomization.  Each
node contributes ``replicas`` virtual points, which is what bounds the
per-node share variance (the distribution tests pin the bound).
"""

from __future__ import annotations

import bisect
import hashlib

DEFAULT_REPLICAS = 64


def _point(material: str) -> int:
    """Stable 64-bit ring coordinate for a string."""
    return int.from_bytes(
        hashlib.sha256(material.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """Deterministic consistent hash ring over named nodes."""

    def __init__(
        self, nodes: list[str] | tuple[str, ...] = (), replicas: int = DEFAULT_REPLICAS
    ) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._nodes: set[str] = set()
        #: Sorted virtual points; two parallel lists for bisect lookups.
        self._points: list[int] = []
        self._owners: list[str] = []
        for node in nodes:
            self.add(node)

    # ----------------------------------------------------------- membership

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    @property
    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    def add(self, node: str) -> None:
        """Join one node (idempotent)."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        for replica in range(self.replicas):
            point = _point(f"{node}#{replica}")
            index = bisect.bisect_left(self._points, point)
            # SHA-256 point collisions between distinct vnode labels are
            # negligible; ties break toward the lexically smaller node so
            # placement stays deterministic even then.
            if (
                index < len(self._points)
                and self._points[index] == point
                and self._owners[index] <= node
            ):
                continue
            self._points.insert(index, point)
            self._owners.insert(index, node)

    def remove(self, node: str) -> None:
        """Leave one node (idempotent); its key range remaps to successors."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        keep = [
            (point, owner)
            for point, owner in zip(self._points, self._owners)
            if owner != node
        ]
        self._points = [point for point, _ in keep]
        self._owners = [owner for _, owner in keep]

    # -------------------------------------------------------------- lookup

    def owner(self, key: str) -> str | None:
        """The node owning ``key``, or None on an empty ring."""
        if not self._points:
            return None
        index = bisect.bisect_right(self._points, _point(key))
        if index == len(self._points):
            index = 0  # wrap past the highest point
        return self._owners[index]

    def distribution(self, keys: list[str]) -> dict[str, int]:
        """Keys-per-node histogram (balance tests and `cluster` status)."""
        counts: dict[str, int] = {node: 0 for node in self._nodes}
        for key in keys:
            node = self.owner(key)
            if node is not None:
                counts[node] += 1
        return counts
