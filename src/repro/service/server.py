"""Asyncio TCP front end: connections, request routing, lifecycle.

``python -m repro.harness serve`` stands one of these up.  The server
is a thin shell around three long-lived pieces — the bounded
:class:`JobQueue`, the :class:`Scheduler`, and the warm
:class:`WorkerPool` — plus the process-global metrics registry that the
``health``/``metrics`` request types and the shutdown ledger report.

Lifecycle: SIGTERM/SIGINT triggers a drain — new submits are rejected
with a structured ``draining`` error, everything already admitted
(queued and running) completes and streams out, the pool is shut down
with every worker joined (no orphans), and only then does the listener
close.  A drain that exceeds ``drain_timeout`` hard-stops the scheduler
and fails the leftover jobs instead of hanging forever.
"""

from __future__ import annotations

import asyncio
import logging
import signal
import sys
import time
from dataclasses import dataclass

from repro.artifacts.runner import MatrixTask
from repro.artifacts.store import ArtifactStore
from repro.metrics import MetricsRegistry, get_registry
from repro.service import jobs as jobstates
from repro.service.jobs import Job, JobQueue, JobTable, QueueFullError
from repro.service.pool import WorkerPool
from repro.service.protocol import (
    ERR_BAD_REQUEST,
    ERR_DRAINING,
    ERR_QUEUE_FULL,
    ERR_UNKNOWN_JOB,
    ERR_UNSUPPORTED_VERSION,
    PRIORITIES,
    CancelledResponse,
    CancelRequest,
    CellResult,
    ErrorResponse,
    HealthRequest,
    HealthResponse,
    JobDone,
    MetricsRequest,
    MetricsResponse,
    ProtocolError,
    ResultRequest,
    ResultResponse,
    StatusRequest,
    StatusResponse,
    SubmitRequest,
    SubmittedResponse,
    decode_request,
    encode_message,
)
from repro.service.scheduler import Scheduler

log = logging.getLogger("repro.service")

DEFAULT_PORT = 9417

#: Submit/result messages can carry dozens of ~1kB entries; raise the
#: stream reader's line limit well above asyncio's 64 kB default.
_LINE_LIMIT = 4 * 1024 * 1024


@dataclass
class ServiceConfig:
    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    workers: int = 2
    max_queue: int = 64
    default_timeout: float | None = None  # per-job wall clock (None = off)
    max_batch: int = 8
    cache_dir: str | None = None
    drain_timeout: float = 60.0


class Service:
    """One running batch-simulation service instance."""

    def __init__(
        self, config: ServiceConfig, registry: MetricsRegistry | None = None
    ) -> None:
        self.config = config
        self.registry = registry if registry is not None else get_registry()
        self.store = ArtifactStore(config.cache_dir)
        self.queue = JobQueue(max_depth=config.max_queue)
        self.table = JobTable()
        self.pool = WorkerPool(config.workers, str(self.store.root))
        self.scheduler = Scheduler(
            self.queue,
            self.pool,
            self.store,
            self.registry,
            default_timeout=config.default_timeout,
            max_batch=config.max_batch,
        )
        self.draining = False
        self.started_at = time.monotonic()
        self.port: int | None = None
        self.worker_pids: list[int] = []
        self._server: asyncio.base_events.Server | None = None
        self._closed = asyncio.Event()
        self._shutdown_task: asyncio.Task | None = None

    # ----------------------------------------------------------- lifecycle

    async def start(self, on_bound=None) -> None:
        # Bind (and announce) the listener *before* the slow pool warm-up:
        # wrappers parsing the "listening on" line get the real ephemeral
        # port immediately, with no race against worker spawning.  Jobs
        # admitted during the warm-up sit in the queue until the
        # scheduler starts below.
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            limit=_LINE_LIMIT,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        log.info(
            "listening on %s:%d (workers=%d, max-queue=%d)",
            self.config.host, self.port, self.config.workers,
            self.config.max_queue,
        )
        if on_bound is not None:
            on_bound(self)
        loop = asyncio.get_running_loop()
        self.worker_pids = await loop.run_in_executor(None, self.pool.warm)
        self.registry.gauge("service.workers").set(len(self.worker_pids))
        self.scheduler.start()
        self.scheduler.wake()  # anything admitted while the pool warmed

    def request_shutdown(self) -> None:
        """Signal-handler entry: start one drain-and-stop task."""
        if self._shutdown_task is None:
            self._shutdown_task = asyncio.get_running_loop().create_task(
                self.shutdown()
            )

    async def shutdown(self) -> None:
        self.draining = True
        log.info(
            "draining: %d queued, %d unfinished job(s)",
            self.queue.depth, len(self.table.unfinished()),
        )
        self.scheduler.drain()
        try:
            await asyncio.wait_for(
                self.scheduler.drained.wait(), self.config.drain_timeout
            )
        except asyncio.TimeoutError:
            log.warning(
                "drain timeout (%.0fs) expired; failing leftover jobs",
                self.config.drain_timeout,
            )
            self.scheduler.stop()
            for job in self.table.unfinished():
                job.state = jobstates.FAILED
                job.error = "service shut down before the job finished"
                job.publish(
                    JobDone(
                        job_id=job.job_id,
                        state=job.state,
                        cells_total=len(job.cells),
                        cells_cached=job.cells_cached,
                        cells_computed=job.cells_computed,
                        error=job.error,
                    )
                )
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.pool.shutdown)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._closed.set()
        log.info("shutdown complete")

    async def wait_closed(self) -> None:
        await self._closed.wait()

    # --------------------------------------------------------- connections

    async def _send(self, writer: asyncio.StreamWriter, message) -> None:
        writer.write(encode_message(message))
        await writer.drain()

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = decode_request(line)
                except ProtocolError as exc:
                    await self._send(
                        writer, ErrorResponse(code=exc.code, message=str(exc))
                    )
                    if exc.code == ERR_UNSUPPORTED_VERSION:
                        break  # cannot trust anything else this peer sends
                    continue
                if isinstance(request, SubmitRequest):
                    await self._handle_submit(request, writer)
                elif isinstance(request, StatusRequest):
                    await self._send(writer, self._status(request))
                elif isinstance(request, ResultRequest):
                    await self._send(writer, self._result(request))
                elif isinstance(request, CancelRequest):
                    await self._send(writer, self._cancel(request))
                elif isinstance(request, HealthRequest):
                    await self._send(writer, self._health())
                elif isinstance(request, MetricsRequest):
                    await self._send(writer, self._metrics())
        except (ConnectionResetError, BrokenPipeError):
            pass  # silent-ok: client went away; its job (if any) continues
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass  # silent-ok: peer already tore the socket down

    # -------------------------------------------------------------- submit

    def _admit(self, request: SubmitRequest) -> Job | ErrorResponse:
        if self.draining:
            return ErrorResponse(
                code=ERR_DRAINING, message="service is draining; resubmit later"
            )
        if not request.cells:
            return ErrorResponse(
                code=ERR_BAD_REQUEST, message="submit carries no cells"
            )
        if request.priority not in PRIORITIES:
            return ErrorResponse(
                code=ERR_BAD_REQUEST,
                message=f"unknown priority {request.priority!r} "
                f"(choose from {list(PRIORITIES)})",
            )
        try:
            cells = [self._resolve_cell(spec) for spec in request.cells]
        except (KeyError, ValueError) as exc:
            return ErrorResponse(code=ERR_BAD_REQUEST, message=str(exc))
        job = self.table.create(
            client=request.client or "anonymous",
            cells=cells,
            priority=request.priority,
            timeout=request.timeout,
        )
        try:
            self.queue.push(job)
        except QueueFullError as exc:
            self.table.discard(job.job_id)
            self.registry.counter("service.sheds").inc()
            return ErrorResponse(
                code=ERR_QUEUE_FULL,
                message=str(exc),
                queue_depth=exc.depth,
                # Deeper queue -> longer suggested backoff, capped; clients
                # (and the cluster gateway) jitter around this.
                retry_after=round(min(10.0, 0.5 + 0.05 * exc.depth), 2),
            )
        self.registry.counter("service.jobs_submitted").inc()
        self.registry.gauge("service.queue_depth").set(self.queue.depth)
        self.scheduler.wake()
        return job

    @staticmethod
    def _resolve_cell(spec):
        if getattr(spec, "kind", "experiment") == "config_fuzz":
            from repro.fuzz.campaign import ConfigPairTask

            payload = spec.payload or {}
            campaign_seed = payload.get("campaign_seed")
            index = payload.get("index")
            if not isinstance(campaign_seed, int) or not isinstance(index, int):
                raise ValueError(
                    "config_fuzz cell needs integer campaign_seed and index "
                    f"in payload, got {payload!r}"
                )
            return ConfigPairTask(campaign_seed=campaign_seed, index=index)
        if getattr(spec, "kind", "experiment") == "tune":
            from repro.tune.space import TunePoint
            from repro.workloads import get_workload

            get_workload(spec.workload)  # raises KeyError with the known set
            if not spec.payload:
                raise ValueError(
                    "tune cell needs a TunePoint payload (a missing payload "
                    "would silently run the default point)"
                )
            # from_json validates and raises ConfigError (a ValueError),
            # so malformed points bounce as bad_request at admission
            # instead of failing in a pool worker mid-sweep.
            try:
                point = TunePoint.from_json(spec.payload)
            except TypeError as exc:
                raise ValueError(f"bad tune point payload: {exc}") from exc
            return MatrixTask(
                spec.workload,
                point.experiment_config(),
                scale=spec.scale,
                seed=spec.seed,
            )
        if getattr(spec, "kind", "experiment") != "experiment":
            raise ValueError(f"unknown cell kind {spec.kind!r}")
        from repro.harness.experiment import CONFIGS
        from repro.workloads import get_workload

        get_workload(spec.workload)  # raises KeyError with the known set
        config = CONFIGS.get(spec.config)
        if config is None:
            raise ValueError(
                f"unknown config {spec.config!r}; available: {sorted(CONFIGS)}"
            )
        return MatrixTask(
            spec.workload, config, scale=spec.scale, seed=spec.seed
        )

    async def _handle_submit(
        self, request: SubmitRequest, writer: asyncio.StreamWriter
    ) -> None:
        admitted = self._admit(request)
        if isinstance(admitted, ErrorResponse):
            await self._send(writer, admitted)
            return
        job = admitted
        stream: asyncio.Queue = asyncio.Queue()
        job.subscribe(stream)
        try:
            await self._send(
                writer,
                SubmittedResponse(
                    job_id=job.job_id,
                    cells_total=len(job.cells),
                    position=max(0, self.queue.position(job.job_id)),
                ),
            )
            while True:
                message = await stream.get()
                await self._send(writer, message)
                if isinstance(message, JobDone):
                    break
        finally:
            job.unsubscribe(stream)

    # ------------------------------------------------------------- queries

    def _status(self, request: StatusRequest) -> StatusResponse | ErrorResponse:
        job = self.table.get(request.job_id)
        if job is None:
            return ErrorResponse(
                code=ERR_UNKNOWN_JOB,
                message=f"unknown job {request.job_id!r}",
                job_id=request.job_id,
            )
        return StatusResponse(
            job_id=job.job_id,
            state=job.state,
            cells_total=len(job.cells),
            cells_done=job.cells_done,
            position=self.queue.position(job.job_id),
        )

    def _result(self, request: ResultRequest) -> ResultResponse | ErrorResponse:
        job = self.table.get(request.job_id)
        if job is None:
            return ErrorResponse(
                code=ERR_UNKNOWN_JOB,
                message=f"unknown job {request.job_id!r}",
                job_id=request.job_id,
            )
        return ResultResponse(
            job_id=job.job_id, state=job.state, entries=list(job.entries)
        )

    def _cancel(self, request: CancelRequest) -> CancelledResponse | ErrorResponse:
        job = self.table.get(request.job_id)
        if job is None:
            return ErrorResponse(
                code=ERR_UNKNOWN_JOB,
                message=f"unknown job {request.job_id!r}",
                job_id=request.job_id,
            )
        if job.finished:
            return CancelledResponse(job_id=job.job_id, state=job.state)
        job.cancel_requested = True
        if self.queue.remove(job.job_id) is not None:
            # Still queued: cancellation completes right here.
            job.state = jobstates.CANCELLED
            job.finished_at = time.monotonic()
            self.registry.counter("service.jobs_cancelled").inc()
            self.registry.gauge("service.queue_depth").set(self.queue.depth)
            job.publish(
                JobDone(
                    job_id=job.job_id,
                    state=job.state,
                    cells_total=len(job.cells),
                    cells_cached=job.cells_cached,
                    cells_computed=job.cells_computed,
                )
            )
        # Running: the scheduler notices the flag between batch
        # completions and finishes the job as cancelled.
        return CancelledResponse(job_id=job.job_id, state=job.state)

    def _health(self) -> HealthResponse:
        return HealthResponse(
            ok=True,
            uptime_seconds=time.monotonic() - self.started_at,
            queue_depth=self.queue.depth,
            queue_capacity=self.queue.max_depth,
            jobs_active=len(self.table.unfinished()),
            jobs_completed=int(
                self.registry.counter("service.jobs_done").value
            ),
            workers=self.config.workers,
            draining=self.draining,
        )

    def _metrics(self) -> MetricsResponse:
        snapshot = self.registry.snapshot()
        return MetricsResponse(
            counters=snapshot["counters"],
            gauges=snapshot["gauges"],
            histograms=snapshot["histograms"],
        )


async def serve_forever(
    config: ServiceConfig, registry: MetricsRegistry | None = None
) -> Service:
    """Run a service until SIGTERM/SIGINT drains it; returns the service.

    Startup prints the bound address and warm worker pids to stderr so
    wrappers (tests, the CI smoke job) can target an ephemeral port and
    assert worker hygiene after shutdown.
    """
    service = Service(config, registry=registry)

    def announce(bound: Service) -> None:
        # Printed the moment the socket is bound (before the multi-second
        # pool warm-up), so wrappers never race the port discovery.
        print(
            f"[repro.service] listening on {config.host}:{bound.port} "
            f"(workers={config.workers}, max-queue={config.max_queue})",
            file=sys.stderr,
            flush=True,
        )

    await service.start(on_bound=announce)
    print(
        "[repro.service] worker pids: "
        + " ".join(str(pid) for pid in service.worker_pids),
        file=sys.stderr,
        flush=True,
    )
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, service.request_shutdown)
    await service.wait_closed()
    return service
