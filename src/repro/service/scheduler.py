"""Scheduler: pops jobs, batches compatible cells, drives the warm pool.

Execution order per job:

1. **store short-circuit** — every cell is probed against the artifact
   store in the server process first; hits stream back immediately and
   never touch the worker pool (a warm resubmission of a whole fig6 job
   does zero pool dispatches);
2. **batching** — remaining cells are grouped by compatibility (same
   workload, scale, and seed — i.e. same dynamic trace) into batches of
   at most ``max_batch`` cells, so one worker emulates or loads the
   trace once and simulates every configuration against it;
3. **fan-out** — batches dispatch concurrently onto the persistent
   :class:`repro.service.pool.WorkerPool`; cells stream to subscribers
   as their batch completes.

Failure handling (the failure-mode matrix in DESIGN.md §12):

* **wall-clock timeout** — the job's dispatch tasks are cancelled
  (pending pool work is revoked; if a cell was already running in a
  worker the pool is restarted so the runaway work actually stops) and
  the job is requeued once with its finished cells kept, then failed as
  ``timeout`` on the second expiry.  Timeouts land in the metrics
  events ring, so ``--emit-stats`` ledgers record them.
* **worker crash** — a dead worker breaks the whole stdlib pool; the
  pool is restarted and the in-flight batch retried once before the job
  fails.  Other batches of the same job retry independently.
* **cell bug** — a cell's own exception (:class:`MatrixTaskError`)
  fails its job immediately with the original error text; it is never
  retried (it would fail identically) and never kills the service.

Jobs run one at a time (parallelism lives *inside* a job, across its
batches); fairness between clients is the queue's pop order.
"""

from __future__ import annotations

import asyncio
import logging
import time
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool

from repro.artifacts.runner import MatrixTask, result_key
from repro.artifacts.store import ArtifactStore
from repro.metrics import MetricsRegistry
from repro.metrics.ledger import result_entry
from repro.service import jobs as jobstates
from repro.service.jobs import Job, JobQueue
from repro.service.pool import WorkerPool
from repro.service.protocol import CellResult, JobDone

log = logging.getLogger("repro.service")

#: Counters pre-touched at construction so a ``metrics`` response shows
#: every service counter (at zero) from the first request onward.
_COUNTERS = (
    "service.jobs_submitted",
    "service.jobs_done",
    "service.jobs_failed",
    "service.jobs_timeout",
    "service.jobs_cancelled",
    "service.cells_cached",
    "service.cells_computed",
    "service.batches",
    "service.sheds",
    "service.timeouts",
    "service.requeues",
    "service.retries",
    "service.worker_crashes",
    "service.worker_restarts",
)


class JobFailure(RuntimeError):
    """A job must fail (cell bug, repeated crash); the service survives."""


class _JobCancelled(Exception):
    """Internal: a running job noticed its cancel flag between batches."""


class Scheduler:
    """Single-consumer job executor over a :class:`JobQueue`."""

    def __init__(
        self,
        queue: JobQueue,
        pool: WorkerPool,
        store: ArtifactStore | None,
        registry: MetricsRegistry,
        default_timeout: float | None = None,
        max_batch: int = 8,
    ) -> None:
        self.queue = queue
        self.pool = pool
        self.store = store
        self.registry = registry
        self.default_timeout = default_timeout
        self.max_batch = max(1, max_batch)
        self._wake = asyncio.Event()
        self._draining = False
        self.drained = asyncio.Event()
        self._restart_lock = asyncio.Lock()
        self._task: asyncio.Task | None = None
        self.active_job: Job | None = None
        for name in _COUNTERS:
            registry.counter(name)

    # ----------------------------------------------------------- lifecycle

    def start(self) -> None:
        self._task = asyncio.get_running_loop().create_task(self.run())

    def wake(self) -> None:
        self._wake.set()

    def drain(self) -> None:
        """Finish everything already admitted, then stop."""
        self._draining = True
        self._wake.set()

    def stop(self) -> None:
        """Hard stop (drain-timeout expiry): abandon the run loop."""
        if self._task is not None:
            self._task.cancel()
        self.drained.set()

    async def run(self) -> None:
        while True:
            job = self.queue.pop()
            self.registry.gauge("service.queue_depth").set(self.queue.depth)
            if job is None:
                if self._draining:
                    break
                self._wake.clear()
                await self._wake.wait()
                continue
            if job.cancel_requested:
                self._finish(job, jobstates.CANCELLED)
                continue
            self.active_job = job
            try:
                await self._run_job(job)
            finally:
                self.active_job = None
        self.drained.set()

    # ----------------------------------------------------------- execution

    async def _run_job(self, job: Job) -> None:
        job.state = jobstates.RUNNING
        job.started_at = time.monotonic()
        self.registry.histogram("service.job_wait_seconds").observe(
            job.started_at - job.submitted_at
        )
        timeout = job.timeout if job.timeout is not None else self.default_timeout
        try:
            await asyncio.wait_for(self._execute(job), timeout)
        except asyncio.TimeoutError:
            self.registry.counter("service.timeouts").inc()
            self.registry.event(
                "job_timeout",
                job_id=job.job_id,
                timeout=timeout,
                retries=job.retries,
                cells_done=job.cells_done,
            )
            if job.left_running_in_worker:
                # Revoking queued pool work is free; in-flight work can
                # only be stopped by replacing the pool.
                await self._restart_pool(self.pool.generation)
            if (
                job.retries < 1
                and not job.cancel_requested
                and not self._draining
            ):
                job.retries += 1
                job.reset_for_requeue()
                self.registry.counter("service.requeues").inc()
                self.queue.push(job, force=True)
                self._wake.set()
                return
            self._finish(
                job, jobstates.TIMEOUT, error=f"timed out after {timeout:.1f}s"
            )
        except _JobCancelled:
            self._finish(job, jobstates.CANCELLED)
        except JobFailure as exc:
            self._finish(job, jobstates.FAILED, error=str(exc))
        except Exception as exc:  # a cell's own bug (e.g. MatrixTaskError)
            log.exception("job %s failed", job.job_id)
            self._finish(
                job, jobstates.FAILED, error=f"{type(exc).__name__}: {exc}"
            )
        else:
            if job.cancel_requested:
                self._finish(job, jobstates.CANCELLED)
            else:
                self._finish(job, jobstates.DONE)

    async def _execute(self, job: Job) -> None:
        self._serve_cached(job)
        batches = self._plan_batches(job)
        if not batches:
            return
        pending: set[Future] = set()
        job.left_running_in_worker = False
        tasks = [
            asyncio.ensure_future(self._dispatch(batch, pending))
            for batch in batches
        ]
        try:
            for done in asyncio.as_completed(tasks):
                outputs = await done
                for output in outputs:
                    self._deliver(job, output)
                if job.cancel_requested:
                    raise _JobCancelled()
        finally:
            # Runs on success, failure, cancel, and wait_for timeout:
            # revoke pool work that never started, note anything a worker
            # is still chewing on, and reap the dispatch tasks.
            for future in list(pending):
                if not future.cancel() and not future.done():
                    job.left_running_in_worker = True
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)

    def _serve_cached(self, job: Job) -> None:
        """Stream store hits immediately; they never touch the pool."""
        if self.store is None:
            return
        from repro.harness.experiment import ExperimentResult

        for index, task in enumerate(job.cells):
            if job.entries[index] is not None:
                continue
            if not isinstance(task, MatrixTask):
                continue  # config-fuzz cells have no store entry to probe
            key = result_key(task.workload, task.config, task.scale, task.seed)
            cached = self.store.get_result(key)
            if not isinstance(cached, ExperimentResult):
                continue
            entry = result_entry(task.workload, task.config.name, cached)
            job.entries[index] = entry
            job.cells_cached += 1
            self.registry.counter("service.cells_cached").inc()
            job.publish(
                CellResult(
                    job_id=job.job_id,
                    index=index,
                    workload=task.workload,
                    config=task.config.name,
                    cached=True,
                    seconds=0.0,
                    entry=entry,
                )
            )

    def _plan_batches(self, job: Job) -> list[list[tuple[int, MatrixTask]]]:
        """Group unfinished cells by shared trace, chunked to max_batch."""
        groups: dict[tuple, list[tuple[int, MatrixTask]]] = {}
        for index, task in enumerate(job.cells):
            if job.entries[index] is not None:
                continue
            if isinstance(task, MatrixTask):
                # Cells sharing a dynamic trace batch together.
                group = (task.workload, task.scale, task.seed)
            else:  # ConfigPairTask: campaign-mates batch together
                group = ("config_fuzz", task.campaign_seed)
            groups.setdefault(group, []).append((index, task))
        batches = []
        for cells in groups.values():
            for start in range(0, len(cells), self.max_batch):
                batch = cells[start : start + self.max_batch]
                batches.append(batch)
                self.registry.counter("service.batches").inc()
                self.registry.histogram("service.batch_size").observe(len(batch))
        return batches

    async def _dispatch(
        self, batch: list[tuple[int, MatrixTask]], pending: set[Future]
    ) -> list[dict]:
        """Run one batch on the pool, retrying once across a pool restart."""
        label = f"{getattr(batch[0][1], 'workload', 'config_fuzz')}[{len(batch)}]"
        for attempt in (1, 2):
            generation = self.pool.generation
            future = self.pool.submit_batch(batch)
            pending.add(future)
            try:
                return await asyncio.wrap_future(future)
            except BrokenProcessPool:
                self.registry.counter("service.worker_crashes").inc()
                await self._restart_pool(generation)
                if attempt == 2:
                    raise JobFailure(
                        f"worker crashed twice running batch {label}"
                    ) from None
                self.registry.counter("service.retries").inc()
                log.warning("batch %s lost to a worker crash; retrying", label)
            finally:
                pending.discard(future)
        raise AssertionError("unreachable")

    async def _restart_pool(self, generation: int) -> None:
        """Restart the pool once per observed generation (idempotent)."""
        async with self._restart_lock:
            if self.pool.generation == generation:
                self.registry.counter("service.worker_restarts").inc()
                await asyncio.get_running_loop().run_in_executor(
                    None, self.pool.restart
                )

    # ------------------------------------------------------------ delivery

    def _deliver(self, job: Job, output: dict) -> None:
        index = output["index"]
        if job.entries[index] is None:
            if output["cached"]:
                job.cells_cached += 1
                self.registry.counter("service.cells_cached").inc()
            else:
                job.cells_computed += 1
                self.registry.counter("service.cells_computed").inc()
            self.registry.histogram("service.cell_seconds").observe(
                output["seconds"]
            )
        job.entries[index] = output["entry"]
        snapshot = output.get("snapshot")
        if snapshot:
            self.registry.merge(snapshot)
        job.publish(
            CellResult(
                job_id=job.job_id,
                index=index,
                workload=output["workload"],
                config=output["config"],
                cached=output["cached"],
                seconds=output["seconds"],
                entry=output["entry"],
            )
        )

    def _finish(self, job: Job, state: str, error: str | None = None) -> None:
        job.state = state
        job.error = error
        job.finished_at = time.monotonic()
        self.registry.counter(f"service.jobs_{state}").inc()
        self.registry.histogram("service.job_service_seconds").observe(job.seconds)
        job.publish(
            JobDone(
                job_id=job.job_id,
                state=state,
                cells_total=len(job.cells),
                cells_cached=job.cells_cached,
                cells_computed=job.cells_computed,
                seconds=job.seconds,
                error=error,
            )
        )
