"""Blocking JSON-lines client for the batch simulation service.

Deliberately tiny and synchronous — the ``submit`` subcommand, the CI
smoke job, and scripts just want "send cells, iterate results".  Each
call opens its own connection (the protocol is stateless per request;
``submit`` keeps its connection open only for the duration of the
stream), so one :class:`Client` can be shared freely.
"""

from __future__ import annotations

import os
import socket
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.service.protocol import (
    CancelledResponse,
    CancelRequest,
    CellResult,
    CellSpec,
    ErrorResponse,
    HealthRequest,
    HealthResponse,
    JobDone,
    MetricsRequest,
    MetricsResponse,
    ProtocolError,
    ResultRequest,
    ResultResponse,
    StatusRequest,
    StatusResponse,
    SubmitRequest,
    SubmittedResponse,
    decode_response,
    encode_message,
)

DEFAULT_PORT = 9417


class ServiceError(RuntimeError):
    """A structured error answer (or transport/protocol failure)."""

    def __init__(self, code: str, message: str, queue_depth: int | None = None):
        self.code = code
        self.queue_depth = queue_depth
        super().__init__(f"{code}: {message}")


@dataclass
class JobOutcome:
    """Everything a finished ``submit`` produced."""

    job_id: str
    state: str  # done | failed | timeout | cancelled
    entries: list = field(default_factory=list)  # index-ordered result entries
    cells_cached: int = 0
    cells_computed: int = 0
    seconds: float = 0.0
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.state == "done"


def default_client_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


class Client:
    """Blocking client; ``timeout`` bounds connect and per-line reads."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: float | None = None,
        client_id: str | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.client_id = client_id or default_client_id()

    # ------------------------------------------------------------ plumbing

    def _connect(self) -> socket.socket:
        try:
            return socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        except OSError as exc:
            raise ServiceError(
                "unreachable", f"cannot connect to {self.host}:{self.port}: {exc}"
            ) from exc

    @staticmethod
    def _read_message(stream):
        line = stream.readline()
        if not line:
            raise ServiceError("disconnected", "server closed the connection")
        try:
            message = decode_response(line)
        except ProtocolError as exc:
            raise ServiceError(exc.code, str(exc)) from exc
        if isinstance(message, ErrorResponse):
            raise ServiceError(
                message.code, message.message, queue_depth=message.queue_depth
            )
        return message

    def request(self, message):
        """One request, one response, one connection."""
        with self._connect() as sock:
            with sock.makefile("rwb") as stream:
                stream.write(encode_message(message))
                stream.flush()
                return self._read_message(stream)

    # ------------------------------------------------------------- queries

    def health(self) -> HealthResponse:
        return self.request(HealthRequest())

    def metrics(self) -> MetricsResponse:
        return self.request(MetricsRequest())

    def status(self, job_id: str) -> StatusResponse:
        return self.request(StatusRequest(job_id=job_id))

    def result(self, job_id: str) -> ResultResponse:
        return self.request(ResultRequest(job_id=job_id))

    def cancel(self, job_id: str) -> CancelledResponse:
        return self.request(CancelRequest(job_id=job_id))

    # -------------------------------------------------------------- submit

    def submit(
        self,
        cells: Iterable[CellSpec],
        priority: str = "batch",
        timeout: float | None = None,
        on_cell: Callable[[CellResult], None] | None = None,
    ) -> JobOutcome:
        """Submit one job and block until it finishes.

        ``on_cell`` fires for every streamed cell as it arrives (the
        CLI uses it to print results incrementally); the returned
        :class:`JobOutcome` has the complete index-ordered entries.
        Raises :class:`ServiceError` on structured rejections
        (``queue_full``, ``draining``, ``bad_request``, ...); a job that
        *ran* but did not finish cleanly comes back as an outcome with
        ``state`` set to ``failed``/``timeout``/``cancelled``.
        """
        request = SubmitRequest(
            cells=list(cells),
            priority=priority,
            timeout=timeout,
            client=self.client_id,
        )
        with self._connect() as sock:
            with sock.makefile("rwb") as stream:
                stream.write(encode_message(request))
                stream.flush()
                submitted = self._read_message(stream)
                if not isinstance(submitted, SubmittedResponse):
                    raise ServiceError(
                        "protocol",
                        f"expected 'submitted', got {submitted.TYPE!r}",
                    )
                entries: list = [None] * submitted.cells_total
                while True:
                    message = self._read_message(stream)
                    if isinstance(message, CellResult):
                        if 0 <= message.index < len(entries):
                            entries[message.index] = message.entry
                        if on_cell is not None:
                            on_cell(message)
                    elif isinstance(message, JobDone):
                        return JobOutcome(
                            job_id=message.job_id,
                            state=message.state,
                            entries=entries,
                            cells_cached=message.cells_cached,
                            cells_computed=message.cells_computed,
                            seconds=message.seconds,
                            error=message.error,
                        )
