"""Blocking JSON-lines client for the batch simulation service.

Deliberately tiny and synchronous — the ``submit`` subcommand, the CI
smoke job, and scripts just want "send cells, iterate results".  Each
call opens its own connection (the protocol is stateless per request;
``submit`` keeps its connection open only for the duration of the
stream), so one :class:`Client` can be shared freely.

Idempotent queries (``health``/``status``/``metrics``/``result``)
transparently retry transport failures — connection refused/reset and
mid-read disconnects — with jittered exponential backoff, because
against a cluster those are routine (a gateway restarting, a node
rolling).  ``submit`` and ``cancel`` never auto-retry: resubmitting a
job is a policy decision the caller owns.  A ``queue_full`` shed
surfaces as the typed :class:`ServiceShed` carrying the server's
``retry_after`` hint, so callers back off instead of crashing or
hammering.
"""

from __future__ import annotations

import os
import random
import socket
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.service.protocol import (
    CancelledResponse,
    CancelRequest,
    CellResult,
    CellSpec,
    ErrorResponse,
    HealthRequest,
    HealthResponse,
    JobDone,
    MetricsRequest,
    MetricsResponse,
    ProtocolError,
    ResultRequest,
    ResultResponse,
    StatusRequest,
    StatusResponse,
    SubmitRequest,
    SubmittedResponse,
    decode_response,
    encode_message,
)

DEFAULT_PORT = 9417


class ServiceError(RuntimeError):
    """A structured error answer (or transport/protocol failure)."""

    def __init__(self, code: str, message: str, queue_depth: int | None = None):
        self.code = code
        self.queue_depth = queue_depth
        super().__init__(f"{code}: {message}")


class ServiceShed(ServiceError):
    """The server shed the request (``queue_full``); back off and retry.

    ``retry_after`` is the server's suggested delay in seconds (it
    scales with queue depth); defaults to 1.0 when the server predates
    the hint.
    """

    def __init__(
        self,
        message: str,
        queue_depth: int | None = None,
        retry_after: float | None = None,
    ):
        super().__init__("queue_full", message, queue_depth=queue_depth)
        self.retry_after = retry_after if retry_after is not None else 1.0


#: Error codes that mean "the request never reached a healthy server" —
#: safe to retry for idempotent requests.
TRANSIENT_CODES = ("unreachable", "disconnected")

#: Seam for tests (monkeypatched to collect delays instead of sleeping).
_sleep = time.sleep


def _backoff_delay(attempt: int, base: float, cap: float) -> float:
    """Jittered exponential backoff: base * 2^attempt, capped, ±50%."""
    return min(cap, base * (2.0**attempt)) * (0.5 + random.random() / 2.0)


@dataclass
class JobOutcome:
    """Everything a finished ``submit`` produced."""

    job_id: str
    state: str  # done | failed | timeout | cancelled
    entries: list = field(default_factory=list)  # index-ordered result entries
    cells_cached: int = 0
    cells_computed: int = 0
    seconds: float = 0.0
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.state == "done"


def default_client_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


class Client:
    """Blocking client; ``timeout`` bounds connect and per-line reads."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: float | None = None,
        client_id: str | None = None,
        retries: int = 3,
        retry_base: float = 0.1,
        retry_cap: float = 2.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.client_id = client_id or default_client_id()
        self.retries = max(0, retries)
        self.retry_base = retry_base
        self.retry_cap = retry_cap

    # ------------------------------------------------------------ plumbing

    def _connect(self) -> socket.socket:
        try:
            return socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        except OSError as exc:
            raise ServiceError(
                "unreachable", f"cannot connect to {self.host}:{self.port}: {exc}"
            ) from exc

    @staticmethod
    def _read_message(stream):
        line = stream.readline()
        if not line:
            raise ServiceError("disconnected", "server closed the connection")
        try:
            message = decode_response(line)
        except ProtocolError as exc:
            raise ServiceError(exc.code, str(exc)) from exc
        if isinstance(message, ErrorResponse):
            if message.code == "queue_full":
                raise ServiceShed(
                    message.message,
                    queue_depth=message.queue_depth,
                    retry_after=message.retry_after,
                )
            raise ServiceError(
                message.code, message.message, queue_depth=message.queue_depth
            )
        return message

    def request(self, message):
        """One request, one response, one connection."""
        try:
            with self._connect() as sock:
                with sock.makefile("rwb") as stream:
                    stream.write(encode_message(message))
                    stream.flush()
                    return self._read_message(stream)
        except ServiceError:
            raise
        except OSError as exc:
            # Reset/timeout mid-request; same retry class as an EOF.
            raise ServiceError(
                "disconnected", f"connection to {self.host}:{self.port} "
                f"failed mid-request: {exc}"
            ) from exc

    def _request_idempotent(self, message):
        """Retry transient transport failures with jittered backoff.

        Only for requests that are safe to repeat — re-asking for
        health/status/metrics/result cannot double-run work.
        """
        for attempt in range(self.retries + 1):
            try:
                return self.request(message)
            except ServiceError as exc:
                if exc.code not in TRANSIENT_CODES or attempt == self.retries:
                    raise
                _sleep(_backoff_delay(attempt, self.retry_base, self.retry_cap))
        raise AssertionError("unreachable")

    # ------------------------------------------------------------- queries

    def health(self) -> HealthResponse:
        return self._request_idempotent(HealthRequest())

    def metrics(self) -> MetricsResponse:
        return self._request_idempotent(MetricsRequest())

    def status(self, job_id: str) -> StatusResponse:
        return self._request_idempotent(StatusRequest(job_id=job_id))

    def result(self, job_id: str) -> ResultResponse:
        return self._request_idempotent(ResultRequest(job_id=job_id))

    def cancel(self, job_id: str) -> CancelledResponse:
        return self.request(CancelRequest(job_id=job_id))

    # -------------------------------------------------------------- submit

    def submit(
        self,
        cells: Iterable[CellSpec],
        priority: str = "batch",
        timeout: float | None = None,
        on_cell: Callable[[CellResult], None] | None = None,
    ) -> JobOutcome:
        """Submit one job and block until it finishes.

        ``on_cell`` fires for every streamed cell as it arrives (the
        CLI uses it to print results incrementally); the returned
        :class:`JobOutcome` has the complete index-ordered entries.
        Raises :class:`ServiceError` on structured rejections
        (``queue_full``, ``draining``, ``bad_request``, ...); a job that
        *ran* but did not finish cleanly comes back as an outcome with
        ``state`` set to ``failed``/``timeout``/``cancelled``.
        """
        request = SubmitRequest(
            cells=list(cells),
            priority=priority,
            timeout=timeout,
            client=self.client_id,
        )
        try:
            with self._connect() as sock:
                with sock.makefile("rwb") as stream:
                    stream.write(encode_message(request))
                    stream.flush()
                    submitted = self._read_message(stream)
                    if not isinstance(submitted, SubmittedResponse):
                        raise ServiceError(
                            "protocol",
                            f"expected 'submitted', got {submitted.TYPE!r}",
                        )
                    entries: list = [None] * submitted.cells_total
                    while True:
                        message = self._read_message(stream)
                        if isinstance(message, CellResult):
                            if 0 <= message.index < len(entries):
                                entries[message.index] = message.entry
                            if on_cell is not None:
                                on_cell(message)
                        elif isinstance(message, JobDone):
                            return JobOutcome(
                                job_id=message.job_id,
                                state=message.state,
                                entries=entries,
                                cells_cached=message.cells_cached,
                                cells_computed=message.cells_computed,
                                seconds=message.seconds,
                                error=message.error,
                            )
        except ServiceError:
            raise
        except OSError as exc:
            # Never auto-retried: the job may already be running.
            raise ServiceError(
                "disconnected",
                f"submit stream to {self.host}:{self.port} broke: {exc}",
            ) from exc
