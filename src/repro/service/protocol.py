"""Versioned JSON-lines wire protocol for the batch simulation service.

One message per line, UTF-8 JSON, newline-terminated.  Every message
carries ``{"v": <protocol version>, "type": <wire name>, ...fields}``;
the remaining keys map 1:1 onto the dataclass fields below.  Unknown
*versions* and unknown *types* are rejected with
:class:`ProtocolError` (the server answers with a structured ``error``
message); unknown *fields* are ignored, so a v1 peer survives additive
growth within the version.

Request types:  ``submit`` ``status`` ``result`` ``cancel`` ``health``
``metrics``.  Response types: ``submitted`` ``cell`` ``done``
``status`` ``result`` ``cancelled`` ``health`` ``metrics`` ``error``.

A ``submit`` is answered by one ``submitted``, then a stream of
``cell`` messages as cells finish (a 14-workload fig6 job streams 14
batches incrementally, not one blob at the end), then one ``done``.
The ``entry`` payload of a ``cell`` is
:func:`repro.metrics.ledger.result_entry` — the same canonical
per-cell serialization the run ledger uses — so a served cell is
byte-comparable (``json.dumps(entry, sort_keys=True)``) to one
computed locally.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field

#: Bump on any incompatible wire change; old peers are rejected with a
#: structured ``unsupported_version`` error naming the supported set.
PROTOCOL_VERSION = 1
SUPPORTED_VERSIONS = (1,)

#: Priority classes, highest first (queue pops interactive before batch).
PRIORITIES = ("interactive", "batch")

#: Structured error codes the server can answer with.
ERR_UNSUPPORTED_VERSION = "unsupported_version"
ERR_MALFORMED = "malformed"
ERR_UNKNOWN_TYPE = "unknown_type"
ERR_BAD_REQUEST = "bad_request"
ERR_QUEUE_FULL = "queue_full"
ERR_DRAINING = "draining"
ERR_UNKNOWN_JOB = "unknown_job"
ERR_INTERNAL = "internal"


class ProtocolError(ValueError):
    """A message that cannot be decoded (or must be rejected)."""

    def __init__(self, code: str, message: str) -> None:
        self.code = code
        super().__init__(message)


@dataclass(frozen=True)
class CellSpec:
    """One requested (workload, configuration) cell.

    ``config`` is a name from :data:`repro.harness.experiment.CONFIGS`;
    v1 of the protocol does not ship arbitrary configurations over the
    wire.

    ``kind`` selects the cell family.  The default ``"experiment"`` is
    the original (workload, config) matrix cell.  ``"config_fuzz"``
    cells carry ``{"campaign_seed": int, "index": int}`` in ``payload``
    and the server re-derives the (program, config) pair from those
    seeds — deterministic regeneration instead of shipping arbitrary
    configurations, which keeps v1's frozen config vocabulary intact.
    ``"tune"`` cells carry a :meth:`repro.tune.space.TunePoint.to_json`
    dict in ``payload`` and ``config`` holds the point's deterministic
    label; the server lowers the payload onto the same ``MatrixTask``
    a local sweep builds, so served entries match local ones byte for
    byte.  Old servers reject unknown kinds with ``bad_request``; old
    clients never send them (additive evolution within v1).
    """

    workload: str
    config: str
    scale: int | None = None
    seed: int = 1
    kind: str = "experiment"
    payload: dict | None = None

    def __post_init__(self) -> None:
        # dict payloads are unhashable; freeze the dataclass contract by
        # normalizing the empty payload so equality stays value-based.
        if self.payload is not None and not isinstance(self.payload, dict):
            raise TypeError(
                f"payload must be a dict or None, got {type(self.payload).__name__}"
            )


# ---------------------------------------------------------------- requests


@dataclass(frozen=True)
class SubmitRequest:
    TYPE = "submit"
    cells: list[CellSpec] = field(default_factory=list)
    priority: str = "batch"
    timeout: float | None = None
    client: str = ""


@dataclass(frozen=True)
class StatusRequest:
    TYPE = "status"
    job_id: str = ""


@dataclass(frozen=True)
class ResultRequest:
    TYPE = "result"
    job_id: str = ""


@dataclass(frozen=True)
class CancelRequest:
    TYPE = "cancel"
    job_id: str = ""


@dataclass(frozen=True)
class HealthRequest:
    TYPE = "health"


@dataclass(frozen=True)
class MetricsRequest:
    TYPE = "metrics"


# --------------------------------------------------------------- responses


@dataclass(frozen=True)
class SubmittedResponse:
    TYPE = "submitted"
    job_id: str = ""
    cells_total: int = 0
    position: int = 0  # queue position at submit time (0 = next)


@dataclass(frozen=True)
class CellResult:
    """One finished cell, streamed as soon as its batch completes."""

    TYPE = "cell"
    job_id: str = ""
    index: int = 0
    workload: str = ""
    config: str = ""
    cached: bool = False
    seconds: float = 0.0
    entry: dict = field(default_factory=dict)


@dataclass(frozen=True)
class JobDone:
    TYPE = "done"
    job_id: str = ""
    state: str = ""  # done | failed | timeout | cancelled
    cells_total: int = 0
    cells_cached: int = 0
    cells_computed: int = 0
    seconds: float = 0.0
    error: str | None = None


@dataclass(frozen=True)
class StatusResponse:
    TYPE = "status"
    job_id: str = ""
    state: str = ""
    cells_total: int = 0
    cells_done: int = 0
    position: int = -1  # -1 = not queued (running or finished)


@dataclass(frozen=True)
class ResultResponse:
    TYPE = "result"
    job_id: str = ""
    state: str = ""
    entries: list = field(default_factory=list)  # index-ordered; None gaps


@dataclass(frozen=True)
class CancelledResponse:
    TYPE = "cancelled"
    job_id: str = ""
    state: str = ""


@dataclass(frozen=True)
class HealthResponse:
    TYPE = "health"
    ok: bool = True
    uptime_seconds: float = 0.0
    queue_depth: int = 0
    queue_capacity: int = 0
    jobs_active: int = 0
    jobs_completed: int = 0
    workers: int = 0
    draining: bool = False


@dataclass(frozen=True)
class MetricsResponse:
    """A :meth:`MetricsRegistry.snapshot` minus the event ring."""

    TYPE = "metrics"
    counters: dict = field(default_factory=dict)
    gauges: dict = field(default_factory=dict)
    histograms: dict = field(default_factory=dict)


@dataclass(frozen=True)
class ErrorResponse:
    TYPE = "error"
    code: str = ERR_INTERNAL
    message: str = ""
    job_id: str | None = None
    queue_depth: int | None = None  # populated on queue_full sheds
    #: Seconds the client should wait before retrying (queue_full only).
    retry_after: float | None = None


REQUEST_TYPES = {
    cls.TYPE: cls
    for cls in (
        SubmitRequest,
        StatusRequest,
        ResultRequest,
        CancelRequest,
        HealthRequest,
        MetricsRequest,
    )
}

RESPONSE_TYPES = {
    cls.TYPE: cls
    for cls in (
        SubmittedResponse,
        CellResult,
        JobDone,
        StatusResponse,
        ResultResponse,
        CancelledResponse,
        HealthResponse,
        MetricsResponse,
        ErrorResponse,
    )
}


# ------------------------------------------------------------ encode/decode


def encode_message(message) -> bytes:
    """Serialize one dataclass message to a newline-terminated JSON line."""
    payload = {"v": PROTOCOL_VERSION, "type": message.TYPE}
    for f in dataclasses.fields(message):
        value = getattr(message, f.name)
        if isinstance(value, list):
            value = [
                dataclasses.asdict(item) if dataclasses.is_dataclass(item) else item
                for item in value
            ]
        payload[f.name] = value
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


def _decode(line: bytes | str, types: dict[str, type]):
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        payload = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(ERR_MALFORMED, f"not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(ERR_MALFORMED, "message must be a JSON object")
    version = payload.get("v")
    if version not in SUPPORTED_VERSIONS:
        raise ProtocolError(
            ERR_UNSUPPORTED_VERSION,
            f"protocol version {version!r} not supported "
            f"(supported: {list(SUPPORTED_VERSIONS)})",
        )
    type_name = payload.get("type")
    cls = types.get(type_name)
    if cls is None:
        raise ProtocolError(ERR_UNKNOWN_TYPE, f"unknown message type {type_name!r}")
    known = {f.name: f for f in dataclasses.fields(cls)}
    kwargs = {}
    for name, f in known.items():
        if name not in payload:
            continue  # field defaults cover additive evolution
        value = payload[name]
        if cls is SubmitRequest and name == "cells":
            if not isinstance(value, list):
                raise ProtocolError(ERR_MALFORMED, "cells must be a list")
            try:
                value = [CellSpec(**cell) for cell in value]
            except TypeError as exc:
                raise ProtocolError(ERR_MALFORMED, f"bad cell spec: {exc}") from exc
        kwargs[name] = value
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise ProtocolError(ERR_MALFORMED, f"bad {type_name} message: {exc}") from exc


def decode_request(line: bytes | str):
    """Decode one client→server line; raises :class:`ProtocolError`."""
    return _decode(line, REQUEST_TYPES)


def decode_response(line: bytes | str):
    """Decode one server→client line; raises :class:`ProtocolError`."""
    return _decode(line, RESPONSE_TYPES)
