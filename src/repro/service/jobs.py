"""Jobs, the bounded fair-share job queue, and the job table.

The queue is the service's backpressure boundary: depth is bounded and
a push over the bound raises :class:`QueueFullError` — the server turns
that into a structured ``queue_full`` error and the client decides
whether to retry, rather than the server buffering unboundedly until
memory dies.  (uops.info's measurement service takes the same stance:
admission is cheap, execution is the scarce resource.)

Scheduling policy, in order:

1. **priority class** — every ``interactive`` job pops before any
   ``batch`` job (:data:`repro.service.protocol.PRIORITIES`);
2. **per-client fairness** — within a class, clients are served
   round-robin, so one client queueing 50 jobs cannot starve a client
   queueing 1;
3. **FIFO** — within one client's jobs.

The queue is a plain data structure (no locks): the service drives it
from a single asyncio event loop, and the unit tests drive it directly.
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from dataclasses import dataclass, field

from repro.artifacts.runner import MatrixTask
from repro.service.protocol import PRIORITIES

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
TIMEOUT = "timeout"
CANCELLED = "cancelled"

FINISHED_STATES = (DONE, FAILED, TIMEOUT, CANCELLED)


class QueueFullError(RuntimeError):
    """The bounded queue refused a push (shed, not buffered)."""

    def __init__(self, depth: int, max_depth: int) -> None:
        self.depth = depth
        self.max_depth = max_depth
        super().__init__(f"queue full ({depth}/{max_depth} jobs)")


@dataclass
class Job:
    """One submitted batch of cells and everything known about it."""

    job_id: str
    client: str
    cells: list[MatrixTask]
    priority: str = "batch"
    timeout: float | None = None
    state: str = QUEUED
    submitted_at: float = field(default_factory=time.monotonic)
    started_at: float = 0.0
    finished_at: float = 0.0
    retries: int = 0
    cancel_requested: bool = False
    #: Set when a timeout abandoned a cell a worker was still running
    #: (the scheduler restarts the pool to actually stop that work).
    left_running_in_worker: bool = False
    error: str | None = None
    #: Per-cell result entries, index-aligned with ``cells`` (None = pending).
    entries: list = field(default_factory=list)
    cells_cached: int = 0
    cells_computed: int = 0
    #: Live asyncio.Queue per streaming subscriber (submit connections).
    subscribers: list = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.entries:
            self.entries = [None] * len(self.cells)

    @property
    def cells_done(self) -> int:
        return sum(1 for entry in self.entries if entry is not None)

    @property
    def finished(self) -> bool:
        return self.state in FINISHED_STATES

    @property
    def seconds(self) -> float:
        if not self.started_at:
            return 0.0
        end = self.finished_at or time.monotonic()
        return end - self.started_at

    def publish(self, message) -> None:
        """Push one protocol message to every streaming subscriber."""
        for queue in list(self.subscribers):
            queue.put_nowait(message)

    def subscribe(self, queue) -> None:
        self.subscribers.append(queue)

    def unsubscribe(self, queue) -> None:
        if queue in self.subscribers:
            self.subscribers.remove(queue)

    def reset_for_requeue(self) -> None:
        """Back to the queue after a timeout: keep finished entries.

        Cells that completed before the timeout stay filled (their
        results are in the artifact store anyway); the retry run
        re-probes the store and only recomputes what's missing.
        """
        self.state = QUEUED
        self.started_at = 0.0
        self.finished_at = 0.0


class JobQueue:
    """Bounded, priority-classed, per-client fair job queue."""

    def __init__(self, max_depth: int = 64) -> None:
        self.max_depth = max_depth
        #: priority -> client -> FIFO of jobs
        self._queues: dict[str, dict[str, deque[Job]]] = {
            priority: {} for priority in PRIORITIES
        }
        #: priority -> round-robin order of client ids
        self._rr: dict[str, deque[str]] = {priority: deque() for priority in PRIORITIES}
        self._depth = 0

    def __len__(self) -> int:
        return self._depth

    @property
    def depth(self) -> int:
        return self._depth

    def push(self, job: Job, force: bool = False) -> None:
        """Enqueue one job; raise :class:`QueueFullError` when at depth.

        ``force`` bypasses the bound — used only for requeue-after-
        timeout, where the job was already admitted once and shedding it
        now would turn backpressure into data loss.
        """
        if job.priority not in self._queues:
            raise ValueError(f"unknown priority {job.priority!r}")
        if not force and self._depth >= self.max_depth:
            raise QueueFullError(self._depth, self.max_depth)
        per_client = self._queues[job.priority]
        if job.client not in per_client:
            per_client[job.client] = deque()
            self._rr[job.priority].append(job.client)
        per_client[job.client].append(job)
        self._depth += 1

    def pop(self) -> Job | None:
        """Next job per (priority class, client round-robin, FIFO)."""
        for priority in PRIORITIES:
            rr = self._rr[priority]
            per_client = self._queues[priority]
            for _ in range(len(rr)):
                client = rr[0]
                rr.rotate(-1)  # served (or empty) clients go to the back
                queue = per_client.get(client)
                if queue:
                    job = queue.popleft()
                    self._depth -= 1
                    return job
        return None

    def remove(self, job_id: str) -> Job | None:
        """Drop one queued job (cancellation); None if not queued."""
        for per_client in self._queues.values():
            for queue in per_client.values():
                for job in queue:
                    if job.job_id == job_id:
                        queue.remove(job)
                        self._depth -= 1
                        return job
        return None

    def position(self, job_id: str) -> int:
        """0-based pop-order position of a queued job, or -1.

        Approximate under fairness (the true pop order depends on
        arrival interleaving), but exact for priority boundaries: an
        interactive job always reports ahead of every batch job.
        """
        index = 0
        for priority in PRIORITIES:
            queues = [q for q in self._queues[priority].values() if q]
            for rank in itertools.count():
                layer = [q[rank] for q in queues if rank < len(q)]
                if not layer:
                    break
                for job in layer:
                    if job.job_id == job_id:
                        return index
                    index += 1
        return -1


class JobTable:
    """Every job the service has seen this process, by id."""

    def __init__(self) -> None:
        self._jobs: dict[str, Job] = {}
        self._counter = itertools.count(1)

    def create(
        self,
        client: str,
        cells: list[MatrixTask],
        priority: str = "batch",
        timeout: float | None = None,
    ) -> Job:
        job_id = f"job-{next(self._counter)}"
        job = self._jobs[job_id] = Job(
            job_id=job_id,
            client=client,
            cells=cells,
            priority=priority,
            timeout=timeout,
        )
        return job

    def get(self, job_id: str) -> Job | None:
        return self._jobs.get(job_id)

    def discard(self, job_id: str) -> None:
        """Forget a job that was shed before it was ever queued."""
        self._jobs.pop(job_id, None)

    def unfinished(self) -> list[Job]:
        return [job for job in self._jobs.values() if not job.finished]

    def __len__(self) -> int:
        return len(self._jobs)
