"""Async batch simulation service: job queue, warm workers, streaming.

The serving-shaped layer on top of the experiment matrix: a long-lived
asyncio JSON-lines-over-TCP service (stdlib only) that amortizes the
per-process warm-up — imports, workload registration, the artifact
store, schedule-template caches — across every job it serves.

Pieces:

* :mod:`repro.service.protocol` — versioned wire messages;
* :mod:`repro.service.jobs` — jobs, the bounded fair-share queue;
* :mod:`repro.service.pool` — persistent warm worker pool;
* :mod:`repro.service.scheduler` — batching, dispatch, timeouts, retries;
* :mod:`repro.service.server` — the asyncio front end and lifecycle;
* :mod:`repro.service.client` — the blocking client used by ``submit``.

Entry points: ``python -m repro.harness serve`` / ``submit``.
"""

from repro.service.client import Client, JobOutcome, ServiceError
from repro.service.jobs import Job, JobQueue, JobTable, QueueFullError
from repro.service.pool import WorkerPool
from repro.service.protocol import PROTOCOL_VERSION, CellSpec, ProtocolError
from repro.service.scheduler import Scheduler
from repro.service.server import (
    DEFAULT_PORT,
    Service,
    ServiceConfig,
    serve_forever,
)

__all__ = [
    "Client",
    "CellSpec",
    "DEFAULT_PORT",
    "Job",
    "JobOutcome",
    "JobQueue",
    "JobTable",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "QueueFullError",
    "Scheduler",
    "Service",
    "ServiceConfig",
    "ServiceError",
    "WorkerPool",
    "serve_forever",
]
