"""Persistent pool of warm simulation workers.

The whole point of a long-lived service is that the expensive per-
process warm-up — importing the simulator, registering the 14
workloads, opening the artifact store, building
``Frame.sched_template`` caches — happens once per worker, not once per
request.  Each worker is initialized with :func:`_init_worker` (which
pre-imports everything a cell touches) and then serves batches for its
whole lifetime; the in-worker trace memo and schedule-template caches
(:data:`repro.artifacts.runner._TRACE_MEMO`) stay hot across jobs.

Crash isolation: a worker that dies (OOM kill, segfault in a bad
experiment) breaks the whole stdlib :class:`ProcessPoolExecutor`; the
scheduler calls :meth:`WorkerPool.restart` to stand up a fresh pool and
retries the in-flight batch once before failing its job.
"""

from __future__ import annotations

import logging
import os
import time
from concurrent.futures import Future, ProcessPoolExecutor

from repro.artifacts.runner import MatrixTask, resolve_worker_store, run_cell
from repro.metrics.ledger import result_entry

log = logging.getLogger("repro.service")


def _init_worker(store_root: str | None) -> None:
    """Warm one worker: import the world, open the store.

    Runs once per worker process.  After this, the first real cell pays
    no import cost and the store is already resolved.
    """
    from repro.harness import experiment  # noqa: F401  (pulls the simulator)
    from repro.workloads import all_workloads

    all_workloads()  # force workload registration
    resolve_worker_store(store_root)


def _warmup() -> int:
    """No-op task used to force worker spawn; returns the worker pid."""
    return os.getpid()


def run_batch(payload: tuple[str | None, list[tuple[int, MatrixTask]]]) -> list[dict]:
    """Worker-side body: run one batch of compatible cells.

    A batch shares one workload (same trace), so after the first cell
    the in-process trace memo serves the rest without touching the
    store.  Each output carries the canonical ledger ``entry`` (built
    worker-side so the parent never unpickles an
    :class:`ExperimentResult` it doesn't need) plus telemetry and the
    cell's metrics snapshot for deterministic merging in the parent.
    """
    store_root, cells = payload
    outputs = []
    for index, task in cells:
        if isinstance(task, MatrixTask):
            result, telemetry, snapshot = run_cell(task, store_root)
            outputs.append(
                {
                    "index": index,
                    "workload": task.workload,
                    "config": task.config.name,
                    "entry": result_entry(task.workload, task.config.name, result),
                    "cached": telemetry.result_cache_hit,
                    "emulated": telemetry.emulated,
                    "seconds": telemetry.seconds,
                    "pid": os.getpid(),
                    "snapshot": snapshot,
                }
            )
        else:  # ConfigPairTask: regenerate the pair from its seeds
            from repro.fuzz.campaign import config_pair_summary
            from repro.metrics import MetricsRegistry

            registry = MetricsRegistry()
            start = time.perf_counter()
            summary = config_pair_summary(
                task.campaign_seed, task.index, metrics=registry
            )
            outputs.append(
                {
                    "index": index,
                    "workload": f"configfuzz-{task.campaign_seed}",
                    "config": f"pair-{task.index}",
                    "entry": summary,
                    "cached": False,
                    "emulated": True,
                    "seconds": time.perf_counter() - start,
                    "pid": os.getpid(),
                    "snapshot": registry.snapshot(),
                }
            )
    return outputs


class WorkerPool:
    """A restartable :class:`ProcessPoolExecutor` of warm workers."""

    def __init__(self, workers: int = 2, store_root: str | None = None) -> None:
        self.workers = max(1, workers)
        self.store_root = store_root
        self._executor: ProcessPoolExecutor | None = None
        self.generation = 0
        self.restarts = 0

    def start(self) -> None:
        if self._executor is not None:
            return
        self._executor = ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_init_worker,
            initargs=(self.store_root,),
        )
        self.generation += 1

    def warm(self) -> list[int]:
        """Spawn every worker now (stdlib pools spawn lazily) and return pids.

        Called once at service startup so the first job is served by
        already-imported workers, and by tests that assert drain leaves
        no orphaned processes.
        """
        self.start()
        assert self._executor is not None
        futures = [self._executor.submit(_warmup) for _ in range(self.workers)]
        for future in futures:
            future.result()
        # One fast worker can serve several warmup tasks; the executor's
        # process table is the authoritative pid list.
        return self.worker_pids()

    def submit_batch(
        self, batch: list[tuple[int, MatrixTask]]
    ) -> Future:
        """Dispatch one batch; the future resolves to ``run_batch``'s list."""
        self.start()
        assert self._executor is not None
        return self._executor.submit(run_batch, (self.store_root, batch))

    def restart(self) -> None:
        """Tear down a broken pool and stand up a fresh one."""
        old = self._executor
        self._executor = None
        if old is not None:
            old.shutdown(wait=False, cancel_futures=True)
        self.restarts += 1
        log.warning("worker pool restarting (restart #%d)", self.restarts)
        self.start()

    def worker_pids(self) -> list[int]:
        """Pids of currently live workers (empty before first spawn)."""
        if self._executor is None:
            return []
        processes = getattr(self._executor, "_processes", None) or {}
        return sorted(processes.keys())

    def shutdown(self, wait: bool = True) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=wait, cancel_futures=True)
            self._executor = None
