"""twolf analogue: placement cost updates over cell structs.

Struct-field read-modify-write loops (16-byte cells) with a semi-biased
absolute-value branch and occasional field swaps — moderate everything,
like the paper's 13% gain.
"""

from __future__ import annotations

import random

from repro.workloads.base import DATA_BASE, Workload, data_words, register
from repro.x86.assembler import Assembler, Program, mem
from repro.x86.instructions import Cond, Imm
from repro.x86.registers import Reg

CELLS = DATA_BASE  # 16-byte structs: x, y, cost, flags
PERM = DATA_BASE + 0x4000


def build(scale: int, seed: int) -> Program:
    rng = random.Random(seed)
    cell_count = 256
    cells: list[int] = []
    for _ in range(cell_count):
        cells.extend(
            (rng.randrange(0, 4096), rng.randrange(0, 4096), 0, rng.getrandbits(8))
        )
    perm = list(range(cell_count))
    rng.shuffle(perm)

    asm = Assembler()
    asm.data_words(CELLS, cells)
    asm.data_words(PERM, perm)

    iterations = 800 * scale
    asm.mov(Reg.ECX, Imm(iterations))
    asm.xor(Reg.EDI, Reg.EDI)

    asm.label("loop")
    # j = perm[i]; dx = |x[i] - x[j]|; cost[i] += dist(dx, y[i])
    asm.mov(Reg.EDX, mem(index=Reg.EDI, scale=4, disp=PERM))
    asm.shl(Reg.EDX, Imm(4))  # byte offset of cell j
    asm.mov(Reg.ESI, Reg.EDI)
    asm.shl(Reg.ESI, Imm(4))  # byte offset of cell i
    asm.mov(Reg.EAX, mem(Reg.ESI, disp=CELLS))  # x[i]
    asm.sub(Reg.EAX, mem(Reg.EDX, disp=CELLS))  # x[i] - x[j]
    asm.jcc(Cond.NS, "positive")  # ~50/50: limits frame growth
    asm.neg(Reg.EAX)
    asm.label("positive")
    asm.push(Reg.ECX)
    asm.push(Reg.EAX)
    asm.call("dist")
    asm.add(Reg.ESP, Imm(4))
    asm.pop(Reg.ECX)
    asm.mov(Reg.EBX, mem(Reg.ESI, disp=CELLS + 8))  # cost[i]
    asm.add(Reg.EBX, Reg.EAX)
    asm.mov(mem(Reg.ESI, disp=CELLS + 8), Reg.EBX)
    # Occasionally mark the cell dirty (biased not-taken).
    asm.test(Reg.EBX, Imm(0x3FF))
    asm.jcc(Cond.Z, "dirty")
    asm.label("after_dirty")
    asm.inc(Reg.EDI)
    asm.and_(Reg.EDI, Imm(cell_count - 1))
    asm.dec(Reg.ECX)
    asm.jcc(Cond.NZ, "loop")
    asm.ret()

    asm.label("dirty")
    asm.mov(Reg.EBX, mem(Reg.ESI, disp=CELLS + 12))
    asm.or_(Reg.EBX, Imm(1))
    asm.mov(mem(Reg.ESI, disp=CELLS + 12), Reg.EBX)
    asm.jmp("after_dirty")

    # int dist(int dx): half-perimeter wire-length contribution.
    asm.label("dist")
    asm.push(Reg.EBP)
    asm.mov(Reg.EBP, Reg.ESP)
    asm.mov(Reg.EAX, mem(Reg.EBP, disp=8))
    asm.mov(Reg.EDX, mem(Reg.ESI, disp=CELLS + 4))  # y[i]
    asm.shr(Reg.EDX, Imm(2))
    asm.add(Reg.EAX, Reg.EDX)
    asm.pop(Reg.EBP)
    asm.ret()
    return asm.assemble()


register(
    Workload(
        name="twolf",
        category="SPECint",
        description="struct-field RMW placement loop, semi-biased branches",
        build=build,
        paper_uop_reduction=0.14,
        paper_load_reduction=0.15,
        paper_ipc_gain=0.13,
    )
)
