"""gzip analogue: LZ77 hash-chain matching.

The paper's smallest winner (6% IPC gain): data-dependent match-length
loops and hash-indexed accesses give the frame constructor little biased
control to promote, so frames stay short and coverage low.
"""

from __future__ import annotations

import random

from repro.workloads.base import DATA_BASE, Workload, data_words, register
from repro.x86.assembler import Assembler, Program, mem
from repro.x86.instructions import Cond, Imm
from repro.x86.registers import Reg

HASH_TABLE = DATA_BASE  # 1024 dword heads
WINDOW = DATA_BASE + 0x2000  # input bytes


def build(scale: int, seed: int) -> Program:
    rng = random.Random(seed)
    window_bytes = 4096
    asm = Assembler()
    asm.data_words(HASH_TABLE, [0] * 1024)
    # Compressible-ish data: small alphabet so matches vary in length.
    asm.data_bytes(
        WINDOW, bytes(rng.choice(b"aabcde") for _ in range(window_bytes))
    )

    iterations = 1400 * scale
    asm.mov(Reg.ECX, Imm(iterations))
    asm.mov(Reg.ESI, Imm(WINDOW))
    asm.xor(Reg.EDI, Reg.EDI)  # position

    asm.label("loop")
    # hash = ((b0 << 10) ^ (b1 << 5) ^ b2) & 1023
    asm.movzx(Reg.EAX, mem(Reg.ESI, index=Reg.EDI, size=1))
    asm.shl(Reg.EAX, Imm(10))
    asm.movzx(Reg.EDX, mem(Reg.ESI, index=Reg.EDI, disp=1, size=1))
    asm.shl(Reg.EDX, Imm(5))
    asm.xor(Reg.EAX, Reg.EDX)
    asm.movzx(Reg.EDX, mem(Reg.ESI, index=Reg.EDI, disp=2, size=1))
    asm.xor(Reg.EAX, Reg.EDX)
    asm.and_(Reg.EAX, Imm(1023))
    # head = hashtab[hash]; hashtab[hash] = pos
    asm.mov(Reg.EBX, mem(index=Reg.EAX, scale=4, disp=HASH_TABLE))
    asm.mov(mem(index=Reg.EAX, scale=4, disp=HASH_TABLE), Reg.EDI)
    # Any previous occupant?  (data-dependent, poorly biased)
    asm.test(Reg.EBX, Reg.EBX)
    asm.jcc(Cond.Z, "advance")
    # Compare up to 4 bytes at head vs current position (variable exit;
    # a tight register-resident loop, so little for the optimizer).
    asm.xor(Reg.EDX, Reg.EDX)
    asm.label("match")
    asm.movzx(Reg.EAX, mem(Reg.ESI, index=Reg.EBX, size=1))
    asm.movzx(Reg.EBP, mem(Reg.ESI, index=Reg.EDI, size=1))
    asm.cmp(Reg.EAX, Reg.EBP)
    asm.jcc(Cond.NZ, "advance")
    asm.inc(Reg.EBX)
    asm.inc(Reg.EDX)
    asm.cmp(Reg.EDX, Imm(4))
    asm.jcc(Cond.B, "match")

    asm.label("advance")
    asm.inc(Reg.EDI)
    asm.cmp(Reg.EDI, Imm(window_bytes - 8))
    asm.jcc(Cond.B, "wrapped")
    asm.xor(Reg.EDI, Reg.EDI)
    asm.label("wrapped")
    asm.dec(Reg.ECX)
    asm.jcc(Cond.NZ, "loop")
    asm.ret()
    return asm.assemble()


register(
    Workload(
        name="gzip",
        category="SPECint",
        description="LZ77 hash-chain matching; data-dependent control",
        build=build,
        paper_uop_reduction=0.13,
        paper_load_reduction=0.10,
        paper_ipc_gain=0.06,
    )
)
