"""Excel analogue: cell recalculation with genuine store aliasing.

The paper's cautionary tale for speculation (§6.4): store forwarding
marks intervening cell stores unsafe, and "in Excel, there are many
aliasing events among unsafe stores, which cause the rate of asserting
frames to increase" — disabling SF *improves* Excel.  Here each
iteration spills a running total, writes a dependent cell through a
different index register (which occasionally aliases the spill target's
cell), then re-reads the spilled total.
"""

from __future__ import annotations

import random

from repro.workloads.base import DATA_BASE, Workload, data_words, register
from repro.x86.assembler import Assembler, Program, mem
from repro.x86.instructions import Cond, Imm
from repro.x86.registers import Reg

CELLS = DATA_BASE  # 256 dword cells
DEPS = DATA_BASE + 0x1000  # dependent-cell index table
WEIGHTS = DATA_BASE + 0x2000  # per-cell formula weights


def build(scale: int, seed: int) -> Program:
    rng = random.Random(seed)
    cell_count = 256
    # dep[i] == i about 1% of the time: a dynamic alias between the
    # unsafe dependent-cell store and the forwarded spill slot.  Frequent
    # enough that store forwarding's aborts outweigh its benefit — the
    # paper's Excel observation that disabling SF *increases* IPC.
    deps = []
    for i in range(cell_count):
        if rng.random() < 0.01:
            deps.append(i)
        else:
            dep = rng.randrange(cell_count)
            deps.append(dep if dep != i else (dep + 1) % cell_count)

    asm = Assembler()
    asm.data_words(CELLS, data_words(rng, cell_count, bits=16))
    asm.data_words(DEPS, deps)
    asm.data_words(WEIGHTS, data_words(rng, cell_count, bits=8))

    iterations = 850 * scale
    asm.mov(Reg.ECX, Imm(iterations))
    asm.xor(Reg.EDI, Reg.EDI)  # cell index
    asm.xor(Reg.EAX, Reg.EAX)  # running total

    asm.label("recalc")
    asm.add(Reg.EAX, mem(index=Reg.EDI, scale=4, disp=CELLS))
    # Spill the total into this cell (store #1, base = EDI).
    asm.mov(mem(index=Reg.EDI, scale=4, disp=CELLS), Reg.EAX)
    # Update the dependent cell (store #2, base = EBX: may-alias store #1).
    asm.mov(Reg.EBX, mem(index=Reg.EDI, scale=4, disp=DEPS))
    asm.mov(Reg.EDX, Reg.EAX)
    asm.shr(Reg.EDX, Imm(3))
    asm.mov(mem(index=Reg.EBX, scale=4, disp=CELLS), Reg.EDX)
    # Re-read the spilled total into the audit row: store forwarding
    # removes this load speculatively (past the may-aliasing store #2),
    # but the forwarded value only feeds a store — the gain is one load
    # slot, while a dynamic alias costs a whole frame abort.
    asm.mov(Reg.ESI, mem(index=Reg.EDI, scale=4, disp=CELLS))
    asm.mov(mem(index=Reg.EDI, scale=4, disp=WEIGHTS + 0x1000), Reg.ESI)
    # Weight lookup; the index is re-loaded (register pressure), which
    # CSE (a safe optimization) removes.
    asm.mov(Reg.EBX, mem(index=Reg.EDI, scale=4, disp=DEPS))  # redundant
    asm.mov(Reg.EDX, mem(index=Reg.EBX, scale=4, disp=WEIGHTS))
    asm.add(Reg.EAX, Reg.EDX)
    asm.shr(Reg.EAX, Imm(1))  # keep the total bounded
    asm.inc(Reg.EDI)
    asm.and_(Reg.EDI, Imm(cell_count - 1))
    asm.dec(Reg.ECX)
    asm.jcc(Cond.NZ, "recalc")
    asm.ret()
    return asm.assemble()


register(
    Workload(
        name="excel",
        category="Business",
        description="cell recalc with aliasing unsafe stores (SF backfires)",
        build=build,
        paper_uop_reduction=0.21,
        paper_load_reduction=0.21,
        paper_ipc_gain=0.13,
    )
)
