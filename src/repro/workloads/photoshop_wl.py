"""PhotoShop analogue: integer convolution filter over a scanline.

An unrolled 3-tap kernel whose neighbour loads overlap between unrolled
steps (reassociation + CSE fold the reloads) and whose multiplies expose
tree-height reduction: the paper reports modest removal (15%) but a big
IPC gain (30%).
"""

from __future__ import annotations

import random

from repro.workloads.base import DATA_BASE, Workload, data_words, register
from repro.x86.assembler import Assembler, Program, mem
from repro.x86.instructions import Cond, Imm
from repro.x86.registers import Reg

SRC = DATA_BASE
DST = DATA_BASE + 0x4000


def build(scale: int, seed: int) -> Program:
    rng = random.Random(seed)
    pixels = 1024
    asm = Assembler()
    asm.data_words(SRC, [v & 0xFFFF for v in data_words(rng, pixels + 8)])
    asm.data_words(DST, [0] * (pixels + 8))

    iterations = 3 * scale
    asm.mov(Reg.ECX, Imm(iterations))

    asm.label("frame")
    asm.xor(Reg.EDI, Reg.EDI)  # pixel index
    asm.label("row")
    # Two unrolled taps; the [i+1]/[i+2] loads are shared between them.
    for step in range(2):
        base = step * 4
        # Each tap re-loads its neighbours (the two-register budget of
        # x86 forces reloads a RISC compiler would keep in registers).
        asm.mov(Reg.EAX, mem(index=Reg.EDI, disp=SRC + base))
        asm.imul(Reg.EAX, Imm(3))
        asm.mov(Reg.EDX, mem(index=Reg.EDI, disp=SRC + base + 4))
        asm.imul(Reg.EDX, Imm(10))
        asm.add(Reg.EAX, Reg.EDX)
        asm.mov(Reg.EDX, mem(index=Reg.EDI, disp=SRC + base + 8))
        asm.imul(Reg.EDX, Imm(3))
        asm.add(Reg.EAX, Reg.EDX)
        # Edge-weight term: reloads the centre tap (CSE removes).
        asm.mov(Reg.EDX, mem(index=Reg.EDI, disp=SRC + base + 4))
        asm.shr(Reg.EDX, Imm(2))
        asm.add(Reg.EAX, Reg.EDX)
        asm.mov(Reg.EDX, mem(index=Reg.EDI, disp=SRC + base))
        asm.add(Reg.EAX, Reg.EDX)
        asm.shr(Reg.EAX, Imm(4))
        # Saturate (biased not-taken with 16-bit inputs).
        asm.cmp(Reg.EAX, Imm(0xFFFF))
        asm.jcc(Cond.A, f"clamp{step}")
        asm.label(f"resume{step}")
        asm.mov(mem(index=Reg.EDI, disp=DST + base), Reg.EAX)
    asm.add(Reg.EDI, Imm(8))
    asm.cmp(Reg.EDI, Imm(pixels * 4))
    asm.jcc(Cond.B, "row")
    asm.dec(Reg.ECX)
    asm.jcc(Cond.NZ, "frame")
    asm.ret()

    for step in range(2):
        asm.label(f"clamp{step}")
        asm.mov(Reg.EAX, Imm(0xFFFF))
        asm.jmp(f"resume{step}")
    return asm.assemble()


register(
    Workload(
        name="photo",
        category="Content",
        description="unrolled convolution; shared neighbour loads, MULs",
        build=build,
        paper_uop_reduction=0.15,
        paper_load_reduction=0.19,
        paper_ipc_gain=0.30,
    )
)
