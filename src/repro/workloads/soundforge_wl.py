"""SoundForge analogue: IIR/FIR audio filtering.

A serial recurrence (y[n] depends on y[n-1] through a multiply) bounds
ILP no matter how many uops the optimizer strips: the paper measures
22% removal but only 6% IPC gain.
"""

from __future__ import annotations

import random

from repro.workloads.base import DATA_BASE, Workload, data_words, register
from repro.x86.assembler import Assembler, Program, mem
from repro.x86.instructions import Cond, Imm
from repro.x86.registers import Reg

SAMPLES = DATA_BASE
OUTPUT = DATA_BASE + 0x4000


def build(scale: int, seed: int) -> Program:
    rng = random.Random(seed)
    sample_count = 1024
    asm = Assembler()
    asm.data_words(SAMPLES, [v & 0x7FFF for v in data_words(rng, sample_count)])
    asm.data_words(OUTPUT, [0] * sample_count)

    iterations = 4 * scale
    asm.mov(Reg.ECX, Imm(iterations))

    asm.label("pass_loop")
    asm.xor(Reg.EDI, Reg.EDI)
    asm.xor(Reg.EAX, Reg.EAX)  # y[n-1]
    asm.label("sample")
    # y = (y * 61) >> 6 + x + x_prev>>1   (serial multiply recurrence)
    asm.imul(Reg.EAX, Imm(61))
    asm.sar(Reg.EAX, Imm(6))
    asm.mov(Reg.EDX, mem(index=Reg.EDI, disp=SAMPLES))
    asm.add(Reg.EAX, Reg.EDX)
    asm.mov(Reg.EBX, mem(index=Reg.EDI, disp=SAMPLES))  # reload: CSE fodder
    asm.shr(Reg.EBX, Imm(1))
    asm.add(Reg.EAX, Reg.EBX)
    asm.mov(mem(index=Reg.EDI, disp=OUTPUT), Reg.EAX)
    asm.add(Reg.EDI, Imm(4))
    asm.cmp(Reg.EDI, Imm(sample_count * 4))
    asm.jcc(Cond.B, "sample")
    asm.dec(Reg.ECX)
    asm.jcc(Cond.NZ, "pass_loop")
    asm.ret()
    return asm.assemble()


register(
    Workload(
        name="sound",
        category="Content",
        description="IIR filter; serial MUL recurrence bounds ILP",
        build=build,
        paper_uop_reduction=0.22,
        paper_load_reduction=0.23,
        paper_ipc_gain=0.06,
    )
)
