"""parser analogue: dictionary lookups over linked chains.

Pointer chasing with data-dependent chain lengths: the dependent-load
serial chain and the unbiased walk-exit branches limit both frame
coverage and the optimizer's leverage (8% IPC gain in the paper).
"""

from __future__ import annotations

import random

from repro.workloads.base import DATA_BASE, Workload, register
from repro.x86.assembler import Assembler, Program, mem
from repro.x86.instructions import Cond, Imm
from repro.x86.registers import Reg

BUCKETS = DATA_BASE  # 256 head pointers
NODES = DATA_BASE + 0x1000  # 12-byte nodes: key, next, payload
QUERIES = DATA_BASE + 0x8000


def build(scale: int, seed: int) -> Program:
    rng = random.Random(seed)
    node_count = 512
    bucket_count = 256

    # Build hash chains in Python, then emit as data.
    heads = [0] * bucket_count
    nodes: list[tuple[int, int, int]] = []
    for i in range(node_count):
        key = rng.getrandbits(30)
        bucket = key % bucket_count
        address = NODES + i * 12
        nodes.append((key, heads[bucket], 0))
        heads[bucket] = address
    queries = [rng.getrandbits(30) for _ in range(512)]

    asm = Assembler()
    asm.data_words(BUCKETS, heads)
    flat: list[int] = []
    for key, next_ptr, payload in nodes:
        flat.extend((key, next_ptr, payload))
    asm.data_words(NODES, flat)
    asm.data_words(QUERIES, queries)

    iterations = 1300 * scale
    asm.mov(Reg.ECX, Imm(iterations))
    asm.xor(Reg.EDI, Reg.EDI)  # query index

    asm.label("loop")
    asm.mov(Reg.EAX, mem(index=Reg.EDI, scale=4, disp=QUERIES))
    asm.mov(Reg.EDX, Reg.EAX)
    asm.and_(Reg.EDX, Imm(bucket_count - 1))  # key % buckets (power of 2)
    asm.mov(Reg.ESI, mem(index=Reg.EDX, scale=4, disp=BUCKETS))
    asm.test(Reg.ESI, Reg.ESI)
    asm.jcc(Cond.Z, "next_query")
    asm.label("walk")
    asm.mov(Reg.EBX, mem(Reg.ESI))  # node->key
    asm.cmp(Reg.EBX, Reg.EAX)
    asm.jcc(Cond.Z, "found")
    asm.mov(Reg.ESI, mem(Reg.ESI, disp=4))  # node->next (serial chain)
    asm.test(Reg.ESI, Reg.ESI)
    asm.jcc(Cond.NZ, "walk")
    asm.jmp("next_query")
    asm.label("found")
    asm.mov(Reg.EBX, mem(Reg.ESI, disp=8))
    asm.inc(Reg.EBX)
    asm.mov(mem(Reg.ESI, disp=8), Reg.EBX)
    asm.label("next_query")
    asm.inc(Reg.EDI)
    asm.and_(Reg.EDI, Imm(511))
    asm.dec(Reg.ECX)
    asm.jcc(Cond.NZ, "loop")
    asm.ret()
    return asm.assemble()


register(
    Workload(
        name="parser",
        category="SPECint",
        description="hash-bucket pointer chasing with unbiased exits",
        build=build,
        paper_uop_reduction=0.21,
        paper_load_reduction=0.14,
        paper_ipc_gain=0.08,
    )
)
