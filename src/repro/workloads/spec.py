"""SPECint 2000 workload analogues (Table 1, top half).

Importing this module registers all seven SPECint-like workloads.
"""

from repro.workloads import (  # noqa: F401  (registration side effects)
    bzip2,
    crafty_wl,
    eon_wl,
    gzip_wl,
    parser_wl,
    twolf_wl,
    vortex_wl,
)
