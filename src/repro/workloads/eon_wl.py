"""eon analogue: C++-style ray-shading call tree.

Many tiny methods with full stack frames and stack-passed arguments —
the pattern where frame-level optimization shines (31% IPC gain in the
paper): once calls are inlined into one frame, nearly all of the
prologue/epilogue and argument traffic is forwarded or dead.
"""

from __future__ import annotations

import random

from repro.workloads.base import DATA_BASE, Workload, data_words, prologue, epilogue, register
from repro.x86.assembler import Assembler, Program, mem
from repro.x86.instructions import Cond, Imm
from repro.x86.registers import Reg

VECTORS = DATA_BASE  # packed 3-word vectors
RESULTS = DATA_BASE + 0x4000


def build(scale: int, seed: int) -> Program:
    rng = random.Random(seed)
    count = 256
    asm = Assembler()
    asm.data_words(VECTORS, data_words(rng, count * 3, bits=16))
    asm.data_words(RESULTS, [0] * count)

    iterations = 260 * scale
    asm.mov(Reg.ECX, Imm(iterations))
    asm.xor(Reg.EDI, Reg.EDI)

    asm.label("loop")
    asm.push(Reg.ECX)
    asm.push(Reg.EDI)
    asm.call("shade")
    asm.add(Reg.ESP, Imm(4))
    asm.pop(Reg.ECX)
    asm.mov(mem(index=Reg.EDI, scale=4, disp=RESULTS), Reg.EAX)
    asm.inc(Reg.EDI)
    asm.and_(Reg.EDI, Imm(count - 1))
    asm.dec(Reg.ECX)
    asm.jcc(Cond.NZ, "loop")
    asm.ret()

    # int shade(int i): dot(v[i], v[i+1]) scaled and biased.
    asm.label("shade")
    prologue(asm)
    asm.mov(Reg.EAX, mem(Reg.EBP, disp=8))  # i
    asm.push(Reg.EAX)
    asm.call("dot")
    asm.add(Reg.ESP, Imm(4))
    asm.push(Reg.EAX)
    asm.call("attenuate")
    asm.add(Reg.ESP, Imm(4))
    asm.test(Reg.EAX, Reg.EAX)
    asm.jcc(Cond.S, "shade_clamp")  # ~unbiased on random data
    asm.label("shade_out")
    epilogue(asm)
    asm.label("shade_clamp")
    asm.neg(Reg.EAX)
    asm.jmp("shade_out")

    # int dot(int i): v[i] . v[i+1]  (drops the wrap case for simplicity)
    asm.label("dot")
    prologue(asm)
    asm.mov(Reg.EDX, mem(Reg.EBP, disp=8))
    asm.lea(Reg.EDX, mem(index=Reg.EDX, scale=4, disp=VECTORS))
    asm.mov(Reg.EAX, mem(Reg.EDX))
    asm.imul(Reg.EAX, mem(Reg.EDX, disp=12))
    asm.mov(Reg.EBX, mem(Reg.EDX, disp=4))
    asm.push(Reg.EBX)  # callee-save dance: typical compiled spill
    asm.imul(Reg.EBX, mem(Reg.EDX, disp=16))
    asm.add(Reg.EAX, Reg.EBX)
    asm.mov(Reg.EBX, mem(Reg.EDX, disp=8))
    asm.imul(Reg.EBX, mem(Reg.EDX, disp=20))
    asm.add(Reg.EAX, Reg.EBX)
    asm.pop(Reg.EBX)
    epilogue(asm)

    # int attenuate(int x): x - (x >> 3) + 7
    asm.label("attenuate")
    prologue(asm)
    asm.mov(Reg.EAX, mem(Reg.EBP, disp=8))
    asm.mov(Reg.EDX, Reg.EAX)
    asm.sar(Reg.EDX, Imm(3))
    asm.sub(Reg.EAX, Reg.EDX)
    asm.add(Reg.EAX, Imm(7))
    epilogue(asm)
    return asm.assemble()


register(
    Workload(
        name="eon",
        category="SPECint",
        description="small-method call tree with stack-passed arguments",
        build=build,
        paper_uop_reduction=0.25,
        paper_load_reduction=0.18,
        paper_ipc_gain=0.31,
    )
)
