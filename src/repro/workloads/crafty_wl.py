"""crafty analogue: bitboard evaluation with small helper calls.

Bit-twiddling (AND/OR/XOR/shift chains) over board words, a popcount
loop, and the call-heavy evaluation helpers whose prologue/epilogue
stack traffic the optimizer flattens — the source of the paper's
Figure 2 running example.
"""

from __future__ import annotations

import random

from repro.workloads.base import DATA_BASE, Workload, data_words, prologue, epilogue, register
from repro.x86.assembler import Assembler, Program, mem
from repro.x86.instructions import Cond, Imm
from repro.x86.registers import Reg

BOARDS = DATA_BASE  # pairs of piece bitboards (32-bit halves)
SCORES = DATA_BASE + 0x1000
NIBBLE_COUNTS = DATA_BASE + 0x1200  # 16-entry popcount table


def build(scale: int, seed: int) -> Program:
    rng = random.Random(seed)
    positions = 128
    asm = Assembler()
    asm.data_words(BOARDS, data_words(rng, positions * 2))
    asm.data_words(SCORES, [0] * 64)
    asm.data_words(NIBBLE_COUNTS, [bin(i).count("1") for i in range(16)])

    iterations = 420 * scale
    asm.mov(Reg.ECX, Imm(iterations))
    asm.xor(Reg.EDI, Reg.EDI)  # position index

    asm.label("loop")
    asm.push(Reg.ECX)
    asm.call("evaluate")
    asm.pop(Reg.ECX)
    asm.inc(Reg.EDI)
    asm.and_(Reg.EDI, Imm(positions - 1))
    asm.dec(Reg.ECX)
    asm.jcc(Cond.NZ, "loop")
    asm.ret()

    # int evaluate(): combine both boards, popcount attacks, score.
    asm.label("evaluate")
    prologue(asm)
    asm.mov(Reg.EAX, mem(index=Reg.EDI, scale=8, disp=BOARDS))
    asm.mov(Reg.EDX, mem(index=Reg.EDI, scale=8, disp=BOARDS + 4))
    asm.mov(Reg.EBX, Reg.EAX)
    asm.and_(Reg.EBX, Reg.EDX)  # attacked squares
    asm.or_(Reg.EAX, Reg.EDX)  # occupied squares
    asm.xor(Reg.EAX, Reg.EBX)  # contested
    asm.push(Reg.EAX)
    asm.call("popcount")
    asm.add(Reg.ESP, Imm(4))
    # score[popcount & 63] += 1  (biased path: count rarely exceeds 24)
    asm.and_(Reg.EAX, Imm(63))
    asm.mov(Reg.EDX, mem(index=Reg.EAX, scale=4, disp=SCORES))
    asm.inc(Reg.EDX)
    asm.mov(mem(index=Reg.EAX, scale=4, disp=SCORES), Reg.EDX)
    asm.cmp(Reg.EAX, Imm(28))
    asm.jcc(Cond.A, "eval_rare")
    asm.label("eval_done")
    epilogue(asm)

    asm.label("eval_rare")  # almost never taken
    asm.xor(Reg.EAX, Reg.EAX)
    asm.jmp("eval_done")

    # int popcount(word on stack): nibble-table loop with a constant trip
    # count (the table-driven popcount real chess engines use; its loop
    # branch is perfectly biased, unlike Kernighan's data-dependent one).
    asm.label("popcount")
    prologue(asm)
    asm.mov(Reg.EDX, mem(Reg.EBP, disp=8))
    asm.xor(Reg.EAX, Reg.EAX)
    asm.mov(Reg.ECX, Imm(8))  # eight nibbles
    asm.label("pop_loop")
    asm.mov(Reg.EBX, Reg.EDX)
    asm.and_(Reg.EBX, Imm(0xF))
    asm.push(Reg.EDX)
    asm.mov(Reg.EDX, mem(index=Reg.EBX, scale=4, disp=NIBBLE_COUNTS))
    asm.add(Reg.EAX, Reg.EDX)
    asm.pop(Reg.EDX)
    asm.shr(Reg.EDX, Imm(4))
    asm.dec(Reg.ECX)
    asm.jcc(Cond.NZ, "pop_loop")
    epilogue(asm)
    return asm.assemble()


register(
    Workload(
        name="crafty",
        category="SPECint",
        description="bitboard evaluation; shifts, masks, helper calls",
        build=build,
        paper_uop_reduction=0.16,
        paper_load_reduction=0.11,
        paper_ipc_gain=0.10,
    )
)
