"""Workload framework.

The paper's evaluation ran on proprietary AMD hardware traces of
SPECint 2000 and Winstone desktop applications (Table 1).  Those traces
are unobtainable, so each application is replaced by a synthetic x86
program written to exercise the same *structural* behaviour the paper
attributes to it — loop-carried redundant loads in bzip2's critical loop,
stack-frame-heavy call patterns in eon/vortex, aliasing unsafe stores in
Excel, serial DSP chains in SoundForge, and so on (see each module's
docstring and DESIGN.md §2).

Every workload is deterministic: a seed fixes its data, and the emulator
produces the dynamic trace the rest of the system consumes.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.metrics import MetricsRegistry, get_registry
from repro.trace.stream import DynamicTrace
from repro.x86.assembler import Assembler, Program
from repro.x86.emulator import Emulator

#: Where workload data tables live in the address space.
DATA_BASE = 0x0050_0000

#: A large second data region (used by big-footprint workloads).
BIG_DATA_BASE = 0x0060_0000


@dataclass(frozen=True)
class Workload:
    """One benchmark: a program builder plus metadata (Table 1 analogue)."""

    name: str
    category: str  # 'SPECint' | 'Business' | 'Content'
    description: str
    build: Callable[[int, int], Program]  # (scale, seed) -> Program
    default_scale: int = 1
    paper_uop_reduction: float = 0.0  # Table 3, for EXPERIMENTS.md comparison
    paper_load_reduction: float = 0.0
    paper_ipc_gain: float = 0.0


_REGISTRY: dict[str, Workload] = {}


def register(workload: Workload) -> Workload:
    if workload.name in _REGISTRY:
        raise ValueError(f"duplicate workload {workload.name!r}")
    _REGISTRY[workload.name] = workload
    return workload


def get_workload(name: str) -> Workload:
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def all_workloads() -> list[Workload]:
    _ensure_loaded()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def spec_workloads() -> list[Workload]:
    return [w for w in all_workloads() if w.category == "SPECint"]


def desktop_workloads() -> list[Workload]:
    return [w for w in all_workloads() if w.category != "SPECint"]


def build_workload(
    name: str,
    scale: int | None = None,
    seed: int = 1,
    max_instructions: int = 400_000,
    metrics: MetricsRegistry | None = None,
) -> DynamicTrace:
    """Build and run a workload, returning its dynamic trace.

    Emulation throughput (instructions emulated, wall time, insts/sec)
    lands in ``metrics`` (the process-global registry when not given).
    """
    registry = metrics if metrics is not None else get_registry()
    workload = get_workload(name)
    program = workload.build(scale or workload.default_scale, seed)
    emulator = Emulator(program)
    start = time.perf_counter()
    records = emulator.run(max_instructions)
    elapsed = time.perf_counter() - start
    if not emulator.halted:
        raise RuntimeError(
            f"workload {name!r} did not finish within {max_instructions} "
            f"instructions; lower its scale"
        )
    registry.counter("emulator.runs").inc()
    registry.counter("emulator.instructions").inc(len(records))
    registry.histogram("time.emulate").observe(elapsed)
    if elapsed > 0:
        registry.histogram("emulator.insts_per_sec").observe(
            len(records) / elapsed
        )
    return DynamicTrace(records, name=name)


def _ensure_loaded() -> None:
    """Import the workload modules exactly once (they self-register)."""
    if _REGISTRY:
        return
    from repro.workloads import desktop, spec  # noqa: F401


def data_words(rng: random.Random, count: int, bits: int = 32) -> list[int]:
    """Deterministic pseudo-random data words for workload tables."""
    mask = (1 << bits) - 1
    return [rng.getrandbits(bits) & mask for _ in range(count)]


def prologue(asm: Assembler) -> None:
    """Standard x86 function prologue (frame pointer setup)."""
    from repro.x86.registers import Reg

    asm.push(Reg.EBP)
    asm.mov(Reg.EBP, Reg.ESP)


def epilogue(asm: Assembler) -> None:
    """Standard x86 function epilogue."""
    from repro.x86.registers import Reg

    asm.pop(Reg.EBP)
    asm.ret()
