"""Workload framework.

The paper's evaluation ran on proprietary AMD hardware traces of
SPECint 2000 and Winstone desktop applications (Table 1).  Those traces
are unobtainable, so each application is replaced by a synthetic x86
program written to exercise the same *structural* behaviour the paper
attributes to it — loop-carried redundant loads in bzip2's critical loop,
stack-frame-heavy call patterns in eon/vortex, aliasing unsafe stores in
Excel, serial DSP chains in SoundForge, and so on (see each module's
docstring and DESIGN.md §2).

Every workload is deterministic: a seed fixes its data, and the emulator
produces the dynamic trace the rest of the system consumes.
"""

from __future__ import annotations

import fnmatch
import random
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Protocol

from repro.metrics import MetricsRegistry, get_registry
from repro.trace.stream import DynamicTrace
from repro.x86.assembler import Assembler, Program
from repro.x86.emulator import Emulator

#: Where workload data tables live in the address space.
DATA_BASE = 0x0050_0000

#: A large second data region (used by big-footprint workloads).
BIG_DATA_BASE = 0x0060_0000


@dataclass(frozen=True)
class Workload:
    """One benchmark: a program builder plus metadata (Table 1 analogue).

    Most workloads carry a ``build`` callable that assembles a synthetic
    program.  Scenario-grown workloads may instead carry ``load_trace``
    (imported external traces, which have no program to build) and/or
    ``digest`` (a content digest substituting for the build module's
    source hash in artifact-store keys).
    """

    name: str
    category: str  # 'SPECint' | 'Business' | 'Content' | 'Family' | 'Imported'
    description: str
    build: Callable[[int, int], Program] | None = None  # (scale, seed)
    default_scale: int = 1
    paper_uop_reduction: float = 0.0  # Table 3, for EXPERIMENTS.md comparison
    paper_load_reduction: float = 0.0
    paper_ipc_gain: float = 0.0
    load_trace: Callable[[int, int], DynamicTrace] | None = None
    digest: str = ""  # content digest overriding the source-module hash
    #: Family members expose their fuzz genome (``genome(seed)``) so the
    #: differential oracle can replay them (``fuzz repro --workload``).
    genome: Callable | None = None


class WorkloadProvider(Protocol):
    """Lazily materializes workloads whose names encode their recipe.

    Providers let the registry scale to hundreds of generated cells
    without eagerly constructing them: pool workers and the service
    resolve workloads by *name only*, so a provider must rebuild the
    same :class:`Workload` from the name alone, in any process.
    """

    def lookup(self, name: str) -> Workload | None:
        """Return the workload for ``name``, or None if not ours."""
        ...

    def names(self) -> Iterable[str]:
        """Currently enumerable names (for globs and listings)."""
        ...


_REGISTRY: dict[str, Workload] = {}
_PROVIDERS: list[WorkloadProvider] = []
_PROVIDER_CACHE: dict[str, Workload] = {}


def register(workload: Workload) -> Workload:
    if workload.name in _REGISTRY:
        raise ValueError(f"duplicate workload {workload.name!r}")
    _REGISTRY[workload.name] = workload
    return workload


def register_provider(provider: WorkloadProvider) -> WorkloadProvider:
    if provider not in _PROVIDERS:
        _PROVIDERS.append(provider)
        _PROVIDER_CACHE.clear()
    return provider


def get_workload(name: str) -> Workload:
    _ensure_loaded()
    registered = _REGISTRY.get(name)
    if registered is not None:
        return registered
    cached = _PROVIDER_CACHE.get(name)
    if cached is not None:
        return cached
    for provider in _PROVIDERS:
        workload = provider.lookup(name)
        if workload is not None:
            _PROVIDER_CACHE[name] = workload
            return workload
    raise KeyError(
        f"unknown workload {name!r}; available: {sorted(_REGISTRY)} "
        f"plus provider-backed names (see `scenarios ls`)"
    )


def all_workloads() -> list[Workload]:
    _ensure_loaded()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def workload_names(include_providers: bool = True) -> list[str]:
    """All resolvable names: registered plus provider-enumerable ones."""
    _ensure_loaded()
    names = set(_REGISTRY)
    if include_providers:
        for provider in _PROVIDERS:
            names.update(provider.names())
    return sorted(names)


def resolve_workloads(patterns: Iterable[str]) -> list[str]:
    """Expand workload names/globs into concrete names (shared resolver).

    Each pattern is either an exact workload name or an ``fnmatch`` glob
    (``loopy-*``).  Expansion is deterministic (sorted within each
    pattern, order-preserving across patterns, deduplicated).  A pattern
    matching nothing raises ``KeyError``.
    """
    _ensure_loaded()
    universe = workload_names()
    resolved: list[str] = []
    seen: set[str] = set()
    for pattern in patterns:
        if any(ch in pattern for ch in "*?["):
            matches = sorted(fnmatch.filter(universe, pattern))
            if not matches:
                raise KeyError(f"workload glob {pattern!r} matched nothing")
        else:
            get_workload(pattern)  # raises KeyError with the full listing
            matches = [pattern]
        for name in matches:
            if name not in seen:
                seen.add(name)
                resolved.append(name)
    return resolved


def spec_workloads() -> list[Workload]:
    return [w for w in all_workloads() if w.category == "SPECint"]


def desktop_workloads() -> list[Workload]:
    return [w for w in all_workloads() if w.category in ("Business", "Content")]


def build_workload(
    name: str,
    scale: int | None = None,
    seed: int = 1,
    max_instructions: int = 400_000,
    metrics: MetricsRegistry | None = None,
) -> DynamicTrace:
    """Build and run a workload, returning its dynamic trace.

    Emulation throughput (instructions emulated, wall time, insts/sec)
    lands in ``metrics`` (the process-global registry when not given).
    """
    registry = metrics if metrics is not None else get_registry()
    workload = get_workload(name)
    if workload.load_trace is not None:
        start = time.perf_counter()
        trace = workload.load_trace(scale or workload.default_scale, seed)
        elapsed = time.perf_counter() - start
        if len(trace.records) > max_instructions:
            raise RuntimeError(
                f"imported trace {name!r} has {len(trace.records)} records, "
                f"over the {max_instructions}-instruction budget"
            )
        registry.counter("workloads.trace_loads").inc()
        registry.histogram("time.trace_load").observe(elapsed)
        return DynamicTrace(trace.records, name=name)
    if workload.build is None:
        raise RuntimeError(f"workload {name!r} has no builder or trace loader")
    program = workload.build(scale or workload.default_scale, seed)
    emulator = Emulator(program)
    start = time.perf_counter()
    records = emulator.run(max_instructions)
    elapsed = time.perf_counter() - start
    if not emulator.halted:
        raise RuntimeError(
            f"workload {name!r} did not finish within {max_instructions} "
            f"instructions; lower its scale"
        )
    registry.counter("emulator.runs").inc()
    registry.counter("emulator.instructions").inc(len(records))
    registry.histogram("time.emulate").observe(elapsed)
    if elapsed > 0:
        registry.histogram("emulator.insts_per_sec").observe(
            len(records) / elapsed
        )
    return DynamicTrace(records, name=name)


_LOADED = False


def _ensure_loaded() -> None:
    """Import the workload modules exactly once (they self-register)."""
    global _LOADED
    if _LOADED:
        return
    _LOADED = True
    from repro.workloads import desktop, spec  # noqa: F401

    # Scenario providers (families, imported traces) register lazily so
    # pool workers and the service resolve generated names by themselves.
    from repro.scenarios import install_providers

    install_providers()


def data_words(rng: random.Random, count: int, bits: int = 32) -> list[int]:
    """Deterministic pseudo-random data words for workload tables."""
    mask = (1 << bits) - 1
    return [rng.getrandbits(bits) & mask for _ in range(count)]


def prologue(asm: Assembler) -> None:
    """Standard x86 function prologue (frame pointer setup)."""
    from repro.x86.registers import Reg

    asm.push(Reg.EBP)
    asm.mov(Reg.EBP, Reg.ESP)


def epilogue(asm: Assembler) -> None:
    """Standard x86 function epilogue."""
    from repro.x86.registers import Reg

    asm.pop(Reg.EBP)
    asm.ret()
