"""Synthetic workloads standing in for the paper's AMD traces (Table 1)."""

from repro.workloads.base import (
    Workload,
    all_workloads,
    build_workload,
    desktop_workloads,
    get_workload,
    register,
    spec_workloads,
)

__all__ = [
    "Workload",
    "all_workloads",
    "build_workload",
    "desktop_workloads",
    "get_workload",
    "register",
    "spec_workloads",
]
