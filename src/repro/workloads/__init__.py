"""Synthetic workloads standing in for the paper's AMD traces (Table 1)."""

from repro.workloads.base import (
    Workload,
    WorkloadProvider,
    all_workloads,
    build_workload,
    desktop_workloads,
    get_workload,
    register,
    register_provider,
    resolve_workloads,
    spec_workloads,
    workload_names,
)

__all__ = [
    "Workload",
    "WorkloadProvider",
    "all_workloads",
    "build_workload",
    "desktop_workloads",
    "get_workload",
    "register",
    "register_provider",
    "resolve_workloads",
    "spec_workloads",
    "workload_names",
]
