"""vortex analogue: object-database record manipulation.

Indirect method dispatch with a heavily skewed type distribution (the
stable targets get promoted to value assertions), record copies, and
deep stack-passing call chains: the paper's biggest winner (33%).
"""

from __future__ import annotations

import random

from repro.workloads.base import DATA_BASE, Workload, data_words, prologue, epilogue, register
from repro.x86.assembler import Assembler, Program, mem
from repro.x86.instructions import Cond, Imm
from repro.x86.registers import Reg

VTABLE = DATA_BASE  # 4 method pointers
RECORDS = DATA_BASE + 0x100  # 16-byte records: type, a, b, c
SCRATCH = DATA_BASE + 0x8000


def build(scale: int, seed: int) -> Program:
    rng = random.Random(seed)
    record_count = 256
    records: list[int] = []
    for _ in range(record_count):
        # 92% type 0: indirect call target is stable enough to promote.
        rtype = 0 if rng.random() < 0.92 else rng.randrange(1, 4)
        records.extend((rtype, rng.getrandbits(16), rng.getrandbits(16), 0))

    asm = Assembler()
    asm.data_words(RECORDS, records)
    asm.data_words(SCRATCH, [0] * (record_count * 4))

    iterations = 300 * scale
    asm.mov(Reg.ECX, Imm(iterations))
    asm.xor(Reg.EDI, Reg.EDI)

    asm.label("loop")
    asm.mov(Reg.ESI, Reg.EDI)
    asm.shl(Reg.ESI, Imm(4))  # record byte offset
    asm.mov(Reg.EAX, mem(Reg.ESI, disp=RECORDS))  # record->type
    asm.mov(Reg.EDX, mem(index=Reg.EAX, scale=4, disp=VTABLE))
    asm.push(Reg.ECX)
    asm.push(Reg.ESI)
    asm.call(Reg.EDX)  # virtual dispatch
    asm.add(Reg.ESP, Imm(4))
    asm.pop(Reg.ECX)
    asm.inc(Reg.EDI)
    asm.and_(Reg.EDI, Imm(record_count - 1))
    asm.dec(Reg.ECX)
    asm.jcc(Cond.NZ, "loop")
    asm.ret()

    # method0: copy record into scratch and checksum it (the hot method).
    asm.label("method0")
    prologue(asm)
    asm.mov(Reg.ESI, mem(Reg.EBP, disp=8))
    asm.push(Reg.EBX)
    # Unrolled 4-word copy: loads can't be removed (distinct addresses),
    # but the surrounding stack traffic can.
    asm.mov(Reg.EAX, mem(Reg.ESI, disp=RECORDS))
    asm.mov(mem(Reg.ESI, disp=SCRATCH), Reg.EAX)
    asm.mov(Reg.EBX, mem(Reg.ESI, disp=RECORDS + 4))
    asm.mov(mem(Reg.ESI, disp=SCRATCH + 4), Reg.EBX)
    asm.add(Reg.EAX, Reg.EBX)
    asm.mov(Reg.EBX, mem(Reg.ESI, disp=RECORDS + 8))
    asm.mov(mem(Reg.ESI, disp=SCRATCH + 8), Reg.EBX)
    asm.add(Reg.EAX, Reg.EBX)
    asm.mov(mem(Reg.ESI, disp=SCRATCH + 12), Reg.EAX)  # checksum
    asm.pop(Reg.EBX)
    epilogue(asm)

    # method1..3: small field updates (cold).
    for method, disp in (("method1", 4), ("method2", 8), ("method3", 12)):
        asm.label(method)
        prologue(asm)
        asm.mov(Reg.ESI, mem(Reg.EBP, disp=8))
        asm.mov(Reg.EAX, mem(Reg.ESI, disp=RECORDS + disp))
        asm.inc(Reg.EAX)
        asm.mov(mem(Reg.ESI, disp=RECORDS + disp), Reg.EAX)
        epilogue(asm)

    program = asm.assemble()
    # Patch the vtable now that method addresses are known.
    vtable = [
        program.labels["method0"],
        program.labels["method1"],
        program.labels["method2"],
        program.labels["method3"],
    ]
    blob = b"".join(p.to_bytes(4, "little") for p in vtable)
    program.data[VTABLE] = blob
    return program


register(
    Workload(
        name="vortex",
        category="SPECint",
        description="object DB: skewed virtual dispatch, record copies",
        build=build,
        paper_uop_reduction=0.24,
        paper_load_reduction=0.34,
        paper_ipc_gain=0.33,
    )
)
