"""PowerPoint analogue: shape-list rendering over a large working set.

Heavy stack/call traffic gives big uop removal (32% in the paper), but a
working set that spills far past the L2 keeps IPC memory-bound — removal
barely moves the bottom line (6% IPC gain).
"""

from __future__ import annotations

import random

from repro.workloads.base import BIG_DATA_BASE, DATA_BASE, Workload, prologue, epilogue, register
from repro.x86.assembler import Assembler, Program, mem
from repro.x86.instructions import Cond, Imm
from repro.x86.registers import Reg

SHAPES = BIG_DATA_BASE  # 16-byte shapes spread over ~1MB
STRIDE = 16 * 67  # prime-ish stride defeats spatial locality
SHAPE_SLOTS = 1024


def build(scale: int, seed: int) -> Program:
    rng = random.Random(seed)
    asm = Assembler()
    for i in range(SHAPE_SLOTS):
        address = SHAPES + (i * STRIDE) % (1 << 20)
        words = [rng.getrandbits(12), rng.getrandbits(12), rng.getrandbits(8), 0]
        asm.data_words(address, words)

    iterations = 260 * scale
    asm.mov(Reg.ECX, Imm(iterations))
    asm.xor(Reg.EDI, Reg.EDI)

    asm.label("loop")
    # &shape[i] with the scattering stride
    asm.mov(Reg.ESI, Reg.EDI)
    asm.imul(Reg.ESI, Imm(STRIDE))
    asm.and_(Reg.ESI, Imm((1 << 20) - 1))
    asm.push(Reg.ECX)
    asm.push(Reg.ESI)
    asm.call("render")
    asm.add(Reg.ESP, Imm(4))
    asm.pop(Reg.ECX)
    asm.inc(Reg.EDI)
    asm.and_(Reg.EDI, Imm(SHAPE_SLOTS - 1))
    asm.dec(Reg.ECX)
    asm.jcc(Cond.NZ, "loop")
    asm.ret()

    # render(offset): transform x/y, accumulate bounding box.
    asm.label("render")
    prologue(asm)
    asm.mov(Reg.ESI, mem(Reg.EBP, disp=8))
    asm.push(Reg.EBX)
    asm.mov(Reg.EAX, mem(Reg.ESI, disp=SHAPES))  # x  (cold: L2/mem miss)
    asm.mov(Reg.EDX, mem(Reg.ESI, disp=SHAPES + 4))  # y
    asm.add(Reg.EAX, Imm(17))
    asm.add(Reg.EDX, Imm(9))
    asm.mov(Reg.EBX, mem(Reg.ESI, disp=SHAPES + 8))  # style
    asm.and_(Reg.EBX, Imm(7))
    asm.shl(Reg.EAX, Imm(1))
    asm.add(Reg.EAX, Reg.EDX)
    asm.add(Reg.EAX, Reg.EBX)
    asm.mov(mem(Reg.ESI, disp=SHAPES + 12), Reg.EAX)  # bbox checksum
    asm.pop(Reg.EBX)
    epilogue(asm)
    return asm.assemble()


register(
    Workload(
        name="power",
        category="Business",
        description="scattered shape rendering; memory-bound, call-heavy",
        build=build,
        paper_uop_reduction=0.32,
        paper_load_reduction=0.34,
        paper_ipc_gain=0.06,
    )
)
