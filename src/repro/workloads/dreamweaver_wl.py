"""DreamWeaver analogue: DOM-tree walk with per-node-type dispatch.

Virtual dispatch over a skewed node-type mix plus attribute scanning in
tiny helper functions — call- and stack-heavy, with large removal (28%)
and IPC gains (26%) in the paper.
"""

from __future__ import annotations

import random

from repro.workloads.base import DATA_BASE, Workload, prologue, epilogue, register
from repro.x86.assembler import Assembler, Program, mem
from repro.x86.instructions import Cond, Imm
from repro.x86.registers import Reg

HANDLERS = DATA_BASE  # 3 handler pointers
NODES = DATA_BASE + 0x100  # 16-byte nodes: type, attr_len, value, pad
ATTRS = DATA_BASE + 0x4000  # attribute bytes


def build(scale: int, seed: int) -> Program:
    rng = random.Random(seed)
    node_count = 192
    nodes: list[int] = []
    for _ in range(node_count):
        ntype = 0 if rng.random() < 0.85 else rng.randrange(1, 3)
        nodes.extend((ntype, rng.randrange(2, 6), rng.getrandbits(12), 0))

    asm = Assembler()
    asm.data_words(NODES, nodes)
    asm.data_bytes(ATTRS, bytes(rng.getrandbits(7) for _ in range(1024)))

    iterations = 340 * scale
    asm.mov(Reg.ECX, Imm(iterations))
    asm.xor(Reg.EDI, Reg.EDI)

    asm.label("walk")
    asm.mov(Reg.ESI, Reg.EDI)
    asm.shl(Reg.ESI, Imm(4))
    asm.mov(Reg.EAX, mem(Reg.ESI, disp=NODES))  # node->type
    asm.mov(Reg.EDX, mem(index=Reg.EAX, scale=4, disp=HANDLERS))
    asm.push(Reg.ECX)
    asm.push(Reg.ESI)
    asm.call(Reg.EDX)
    asm.add(Reg.ESP, Imm(4))
    asm.pop(Reg.ECX)
    asm.inc(Reg.EDI)
    asm.and_(Reg.EDI, Imm(node_count - 1))
    asm.dec(Reg.ECX)
    asm.jcc(Cond.NZ, "walk")
    asm.ret()

    # handler0: scan attributes, sum bytes (hot).
    asm.label("handler0")
    prologue(asm)
    asm.mov(Reg.ESI, mem(Reg.EBP, disp=8))
    asm.push(Reg.EBX)
    asm.mov(Reg.ECX, mem(Reg.ESI, disp=NODES + 4))  # attr_len (2-5)
    asm.mov(Reg.EDX, mem(Reg.ESI, disp=NODES + 8))  # value as attr offset
    asm.and_(Reg.EDX, Imm(1023 - 8))
    asm.xor(Reg.EAX, Reg.EAX)
    asm.label("scan")
    asm.movzx(Reg.EBX, mem(index=Reg.EDX, disp=ATTRS, size=1))
    asm.add(Reg.EAX, Reg.EBX)
    asm.inc(Reg.EDX)
    asm.dec(Reg.ECX)
    asm.jcc(Cond.NZ, "scan")
    asm.mov(mem(Reg.ESI, disp=NODES + 8), Reg.EAX)
    asm.pop(Reg.EBX)
    epilogue(asm)

    # handler1/2: style/value tweaks (cold).
    asm.label("handler1")
    prologue(asm)
    asm.mov(Reg.ESI, mem(Reg.EBP, disp=8))
    asm.mov(Reg.EAX, mem(Reg.ESI, disp=NODES + 8))
    asm.shl(Reg.EAX, Imm(1))
    asm.mov(mem(Reg.ESI, disp=NODES + 8), Reg.EAX)
    epilogue(asm)

    asm.label("handler2")
    prologue(asm)
    asm.mov(Reg.ESI, mem(Reg.EBP, disp=8))
    asm.mov(Reg.EAX, mem(Reg.ESI, disp=NODES + 8))
    asm.xor(Reg.EAX, Imm(0x5A5A))
    asm.mov(mem(Reg.ESI, disp=NODES + 8), Reg.EAX)
    epilogue(asm)

    program = asm.assemble()
    handlers = [
        program.labels["handler0"],
        program.labels["handler1"],
        program.labels["handler2"],
    ]
    program.data[HANDLERS] = b"".join(p.to_bytes(4, "little") for p in handlers)
    return program


register(
    Workload(
        name="dream",
        category="Content",
        description="DOM walk with skewed handler dispatch + attr scans",
        build=build,
        paper_uop_reduction=0.28,
        paper_load_reduction=0.30,
        paper_ipc_gain=0.26,
    )
)
