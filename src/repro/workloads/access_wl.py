"""Access analogue: B-tree-ish index search with record updates.

Database-style control: a short comparison ladder per node (moderately
biased), a descent pointer chase, and a leaf update — the middle of the
paper's desktop pack (21% IPC gain).
"""

from __future__ import annotations

import random

from repro.workloads.base import DATA_BASE, Workload, register
from repro.x86.assembler import Assembler, Program, mem
from repro.x86.instructions import Cond, Imm
from repro.x86.registers import Reg

NODES = DATA_BASE  # 24-byte nodes: k0, k1, k2, child0, child1, child2
LEAVES = DATA_BASE + 0x6000  # 8-byte leaves: key, count
QUERIES = DATA_BASE + 0xC000


def build(scale: int, seed: int) -> Program:
    rng = random.Random(seed)
    depth = 3
    fanout = 3
    node_total = sum(fanout**d for d in range(depth))  # 13 internal nodes
    leaf_count = fanout**depth  # 27 leaves

    keys = sorted(rng.sample(range(1, 1 << 20), node_total * 3 + leaf_count))
    leaf_keys = keys[: leaf_count]

    nodes: list[int] = []
    index = 0
    for level in range(depth):
        for n in range(fanout**level):
            base = rng.randrange(1 << 18, 1 << 19)
            k = sorted(rng.sample(range(1, 1 << 20), 3))
            child_level_start = index + (fanout**level - n) + n * fanout
            children = []
            for c in range(fanout):
                child_index = child_level_start + c
                if level + 1 < depth:
                    children.append(NODES + child_index * 24)
                else:
                    children.append(LEAVES + ((n * fanout + c) % leaf_count) * 8)
            nodes.extend(k + children)
            index += 1

    leaves: list[int] = []
    for key in leaf_keys:
        leaves.extend((key, 0))
    # Database queries are heavily skewed toward a hot range (think an
    # index scan over recent records): 85% of lookups take one descent
    # path, so most comparisons are biased and frames grow; the cold 15%
    # provide the unbiased exits that keep desktop coverage below SPEC's.
    hot_key = 1 << 19
    queries = [
        hot_key if rng.random() < 0.85 else rng.getrandbits(20) for _ in range(256)
    ]

    asm = Assembler()
    asm.data_words(NODES, nodes)
    asm.data_words(LEAVES, leaves)
    asm.data_words(QUERIES, queries)

    iterations = 700 * scale
    asm.mov(Reg.ECX, Imm(iterations))
    asm.xor(Reg.EDI, Reg.EDI)

    asm.label("loop")
    asm.mov(Reg.EAX, mem(index=Reg.EDI, scale=4, disp=QUERIES))
    asm.mov(Reg.ESI, Imm(NODES))  # root
    asm.mov(Reg.EDX, Imm(depth))

    asm.label("descend")
    asm.cmp(Reg.EAX, mem(Reg.ESI))  # key vs k0
    asm.jcc(Cond.B, "child0")
    asm.cmp(Reg.EAX, mem(Reg.ESI, disp=4))  # key vs k1
    asm.jcc(Cond.B, "child1")
    asm.mov(Reg.ESI, mem(Reg.ESI, disp=20))  # child2
    asm.jmp("next_level")
    asm.label("child0")
    asm.mov(Reg.ESI, mem(Reg.ESI, disp=12))
    asm.jmp("next_level")
    asm.label("child1")
    asm.mov(Reg.ESI, mem(Reg.ESI, disp=16))
    asm.label("next_level")
    asm.dec(Reg.EDX)
    asm.jcc(Cond.NZ, "descend")

    # Leaf update through a helper (stack traffic the optimizer removes).
    asm.push(Reg.ECX)
    asm.push(Reg.ESI)
    asm.call("bump_leaf")
    asm.add(Reg.ESP, Imm(4))
    asm.pop(Reg.ECX)
    asm.inc(Reg.EDI)
    asm.and_(Reg.EDI, Imm(255))
    asm.dec(Reg.ECX)
    asm.jcc(Cond.NZ, "loop")
    asm.ret()

    # void bump_leaf(leaf*): count++ (read-modify-write).
    asm.label("bump_leaf")
    asm.push(Reg.EBP)
    asm.mov(Reg.EBP, Reg.ESP)
    asm.mov(Reg.ESI, mem(Reg.EBP, disp=8))
    asm.mov(Reg.EBX, mem(Reg.ESI, disp=4))
    asm.inc(Reg.EBX)
    asm.mov(mem(Reg.ESI, disp=4), Reg.EBX)
    asm.pop(Reg.EBP)
    asm.ret()
    return asm.assemble()


register(
    Workload(
        name="access",
        category="Business",
        description="B-tree search ladder + leaf updates",
        build=build,
        paper_uop_reduction=0.22,
        paper_load_reduction=0.20,
        paper_ipc_gain=0.21,
    )
)
