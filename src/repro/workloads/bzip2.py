"""bzip2 analogue: block-sorting frequency counting.

The paper singles bzip2 out as the benchmark where CSE dominates —
"CSE is able to detect and remove redundant loads from a critical loop"
(§6.4).  The critical loop here re-loads the same source word once per
extracted byte, exactly the register-pressure-induced redundancy x86's
eight registers force on a compiler; frame-level CSE folds the reloads.
"""

from __future__ import annotations

import random

from repro.workloads.base import DATA_BASE, Workload, data_words, register
from repro.x86.assembler import Assembler, Program
from repro.x86.instructions import Cond, Imm
from repro.x86.registers import Reg
from repro.x86.assembler import mem

COUNTS = DATA_BASE  # 256 dword counters
SOURCE = DATA_BASE + 0x1000  # source block


def build(scale: int, seed: int) -> Program:
    rng = random.Random(seed)
    words = 512
    asm = Assembler()
    asm.data_words(COUNTS, [0] * 256)
    asm.data_words(SOURCE, data_words(rng, words))

    iterations = 22 * scale
    asm.mov(Reg.ECX, Imm(iterations))
    asm.label("outer")
    asm.mov(Reg.ESI, Imm(SOURCE))
    asm.mov(Reg.EDI, Imm(words // 8))  # words per pass

    asm.label("scan")
    # Byte 0: load, extract, bump counter.
    for shift in (0, 8, 16, 24):
        asm.mov(Reg.EAX, mem(Reg.ESI))  # re-loaded per byte: CSE fodder
        if shift:
            asm.shr(Reg.EAX, Imm(shift))
        asm.and_(Reg.EAX, Imm(0xFF))
        asm.mov(Reg.EDX, mem(index=Reg.EAX, scale=4, disp=COUNTS))
        asm.inc(Reg.EDX)
        asm.mov(mem(index=Reg.EAX, scale=4, disp=COUNTS), Reg.EDX)
    asm.add(Reg.ESI, Imm(4))
    # Run detection: rarely-taken escape branch (becomes an assertion).
    asm.mov(Reg.EAX, mem(Reg.ESI))
    asm.cmp(Reg.EAX, Imm(0x01010101))
    asm.jcc(Cond.Z, "run_found")
    asm.label("resume")
    asm.dec(Reg.EDI)
    asm.jcc(Cond.NZ, "scan")

    asm.dec(Reg.ECX)
    asm.jcc(Cond.NZ, "outer")
    asm.ret()

    asm.label("run_found")  # effectively never taken with random data
    asm.inc(Reg.EBX)
    asm.jmp("resume")
    program = asm.assemble()
    return program


register(
    Workload(
        name="bzip2",
        category="SPECint",
        description="block-sort frequency counting; CSE-dominant critical loop",
        build=build,
        paper_uop_reduction=0.23,
        paper_load_reduction=0.30,
        paper_ipc_gain=0.28,
    )
)
