"""Desktop application workload analogues (Table 1, bottom half).

Importing this module registers all seven desktop workloads.
"""

from repro.workloads import (  # noqa: F401  (registration side effects)
    access_wl,
    dreamweaver_wl,
    excel_wl,
    lotus_wl,
    photoshop_wl,
    powerpoint_wl,
    soundforge_wl,
)
