"""LotusNotes analogue: mail-record filtering and counting.

Record traversal with short byte-string comparisons and status-flag
updates through small helpers — a balanced desktop profile (22% removal,
11% IPC in the paper).
"""

from __future__ import annotations

import random

from repro.workloads.base import DATA_BASE, Workload, prologue, epilogue, register
from repro.x86.assembler import Assembler, Program, mem
from repro.x86.instructions import Cond, Imm
from repro.x86.registers import Reg

RECORDS = DATA_BASE  # 16-byte records: flags, sender, subj_off, count
SUBJECTS = DATA_BASE + 0x4000
COUNTERS = DATA_BASE + 0x8000


def build(scale: int, seed: int) -> Program:
    rng = random.Random(seed)
    record_count = 256
    records: list[int] = []
    for _ in range(record_count):
        records.extend(
            (
                rng.getrandbits(4),
                rng.randrange(16),
                rng.randrange(0, 1024 - 8),
                0,
            )
        )

    asm = Assembler()
    asm.data_words(RECORDS, records)
    asm.data_bytes(SUBJECTS, bytes(rng.choice(b"REWFWD: ") for _ in range(1024)))
    asm.data_words(COUNTERS, [0] * 16)

    iterations = 420 * scale
    asm.mov(Reg.ECX, Imm(iterations))
    asm.xor(Reg.EDI, Reg.EDI)

    asm.label("loop")
    asm.push(Reg.ECX)
    asm.call("classify")
    asm.pop(Reg.ECX)
    asm.inc(Reg.EDI)
    asm.and_(Reg.EDI, Imm(record_count - 1))
    asm.dec(Reg.ECX)
    asm.jcc(Cond.NZ, "loop")
    asm.ret()

    # classify(): check "RE" prefix, bump sender counter, set flag.
    asm.label("classify")
    prologue(asm)
    asm.mov(Reg.ESI, Reg.EDI)
    asm.shl(Reg.ESI, Imm(4))
    asm.mov(Reg.EDX, mem(Reg.ESI, disp=RECORDS + 8))  # subj_off
    asm.movzx(Reg.EAX, mem(index=Reg.EDX, disp=SUBJECTS, size=1))
    asm.cmp(Reg.EAX, Imm(ord("R")))
    asm.jcc(Cond.NZ, "not_reply")
    asm.movzx(Reg.EAX, mem(index=Reg.EDX, disp=SUBJECTS + 1, size=1))
    asm.cmp(Reg.EAX, Imm(ord("E")))
    asm.jcc(Cond.NZ, "not_reply")
    asm.mov(Reg.EAX, mem(Reg.ESI, disp=RECORDS))  # flags
    asm.or_(Reg.EAX, Imm(0x10))  # mark as reply
    asm.mov(mem(Reg.ESI, disp=RECORDS), Reg.EAX)
    asm.label("not_reply")
    asm.mov(Reg.EDX, mem(Reg.ESI, disp=RECORDS + 4))  # sender
    asm.mov(Reg.EAX, mem(index=Reg.EDX, scale=4, disp=COUNTERS))
    asm.inc(Reg.EAX)
    asm.mov(mem(index=Reg.EDX, scale=4, disp=COUNTERS), Reg.EAX)
    asm.mov(Reg.EAX, mem(Reg.ESI, disp=RECORDS + 12))  # record count
    asm.inc(Reg.EAX)
    asm.mov(mem(Reg.ESI, disp=RECORDS + 12), Reg.EAX)
    epilogue(asm)
    return asm.assemble()


register(
    Workload(
        name="lotus",
        category="Business",
        description="mail-record classification, prefix checks, counters",
        build=build,
        paper_uop_reduction=0.22,
        paper_load_reduction=0.26,
        paper_ipc_gain=0.11,
    )
)
