"""Profile-guided frame construction: feed a sweep back into a run.

``tune pgo`` reads a prior sweep's records (from a sweep report file or
a v2 run ledger), picks the best frame-construction parameters *per
workload* from the profile, then runs a baseline (the paper's default
RPO operating point) and the tuned configuration side by side and
reports the per-workload IPC delta.  Cells the sweep already computed
come straight out of the artifact store, so the second run typically
only pays for the baseline cells the sweep happened not to contain.
"""

from __future__ import annotations

from dataclasses import replace

from repro.artifacts.runner import MatrixTask, run_matrix
from repro.artifacts.store import ArtifactStore
from repro.metrics import MetricsRegistry
from repro.tune.engine import SweepSettings, TuneError
from repro.tune.space import FULL_PASS_SPEC, TunePoint

__all__ = ["format_pgo", "run_pgo", "select_frame_params"]


def select_frame_params(records: list[dict]) -> dict[str, TunePoint]:
    """Best frame-construction parameters per workload, from a profile.

    Only replay points that ran the optimizer qualify (PGO tunes *how
    frames are built*, with the full pipeline held fixed); ties break
    on the point label so selection is deterministic.
    """
    best: dict[str, tuple[float, str, TunePoint]] = {}
    for record in records:
        point = record["point"]
        if point["frontend"] != "replay" or point["pass_spec"] is None:
            continue
        candidate = TunePoint.from_json(point)
        ipc = record["entry"]["ipc_x86"]
        key = (-ipc, candidate.label())
        workload = record["workload"]
        if workload not in best or key < best[workload][:2]:
            best[workload] = (*key, candidate)
    if not best:
        raise TuneError(
            "profile contains no optimized replay cells to select from"
        )
    # PGO carries over the constructor knobs only: the pass pipeline is
    # pinned at the full spec so the delta isolates frame construction.
    return {
        workload: replace(
            entry[2], pass_spec=FULL_PASS_SPEC, frontend="replay"
        )
        for workload, entry in best.items()
    }


def run_pgo(
    records: list[dict],
    settings: SweepSettings | None = None,
    store: ArtifactStore | None = None,
    metrics: MetricsRegistry | None = None,
) -> dict:
    """Run baseline-vs-tuned per workload and report the delta table."""
    settings = settings or SweepSettings()
    selected = select_frame_params(records)
    baseline = TunePoint()  # the paper's default RPO operating point
    tasks: list[MatrixTask] = []
    plan: list[tuple[str, str, TunePoint]] = []
    for workload in sorted(selected):
        for role, point in (("base", baseline), ("tuned", selected[workload])):
            plan.append((workload, role, point))
            tasks.append(
                MatrixTask(
                    workload=workload,
                    config=point.experiment_config(),
                    scale=settings.scale,
                    seed=settings.trace_seed,
                )
            )
    run = run_matrix(tasks, jobs=settings.jobs, store=store, metrics=metrics)
    cells: dict[tuple[str, str], tuple[TunePoint, float]] = {}
    for (workload, role, point), result in zip(plan, run.results):
        cells[(workload, role)] = (point, result.ipc_x86)
    rows = []
    for workload in sorted(selected):
        base_point, base_ipc = cells[(workload, "base")]
        tuned_point, tuned_ipc = cells[(workload, "tuned")]
        delta = (tuned_ipc / base_ipc - 1.0) if base_ipc > 0 else 0.0
        rows.append(
            {
                "workload": workload,
                "base_ipc": round(base_ipc, 6),
                "tuned_ipc": round(tuned_ipc, 6),
                "delta": round(delta, 6),
                "params": {
                    "frame_max_uops": tuned_point.frame_max_uops,
                    "promotion_threshold": tuned_point.promotion_threshold,
                    "backedge_close_uops": tuned_point.backedge_close_uops,
                },
                "tuned_label": tuned_point.label(),
            }
        )
    if metrics is not None:
        metrics.counter("tune.pgo_runs").inc()
    deltas = [row["delta"] for row in rows]
    return {
        "schema": "repro-uopt/tune-pgo",
        "version": 1,
        "baseline_label": baseline.label(),
        "rows": rows,
        "mean_delta": round(sum(deltas) / len(deltas), 6) if deltas else 0.0,
    }


def format_pgo(report: dict) -> str:
    """Pretty per-workload delta table."""
    lines = []
    header = (
        f"{'workload':<10} {'base IPC':>9} {'tuned IPC':>10} {'delta':>8}  "
        f"tuned params"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in report["rows"]:
        params = row["params"]
        lines.append(
            f"{row['workload']:<10} {row['base_ipc']:>9.3f} "
            f"{row['tuned_ipc']:>10.3f} {row['delta'] * 100:>+7.2f}%  "
            f"frame={params['frame_max_uops']} "
            f"promo={params['promotion_threshold']} "
            f"backedge={params['backedge_close_uops']}"
        )
    lines.append(
        f"{'mean':<10} {'':>9} {'':>10} {report['mean_delta'] * 100:>+7.2f}%"
    )
    return "\n".join(lines)
