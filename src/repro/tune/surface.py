"""Sensitivity surfaces: aggregate sweep records into a fig10-style report.

The surface generalizes Figure 10: instead of six leave-one-out bars at
one operating point, it reports — per workload and sliced by workload
category (the :mod:`repro.scenarios` characterization axis) —

* best/worst configurations by IPC,
* the marginal contribution of each optimizer pass (leave-one-out
  relative IPC *and* presence/absence subset deltas),
* frame-size and fill-unit response curves,
* the exact fig10 ablation slice whenever the sweep contains the RP,
  RPO, and leave-one-out points (``default_space`` always does).

Everything is computed from the canonical record list alone, so a
report built from a served sweep equals one built locally, and
``surface_digest`` is pinnable in CI.
"""

from __future__ import annotations

import hashlib
import json

from repro.optimizer.pipeline import PASS_NAMES
from repro.tune.space import FULL_PASS_SPEC, TunePoint, ablated_pass_spec
from repro.workloads import get_workload

__all__ = ["build_surface", "format_surface", "surface_digest"]

SURFACE_SCHEMA = "repro-uopt/tune-surface"
SURFACE_VERSION = 1

#: Ablatable passes (everything but the always-on dce terminal).
_ABLATABLE = tuple(n for n in PASS_NAMES if n != "dce")

#: The default-knob operating point, for locating RP/RPO/ablation cells.
_DEFAULTS = TunePoint()


def _round(value: float) -> float:
    return round(float(value), 6)


def _is_default_replay(point: dict) -> bool:
    """True when the point sits at the paper's replay operating point
    (default constructor knobs), whatever its pass spec."""
    return (
        point["frontend"] == "replay"
        and point["frame_max_uops"] == _DEFAULTS.frame_max_uops
        and point["promotion_threshold"] == _DEFAULTS.promotion_threshold
        and point["backedge_close_uops"] == _DEFAULTS.backedge_close_uops
    )


def build_surface(records: list[dict]) -> dict:
    """Aggregate canonical sweep records into the surface report."""
    by_workload: dict[str, list[dict]] = {}
    for record in records:
        by_workload.setdefault(record["workload"], []).append(record)

    workloads: dict[str, dict] = {}
    fig10: dict[str, dict] = {}
    frame_response: dict[str, list] = {}
    fill_response: dict[str, list] = {}
    categories: dict[str, list[str]] = {}

    for workload in sorted(by_workload):
        cells = by_workload[workload]
        try:
            category = get_workload(workload).category
        except KeyError:
            category = "Unknown"
        categories.setdefault(category, []).append(workload)

        replay = [c for c in cells if c["point"]["frontend"] == "replay"]
        optimized = [c for c in replay if c["point"]["pass_spec"] is not None]
        ranked = sorted(
            optimized,
            key=lambda c: (-c["entry"]["ipc_x86"], c["label"]),
        )
        rp = _find(cells, lambda p: _is_default_replay(p) and p["pass_spec"] is None)
        rpo = _find(
            cells,
            lambda p: _is_default_replay(p) and p["pass_spec"] == FULL_PASS_SPEC,
        )
        entry = {
            "category": category,
            "cells": len(cells),
            "rp_ipc": _round(rp["entry"]["ipc_x86"]) if rp else None,
            "rpo_ipc": _round(rpo["entry"]["ipc_x86"]) if rpo else None,
        }
        if ranked:
            entry["best"] = _cell_summary(ranked[0])
            entry["worst"] = _cell_summary(ranked[-1])
            if rp and rp["entry"]["ipc_x86"] > 0:
                entry["best_gain"] = _round(
                    ranked[0]["entry"]["ipc_x86"] / rp["entry"]["ipc_x86"] - 1.0
                )
        workloads[workload] = entry

        ablation = _fig10_slice(cells, rp, rpo)
        if ablation:
            fig10[workload] = ablation

        curve = sorted(
            {
                c["point"]["frame_max_uops"]: _round(c["entry"]["ipc_x86"])
                for c in optimized
                if c["point"]["pass_spec"] == FULL_PASS_SPEC
                and c["point"]["promotion_threshold"]
                == _DEFAULTS.promotion_threshold
                and c["point"]["backedge_close_uops"]
                == _DEFAULTS.backedge_close_uops
            }.items()
        )
        if len(curve) > 1:
            frame_response[workload] = [list(pair) for pair in curve]

        tcache_curve = sorted(
            {
                c["point"]["fill_max_uops"]: _round(c["entry"]["ipc_x86"])
                for c in cells
                if c["point"]["frontend"] == "tcache"
                and c["point"]["fill_max_branches"]
                == _DEFAULTS.fill_max_branches
            }.items()
        )
        if len(tcache_curve) > 1:
            fill_response[workload] = [list(pair) for pair in tcache_curve]

    return {
        "schema": SURFACE_SCHEMA,
        "version": SURFACE_VERSION,
        "cells": len(records),
        "workloads": workloads,
        "pass_marginals": _pass_marginals(by_workload),
        "frame_response": frame_response,
        "fill_response": fill_response,
        "fig10": fig10,
        "slices": _category_slices(categories, workloads),
    }


def _find(cells: list[dict], predicate) -> dict | None:
    for cell in cells:
        if predicate(cell["point"]):
            return cell
    return None


def _cell_summary(cell: dict) -> dict:
    point = cell["point"]
    return {
        "label": cell["label"],
        "pass_spec": point["pass_spec"],
        "frame_max_uops": point["frame_max_uops"],
        "promotion_threshold": point["promotion_threshold"],
        "backedge_close_uops": point["backedge_close_uops"],
        "ipc_x86": _round(cell["entry"]["ipc_x86"]),
        "uop_reduction": _round(cell["entry"].get("uop_reduction", 0.0)),
    }


def _fig10_slice(cells: list[dict], rp: dict | None, rpo: dict | None) -> dict:
    """Relative-IPC ablation bars, exactly fig10's normalization:
    ``(ipc_variant - ipc_RP) / (ipc_RPO - ipc_RP)``."""
    if rp is None or rpo is None:
        return {}
    span = rpo["entry"]["ipc_x86"] - rp["entry"]["ipc_x86"]
    if span == 0:
        return {}
    out: dict[str, float] = {}
    for name in _ABLATABLE:
        spec = ablated_pass_spec(name)
        cell = _find(
            cells,
            lambda p, spec=spec: _is_default_replay(p) and p["pass_spec"] == spec,
        )
        if cell is not None:
            out[f"no-{name}"] = _round(
                (cell["entry"]["ipc_x86"] - rp["entry"]["ipc_x86"]) / span
            )
    return out


def _pass_marginals(by_workload: dict[str, list[dict]]) -> dict:
    """Per-pass sensitivity across the whole sweep.

    ``subset_delta`` is mean IPC over optimized cells whose spec
    contains the pass minus the mean over cells without it — a coarse
    marginal that uses *every* replay point, not just the canonical
    ablation pair.
    """
    marginals: dict[str, dict] = {}
    for name in _ABLATABLE:
        with_pass: list[float] = []
        without_pass: list[float] = []
        loo: list[float] = []
        for workload, cells in by_workload.items():
            rp = _find(
                cells, lambda p: _is_default_replay(p) and p["pass_spec"] is None
            )
            rpo = _find(
                cells,
                lambda p: _is_default_replay(p)
                and p["pass_spec"] == FULL_PASS_SPEC,
            )
            ablation = _fig10_slice(cells, rp, rpo)
            if f"no-{name}" in ablation:
                loo.append(ablation[f"no-{name}"])
            for cell in cells:
                point = cell["point"]
                if point["frontend"] != "replay" or point["pass_spec"] is None:
                    continue
                names = point["pass_spec"].split(",")
                (with_pass if name in names else without_pass).append(
                    cell["entry"]["ipc_x86"]
                )
        entry: dict = {}
        if loo:
            # Mean leave-one-out bar: 1.0 means removing the pass costs
            # nothing; lower means the pass carries more of RPO's gain.
            entry["leave_one_out"] = _round(sum(loo) / len(loo))
        if with_pass and without_pass:
            entry["subset_delta"] = _round(
                sum(with_pass) / len(with_pass)
                - sum(without_pass) / len(without_pass)
            )
        if entry:
            marginals[name] = entry
    return marginals


def _category_slices(
    categories: dict[str, list[str]], workloads: dict[str, dict]
) -> dict:
    slices: dict[str, dict] = {}
    for category in sorted(categories):
        members = categories[category]
        gains = [
            workloads[w]["best_gain"]
            for w in members
            if "best_gain" in workloads[w]
        ]
        entry: dict = {"workloads": sorted(members)}
        if gains:
            entry["mean_best_gain"] = _round(sum(gains) / len(gains))
        slices[category] = entry
    return slices


def surface_digest(surface: dict) -> str:
    """SHA-256 over the canonical dump — pinnable in CI."""
    blob = json.dumps(surface, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def format_surface(surface: dict) -> str:
    """Pretty multi-section table for terminals."""
    lines: list[str] = []
    lines.append(
        f"tune surface: {surface['cells']} cells over "
        f"{len(surface['workloads'])} workloads"
    )
    lines.append("")
    header = (
        f"{'workload':<10} {'cat':<9} {'RP':>7} {'RPO':>7} "
        f"{'best':>7} {'gain%':>7}  best point"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for workload, entry in surface["workloads"].items():
        best = entry.get("best")
        lines.append(
            f"{workload:<10} {entry['category'][:9]:<9} "
            f"{_fmt(entry['rp_ipc']):>7} {_fmt(entry['rpo_ipc']):>7} "
            f"{_fmt(best['ipc_x86']) if best else '-':>7} "
            f"{_fmt(entry.get('best_gain', None), pct=True):>7}  "
            f"{_describe(best) if best else '-'}"
        )
    if surface["pass_marginals"]:
        lines.append("")
        lines.append("pass marginals (leave-one-out rel. IPC / subset IPC delta):")
        for name, entry in surface["pass_marginals"].items():
            lines.append(
                f"  {name:<5} loo={_fmt(entry.get('leave_one_out'))} "
                f"delta={_fmt(entry.get('subset_delta'))}"
            )
    if surface["fig10"]:
        lines.append("")
        lines.append("fig10 ablation slice (relative IPC, 1.0 = RPO):")
        for workload, bars in surface["fig10"].items():
            bar_text = " ".join(f"{k}={v:.3f}" for k, v in bars.items())
            lines.append(f"  {workload:<10} {bar_text}")
    for title, curves, unit in (
        ("frame-size response (max_uops -> IPC)", surface["frame_response"], ""),
        ("fill-unit response (max_uops -> IPC)", surface["fill_response"], ""),
    ):
        if curves:
            lines.append("")
            lines.append(f"{title}:")
            for workload, curve in curves.items():
                pts = " ".join(f"{int(x)}:{y:.3f}" for x, y in curve)
                lines.append(f"  {workload:<10} {pts}{unit}")
    if surface["slices"]:
        lines.append("")
        lines.append("category slices:")
        for category, entry in surface["slices"].items():
            gain = _fmt(entry.get("mean_best_gain"), pct=True)
            lines.append(
                f"  {category:<10} gain={gain:>7}  "
                f"({', '.join(entry['workloads'])})"
            )
    return "\n".join(lines)


def _fmt(value, pct: bool = False) -> str:
    if value is None:
        return "-"
    if pct:
        return f"{value * 100:+.2f}%"
    return f"{value:.3f}"


def _describe(best: dict) -> str:
    spec = best["pass_spec"] or "off"
    return (
        f"spec={spec} frame={best['frame_max_uops']} "
        f"promo={best['promotion_threshold']}"
    )
