"""The ``tune`` subcommand: sweep / report / pgo.

Usage::

    python -m repro.harness tune sweep --space smoke --jobs 4
    python -m repro.harness tune sweep --search random --samples 12 --seed 1
    python -m repro.harness tune sweep --service 127.0.0.1:9417 --out sweep.json
    python -m repro.harness tune sweep --emit-stats run.json   # v2 ledger
    python -m repro.harness tune report sweep.json             # or run.json
    python -m repro.harness tune pgo sweep.json --jobs 4

``sweep`` prints the sensitivity surface (table or ``--json``) plus two
digest lines on stdout — ``sweep digest`` (over the canonical record
list) and ``surface digest`` (over the aggregated report) — both of
which are deterministic across ``--jobs`` levels and local-vs-service
execution, and pinnable in CI.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.artifacts.store import ArtifactStore
from repro.metrics import (
    LedgerError,
    build_run_ledger,
    get_registry,
    profiled,
    write_ledger,
)
from repro.timing.config import ConfigError
from repro.tune.engine import SweepResult, SweepSettings, TuneError, run_sweep
from repro.tune.pgo import format_pgo, run_pgo
from repro.tune.space import default_space, smoke_space
from repro.tune.surface import build_surface, format_surface, surface_digest

__all__ = ["tune_main"]

SPACES = ("default", "smoke")


def _build_space(args):
    workloads = None
    if args.workloads:
        workloads = tuple(w for w in args.workloads.split(",") if w)
    if args.space == "smoke":
        return smoke_space(workloads)
    return default_space(workloads)


def _add_run_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=int, default=None)
    parser.add_argument("--trace-seed", type=int, default=1, metavar="N",
                        help="workload trace data seed (not the plan seed)")
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the artifact store: recompute everything, write nothing",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="artifact cache root (default: $REPRO_UOPT_CACHE_DIR "
        "or ~/.cache/repro-uopt)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="wrap the run in cProfile and print hotspots to stderr",
    )


def _store(args) -> ArtifactStore | None:
    return None if args.no_cache else ArtifactStore(args.cache_dir)


def _client(args):
    if not args.service:
        return None
    from repro.service.client import Client

    host, _, port = args.service.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(
            f"tune: --service must be HOST:PORT, got {args.service!r}"
        )
    return Client(host=host, port=int(port))


def sweep_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness tune sweep",
        description="Plan and run an autotuning sweep, print the "
        "sensitivity surface.",
    )
    parser.add_argument("--space", choices=SPACES, default="default")
    parser.add_argument(
        "--search", choices=("grid", "random", "halving"), default="grid",
    )
    parser.add_argument(
        "--seed", type=int, default=1,
        help="plan seed for random/halving sampling",
    )
    parser.add_argument(
        "--samples", type=int, default=16,
        help="points sampled by random/halving search",
    )
    parser.add_argument(
        "--workloads", default=None, metavar="A,B,...",
        help="override the space's workload list",
    )
    parser.add_argument(
        "--service", default=None, metavar="HOST:PORT",
        help="run cells on a serve/cluster instance instead of locally",
    )
    parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the sweep report (records + surface) as JSON",
    )
    parser.add_argument(
        "--emit-stats", default=None, metavar="FILE",
        help="write a v2 run ledger carrying the sweep section",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the surface as JSON instead of a table",
    )
    _add_run_flags(parser)
    args = parser.parse_args(argv)

    space = _build_space(args)
    settings = SweepSettings(
        search=args.search,
        seed=args.seed,
        samples=args.samples,
        scale=args.scale,
        trace_seed=args.trace_seed,
        jobs=args.jobs,
    )
    registry = get_registry()
    store = _store(args)
    client = _client(args)

    def progress(done: int, _total) -> None:
        print(f"[repro.tune] {done} cells done", file=sys.stderr, flush=True)

    try:
        with profiled(enabled=args.profile):
            result = run_sweep(
                space,
                settings,
                store=store,
                metrics=registry,
                client=client,
                progress=progress,
            )
    except (ConfigError, TuneError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    surface = build_surface(result.records)
    if args.json:
        print(json.dumps(surface, indent=2, sort_keys=True))
    else:
        print(format_surface(surface))
    print(f"sweep digest: {result.digest}")
    print(f"surface digest: {surface_digest(surface)}")
    print(
        f"[repro.tune] {len(result.records)} cells "
        f"({result.cells_cached} cached, {result.cells_computed} computed) "
        f"in {result.seconds:.2f}s "
        f"({'service' if client else f'jobs={result.jobs}'})",
        file=sys.stderr,
    )
    if args.out:
        report = result.to_json()
        report["schema"] = "repro-uopt/tune-sweep"
        report["version"] = 1
        report["surface"] = surface
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"[repro.tune] sweep report written to {args.out}", file=sys.stderr)
    if args.emit_stats:
        _emit_sweep_ledger(argv, args, result, store, registry)
    return 0


class _NoMatrix:
    """Ledger stand-in (the sweep runs outside a ResultMatrix)."""

    telemetry: list = []
    _results: dict = {}
    jobs = 1
    scale = None
    seed = None

    def __init__(self, store: ArtifactStore | None) -> None:
        self.store = store


def _emit_sweep_ledger(argv, args, result: SweepResult, store, registry) -> None:
    matrix = _NoMatrix(store)
    matrix.jobs = result.jobs
    matrix.scale = args.scale
    matrix.seed = args.trace_seed
    ledger = build_run_ledger(
        argv, ["tune-sweep"], matrix, registry=registry, sweep=result.to_json()
    )
    write_ledger(args.emit_stats, ledger)
    print(
        f"[repro.metrics] run ledger written to {args.emit_stats}",
        file=sys.stderr,
    )


def _load_records(path: str) -> list[dict]:
    """Sweep records from either a sweep report or a v2 run ledger."""
    try:
        with open(path) as fh:
            data = json.load(fh)
    except OSError as exc:
        raise LedgerError(str(exc))
    except ValueError as exc:
        raise LedgerError(f"{path} is not valid JSON: {exc}")
    if not isinstance(data, dict):
        raise LedgerError(f"{path}: expected a JSON object")
    if isinstance(data.get("sweep"), dict):  # v2 run ledger
        data = data["sweep"]
    records = data.get("records")
    if not isinstance(records, list) or not records:
        raise LedgerError(
            f"{path}: no sweep records (expected a `tune sweep --out` "
            f"report or a `--emit-stats` v2 ledger)"
        )
    return records


def report_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness tune report",
        description="Rebuild and print the sensitivity surface from a "
        "stored sweep report or v2 run ledger.",
    )
    parser.add_argument("file", help="sweep report or run-ledger JSON")
    parser.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)
    try:
        records = _load_records(args.file)
    except LedgerError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    surface = build_surface(records)
    if args.json:
        print(json.dumps(surface, indent=2, sort_keys=True))
    else:
        print(format_surface(surface))
    print(f"surface digest: {surface_digest(surface)}")
    return 0


def pgo_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness tune pgo",
        description="Select per-workload frame-construction parameters "
        "from a prior sweep and report the tuned-vs-baseline IPC delta.",
    )
    parser.add_argument("file", help="sweep report or run-ledger JSON")
    parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the PGO delta report as JSON",
    )
    parser.add_argument("--json", action="store_true")
    _add_run_flags(parser)
    args = parser.parse_args(argv)
    try:
        records = _load_records(args.file)
    except LedgerError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    settings = SweepSettings(
        scale=args.scale, trace_seed=args.trace_seed, jobs=args.jobs
    )
    try:
        with profiled(enabled=args.profile):
            report = run_pgo(
                records,
                settings,
                store=_store(args),
                metrics=get_registry(),
            )
    except (ConfigError, TuneError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(format_pgo(report))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"[repro.tune] pgo report written to {args.out}", file=sys.stderr)
    return 0


def tune_main(argv: list[str]) -> int:
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__.strip())
        return 0 if argv else 2
    command, rest = argv[0], argv[1:]
    if command == "sweep":
        return sweep_main(rest)
    if command == "report":
        return report_main(rest)
    if command == "pgo":
        return pgo_main(rest)
    print(f"tune: unknown command {command!r} (sweep | report | pgo)", file=sys.stderr)
    return 2
