"""Typed search space over the optimizer/frame-construction knobs.

A :class:`TunePoint` is one candidate configuration: a front end
(``replay`` or ``tcache``), an optimizer pass subset/order (or ``None``
for unoptimized rePLay — the paper's RP), the frame-constructor limits,
and the trace-cache fill-unit line limits.  Points map 1:1 onto
:class:`~repro.harness.experiment.ExperimentConfig` objects whose
fingerprints land in the artifact-store result key, so sweep cells
dedup against each other and against ordinary figure runs for free.

A :class:`TuneSpace` names the axes; the planner crosses them into a
deterministic point list.  ``default_space`` embeds the Figure 10
ablation (RP, RPO, and the six leave-one-out specs at the paper's
operating point) as an exact subset of the grid, so the sensitivity
surface generalizes fig10 rather than replacing it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields

from repro.harness.experiment import ExperimentConfig
from repro.optimizer.pipeline import (
    PASS_ALIASES,
    PASS_NAMES,
    OptimizerConfig,
    format_pass_spec,
    parse_pass_spec,
)
from repro.replay.constructor import ConstructorConfig
from repro.timing.config import ConfigError, FillUnitConfig, default_config
from repro.workloads import get_workload

__all__ = [
    "FULL_PASS_SPEC",
    "TunePoint",
    "TuneSpace",
    "ablated_pass_spec",
    "default_space",
    "smoke_space",
]

#: The full pipeline in canonical order — the RPO operating point.
FULL_PASS_SPEC = format_pass_spec(PASS_NAMES)


def ablated_pass_spec(name: str) -> str:
    """The leave-one-out spec for one Figure 10 legend name.

    Accepts canonical names and legend aliases (``asst`` for ``va``).
    """
    resolved = PASS_ALIASES.get(name, name)
    if resolved not in PASS_NAMES or resolved == "dce":
        raise ConfigError(
            "tune.ablation",
            f"cannot ablate {name!r} (choose from "
            f"{', '.join(n for n in PASS_NAMES if n != 'dce')})",
        )
    return format_pass_spec(tuple(n for n in PASS_NAMES if n != resolved))


@dataclass(frozen=True)
class TunePoint:
    """One candidate configuration in the search space.

    ``pass_spec`` is ``None`` for unoptimized rePLay (RP); the fill-unit
    fields only change behavior for the ``tcache`` front end, so replay
    points pin them at the defaults to avoid aliased grid cells.
    """

    frontend: str = "replay"  # 'replay' | 'tcache'
    pass_spec: str | None = FULL_PASS_SPEC
    frame_max_uops: int = 256
    promotion_threshold: int = 16
    backedge_close_uops: int = 128
    fill_max_uops: int = 32
    fill_max_branches: int = 3

    def validate(self) -> None:
        if self.frontend not in ("replay", "tcache"):
            raise ConfigError(
                "tune.frontend",
                f"must be 'replay' or 'tcache', got {self.frontend!r}",
            )
        if self.pass_spec is not None:
            parse_pass_spec(self.pass_spec)
        if self.frame_max_uops < 8:
            raise ConfigError(
                "tune.frame_max_uops",
                f"must be >= the constructor minimum frame (8 uops), "
                f"got {self.frame_max_uops}",
            )
        if self.promotion_threshold < 1:
            raise ConfigError(
                "tune.promotion_threshold",
                f"must be >= 1, got {self.promotion_threshold}",
            )
        if self.backedge_close_uops < 1:
            raise ConfigError(
                "tune.backedge_close_uops",
                f"must be >= 1, got {self.backedge_close_uops}",
            )
        FillUnitConfig(self.fill_max_uops, self.fill_max_branches).validate(
            "tune.fill"
        )

    def to_json(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_json(cls, payload: dict) -> "TunePoint":
        """Strict inverse of :meth:`to_json`; validates the point.

        Unknown keys are rejected (a typoed knob silently falling back
        to its default would corrupt a sweep), and the reconstructed
        point is validated so bad payloads fail at admission, not in a
        worker.
        """
        if not isinstance(payload, dict):
            raise ConfigError(
                "tune.point", f"payload must be an object, got {type(payload).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ConfigError(
                "tune.point", f"unknown point fields: {', '.join(unknown)}"
            )
        point = cls(**payload)
        point.validate()
        return point

    def label(self) -> str:
        """Deterministic short name — doubles as the config name in
        result entries, so the same point gets the same cache key from
        every planner, process, and node."""
        blob = json.dumps(self.to_json(), sort_keys=True, separators=(",", ":"))
        return "tune-" + hashlib.sha256(blob.encode()).hexdigest()[:10]

    def experiment_config(self) -> ExperimentConfig:
        """Lower the point onto the experiment layer."""
        self.validate()
        processor = default_config()
        processor.fill_unit = FillUnitConfig(
            max_uops=self.fill_max_uops, max_branches=self.fill_max_branches
        )
        if self.frontend == "tcache":
            return ExperimentConfig(
                name=self.label(), frontend="tcache", processor=processor
            )
        optimize = self.pass_spec is not None
        return ExperimentConfig(
            name=self.label(),
            frontend="replay",
            optimize=optimize,
            optimizer=(
                OptimizerConfig(pass_spec=self.pass_spec)
                if optimize
                else OptimizerConfig()
            ),
            constructor=ConstructorConfig(
                max_uops=self.frame_max_uops,
                promotion_threshold=self.promotion_threshold,
                backedge_close_uops=self.backedge_close_uops,
            ),
            processor=processor,
        )


@dataclass(frozen=True)
class TuneSpace:
    """Axes the planner crosses into points.

    Replay points are the cross product of ``pass_specs`` ×
    ``frame_max_uops`` × ``promotion_thresholds`` ×
    ``backedge_close_uops`` (fill fields pinned at defaults); tcache
    points cross ``fill_max_uops`` × ``fill_max_branches`` and are only
    emitted when ``fill_max_uops`` is non-empty.
    """

    workloads: tuple[str, ...]
    pass_specs: tuple[str | None, ...] = (FULL_PASS_SPEC,)
    frame_max_uops: tuple[int, ...] = (256,)
    promotion_thresholds: tuple[int, ...] = (16,)
    backedge_close_uops: tuple[int, ...] = (128,)
    fill_max_uops: tuple[int, ...] = ()
    fill_max_branches: tuple[int, ...] = (3,)

    def validate(self) -> None:
        if not self.workloads:
            raise ConfigError("tune.workloads", "need at least one workload")
        for name in self.workloads:
            get_workload(name)  # raises KeyError on unknown names
        if not self.pass_specs and not self.fill_max_uops:
            raise ConfigError(
                "tune.space", "space has no replay and no tcache axis"
            )
        for point in self.points():
            point.validate()

    def points(self) -> list[TunePoint]:
        """The full grid, in deterministic axis-major order."""
        out: list[TunePoint] = []
        for spec in self.pass_specs:
            for frame in self.frame_max_uops:
                for promo in self.promotion_thresholds:
                    for backedge in self.backedge_close_uops:
                        out.append(
                            TunePoint(
                                frontend="replay",
                                pass_spec=spec,
                                frame_max_uops=frame,
                                promotion_threshold=promo,
                                backedge_close_uops=backedge,
                            )
                        )
        for fill_uops in self.fill_max_uops:
            for fill_branches in self.fill_max_branches:
                out.append(
                    TunePoint(
                        frontend="tcache",
                        pass_spec=None,
                        fill_max_uops=fill_uops,
                        fill_max_branches=fill_branches,
                    )
                )
        seen: set[str] = set()
        for point in out:
            label = point.label()
            if label in seen:
                raise ConfigError(
                    "tune.space", f"duplicate point {point.to_json()!r}"
                )
            seen.add(label)
        return out


#: Figure 10's ablation legend order (asst is the va alias).
FIG10_ABLATIONS = ("asst", "cp", "cse", "nop", "ra", "sf")


def default_space(workloads: tuple[str, ...] | None = None) -> TuneSpace:
    """The standard sweep: fig10 ablation subset + frame/fill curves."""
    from repro.harness.figures import FIG10_WORKLOADS

    return TuneSpace(
        workloads=tuple(workloads) if workloads else tuple(FIG10_WORKLOADS),
        pass_specs=(
            None,  # RP
            FULL_PASS_SPEC,  # RPO
            *(ablated_pass_spec(name) for name in FIG10_ABLATIONS),
        ),
        frame_max_uops=(128, 256),
        promotion_thresholds=(16,),
        backedge_close_uops=(128,),
        fill_max_uops=(16, 32, 64),
        fill_max_branches=(3,),
    )


def smoke_space(workloads: tuple[str, ...] | None = None) -> TuneSpace:
    """Tiny space for CI: 2 workloads x 6 points."""
    return TuneSpace(
        workloads=tuple(workloads) if workloads else ("gzip", "dream"),
        pass_specs=(
            None,
            FULL_PASS_SPEC,
            ablated_pass_spec("cp"),
            ablated_pass_spec("sf"),
        ),
        frame_max_uops=(256,),
        fill_max_uops=(16, 32),
    )
