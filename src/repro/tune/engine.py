"""Sweep execution: plan cells, run them, fold a reproducible digest.

Cells run either through :func:`repro.artifacts.runner.run_matrix`
(local pool, artifact-store dedup) or through a batch-service /
cluster-gateway client as ``kind="tune"`` cells whose payload is the
point's JSON — the server lowers the payload onto the *same*
``MatrixTask`` the local path builds, so entries (and therefore the
sweep digest) are byte-identical wherever the sweep ran.

The digest folds canonical per-cell records in plan order
(workload-major, then point order), exactly the fold the fuzz
campaigns use, so it is independent of ``--jobs``, completion order,
and local-vs-service execution.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field

from repro.artifacts.runner import MatrixTask, run_matrix
from repro.artifacts.store import ArtifactStore
from repro.metrics import MetricsRegistry
from repro.metrics.ledger import result_entry
from repro.tune.planner import plan_points
from repro.tune.space import TunePoint, TuneSpace

__all__ = ["SweepResult", "SweepSettings", "TuneError", "run_sweep"]


class TuneError(RuntimeError):
    """A sweep could not complete (service failure, bad plan, ...)."""


@dataclass(frozen=True)
class SweepSettings:
    """How to plan and execute one sweep."""

    search: str = "grid"  # 'grid' | 'random' | 'halving'
    seed: int = 1
    samples: int = 16
    scale: int | None = None
    trace_seed: int = 1
    jobs: int = 1
    #: Successive halving: survivors are re-ranked after seeing this
    #: many *additional* workloads per round (prefix doubling).
    halving_rounds: int = 3


@dataclass
class SweepResult:
    """Everything a sweep produced, digest included.

    ``records`` is the canonical list the surface/PGO layers consume:
    one ``{"workload", "label", "point", "entry"}`` dict per executed
    cell, in plan order.  Halving runs append rounds in order, so the
    record list replays the search trajectory, not just the final
    survivors.
    """

    search: str
    seed: int
    workloads: list[str]
    points: list[dict] = field(default_factory=list)
    records: list[dict] = field(default_factory=list)
    survivors: list[dict] = field(default_factory=list)
    digest: str = ""
    jobs: int = 1
    cells_cached: int = 0
    cells_computed: int = 0
    seconds: float = 0.0

    def to_json(self) -> dict:
        return {
            "search": self.search,
            "seed": self.seed,
            "workloads": list(self.workloads),
            "points": list(self.points),
            "records": list(self.records),
            "survivors": list(self.survivors),
            "digest": self.digest,
            "jobs": self.jobs,
            "cells_cached": self.cells_cached,
            "cells_computed": self.cells_computed,
            "seconds": round(self.seconds, 3),
        }


def _record(workload: str, point: TunePoint, entry: dict) -> dict:
    return {
        "workload": workload,
        "label": point.label(),
        "point": point.to_json(),
        "entry": entry,
    }


def _execute_local(
    cells: list[tuple[str, TunePoint]],
    settings: SweepSettings,
    store: ArtifactStore | None,
    metrics: MetricsRegistry | None,
    result: SweepResult,
) -> list[dict]:
    tasks = [
        MatrixTask(
            workload=workload,
            config=point.experiment_config(),
            scale=settings.scale,
            seed=settings.trace_seed,
        )
        for workload, point in cells
    ]
    run = run_matrix(tasks, jobs=settings.jobs, store=store, metrics=metrics)
    result.jobs = run.jobs
    for telemetry in run.telemetry:
        if telemetry.result_cache_hit:
            result.cells_cached += 1
        else:
            result.cells_computed += 1
    return [
        _record(workload, point, result_entry(workload, point.label(), res))
        for (workload, point), res in zip(cells, run.results)
    ]


def _execute_service(
    cells: list[tuple[str, TunePoint]],
    settings: SweepSettings,
    client,
    result: SweepResult,
) -> list[dict]:
    from repro.service.protocol import CellSpec

    specs = [
        CellSpec(
            workload=workload,
            config=point.label(),
            scale=settings.scale,
            seed=settings.trace_seed,
            kind="tune",
            payload=point.to_json(),
        )
        for workload, point in cells
    ]
    outcome = client.submit(specs, priority="batch")
    if outcome.state != "done":
        raise TuneError(
            outcome.error or f"service finished the sweep as {outcome.state}"
        )
    result.jobs = max(result.jobs, 1)
    result.cells_cached += outcome.cells_cached
    result.cells_computed += outcome.cells_computed
    # Entries come back index-ordered (= submission order = plan order),
    # so pairing them positionally keeps the digest fold identical to a
    # local run.
    return [
        _record(workload, point, dict(entry))
        for (workload, point), entry in zip(cells, outcome.entries)
    ]


def _mean_ipc(records: list[dict], label: str) -> float:
    values = [
        r["entry"]["ipc_x86"] for r in records if r["label"] == label
    ]
    return sum(values) / len(values) if values else 0.0


def run_sweep(
    space: TuneSpace,
    settings: SweepSettings | None = None,
    store: ArtifactStore | None = None,
    metrics: MetricsRegistry | None = None,
    client=None,
    progress=None,
) -> SweepResult:
    """Plan and execute one sweep over ``space``.

    With ``client`` (a :class:`repro.service.client.Client`) cells run
    remotely as ``kind="tune"`` cells; otherwise they run through the
    local matrix runner against ``store``.  ``progress(done, total)``
    fires after each executed batch.
    """
    settings = settings or SweepSettings()
    space.validate()
    points = plan_points(space, settings.search, settings.seed, settings.samples)
    if not points:
        raise TuneError("the planned sweep is empty")
    workloads = list(space.workloads)
    result = SweepResult(
        search=settings.search,
        seed=settings.seed,
        workloads=workloads,
        points=[p.to_json() for p in points],
        jobs=settings.jobs,
    )
    start = time.perf_counter()
    fold = hashlib.sha256()
    done = 0

    def execute(cells: list[tuple[str, TunePoint]]) -> list[dict]:
        nonlocal done
        if client is None:
            records = _execute_local(cells, settings, store, metrics, result)
        else:
            records = _execute_service(cells, settings, client, result)
        for record in records:
            fold.update(
                json.dumps(record, sort_keys=True, separators=(",", ":")).encode()
            )
        result.records.extend(records)
        done += len(records)
        if progress is not None:
            progress(done, None)
        return records

    if settings.search == "halving":
        survivors = _run_halving(space, settings, points, execute)
        result.survivors = [p.to_json() for p in survivors]
    else:
        execute([(w, p) for w in workloads for p in points])

    result.seconds = time.perf_counter() - start
    result.digest = fold.hexdigest()
    if metrics is not None:
        metrics.counter("tune.sweep_cells").inc(len(result.records))
        metrics.counter("tune.sweeps").inc()
    return result


def _run_halving(
    space: TuneSpace,
    settings: SweepSettings,
    points: list[TunePoint],
    execute,
) -> list[TunePoint]:
    """Successive halving over a growing workload prefix.

    Round *r* evaluates the surviving points on the first
    ``min(2**r, len(workloads))`` workloads (cells already executed in
    earlier rounds dedup through the artifact store), then keeps the
    top half by mean IPC.  Ties break on the point label, so the
    trajectory is deterministic.
    """
    workloads = list(space.workloads)
    survivors = list(points)
    seen: set[tuple[str, str]] = set()
    all_records: list[dict] = []
    for round_index in range(settings.halving_rounds):
        if len(survivors) <= 1:
            break
        prefix = workloads[: min(2**round_index, len(workloads))]
        cells = [
            (w, p)
            for w in prefix
            for p in survivors
            if (w, p.label()) not in seen
        ]
        seen.update((w, p.label()) for w, p in cells)
        if cells:
            all_records.extend(execute(cells))
        relevant = [
            r
            for r in all_records
            if r["workload"] in prefix
            and r["label"] in {p.label() for p in survivors}
        ]
        ranked = sorted(
            survivors,
            key=lambda p: (-_mean_ipc(relevant, p.label()), p.label()),
        )
        survivors = ranked[: max(1, len(ranked) // 2)]
    return survivors
