"""repro.tune: service-scale optimizer autotuning (DESIGN.md §16).

The paper's Figure 10 ablates six passes at one operating point; this
subsystem asks the follow-on question — which pass subsets/orderings,
fill-unit line limits, and frame-construction thresholds are actually
best *per workload*.  A typed :class:`TuneSpace` is planned (grid,
seeded random, or successive halving) into ordinary experiment cells,
executed through the artifact store / batch service, aggregated into a
sensitivity surface, and optionally fed back as profile-guided
frame-construction parameters (``tune pgo``).
"""

from repro.tune.space import (
    FULL_PASS_SPEC,
    TunePoint,
    TuneSpace,
    ablated_pass_spec,
    default_space,
    smoke_space,
)
from repro.tune.planner import plan_grid, plan_points, plan_random
from repro.tune.engine import SweepResult, SweepSettings, TuneError, run_sweep
from repro.tune.surface import build_surface, format_surface, surface_digest
from repro.tune.pgo import format_pgo, run_pgo, select_frame_params

__all__ = [
    "FULL_PASS_SPEC",
    "SweepResult",
    "SweepSettings",
    "TuneError",
    "TunePoint",
    "TuneSpace",
    "ablated_pass_spec",
    "build_surface",
    "default_space",
    "format_pgo",
    "format_surface",
    "plan_grid",
    "plan_points",
    "plan_random",
    "run_pgo",
    "run_sweep",
    "select_frame_params",
    "smoke_space",
    "surface_digest",
]
