"""Sweep planning: turn a TuneSpace into a deterministic point list.

Three strategies, all pure functions of ``(space, seed, samples)`` so a
plan replans identically on every process, node, and ``--jobs`` level:

* ``grid`` — the full cross product in axis-major order;
* ``random`` — a seeded sample of the grid (without replacement),
  returned in grid order so the sweep digest is sample-set dependent
  but iteration-order independent;
* successive halving lives in the engine (it needs cell results
  between rounds), but draws its initial population from
  :func:`plan_random`.
"""

from __future__ import annotations

import hashlib
import random

from repro.tune.space import TunePoint, TuneSpace

__all__ = ["plan_grid", "plan_points", "plan_random"]


def _derive_rng(seed: int) -> random.Random:
    """Domain-separated RNG so tune seeds never collide with the fuzz
    campaign's program/config seed streams."""
    digest = hashlib.sha256(f"repro.tune:plan:{seed}".encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def plan_grid(space: TuneSpace) -> list[TunePoint]:
    """Every point in the space, deterministically ordered."""
    space.validate()
    return space.points()


def plan_random(space: TuneSpace, seed: int, samples: int) -> list[TunePoint]:
    """A seeded sample of the grid, without replacement, in grid order."""
    grid = plan_grid(space)
    if samples >= len(grid):
        return grid
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    rng = _derive_rng(seed)
    picks = sorted(rng.sample(range(len(grid)), samples))
    return [grid[i] for i in picks]


def plan_points(
    space: TuneSpace, search: str, seed: int, samples: int
) -> list[TunePoint]:
    """Dispatch on the search strategy name used by the CLI."""
    if search == "grid":
        return plan_grid(space)
    if search in ("random", "halving"):
        return plan_random(space, seed, samples)
    raise ValueError(f"unknown search strategy {search!r}")
