"""Delta-debugging shrinker for divergent fuzz programs and configs.

Given a genome the oracle flags, the shrinker searches for the smallest
edited genome that *still* diverges, so the stored repro and the derived
regression test exercise one miscompile instead of a 16-op haystack:

1. **ddmin over body ops** — classic delta debugging (Zeller) on the op
   list: try dropping chunks of exponentially shrinking size, restart at
   coarse granularity after any success;
2. **iteration halving** — biased loops need only enough trips to build
   and dispatch a frame;
3. **field simplification** — zero the data region, zero scratch
   register seeds, collapse ``alias_delta`` to 0, and simplify op
   immediates/displacements toward 0.

Every candidate is judged by re-running the oracle that flagged it; a
candidate "still diverges" only if it reports at least one divergence
whose *kind* appeared in the original report (so shrinking cannot walk
from an optimizer miscompile to an unrelated artifact).  Candidates
that fail to render or halt count as non-divergent and are skipped.
The attempt budget bounds worst-case shrink cost on pathological
genomes.

For (program, config) pairs from the config-differential oracle,
:func:`shrink_config_case` adds the **config axis**: non-default config
fields are greedily restored to their :func:`default_config` values
(whole cache levels as a unit), interleaved with the program-axis
passes above, so a minimized case names the smallest knob set — and
smallest program — that still breaks the timing model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.timing.config import ProcessorConfig

from repro.fuzz.config_oracle import ConfigOracleConfig, run_config_differential
from repro.fuzz.configgen import config_delta, shrink_steps
from repro.fuzz.generator import FuzzProgram
from repro.fuzz.oracle import OracleConfig, run_differential


@dataclass
class ShrinkResult:
    """Outcome of one shrink run."""

    genome: FuzzProgram
    attempts: int
    reductions: int
    original_ops: int
    final_ops: int

    @property
    def reduced(self) -> bool:
        return self.reductions > 0


def shrink_program(
    genome: FuzzProgram,
    oracle_config: OracleConfig | None = None,
    max_attempts: int = 400,
) -> ShrinkResult:
    """Minimize ``genome`` while it keeps diverging; returns the smallest
    divergent genome found within ``max_attempts`` oracle runs."""
    oracle_config = oracle_config or OracleConfig()

    def kinds_of(candidate: FuzzProgram) -> set[str]:
        try:
            report = run_differential(candidate, oracle_config)
        except Exception:  # noqa: BLE001 - unrunnable candidate
            return set()
        return {d.kind for d in report.divergences}

    shrinker = _Shrinker(genome, kinds_of, max_attempts)
    best = shrinker.run()
    return ShrinkResult(
        genome=best,
        attempts=shrinker.attempts,
        reductions=shrinker.reductions,
        original_ops=len(genome.ops),
        final_ops=len(best.ops),
    )


class _Shrinker:
    """Program-axis ddmin against any genome -> divergence-kinds oracle."""

    def __init__(
        self,
        genome: FuzzProgram,
        kinds_of: Callable[[FuzzProgram], set[str]],
        max_attempts: int,
        target_kinds: set[str] | None = None,
        attempts: int = 0,
    ) -> None:
        self._kinds_of = kinds_of
        self.max_attempts = max_attempts
        self.attempts = attempts
        self.reductions = 0
        self.target_kinds = (
            target_kinds if target_kinds is not None else kinds_of(genome)
        )
        if not self.target_kinds:
            raise ValueError("shrinker called on a non-divergent genome")
        self.best = genome.copy()

    # ---------------------------------------------------------- predicate

    def _divergence_kinds(self, genome: FuzzProgram) -> set[str]:
        return self._kinds_of(genome)

    def _still_diverges(self, candidate: FuzzProgram) -> bool:
        if self.attempts >= self.max_attempts:
            return False
        self.attempts += 1
        kinds = self._divergence_kinds(candidate)
        return bool(kinds & self.target_kinds)

    def _accept(self, candidate: FuzzProgram) -> bool:
        if self._still_diverges(candidate):
            self.best = candidate
            self.reductions += 1
            return True
        return False

    # --------------------------------------------------------------- run

    def run(self) -> FuzzProgram:
        self._ddmin_ops()
        self._shrink_iterations()
        self._simplify_fields()
        # Dropping ops can unlock further drops after simplification.
        self._ddmin_ops()
        return self.best

    def _ddmin_ops(self) -> None:
        """Drop chunks of body ops, halving chunk size on failure."""
        chunk = max(1, len(self.best.ops) // 2)
        while chunk >= 1 and self.attempts < self.max_attempts:
            start = 0
            progressed = False
            while start < len(self.best.ops):
                candidate = self.best.copy()
                del candidate.ops[start : start + chunk]
                if candidate.ops and self._accept(candidate):
                    progressed = True
                    # Same start now addresses the next chunk.
                else:
                    start += chunk
                if self.attempts >= self.max_attempts:
                    return
            if progressed and chunk > 1:
                chunk = max(1, len(self.best.ops) // 2)  # restart coarse
            else:
                chunk //= 2

    def _shrink_iterations(self) -> None:
        """Halve the loop trip count toward the constructor's minimum."""
        while self.best.iterations > 2 and self.attempts < self.max_attempts:
            candidate = self.best.copy()
            candidate.iterations = max(2, candidate.iterations // 2)
            if not self._accept(candidate):
                break

    def _simplify_fields(self) -> None:
        """Zero out inputs one family at a time; keep what still diverges."""
        candidate = self.best.copy()
        candidate.data = [0] * len(candidate.data)
        self._accept(candidate)

        candidate = self.best.copy()
        candidate.reg_init = {name: 0 for name in candidate.reg_init}
        self._accept(candidate)

        if self.best.alias_delta != 0:
            candidate = self.best.copy()
            candidate.alias_delta = 0
            self._accept(candidate)

        # Per-op simplification.  ``FuzzProgram.copy`` is shallow at the
        # operand level, so every edit rebuilds the op dict (and any
        # nested operand) instead of mutating in place.
        for index in range(len(self.best.ops)):
            if self.attempts >= self.max_attempts:
                return
            op = self.best.ops[index]
            if op.get("disp"):
                candidate = self.best.copy()
                candidate.ops[index] = {**op, "disp": 0}
                self._accept(candidate)
            op = self.best.ops[index]
            for key in ("src", "right", "count"):
                operand = op.get(key)
                if isinstance(operand, dict) and operand.get("imm"):
                    candidate = self.best.copy()
                    candidate.ops[index] = {**op, key: {"imm": 0}}
                    self._accept(candidate)


# ----------------------------------------------------------- config axis


@dataclass
class ConfigShrinkResult:
    """Outcome of one (program, config) shrink run."""

    genome: FuzzProgram
    config: ProcessorConfig
    attempts: int
    reductions: int
    original_ops: int
    final_ops: int
    original_fields: int  # config fields departing from default, before
    final_fields: int  # ... and after


def shrink_config_case(
    genome: FuzzProgram,
    processor: ProcessorConfig,
    oracle_config: ConfigOracleConfig | None = None,
    max_attempts: int = 250,
) -> ConfigShrinkResult:
    """Minimize a divergent (program, config) pair on both axes.

    Config first (each restored field removes a whole sampled dimension,
    the cheapest big win), then the program-axis ddmin under the shrunk
    config, then the config again — dropping ops can make more fields
    irrelevant.  Budget is shared across all phases.
    """
    oracle_config = oracle_config or ConfigOracleConfig()
    state = {"attempts": 0}

    def kinds_for(candidate: FuzzProgram, config: ProcessorConfig) -> set[str]:
        try:
            report = run_config_differential(candidate, config, oracle_config)
        except Exception:  # noqa: BLE001 - unrunnable candidate
            return set()
        return {d.kind for d in report.divergences}

    target_kinds = kinds_for(genome, processor)
    if not target_kinds:
        raise ValueError("shrink_config_case called on a non-divergent pair")

    best_genome = genome.copy()
    best_config = processor
    reductions = 0

    def shrink_config_axis() -> None:
        nonlocal best_config, reductions
        progressed = True
        while progressed and state["attempts"] < max_attempts:
            progressed = False
            for candidate in shrink_steps(best_config):
                if state["attempts"] >= max_attempts:
                    return
                state["attempts"] += 1
                if kinds_for(best_genome, candidate) & target_kinds:
                    best_config = candidate
                    reductions += 1
                    progressed = True
                    break  # restart from the front-most field

    shrink_config_axis()

    if state["attempts"] < max_attempts:
        shrinker = _Shrinker(
            best_genome,
            lambda candidate: kinds_for(candidate, best_config),
            max_attempts,
            target_kinds=target_kinds,
            attempts=state["attempts"],
        )
        best_genome = shrinker.run()
        reductions += shrinker.reductions
        state["attempts"] = shrinker.attempts

    shrink_config_axis()

    return ConfigShrinkResult(
        genome=best_genome,
        config=best_config,
        attempts=state["attempts"],
        reductions=reductions,
        original_ops=len(genome.ops),
        final_ops=len(best_genome.ops),
        original_fields=len(config_delta(processor)),
        final_fields=len(config_delta(best_config)),
    )
