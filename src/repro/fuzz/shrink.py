"""Delta-debugging shrinker for divergent fuzz programs.

Given a genome the oracle flags, the shrinker searches for the smallest
edited genome that *still* diverges, so the stored repro and the derived
regression test exercise one miscompile instead of a 16-op haystack:

1. **ddmin over body ops** — classic delta debugging (Zeller) on the op
   list: try dropping chunks of exponentially shrinking size, restart at
   coarse granularity after any success;
2. **iteration halving** — biased loops need only enough trips to build
   and dispatch a frame;
3. **field simplification** — zero the data region, zero scratch
   register seeds, collapse ``alias_delta`` to 0, and simplify op
   immediates/displacements toward 0.

Every candidate is judged by re-running the full differential oracle;
a candidate "still diverges" only if it reports at least one divergence
whose *kind* appeared in the original report (so shrinking cannot walk
from an optimizer miscompile to an unrelated artifact).  Candidates
that fail to render or halt count as non-divergent and are skipped.
The attempt budget bounds worst-case shrink cost on pathological
genomes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fuzz.generator import FuzzProgram
from repro.fuzz.oracle import OracleConfig, run_differential


@dataclass
class ShrinkResult:
    """Outcome of one shrink run."""

    genome: FuzzProgram
    attempts: int
    reductions: int
    original_ops: int
    final_ops: int

    @property
    def reduced(self) -> bool:
        return self.reductions > 0


def shrink_program(
    genome: FuzzProgram,
    oracle_config: OracleConfig | None = None,
    max_attempts: int = 400,
) -> ShrinkResult:
    """Minimize ``genome`` while it keeps diverging; returns the smallest
    divergent genome found within ``max_attempts`` oracle runs."""
    oracle_config = oracle_config or OracleConfig()
    shrinker = _Shrinker(genome, oracle_config, max_attempts)
    best = shrinker.run()
    return ShrinkResult(
        genome=best,
        attempts=shrinker.attempts,
        reductions=shrinker.reductions,
        original_ops=len(genome.ops),
        final_ops=len(best.ops),
    )


class _Shrinker:
    def __init__(
        self, genome: FuzzProgram, config: OracleConfig, max_attempts: int
    ) -> None:
        self.config = config
        self.max_attempts = max_attempts
        self.attempts = 0
        self.reductions = 0
        self.target_kinds = self._divergence_kinds(genome)
        if not self.target_kinds:
            raise ValueError("shrink_program called on a non-divergent genome")
        self.best = genome.copy()

    # ---------------------------------------------------------- predicate

    def _divergence_kinds(self, genome: FuzzProgram) -> set[str]:
        try:
            report = run_differential(genome, self.config)
        except Exception:  # noqa: BLE001 - unrunnable candidate
            return set()
        return {d.kind for d in report.divergences}

    def _still_diverges(self, candidate: FuzzProgram) -> bool:
        if self.attempts >= self.max_attempts:
            return False
        self.attempts += 1
        kinds = self._divergence_kinds(candidate)
        return bool(kinds & self.target_kinds)

    def _accept(self, candidate: FuzzProgram) -> bool:
        if self._still_diverges(candidate):
            self.best = candidate
            self.reductions += 1
            return True
        return False

    # --------------------------------------------------------------- run

    def run(self) -> FuzzProgram:
        self._ddmin_ops()
        self._shrink_iterations()
        self._simplify_fields()
        # Dropping ops can unlock further drops after simplification.
        self._ddmin_ops()
        return self.best

    def _ddmin_ops(self) -> None:
        """Drop chunks of body ops, halving chunk size on failure."""
        chunk = max(1, len(self.best.ops) // 2)
        while chunk >= 1 and self.attempts < self.max_attempts:
            start = 0
            progressed = False
            while start < len(self.best.ops):
                candidate = self.best.copy()
                del candidate.ops[start : start + chunk]
                if candidate.ops and self._accept(candidate):
                    progressed = True
                    # Same start now addresses the next chunk.
                else:
                    start += chunk
                if self.attempts >= self.max_attempts:
                    return
            if progressed and chunk > 1:
                chunk = max(1, len(self.best.ops) // 2)  # restart coarse
            else:
                chunk //= 2

    def _shrink_iterations(self) -> None:
        """Halve the loop trip count toward the constructor's minimum."""
        while self.best.iterations > 2 and self.attempts < self.max_attempts:
            candidate = self.best.copy()
            candidate.iterations = max(2, candidate.iterations // 2)
            if not self._accept(candidate):
                break

    def _simplify_fields(self) -> None:
        """Zero out inputs one family at a time; keep what still diverges."""
        candidate = self.best.copy()
        candidate.data = [0] * len(candidate.data)
        self._accept(candidate)

        candidate = self.best.copy()
        candidate.reg_init = {name: 0 for name in candidate.reg_init}
        self._accept(candidate)

        if self.best.alias_delta != 0:
            candidate = self.best.copy()
            candidate.alias_delta = 0
            self._accept(candidate)

        # Per-op simplification.  ``FuzzProgram.copy`` is shallow at the
        # operand level, so every edit rebuilds the op dict (and any
        # nested operand) instead of mutating in place.
        for index in range(len(self.best.ops)):
            if self.attempts >= self.max_attempts:
                return
            op = self.best.ops[index]
            if op.get("disp"):
                candidate = self.best.copy()
                candidate.ops[index] = {**op, "disp": 0}
                self._accept(candidate)
            op = self.best.ops[index]
            for key in ("src", "right", "count"):
                operand = op.get(key)
                if isinstance(operand, dict) and operand.get("imm"):
                    candidate = self.best.copy()
                    candidate.ops[index] = {**op, key: {"imm": 0}}
                    self._accept(candidate)
