"""The ``fuzz`` subcommand family.

::

    python -m repro.harness fuzz run --seed 1 --iterations 10000 --jobs 4
    python -m repro.harness fuzz run --seed 7 --duration 30
    python -m repro.harness fuzz config run --seed 1 --iterations 200
    python -m repro.harness fuzz repro 3f2a91c0
    python -m repro.harness fuzz corpus ls

``run`` executes a campaign; any divergent program is minimized by the
delta-debugging shrinker and stored in the artifact corpus, and the
command exits nonzero.  ``config run`` does the same on the *config
axis*: every iteration pairs a generated program with a generated
``ProcessorConfig`` and drives the pair through the config-differential
oracle (template-vs-reference A/B, retire conservation, widening
monotonicity); divergent pairs shrink on both axes.  ``repro`` replays
a stored case (by id prefix) through whichever oracle produced it —
deterministic by construction, since the case carries the genome (and,
for config cases, the config document) and rendering is seed-free.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.artifacts.store import ArtifactStore
from repro.metrics import build_run_ledger, get_registry, profiled, write_ledger

from repro.fuzz.campaign import (
    CampaignConfig,
    ConfigCampaignConfig,
    run_campaign,
    run_config_campaign,
)
from repro.fuzz.corpus import CorpusError, FuzzCorpus
from repro.fuzz.oracle import OracleConfig, run_differential
from repro.fuzz.shrink import shrink_config_case, shrink_program


def fuzz_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness fuzz",
        description="Differential fuzzing of optimizer/frame semantics.",
    )
    sub = parser.add_subparsers(dest="action", required=True)

    run_p = sub.add_parser("run", help="run a fuzz campaign")
    run_p.add_argument("--seed", type=int, default=1, help="campaign seed")
    group = run_p.add_mutually_exclusive_group()
    group.add_argument(
        "--iterations", type=int, default=1000, help="programs to run"
    )
    group.add_argument(
        "--duration",
        type=float,
        default=None,
        help="run whole batches until this many seconds have elapsed",
    )
    run_p.add_argument(
        "--jobs", type=int, default=1, help="worker processes (1 = serial)"
    )
    run_p.add_argument(
        "--no-shrink",
        action="store_true",
        help="store divergent programs unminimized",
    )

    config_p = sub.add_parser(
        "config", help="config-axis differential fuzzing"
    )
    config_sub = config_p.add_subparsers(dest="config_action", required=True)
    config_run_p = config_sub.add_parser(
        "run", help="run a config-axis fuzz campaign"
    )
    config_run_p.add_argument(
        "--seed", type=int, default=1, help="campaign seed"
    )
    config_group = config_run_p.add_mutually_exclusive_group()
    config_group.add_argument(
        "--iterations",
        type=int,
        default=200,
        help="(program, config) pairs to run",
    )
    config_group.add_argument(
        "--duration",
        type=float,
        default=None,
        help="run whole batches until this many seconds have elapsed",
    )
    config_run_p.add_argument(
        "--jobs", type=int, default=1, help="worker processes (1 = serial)"
    )
    config_run_p.add_argument(
        "--service", default=None, metavar="HOST:PORT",
        help="route pairs through a running serve/cluster gateway instead "
        "of local workers (--jobs is ignored; digest is unchanged)",
    )
    config_run_p.add_argument(
        "--no-shrink",
        action="store_true",
        help="store divergent pairs unminimized",
    )

    repro_p = sub.add_parser(
        "repro",
        help="replay a stored divergent case or a scenario-family workload",
    )
    repro_p.add_argument(
        "case", nargs="?", default=None,
        help="case id (any unambiguous prefix)",
    )
    repro_p.add_argument(
        "--workload", default=None, metavar="NAME|GLOB",
        help="replay scenario-family workload genomes through the "
        "differential oracle instead of a stored case",
    )
    repro_p.add_argument(
        "--workload-seed", type=int, default=1,
        help="run seed for --workload genome derivation",
    )

    corpus_p = sub.add_parser("corpus", help="inspect the fuzz corpus")
    corpus_p.add_argument("corpus_action", choices=("ls",))

    for p in (run_p, config_run_p, repro_p, corpus_p):
        p.add_argument(
            "--cache-dir",
            default=None,
            help="artifact cache root (default: $REPRO_UOPT_CACHE_DIR "
            "or ~/.cache/repro-uopt)",
        )
        p.add_argument(
            "--emit-stats",
            metavar="FILE",
            default=None,
            help="write a versioned JSON run ledger to FILE after the run",
        )
        p.add_argument(
            "--profile",
            action="store_true",
            help="wrap the run in cProfile and print hotspots to stderr",
        )

    args = parser.parse_args(argv)
    store = ArtifactStore(args.cache_dir)
    with profiled(enabled=args.profile):
        if args.action == "run":
            status = _run(args, store)
        elif args.action == "config":
            status = _config_run(args, store)
        elif args.action == "repro":
            status = _repro(args, store)
        else:
            status = _corpus(args, store)
    if args.emit_stats:
        _emit_ledger(argv, args, store)
    return status


def _run(args, store: ArtifactStore) -> int:
    config = CampaignConfig(
        seed=args.seed,
        iterations=args.iterations,
        duration=args.duration,
        jobs=args.jobs,
    )
    registry = get_registry()

    def progress(done: int, total: int | None) -> None:
        target = f"/{total}" if total else ""
        print(f"[fuzz] {done}{target} programs", file=sys.stderr)

    result = run_campaign(config, metrics=registry, progress=progress)
    print(
        f"campaign seed={result.seed}: {result.programs} programs, "
        f"{result.frames} frames, {result.instances} frame instances "
        f"({result.verified} verified), {result.trace_records} trace records"
    )
    print(
        f"{result.seconds:.1f}s at jobs={result.jobs} = "
        f"{result.programs_per_sec:.1f} programs/sec"
    )
    print(f"campaign digest: {result.digest}")
    if result.ok:
        print("no divergences")
        return 0

    corpus = FuzzCorpus(store)
    print(f"{len(result.divergent)} divergent program(s):")
    for item in result.divergent:
        genome = item.genome
        note = ""
        if not args.no_shrink:
            shrunk = shrink_program(genome, config.oracle)
            genome = shrunk.genome
            note = (
                f" (shrunk {shrunk.original_ops}->{shrunk.final_ops} ops "
                f"in {shrunk.attempts} attempts)"
            )
        case_id = corpus.save_case(
            genome,
            item.divergences,
            found={
                "campaign_seed": result.seed,
                "index": item.index,
                "program_seed": item.program_seed,
            },
        )
        kinds = ", ".join(sorted({d.kind for d in item.divergences}))
        print(f"  {case_id[:16]}  seed={item.program_seed}  {kinds}{note}")
    return 1


def _config_run(args, store: ArtifactStore) -> int:
    from repro.fuzz.configgen import config_from_json, config_to_json

    config = ConfigCampaignConfig(
        seed=args.seed,
        iterations=args.iterations,
        duration=args.duration,
        jobs=args.jobs,
    )
    registry = get_registry()

    def progress(done: int, total: int | None) -> None:
        target = f"/{total}" if total else ""
        print(f"[fuzz.config] {done}{target} pairs", file=sys.stderr)

    client = None
    if args.service:
        from repro.cluster.nodes import parse_address
        from repro.service.client import Client, ServiceError

        try:
            host, port = parse_address(args.service)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        client = Client(host=host, port=port)
        try:
            client.health()
        except ServiceError as exc:
            print(f"error: service at {args.service}: {exc}", file=sys.stderr)
            return 2

    result = run_config_campaign(
        config, metrics=registry, progress=progress, client=client
    )
    print(
        f"config campaign seed={result.seed}: {result.pairs} pairs, "
        f"{result.simulations} simulations, {result.frames_fired} frames "
        f"fired, {result.trace_records} trace records"
    )
    print(
        f"{result.seconds:.1f}s at jobs={result.jobs} = "
        f"{result.pairs_per_sec:.1f} pairs/sec "
        f"(optimized slower on {result.optimized_slower} pairs, advisory)"
    )
    print(f"campaign digest: {result.digest}")
    if result.ok:
        print("no divergences")
        return 0

    corpus = FuzzCorpus(store)
    print(f"{len(result.divergent)} divergent pair(s):")
    for item in result.divergent:
        genome = item.genome
        config_json = item.config_json
        note = ""
        if not args.no_shrink:
            shrunk = shrink_config_case(
                genome, config_from_json(config_json), config.oracle
            )
            genome = shrunk.genome
            config_json = config_to_json(shrunk.config)
            note = (
                f" (shrunk {shrunk.original_ops}->{shrunk.final_ops} ops, "
                f"{shrunk.original_fields}->{shrunk.final_fields} config "
                f"fields in {shrunk.attempts} attempts)"
            )
        case_id = corpus.save_config_case(
            genome,
            config_json,
            item.divergences,
            found={
                "campaign_seed": result.seed,
                "index": item.index,
                "program_seed": item.program_seed,
                "config_seed": item.config_seed,
            },
        )
        kinds = ", ".join(sorted({d.kind for d in item.divergences}))
        print(
            f"  {case_id[:16]}  seed={item.program_seed}"
            f"/{item.config_seed}  {kinds}{note}"
        )
    return 1


def _repro(args, store: ArtifactStore) -> int:
    if args.workload is not None:
        if args.case is not None:
            print(
                "error: give either a case id or --workload, not both",
                file=sys.stderr,
            )
            return 2
        return _repro_workloads(args)
    if args.case is None:
        print("error: need a case id or --workload", file=sys.stderr)
        return 2
    corpus = FuzzCorpus(store)
    try:
        case = corpus.load_case(args.case)
    except CorpusError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    from repro.fuzz.generator import program_from_json

    genome = program_from_json(case["program"])
    if "config" in case:
        return _repro_config_case(case, genome)
    start = time.perf_counter()
    report = run_differential(genome, OracleConfig(), metrics=get_registry())
    elapsed = time.perf_counter() - start
    found = case.get("found", {})
    print(
        f"case seed={genome.seed} ops={len(genome.ops)} "
        f"(found in campaign {found.get('campaign_seed')}, "
        f"index {found.get('index')})"
    )
    print(
        f"trace={report.trace_length} frames={report.frames_constructed} "
        f"instances={report.instances_committed} "
        f"verified={report.instances_verified} in {elapsed:.2f}s"
    )
    if report.ok:
        print("no divergence: this case no longer reproduces (fixed)")
        return 0
    for d in report.divergences:
        where = f" @ {d.frame_pc:#x}" if d.frame_pc is not None else ""
        print(f"  [{d.variant}] {d.kind}{where}: {d.detail}")
    return 1


def _repro_config_case(case: dict, genome) -> int:
    """Replay a stored (program, config) pair through the config oracle."""
    from repro.fuzz.config_oracle import ConfigOracleConfig, run_config_differential
    from repro.fuzz.configgen import config_from_json

    processor = config_from_json(case["config"])
    start = time.perf_counter()
    report = run_config_differential(
        genome, processor, ConfigOracleConfig(), metrics=get_registry()
    )
    elapsed = time.perf_counter() - start
    found = case.get("found", {})
    fields = ", ".join(report.config_fields) or "all-default"
    print(
        f"config case seed={genome.seed} ops={len(genome.ops)} "
        f"(found in campaign {found.get('campaign_seed')}, "
        f"index {found.get('index')})"
    )
    print(f"config delta: {fields}")
    print(
        f"trace={report.trace_length} simulations={report.simulations} "
        f"frames_fired={report.frames_fired} in {elapsed:.2f}s"
    )
    if report.ok:
        print("no divergence: this case no longer reproduces (fixed)")
        return 0
    for d in report.divergences:
        print(f"  [{d.frontend}] {d.kind}: {d.detail}")
    return 1


def _repro_workloads(args) -> int:
    """Replay scenario-family genomes through the differential oracle."""
    from repro.workloads.base import get_workload, resolve_workloads

    try:
        names = resolve_workloads([args.workload])
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    registry = get_registry()
    divergent = 0
    replayed = 0
    for name in names:
        workload = get_workload(name)
        if workload.genome is None:
            print(f"{name}: no genome (not a family workload); skipped")
            continue
        genome = workload.genome(args.workload_seed)
        report = run_differential(genome, OracleConfig(), metrics=registry)
        replayed += 1
        verdict = "ok" if report.ok else "DIVERGED"
        print(
            f"{name}: trace={report.trace_length} "
            f"frames={report.frames_constructed} "
            f"instances={report.instances_committed} {verdict}"
        )
        if not report.ok:
            divergent += 1
            for d in report.divergences:
                where = f" @ {d.frame_pc:#x}" if d.frame_pc is not None else ""
                print(f"  [{d.variant}] {d.kind}{where}: {d.detail}")
    print(f"{replayed} workload(s) replayed, {divergent} divergent")
    return 1 if divergent else 0


def _corpus(args, store: ArtifactStore) -> int:
    cases = FuzzCorpus(store).list_cases()
    for case in cases:
        print(f"{case['id'][:16]}  {case['size_bytes']:>7,}B  {case['label']}")
    print(f"{len(cases)} fuzz case(s) in {store.root}")
    return 0


def _emit_ledger(argv: list[str], args, store: ArtifactStore) -> None:
    from repro.harness.cli import _NoMatrix

    ledger = build_run_ledger(
        argv, [f"fuzz-{args.action}"], _NoMatrix(store), registry=get_registry()
    )
    write_ledger(args.emit_stats, ledger)
    print(f"[repro.metrics] run ledger written to {args.emit_stats}", file=sys.stderr)
