"""Seeded random :class:`ProcessorConfig` generator (the config axis).

The program fuzzer (PR 3) varies *programs* against one fixed processor
configuration; this module varies the *configuration* too, in the
uops.info spirit of sweeping latency/width knobs.  Configs are sampled
**valid by construction** inside an explicit envelope:

* cache geometries are built from independently sampled power-of-two
  line sizes, associativities, and set counts — size is derived as
  ``line * assoc * sets``, so the divisibility and minimum-size
  constraints of :meth:`CacheConfig.validate` hold by construction;
* pipeline widths are sampled with ``window_size >= fetch_width``
  (anything narrower deadlocks fetch) and every functional-unit pool
  has at least one unit (a zero-capacity pool spins the issue loop);
* predictor sizes respect the validated shapes (``ghr_bits >= 1``,
  power-of-two ``btb_entries``, ``ras_depth >= 1``).

Every sample is ``validate()``-checked after construction anyway — the
generator drifting out of the envelope should fail the campaign loudly,
not silently fuzz rejected configs.

Like program genomes, configs are JSON round-trippable so the corpus
can store failing (program, config) pairs, and the shrinker can walk a
failing config back toward :func:`default_config` field by field
(:func:`shrink_steps`).
"""

from __future__ import annotations

import random
from dataclasses import fields

from repro.timing.config import CacheConfig, ProcessorConfig, default_config

#: Sampled dimensions, in shrink order (front end first).  Kept explicit
#: rather than derived from ``dataclasses.fields`` so adding a config
#: field later cannot silently change seeded draw sequences.
CONFIG_FIELDS = (
    "fetch_width",
    "retire_width",
    "x86_decode_width",
    "window_size",
    "branch_resolution_depth",
    "simple_alus",
    "complex_alus",
    "fpus",
    "load_store_units",
    "ghr_bits",
    "btb_entries",
    "ras_depth",
    "icache",
    "dcache",
    "l2",
    "memory_latency",
    "frame_cache_uops",
    "cache_switch_penalty",
    "mul_latency",
    "div_latency",
)

_CACHE_FIELDS = ("size_bytes", "line_bytes", "associativity", "hit_latency")

#: Geometry pools.  Small set counts are deliberately over-weighted:
#: conflict misses (and the LRU eviction traffic they cause) live there.
_LINE_BYTES = (16, 32, 64, 64, 128)
_ASSOCIATIVITY = (1, 1, 2, 2, 4, 4, 8)
_L1_SETS = (1, 2, 4, 8, 16, 32, 64, 128)
_L2_SETS = (8, 16, 32, 64, 128, 256, 512)

_FETCH_WIDTHS = (1, 2, 4, 4, 8, 8, 12, 16)
_WINDOW_SIZES = (16, 32, 64, 128, 256, 512, 1024)
_BTB_ENTRIES = (16, 64, 256, 1024, 4096)
_FRAME_CACHE_UOPS = (64, 256, 512, 1024, 4 * 1024, 16 * 1024, 64 * 1024)


def _sample_cache(rng: random.Random, sets_pool: tuple, latency_lo: int,
                  latency_hi: int) -> CacheConfig:
    line = rng.choice(_LINE_BYTES)
    assoc = rng.choice(_ASSOCIATIVITY)
    sets = rng.choice(sets_pool)
    return CacheConfig(
        size_bytes=line * assoc * sets,
        line_bytes=line,
        associativity=assoc,
        hit_latency=rng.randint(latency_lo, latency_hi),
    )


def generate_config(seed: int) -> ProcessorConfig:
    """One random valid configuration from ``seed`` (deterministic).

    The draw sequence is frozen: campaign digests and stored corpus
    cases depend on ``generate_config(s)`` reproducing the same config
    forever.  New dimensions must be appended, never interleaved.
    """
    rng = random.Random(seed)
    fetch_width = rng.choice(_FETCH_WIDTHS)
    config = ProcessorConfig(
        fetch_width=fetch_width,
        retire_width=rng.choice((1, 2, 4, 8, 8, 16)),
        x86_decode_width=rng.choice((1, 2, 4, 4, 8)),
        window_size=rng.choice(
            tuple(w for w in _WINDOW_SIZES if w >= fetch_width)
        ),
        branch_resolution_depth=rng.choice((0, 1, 5, 10, 15, 15, 20, 30)),
        simple_alus=rng.randint(1, 8),
        complex_alus=rng.randint(1, 4),
        fpus=rng.randint(1, 4),
        load_store_units=rng.randint(1, 6),
        ghr_bits=rng.choice((1, 2, 4, 8, 12, 18, 18, 24)),
        btb_entries=rng.choice(_BTB_ENTRIES),
        ras_depth=rng.choice((1, 2, 4, 8, 16, 16, 32)),
        icache=_sample_cache(rng, _L1_SETS, 1, 3),
        dcache=_sample_cache(rng, _L1_SETS, 1, 4),
        l2=_sample_cache(rng, _L2_SETS, 4, 20),
        memory_latency=rng.choice((10, 25, 50, 50, 100, 200, 400)),
        frame_cache_uops=rng.choice(_FRAME_CACHE_UOPS),
        cache_switch_penalty=rng.choice((0, 1, 1, 2, 4)),
        mul_latency=rng.choice((1, 2, 3, 4, 4, 6, 8)),
        div_latency=rng.choice((5, 10, 20, 20, 40)),
    )
    config.validate()  # the envelope guarantee, enforced
    return config


# ------------------------------------------------------------- serialization


def config_to_json(config: ProcessorConfig) -> dict:
    """Config → plain dict (stable shape, version-tagged)."""
    payload: dict = {"version": 1}
    for name in CONFIG_FIELDS:
        value = getattr(config, name)
        if isinstance(value, CacheConfig):
            payload[name] = {f: getattr(value, f) for f in _CACHE_FIELDS}
        else:
            payload[name] = int(value)
    return payload


def config_from_json(payload: dict) -> ProcessorConfig:
    """Plain dict → config (inverse of :func:`config_to_json`)."""
    version = payload.get("version", 1)
    if version != 1:
        raise ValueError(f"unsupported fuzz config version {version!r}")
    kwargs: dict = {}
    for name in CONFIG_FIELDS:
        value = payload[name]
        if name in ("icache", "dcache", "l2"):
            kwargs[name] = CacheConfig(
                **{f: int(value[f]) for f in _CACHE_FIELDS}
            )
        else:
            kwargs[name] = int(value)
    return ProcessorConfig(**kwargs)


# ------------------------------------------------------------------- shrink


def config_delta(config: ProcessorConfig) -> list[str]:
    """Field names where ``config`` departs from the default (reporting)."""
    base = default_config()
    delta = []
    for name in CONFIG_FIELDS:
        if getattr(config, name) != getattr(base, name):
            delta.append(name)
    return delta


def shrink_steps(config: ProcessorConfig) -> list[ProcessorConfig]:
    """Candidate configs one field closer to :func:`default_config`.

    One candidate per non-default field, in :data:`CONFIG_FIELDS` order;
    each restores exactly that field (whole cache levels restore as a
    unit — partial cache edits could leave the envelope).  The shrinker
    greedily accepts candidates that still fail, so a minimized case
    names the smallest set of knobs that matter.
    """
    base = default_config()
    candidates = []
    for name in config_delta(config):
        candidate = _copy_config(config)
        setattr(candidate, name, getattr(base, name))
        try:
            candidate.validate()
        except ValueError:
            # Restoring one field can break a cross-field constraint
            # (window_size >= fetch_width); skip, a later joint step
            # (restoring the partner field first) will get there.
            continue
        candidates.append(candidate)
    return candidates


def _copy_config(config: ProcessorConfig) -> ProcessorConfig:
    kwargs = {}
    for spec in fields(ProcessorConfig):
        value = getattr(config, spec.name)
        if isinstance(value, CacheConfig):
            value = CacheConfig(
                **{f: getattr(value, f) for f in _CACHE_FIELDS}
            )
        kwargs[spec.name] = value
    return ProcessorConfig(**kwargs)
