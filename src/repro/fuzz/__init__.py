"""repro.fuzz — differential fuzzing of optimizer/frame semantics.

The paper's premise (§5.1.3) is that an optimized frame is
architecturally equivalent to the instruction stream it replaces.  The
fourteen fixed workloads exercise only a sliver of the seven-pass
optimizer's input space; this package closes the gap the way "Verifying
x86 Instruction Implementations" does for hardware decode — by
differentially checking randomly generated programs:

* :mod:`repro.fuzz.generator` — a seeded random x86 program generator
  (straight-line ALU/flag code, MOVZX/MOVSX into dirty registers,
  aliasing load/store traffic, biased branches sized to trigger frame
  construction);
* :mod:`repro.fuzz.oracle` — the differential oracle: emulate → trace →
  frame construction → optimizer (at every pass subset) → whole-trace
  frame replay plus :class:`~repro.verify.verifier.StateVerifier`
  checks against the unoptimized emulation;
* :mod:`repro.fuzz.shrink` — a delta-debugging shrinker that minimizes
  divergent programs;
* :mod:`repro.fuzz.corpus` — minimized repros in the content-addressed
  artifact store;
* :mod:`repro.fuzz.campaign` — seed-derived, byte-reproducible
  campaigns fanned out over the parallel runner.

The **configuration axis** gets the same treatment:

* :mod:`repro.fuzz.configgen` — a seeded generator of
  valid-by-construction :class:`~repro.timing.config.ProcessorConfig`
  samples (widths, FU counts, cache geometries, latencies, predictor
  sizes), plus greedy shrink-toward-default steps;
* :mod:`repro.fuzz.config_oracle` — the config-differential oracle:
  each (program, config) pair must satisfy template-vs-reference
  scheduling identity, retire conservation, and capacity-widening
  monotonicity under arbitrary valid geometries.

Every random decision flows from an explicit ``random.Random(seed)``;
no module-level randomness is used anywhere in the package.
"""

from repro.fuzz.generator import (
    FuzzProgram,
    GeneratorConfig,
    generate_program,
    program_from_json,
    program_to_json,
    render_program,
)
from repro.fuzz.oracle import (
    Divergence,
    OracleConfig,
    ProgramReport,
    run_differential,
)
from repro.fuzz.campaign import (
    CampaignConfig,
    CampaignResult,
    ConfigCampaignConfig,
    ConfigCampaignResult,
    run_campaign,
    run_config_campaign,
)
from repro.fuzz.config_oracle import (
    ConfigDivergence,
    ConfigOracleConfig,
    ConfigPairReport,
    run_config_differential,
)
from repro.fuzz.configgen import (
    config_from_json,
    config_to_json,
    generate_config,
)
from repro.fuzz.shrink import shrink_config_case, shrink_program
from repro.fuzz.corpus import FuzzCorpus

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "ConfigCampaignConfig",
    "ConfigCampaignResult",
    "ConfigDivergence",
    "ConfigOracleConfig",
    "ConfigPairReport",
    "Divergence",
    "FuzzCorpus",
    "FuzzProgram",
    "GeneratorConfig",
    "OracleConfig",
    "ProgramReport",
    "config_from_json",
    "config_to_json",
    "generate_config",
    "generate_program",
    "program_from_json",
    "program_to_json",
    "render_program",
    "run_campaign",
    "run_config_campaign",
    "run_config_differential",
    "run_differential",
    "shrink_config_case",
    "shrink_program",
]
