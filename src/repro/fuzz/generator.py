"""Seeded random x86 program generator.

Programs are generated as a JSON-serializable *genome* — a flat list of
op records plus register/data initialisation — and only then rendered
through :class:`repro.x86.assembler.Assembler`.  The split matters for
two reasons: the delta-debugging shrinker edits genomes (dropping ops,
simplifying fields) without touching assembly details, and minimized
repros persist in the artifact store as plain JSON that re-renders
byte-identically forever.

Every program has the same skeleton, chosen to pull the whole rePLay
stack into play:

* register roles — ``ESI``/``EDI`` are data-region bases whose distance
  (``alias_delta``) controls load/store aliasing (0 = perfect aliasing,
  1-3 = partial overlap against sized accesses, larger = disjoint);
  ``ECX`` counts loop iterations; ``EAX``/``EBX``/``EDX``/``EBP`` are
  the mutable scratch set, seeded with "dirty" 32-bit values so
  MOVZX/MOVSX must actually replace high bits;
* a counted loop whose backedge (``dec ecx; jnz``) is biased-taken,
  which lets the frame constructor promote it and build frames spanning
  loop iterations;
* body ops drawn from the full translated subset — ALU reg/imm/mem
  forms, flag-only compares, sized loads/stores through both bases,
  MOVZX/MOVSX, LEA, shifts (immediate and ``ECX``-count), unaries, CDQ,
  balanced push/pop pairs, and forward conditional branches with
  generator-controlled bias (assertion-conversion fodder);
* an epilogue that stores the scratch registers back to memory, so the
  final memory map check sees every result.

All randomness flows from one explicit ``random.Random(seed)``; two
calls with equal seed and config produce equal genomes, and rendering
is deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.x86.assembler import Assembler, Program, mem
from repro.x86.instructions import Cond, Imm
from repro.x86.registers import Reg

#: Base address of the fuzz data region (well away from code and stack).
DATA_BASE = 0x0050_0000

#: Byte offset (from ``ESI``) of the epilogue's result spill area; must
#: lie beyond the largest body access (disp <= 60, size <= 4).
RESULT_DISP = 128

#: Registers the body may write.
SCRATCH_REGS = ("eax", "ebx", "edx", "ebp")

#: Registers the body may read (scratch + bases + loop counter).
READ_REGS = SCRATCH_REGS + ("ecx", "esi", "edi")

_CONDS = tuple(c.value for c in Cond)

#: Immediates weighted toward carry/overflow/sign boundaries.
_IMM_POOL = (
    0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 31, 32, 100,
    0x7F, 0x80, 0xFF, 0x100, 0x7FFF, 0x8000, 0xFFFF,
    0x7FFF_FFFF, 0x8000_0000, 0xFFFF_FFFF,
    -1, -2, -8, -128, -0x8000,
)

#: Displacements kept small and clustered so accesses through the two
#: bases collide often (exactly the traffic store-forwarding and the
#: unsafe-store check speculate about).
_DISP_POOL = (0, 1, 2, 3, 4, 6, 8, 12, 16, 20, 24, 32, 40, 48, 60)

_ALU_OPS = ("add", "sub", "and", "or", "xor", "imul")
_ALU_MEM_OPS = ("add", "sub", "and", "or", "xor")
_SHIFT_OPS = ("shl", "shr", "sar")
_UNARY_OPS = ("neg", "not", "inc", "dec")

#: ESI/EDI distance choices: exact, partial, word, disjoint aliasing.
_ALIAS_DELTAS = (0, 0, 1, 2, 3, 4, 4, 8, 16, 64)


@dataclass(frozen=True)
class GeneratorConfig:
    """Size knobs for generated programs."""

    min_body_ops: int = 4
    max_body_ops: int = 16
    min_iterations: int = 6
    max_iterations: int = 24
    data_words: int = 32


@dataclass
class FuzzProgram:
    """A generated program genome (JSON-serializable, shrinker-editable)."""

    seed: int
    iterations: int
    alias_delta: int
    reg_init: dict[str, int]
    data: list[int]
    ops: list[dict] = field(default_factory=list)

    def copy(self) -> "FuzzProgram":
        return FuzzProgram(
            seed=self.seed,
            iterations=self.iterations,
            alias_delta=self.alias_delta,
            reg_init=dict(self.reg_init),
            data=list(self.data),
            ops=[dict(op) for op in self.ops],
        )


def program_to_json(program: FuzzProgram) -> dict:
    """Genome → plain dict (stable key order handled by the corpus)."""
    return {
        "version": 1,
        "seed": program.seed,
        "iterations": program.iterations,
        "alias_delta": program.alias_delta,
        "reg_init": dict(program.reg_init),
        "data": list(program.data),
        "ops": [dict(op) for op in program.ops],
    }


def program_from_json(payload: dict) -> FuzzProgram:
    """Plain dict → genome (inverse of :func:`program_to_json`)."""
    version = payload.get("version", 1)
    if version != 1:
        raise ValueError(f"unsupported fuzz program version {version!r}")
    return FuzzProgram(
        seed=int(payload["seed"]),
        iterations=int(payload["iterations"]),
        alias_delta=int(payload["alias_delta"]),
        reg_init={k: int(v) for k, v in payload["reg_init"].items()},
        data=[int(w) for w in payload["data"]],
        ops=[dict(op) for op in payload["ops"]],
    )


# --------------------------------------------------------------- generation


def _value_operand(rng: random.Random, *, imm_chance: float = 0.5) -> dict:
    """A source operand: immediate (from the boundary pool) or register."""
    if rng.random() < imm_chance:
        return {"imm": rng.choice(_IMM_POOL)}
    return {"reg": rng.choice(READ_REGS)}


def _mem_site(rng: random.Random) -> tuple[str, int]:
    return rng.choice(("esi", "edi")), rng.choice(_DISP_POOL)


def _gen_op(rng: random.Random) -> dict:
    """One random body op record."""
    kind = rng.choices(
        (
            "alu", "alu_m", "flag", "mov", "load", "store", "movx",
            "lea", "shift", "unary", "cdq", "push_pop", "branch",
        ),
        weights=(18, 6, 6, 8, 12, 14, 8, 4, 7, 6, 2, 3, 12),
    )[0]

    if kind == "alu":
        op = rng.choice(_ALU_OPS)
        src: dict
        roll = rng.random()
        if roll < 0.30:
            base, disp = _mem_site(rng)
            src = {"mem": [base, disp]}
        elif roll < 0.65:
            src = {"reg": rng.choice(READ_REGS)}
        else:
            src = {"imm": rng.choice(_IMM_POOL)}
        return {"kind": kind, "op": op, "dst": rng.choice(SCRATCH_REGS), "src": src}
    if kind == "alu_m":
        base, disp = _mem_site(rng)
        return {
            "kind": kind,
            "op": rng.choice(_ALU_MEM_OPS),
            "base": base,
            "disp": disp,
            "src": _value_operand(rng),
        }
    if kind == "flag":
        return {
            "kind": kind,
            "op": rng.choice(("cmp", "test")),
            "left": rng.choice(READ_REGS),
            "right": _value_operand(rng),
        }
    if kind == "mov":
        return {
            "kind": kind,
            "dst": rng.choice(SCRATCH_REGS),
            "src": _value_operand(rng),
        }
    if kind == "load":
        base, disp = _mem_site(rng)
        return {"kind": kind, "dst": rng.choice(SCRATCH_REGS), "base": base, "disp": disp}
    if kind == "store":
        base, disp = _mem_site(rng)
        return {
            "kind": kind,
            "base": base,
            "disp": disp,
            "size": rng.choices((1, 2, 4), weights=(1, 1, 2))[0],
            "src": _value_operand(rng, imm_chance=0.3),
        }
    if kind == "movx":
        base, disp = _mem_site(rng)
        return {
            "kind": kind,
            "op": rng.choice(("movzx", "movsx")),
            "dst": rng.choice(SCRATCH_REGS),
            "base": base,
            "disp": disp,
            "size": rng.choice((1, 2)),
        }
    if kind == "lea":
        index = rng.choice((None,) + SCRATCH_REGS)
        return {
            "kind": kind,
            "dst": rng.choice(SCRATCH_REGS),
            "base": rng.choice(("esi", "edi", "eax", "ebx")),
            "index": index,
            "scale": rng.choice((1, 2, 4, 8)) if index else 1,
            "disp": rng.choice(_DISP_POOL),
        }
    if kind == "shift":
        count: dict
        if rng.random() < 0.25:
            count = {"reg": "ecx"}  # loop counter: varies per iteration
        else:
            count = {"imm": rng.choice((0, 1, 2, 3, 4, 7, 8, 15, 16, 24, 31))}
        return {
            "kind": kind,
            "op": rng.choice(_SHIFT_OPS),
            "dst": rng.choice(SCRATCH_REGS),
            "count": count,
        }
    if kind == "unary":
        return {
            "kind": kind,
            "op": rng.choice(_UNARY_OPS),
            "dst": rng.choice(SCRATCH_REGS),
        }
    if kind == "cdq":
        return {"kind": kind}
    if kind == "push_pop":
        return {
            "kind": kind,
            "src": rng.choice(SCRATCH_REGS),
            "dst": rng.choice(SCRATCH_REGS),
        }
    # branch: a forward skip over the next `skip` ops, with a test recipe
    # whose bias the generator controls.
    recipe = rng.choices(("ctr", "const", "data"), weights=(5, 3, 2))[0]
    if recipe == "ctr":
        # cmp ecx, k — direction constant until ECX approaches k.
        test = {"op": "cmp", "left": "ecx", "right": {"imm": rng.choice((1, 2, 3))}}
        cond = rng.choice(("g", "ge", "a", "ae", "nz", "le", "l", "b", "be", "z"))
    elif recipe == "const":
        reg = rng.choice(READ_REGS)
        test = {"op": "test", "left": reg, "right": {"reg": reg}}
        cond = rng.choice(_CONDS)
    else:
        test = {
            "op": rng.choice(("cmp", "test")),
            "left": rng.choice(READ_REGS),
            "right": _value_operand(rng),
        }
        cond = rng.choice(_CONDS)
    return {
        "kind": "branch",
        "test": test,
        "cond": cond,
        "skip": rng.randint(1, 3),
    }


def generate_program(
    seed: int, config: GeneratorConfig | None = None
) -> FuzzProgram:
    """Generate one program genome from ``seed`` (deterministic)."""
    config = config or GeneratorConfig()
    rng = random.Random(seed)
    reg_init = {
        reg: (
            rng.choice(_IMM_POOL) & 0xFFFF_FFFF
            if rng.random() < 0.5
            else rng.getrandbits(32)
        )
        for reg in SCRATCH_REGS
    }
    data = [
        rng.choice(_IMM_POOL) & 0xFFFF_FFFF
        if rng.random() < 0.3
        else rng.getrandbits(32)
        for _ in range(config.data_words)
    ]
    body_len = rng.randint(config.min_body_ops, config.max_body_ops)
    ops = [_gen_op(rng) for _ in range(body_len)]
    return FuzzProgram(
        seed=seed,
        iterations=rng.randint(config.min_iterations, config.max_iterations),
        alias_delta=rng.choice(_ALIAS_DELTAS),
        reg_init=reg_init,
        data=data,
        ops=ops,
    )


# ---------------------------------------------------------------- rendering


#: Mnemonics whose Assembler method name carries a trailing underscore.
_ASM_NAME = {"and": "and_", "or": "or_", "not": "not_"}


class RenderError(Exception):
    """Raised for genomes that cannot be rendered (shrinker artifacts)."""


def _reg(name: str) -> Reg:
    try:
        return Reg[name.upper()]
    except KeyError as exc:
        raise RenderError(f"unknown register {name!r}") from exc


def _src_operand(src: dict):
    if "imm" in src:
        return Imm(int(src["imm"]))
    if "reg" in src:
        return _reg(src["reg"])
    raise RenderError(f"malformed source operand {src!r}")


def _render_op(asm: Assembler, op: dict, index: int) -> None:
    kind = op["kind"]
    if kind == "alu":
        emit = getattr(asm, _ASM_NAME.get(op["op"], op["op"]))
        src = op["src"]
        if "mem" in src:
            base, disp = src["mem"]
            operand = mem(_reg(base), disp=int(disp))
        else:
            operand = _src_operand(src)
        emit(_reg(op["dst"]), operand)
    elif kind == "alu_m":
        emit = getattr(asm, _ASM_NAME.get(op["op"], op["op"]))
        emit(mem(_reg(op["base"]), disp=int(op["disp"])), _src_operand(op["src"]))
    elif kind == "flag":
        emit = asm.cmp if op["op"] == "cmp" else asm.test
        emit(_reg(op["left"]), _src_operand(op["right"]))
    elif kind == "mov":
        asm.mov(_reg(op["dst"]), _src_operand(op["src"]))
    elif kind == "load":
        asm.mov(_reg(op["dst"]), mem(_reg(op["base"]), disp=int(op["disp"])))
    elif kind == "store":
        asm.mov(
            mem(_reg(op["base"]), disp=int(op["disp"]), size=int(op["size"])),
            _src_operand(op["src"]),
        )
    elif kind == "movx":
        emit = asm.movzx if op["op"] == "movzx" else asm.movsx
        emit(
            _reg(op["dst"]),
            mem(_reg(op["base"]), disp=int(op["disp"]), size=int(op["size"])),
        )
    elif kind == "lea":
        index_reg = _reg(op["index"]) if op.get("index") else None
        asm.lea(
            _reg(op["dst"]),
            mem(
                _reg(op["base"]),
                index=index_reg,
                scale=int(op.get("scale", 1)),
                disp=int(op.get("disp", 0)),
            ),
        )
    elif kind == "shift":
        emit = getattr(asm, op["op"])
        count = op["count"]
        emit(
            _reg(op["dst"]),
            Imm(int(count["imm"])) if "imm" in count else _reg(count["reg"]),
        )
    elif kind == "unary":
        emit = {
            "neg": asm.neg, "not": asm.not_, "inc": asm.inc, "dec": asm.dec,
        }[op["op"]]
        emit(_reg(op["dst"]))
    elif kind == "cdq":
        asm.cdq()
    elif kind == "push_pop":
        asm.push(_reg(op["src"]))
        asm.pop(_reg(op["dst"]))
    elif kind == "branch":
        test = op["test"]
        emit = asm.cmp if test["op"] == "cmp" else asm.test
        emit(_reg(test["left"]), _src_operand(test["right"]))
        asm.jcc(Cond(op["cond"]), f"skip_{index}")
    else:
        raise RenderError(f"unknown op kind {kind!r}")


def render_program(program: FuzzProgram) -> Program:
    """Render a genome into an assembled :class:`Program`."""
    asm = Assembler()
    asm.mov(Reg.ESI, Imm(DATA_BASE))
    asm.mov(Reg.EDI, Imm(DATA_BASE + program.alias_delta))
    for name in SCRATCH_REGS:
        asm.mov(_reg(name), Imm(program.reg_init.get(name, 0) & 0xFFFF_FFFF))
    asm.mov(Reg.ECX, Imm(max(1, program.iterations)))
    asm.label("loop")

    # Forward-branch targets: branch op i jumps over the next `skip` ops,
    # so its label lands just before op i+1+skip (clamped to the body end).
    pending: dict[int, list[str]] = {}
    count = len(program.ops)
    for i, op in enumerate(program.ops):
        if op["kind"] == "branch":
            target = min(i + 1 + int(op["skip"]), count)
            pending.setdefault(target, []).append(f"skip_{i}")
    for i, op in enumerate(program.ops):
        for name in pending.get(i, ()):
            asm.label(name)
        _render_op(asm, op, i)
    for name in pending.get(count, ()):
        asm.label(name)

    asm.dec(Reg.ECX)
    asm.jcc(Cond.NZ, "loop")
    for offset, name in enumerate(SCRATCH_REGS):
        asm.mov(mem(Reg.ESI, disp=RESULT_DISP + 4 * offset), _reg(name))
    asm.ret()
    asm.data_words(DATA_BASE, program.data)
    return asm.assemble()
