"""Seeded random x86 program generator.

Programs are generated as a JSON-serializable *genome* — a flat list of
op records plus register/data initialisation — and only then rendered
through :class:`repro.x86.assembler.Assembler`.  The split matters for
two reasons: the delta-debugging shrinker edits genomes (dropping ops,
simplifying fields) without touching assembly details, and minimized
repros persist in the artifact store as plain JSON that re-renders
byte-identically forever.

Every program has the same skeleton, chosen to pull the whole rePLay
stack into play:

* register roles — ``ESI``/``EDI`` are data-region bases whose distance
  (``alias_delta``) controls load/store aliasing (0 = perfect aliasing,
  1-3 = partial overlap against sized accesses, larger = disjoint);
  ``ECX`` counts loop iterations; ``EAX``/``EBX``/``EDX``/``EBP`` are
  the mutable scratch set, seeded with "dirty" 32-bit values so
  MOVZX/MOVSX must actually replace high bits;
* a counted loop whose backedge (``dec ecx; jnz``) is biased-taken,
  which lets the frame constructor promote it and build frames spanning
  loop iterations;
* body ops drawn from the full translated subset — ALU reg/imm/mem
  forms, flag-only compares, sized loads/stores through both bases,
  MOVZX/MOVSX, LEA, shifts (immediate and ``ECX``-count), unaries, CDQ,
  balanced push/pop pairs, and forward conditional branches with
  generator-controlled bias (assertion-conversion fodder);
* an epilogue that stores the scratch registers back to memory, so the
  final memory map check sees every result.

All randomness flows from one explicit ``random.Random(seed)``; two
calls with equal seed and config produce equal genomes, and rendering
is deterministic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.x86.assembler import Assembler, Program, mem
from repro.x86.instructions import Cond, Imm
from repro.x86.registers import Reg

#: Base address of the fuzz data region (well away from code and stack).
DATA_BASE = 0x0050_0000

#: Byte offset (from ``ESI``) of the epilogue's result spill area; must
#: lie beyond the largest body access (disp <= 60, size <= 4).
RESULT_DISP = 128

#: Registers the body may write.
SCRATCH_REGS = ("eax", "ebx", "edx", "ebp")

#: Registers the body may read (scratch + bases + loop counter).
READ_REGS = SCRATCH_REGS + ("ecx", "esi", "edi")

_CONDS = tuple(c.value for c in Cond)

#: Immediates weighted toward carry/overflow/sign boundaries.
_IMM_POOL = (
    0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 31, 32, 100,
    0x7F, 0x80, 0xFF, 0x100, 0x7FFF, 0x8000, 0xFFFF,
    0x7FFF_FFFF, 0x8000_0000, 0xFFFF_FFFF,
    -1, -2, -8, -128, -0x8000,
)

#: Displacements kept small and clustered so accesses through the two
#: bases collide often (exactly the traffic store-forwarding and the
#: unsafe-store check speculate about).
_DISP_POOL = (0, 1, 2, 3, 4, 6, 8, 12, 16, 20, 24, 32, 40, 48, 60)

_ALU_OPS = ("add", "sub", "and", "or", "xor", "imul")
_ALU_MEM_OPS = ("add", "sub", "and", "or", "xor")
_SHIFT_OPS = ("shl", "shr", "sar")
_UNARY_OPS = ("neg", "not", "inc", "dec")

#: ESI/EDI distance choices: exact, partial, word, disjoint aliasing.
_ALIAS_DELTAS = (0, 0, 1, 2, 3, 4, 4, 8, 16, 64)


@dataclass(frozen=True)
class GeneratorConfig:
    """Size and structure knobs for generated programs.

    The first block sizes the program; the second block holds the
    *scenario knobs* added for :mod:`repro.scenarios` workload families.
    Every scenario knob's default reproduces the legacy generator
    byte-for-byte (same RNG draw sequence, same genome), so existing
    fuzz campaign digests and stored corpus cases are unaffected.
    """

    min_body_ops: int = 4
    max_body_ops: int = 16
    min_iterations: int = 6
    max_iterations: int = 24
    data_words: int = 32

    # ----- scenario knobs (defaults = legacy generator, bit-identical) -----

    #: Counted-loop nesting depth.  1 = the single legacy backedge loop;
    #: d > 1 wraps up to d-1 nested counted inner loops around contiguous
    #: body spans (rendered with push/pop of the loop counter).
    loop_nesting: int = 1
    #: Trip-count bound for nested inner loops (2..max).
    max_inner_iterations: int = 6
    #: When set, the fraction of generated branches that are biased
    #: taken (the rest are biased not-taken); None = legacy mixed
    #: recipes with data-dependent directions.
    branch_bias: float | None = None
    #: Extra probability per body slot of emitting a conditional branch
    #: (on top of the base op mix); raises branch density for
    #: assertion-conversion stress.
    branch_density: float = 0.0
    #: Override pool for the ESI/EDI distance (None = legacy
    #: ``_ALIAS_DELTAS``).  A single-element pool pins alias behaviour.
    alias_deltas: tuple[int, ...] | None = None
    #: Probability per body slot of emitting a redundancy pair —
    #: load/load from one site (CSE fodder) or store-then-reload
    #: (store-forwarding fodder).
    redundancy: float = 0.0
    #: Probability per body slot of a ``call`` to a small leaf helper
    #: routine (stack traffic: push/pop + ret/call return stack).
    call_weight: float = 0.0

    @property
    def extended(self) -> bool:
        """True when any scenario knob departs from the legacy default."""
        return (
            self.loop_nesting > 1
            or self.branch_bias is not None
            or self.branch_density > 0.0
            or self.alias_deltas is not None
            or self.redundancy > 0.0
            or self.call_weight > 0.0
        )


@dataclass
class FuzzProgram:
    """A generated program genome (JSON-serializable, shrinker-editable).

    ``inner_spans`` and ``helpers`` exist only on scenario-family genomes
    (``GeneratorConfig.extended``); both default empty, and the JSON form
    omits them when empty so legacy corpus cases keep their content keys.
    """

    seed: int
    iterations: int
    alias_delta: int
    reg_init: dict[str, int]
    data: list[int]
    ops: list[dict] = field(default_factory=list)
    #: Nested counted loops as ``(start, end, iterations)`` op-index
    #: spans, outermost first; spans are properly nested and rendered
    #: as push/pop-protected inner loops.
    inner_spans: list[tuple[int, int, int]] = field(default_factory=list)
    #: Number of callable leaf helper routines emitted after the body.
    helpers: int = 0

    def copy(self) -> "FuzzProgram":
        return FuzzProgram(
            seed=self.seed,
            iterations=self.iterations,
            alias_delta=self.alias_delta,
            reg_init=dict(self.reg_init),
            data=list(self.data),
            ops=[dict(op) for op in self.ops],
            inner_spans=[tuple(span) for span in self.inner_spans],
            helpers=self.helpers,
        )


def program_to_json(program: FuzzProgram) -> dict:
    """Genome → plain dict (stable key order handled by the corpus)."""
    payload = {
        "version": 1,
        "seed": program.seed,
        "iterations": program.iterations,
        "alias_delta": program.alias_delta,
        "reg_init": dict(program.reg_init),
        "data": list(program.data),
        "ops": [dict(op) for op in program.ops],
    }
    # Emitted only when present: legacy genomes stay byte-identical, so
    # corpus content keys computed before these fields existed still match.
    if program.inner_spans:
        payload["inner_spans"] = [list(span) for span in program.inner_spans]
    if program.helpers:
        payload["helpers"] = program.helpers
    return payload


def program_from_json(payload: dict) -> FuzzProgram:
    """Plain dict → genome (inverse of :func:`program_to_json`)."""
    version = payload.get("version", 1)
    if version != 1:
        raise ValueError(f"unsupported fuzz program version {version!r}")
    return FuzzProgram(
        seed=int(payload["seed"]),
        iterations=int(payload["iterations"]),
        alias_delta=int(payload["alias_delta"]),
        reg_init={k: int(v) for k, v in payload["reg_init"].items()},
        data=[int(w) for w in payload["data"]],
        ops=[dict(op) for op in payload["ops"]],
        inner_spans=[
            (int(s), int(e), int(n))
            for s, e, n in payload.get("inner_spans", [])
        ],
        helpers=int(payload.get("helpers", 0)),
    )


# --------------------------------------------------------------- generation


def _value_operand(rng: random.Random, *, imm_chance: float = 0.5) -> dict:
    """A source operand: immediate (from the boundary pool) or register."""
    if rng.random() < imm_chance:
        return {"imm": rng.choice(_IMM_POOL)}
    return {"reg": rng.choice(READ_REGS)}


def _mem_site(rng: random.Random) -> tuple[str, int]:
    return rng.choice(("esi", "edi")), rng.choice(_DISP_POOL)


def _gen_op(rng: random.Random) -> dict:
    """One random body op record."""
    kind = rng.choices(
        (
            "alu", "alu_m", "flag", "mov", "load", "store", "movx",
            "lea", "shift", "unary", "cdq", "push_pop", "branch",
        ),
        weights=(18, 6, 6, 8, 12, 14, 8, 4, 7, 6, 2, 3, 12),
    )[0]

    if kind == "alu":
        op = rng.choice(_ALU_OPS)
        src: dict
        roll = rng.random()
        if roll < 0.30:
            base, disp = _mem_site(rng)
            src = {"mem": [base, disp]}
        elif roll < 0.65:
            src = {"reg": rng.choice(READ_REGS)}
        else:
            src = {"imm": rng.choice(_IMM_POOL)}
        return {"kind": kind, "op": op, "dst": rng.choice(SCRATCH_REGS), "src": src}
    if kind == "alu_m":
        base, disp = _mem_site(rng)
        return {
            "kind": kind,
            "op": rng.choice(_ALU_MEM_OPS),
            "base": base,
            "disp": disp,
            "src": _value_operand(rng),
        }
    if kind == "flag":
        return {
            "kind": kind,
            "op": rng.choice(("cmp", "test")),
            "left": rng.choice(READ_REGS),
            "right": _value_operand(rng),
        }
    if kind == "mov":
        return {
            "kind": kind,
            "dst": rng.choice(SCRATCH_REGS),
            "src": _value_operand(rng),
        }
    if kind == "load":
        base, disp = _mem_site(rng)
        return {"kind": kind, "dst": rng.choice(SCRATCH_REGS), "base": base, "disp": disp}
    if kind == "store":
        base, disp = _mem_site(rng)
        return {
            "kind": kind,
            "base": base,
            "disp": disp,
            "size": rng.choices((1, 2, 4), weights=(1, 1, 2))[0],
            "src": _value_operand(rng, imm_chance=0.3),
        }
    if kind == "movx":
        base, disp = _mem_site(rng)
        return {
            "kind": kind,
            "op": rng.choice(("movzx", "movsx")),
            "dst": rng.choice(SCRATCH_REGS),
            "base": base,
            "disp": disp,
            "size": rng.choice((1, 2)),
        }
    if kind == "lea":
        index = rng.choice((None,) + SCRATCH_REGS)
        return {
            "kind": kind,
            "dst": rng.choice(SCRATCH_REGS),
            "base": rng.choice(("esi", "edi", "eax", "ebx")),
            "index": index,
            "scale": rng.choice((1, 2, 4, 8)) if index else 1,
            "disp": rng.choice(_DISP_POOL),
        }
    if kind == "shift":
        count: dict
        if rng.random() < 0.25:
            count = {"reg": "ecx"}  # loop counter: varies per iteration
        else:
            count = {"imm": rng.choice((0, 1, 2, 3, 4, 7, 8, 15, 16, 24, 31))}
        return {
            "kind": kind,
            "op": rng.choice(_SHIFT_OPS),
            "dst": rng.choice(SCRATCH_REGS),
            "count": count,
        }
    if kind == "unary":
        return {
            "kind": kind,
            "op": rng.choice(_UNARY_OPS),
            "dst": rng.choice(SCRATCH_REGS),
        }
    if kind == "cdq":
        return {"kind": kind}
    if kind == "push_pop":
        return {
            "kind": kind,
            "src": rng.choice(SCRATCH_REGS),
            "dst": rng.choice(SCRATCH_REGS),
        }
    # branch: a forward skip over the next `skip` ops, with a test recipe
    # whose bias the generator controls.
    recipe = rng.choices(("ctr", "const", "data"), weights=(5, 3, 2))[0]
    if recipe == "ctr":
        # cmp ecx, k — direction constant until ECX approaches k.
        test = {"op": "cmp", "left": "ecx", "right": {"imm": rng.choice((1, 2, 3))}}
        cond = rng.choice(("g", "ge", "a", "ae", "nz", "le", "l", "b", "be", "z"))
    elif recipe == "const":
        reg = rng.choice(READ_REGS)
        test = {"op": "test", "left": reg, "right": {"reg": reg}}
        cond = rng.choice(_CONDS)
    else:
        test = {
            "op": rng.choice(("cmp", "test")),
            "left": rng.choice(READ_REGS),
            "right": _value_operand(rng),
        }
        cond = rng.choice(_CONDS)
    return {
        "kind": "branch",
        "test": test,
        "cond": cond,
        "skip": rng.randint(1, 3),
    }


def _biased_branch(rng: random.Random, bias: float, skip: int) -> dict:
    """A branch whose direction is constant for almost every iteration.

    Taken-biased branches compare the loop counter against 1 with ``g``
    (taken until the final iteration); not-taken-biased use ``l`` (never
    taken while the counter is >= 1).  Drawing taken-biased with
    probability ``bias`` puts the trace's aggregate taken-ratio under
    generator control.
    """
    cond = "g" if rng.random() < bias else "l"
    return {
        "kind": "branch",
        "test": {"op": "cmp", "left": "ecx", "right": {"imm": 1}},
        "cond": cond,
        "skip": skip,
    }


def _redundancy_pair(rng: random.Random) -> list[dict]:
    """CSE / store-forwarding fodder: two ops hitting one memory site."""
    base, disp = _mem_site(rng)
    dst_a = rng.choice(SCRATCH_REGS)
    dst_b = rng.choice(SCRATCH_REGS)
    if rng.random() < 0.5:
        # Same-site load pair: the second load is a common subexpression.
        return [
            {"kind": "load", "dst": dst_a, "base": base, "disp": disp},
            {"kind": "load", "dst": dst_b, "base": base, "disp": disp},
        ]
    # Store then reload: classic store-forwarding fodder.
    return [
        {
            "kind": "store",
            "base": base,
            "disp": disp,
            "size": 4,
            "src": {"reg": rng.choice(READ_REGS)},
        },
        {"kind": "load", "dst": dst_b, "base": base, "disp": disp},
    ]


def _gen_extended_body(
    rng: random.Random, config: GeneratorConfig, body_len: int
) -> tuple[list[dict], list[tuple[int, int, int]], int]:
    """Body ops + nested-loop spans + helper count for knobbed configs."""
    helpers = rng.randint(1, 3) if config.call_weight > 0.0 else 0
    ops: list[dict] = []
    while len(ops) < body_len:
        roll = rng.random()
        if config.redundancy > 0.0 and roll < config.redundancy:
            ops.extend(_redundancy_pair(rng))
            continue
        if config.call_weight > 0.0 and roll < config.redundancy + config.call_weight:
            ops.append({"kind": "call", "helper": rng.randrange(helpers)})
            continue
        if config.branch_density > 0.0 and rng.random() < config.branch_density:
            bias = config.branch_bias if config.branch_bias is not None else 0.5
            ops.append(_biased_branch(rng, bias, rng.randint(1, 3)))
            continue
        op = _gen_op(rng)
        if op["kind"] == "branch" and config.branch_bias is not None:
            op = _biased_branch(rng, config.branch_bias, int(op["skip"]))
        ops.append(op)

    spans: list[tuple[int, int, int]] = []
    lo, hi = 0, len(ops)
    for _ in range(max(0, config.loop_nesting - 1)):
        if hi - lo < 2:
            break
        start = rng.randint(lo, hi - 2)
        end = rng.randint(start + 1, hi)
        spans.append((start, end, rng.randint(2, max(2, config.max_inner_iterations))))
        lo, hi = start, end
    return ops, spans, helpers


def generate_program(
    seed: int, config: GeneratorConfig | None = None
) -> FuzzProgram:
    """Generate one program genome from ``seed`` (deterministic).

    With a default (legacy) config the draw sequence is exactly the
    historical one, so seeds reproduce old genomes bit-for-bit; scenario
    knobs (``config.extended``) switch only the body-op stage to the
    knob-aware generator.
    """
    config = config or GeneratorConfig()
    rng = random.Random(seed)
    reg_init = {
        reg: (
            rng.choice(_IMM_POOL) & 0xFFFF_FFFF
            if rng.random() < 0.5
            else rng.getrandbits(32)
        )
        for reg in SCRATCH_REGS
    }
    data = [
        rng.choice(_IMM_POOL) & 0xFFFF_FFFF
        if rng.random() < 0.3
        else rng.getrandbits(32)
        for _ in range(config.data_words)
    ]
    body_len = rng.randint(config.min_body_ops, config.max_body_ops)
    if config.extended:
        ops, spans, helpers = _gen_extended_body(rng, config, body_len)
    else:
        ops = [_gen_op(rng) for _ in range(body_len)]
        spans, helpers = [], 0
    alias_pool = (
        tuple(config.alias_deltas)
        if config.alias_deltas is not None
        else _ALIAS_DELTAS
    )
    return FuzzProgram(
        seed=seed,
        iterations=rng.randint(config.min_iterations, config.max_iterations),
        alias_delta=rng.choice(alias_pool),
        reg_init=reg_init,
        data=data,
        ops=ops,
        inner_spans=spans,
        helpers=helpers,
    )


# ---------------------------------------------------------------- rendering


#: Mnemonics whose Assembler method name carries a trailing underscore.
_ASM_NAME = {"and": "and_", "or": "or_", "not": "not_"}


class RenderError(Exception):
    """Raised for genomes that cannot be rendered (shrinker artifacts)."""


def _reg(name: str) -> Reg:
    try:
        return Reg[name.upper()]
    except KeyError as exc:
        raise RenderError(f"unknown register {name!r}") from exc


def _src_operand(src: dict):
    if "imm" in src:
        return Imm(int(src["imm"]))
    if "reg" in src:
        return _reg(src["reg"])
    raise RenderError(f"malformed source operand {src!r}")


def _render_op(asm: Assembler, op: dict, index: int) -> None:
    kind = op["kind"]
    if kind == "alu":
        emit = getattr(asm, _ASM_NAME.get(op["op"], op["op"]))
        src = op["src"]
        if "mem" in src:
            base, disp = src["mem"]
            operand = mem(_reg(base), disp=int(disp))
        else:
            operand = _src_operand(src)
        emit(_reg(op["dst"]), operand)
    elif kind == "alu_m":
        emit = getattr(asm, _ASM_NAME.get(op["op"], op["op"]))
        emit(mem(_reg(op["base"]), disp=int(op["disp"])), _src_operand(op["src"]))
    elif kind == "flag":
        emit = asm.cmp if op["op"] == "cmp" else asm.test
        emit(_reg(op["left"]), _src_operand(op["right"]))
    elif kind == "mov":
        asm.mov(_reg(op["dst"]), _src_operand(op["src"]))
    elif kind == "load":
        asm.mov(_reg(op["dst"]), mem(_reg(op["base"]), disp=int(op["disp"])))
    elif kind == "store":
        asm.mov(
            mem(_reg(op["base"]), disp=int(op["disp"]), size=int(op["size"])),
            _src_operand(op["src"]),
        )
    elif kind == "movx":
        emit = asm.movzx if op["op"] == "movzx" else asm.movsx
        emit(
            _reg(op["dst"]),
            mem(_reg(op["base"]), disp=int(op["disp"]), size=int(op["size"])),
        )
    elif kind == "lea":
        index_reg = _reg(op["index"]) if op.get("index") else None
        asm.lea(
            _reg(op["dst"]),
            mem(
                _reg(op["base"]),
                index=index_reg,
                scale=int(op.get("scale", 1)),
                disp=int(op.get("disp", 0)),
            ),
        )
    elif kind == "shift":
        emit = getattr(asm, op["op"])
        count = op["count"]
        emit(
            _reg(op["dst"]),
            Imm(int(count["imm"])) if "imm" in count else _reg(count["reg"]),
        )
    elif kind == "unary":
        emit = {
            "neg": asm.neg, "not": asm.not_, "inc": asm.inc, "dec": asm.dec,
        }[op["op"]]
        emit(_reg(op["dst"]))
    elif kind == "cdq":
        asm.cdq()
    elif kind == "push_pop":
        asm.push(_reg(op["src"]))
        asm.pop(_reg(op["dst"]))
    elif kind == "call":
        asm.call(f"helper_{int(op['helper'])}")
    elif kind == "branch":
        test = op["test"]
        emit = asm.cmp if test["op"] == "cmp" else asm.test
        emit(_reg(test["left"]), _src_operand(test["right"]))
        asm.jcc(Cond(op["cond"]), f"skip_{index}")
    else:
        raise RenderError(f"unknown op kind {kind!r}")


def _check_spans(
    spans: list[tuple[int, int, int]], count: int
) -> list[tuple[int, int, int]]:
    """Validate nested-loop spans (shrinker edits can strand indices)."""
    checked: list[tuple[int, int, int]] = []
    prev: tuple[int, int] | None = None
    for raw in spans:
        start, end, iters = (int(x) for x in raw)
        if not (0 <= start < end <= count) or iters < 1:
            raise RenderError(f"malformed inner span {raw!r}")
        if prev is not None and not (prev[0] <= start and end <= prev[1]):
            raise RenderError(f"inner span {raw!r} not nested in {prev!r}")
        checked.append((start, end, iters))
        prev = (start, end)
    return checked


def _branch_target(
    i: int, skip: int, spans: list[tuple[int, int, int]], count: int
) -> tuple[int, int]:
    """(clamped target index, nesting depth) of the branch at op ``i``.

    Targets never leave the innermost span containing the branch (which
    would skip the span's counted backedge) and never jump *into* a span
    from outside (which would skip its counter setup).
    """
    target = min(i + 1 + skip, count)
    depth = 0
    for start, end, _iters in spans:
        if start <= i < end:
            depth += 1
            target = min(target, end)
        elif i < start:
            target = min(target, start)
    return max(target, i + 1), depth


def render_program(program: FuzzProgram) -> Program:
    """Render a genome into an assembled :class:`Program`.

    Legacy genomes (no inner spans, no helpers) render exactly as they
    always did.  Family genomes additionally wrap span ranges in counted
    inner loops (the outer counter is push/pop-protected, so ``ECX``
    always holds the innermost live trip counter) and append leaf helper
    routines after the epilogue for ``call`` ops.
    """
    spans = _check_spans(program.inner_spans, len(program.ops))
    for op in program.ops:
        if op["kind"] == "call" and not (
            0 <= int(op.get("helper", -1)) < program.helpers
        ):
            raise RenderError(f"call op references missing helper: {op!r}")

    asm = Assembler()
    asm.mov(Reg.ESI, Imm(DATA_BASE))
    asm.mov(Reg.EDI, Imm(DATA_BASE + program.alias_delta))
    for name in SCRATCH_REGS:
        asm.mov(_reg(name), Imm(program.reg_init.get(name, 0) & 0xFFFF_FFFF))
    asm.mov(Reg.ECX, Imm(max(1, program.iterations)))
    asm.label("loop")

    # Forward-branch targets: branch op i jumps over the next `skip` ops,
    # so its label lands just before op i+1+skip — clamped to the body
    # end and to loop-span boundaries, and keyed by (index, depth) so it
    # is emitted at the branch's own nesting level.
    pending: dict[tuple[int, int], list[str]] = {}
    count = len(program.ops)
    for i, op in enumerate(program.ops):
        if op["kind"] == "branch":
            key = _branch_target(i, int(op["skip"]), spans, count)
            pending.setdefault(key, []).append(f"skip_{i}")

    stack: list[tuple[int, str]] = []  # (span id, loop label)
    for j in range(count + 1):
        # Close spans ending here (innermost first), emitting same-depth
        # skip labels just before each backedge so a branch inside the
        # span falls into its counted loop-close.
        while stack and spans[stack[-1][0]][1] == j:
            for name in pending.pop((j, len(stack)), ()):
                asm.label(name)
            _span_id, loop_label = stack.pop()
            asm.dec(Reg.ECX)
            asm.jcc(Cond.NZ, loop_label)
            asm.pop(Reg.ECX)
        for name in pending.pop((j, len(stack)), ()):
            asm.label(name)
        if j == count:
            break
        for span_id, (start, _end, iters) in enumerate(spans):
            if start == j:
                loop_label = f"inner_{span_id}"
                asm.push(Reg.ECX)
                asm.mov(Reg.ECX, Imm(iters))
                asm.label(loop_label)
                stack.append((span_id, loop_label))
        _render_op(asm, program.ops[j], j)

    asm.dec(Reg.ECX)
    asm.jcc(Cond.NZ, "loop")
    for offset, name in enumerate(SCRATCH_REGS):
        asm.mov(mem(Reg.ESI, disp=RESULT_DISP + 4 * offset), _reg(name))
    asm.ret()
    for helper in range(program.helpers):
        site = RESULT_DISP + 4 * len(SCRATCH_REGS) + 8 * helper
        asm.label(f"helper_{helper}")
        asm.push(Reg.EBP)
        asm.mov(Reg.EBP, mem(Reg.ESI, disp=site))
        asm.add(Reg.EBP, Imm(helper + 1))
        asm.mov(mem(Reg.ESI, disp=site + 4), Reg.EBP)
        asm.pop(Reg.EBP)
        asm.ret()
    asm.data_words(DATA_BASE, program.data)
    return asm.assemble()
