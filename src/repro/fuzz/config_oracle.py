"""The config-differential oracle: one (program, config) pair, checked.

Where :mod:`repro.fuzz.oracle` checks optimizer *semantics* (frames must
compute what the program computes), this oracle checks the *timing
model* across the configuration axis.  A sampled
:class:`~repro.timing.config.ProcessorConfig` is driven through full
simulations of the generated program under the paper's front ends, and
three hard invariant families must hold:

* **schedule A/B** — for every front end (IC, RP, RPO), the template
  scheduling fast path must produce a :class:`SimResult` *identical* to
  the object-walking reference path.  PR 4 proved this on the 14
  workloads under the default config; this oracle is the standing gate
  that keeps it true for arbitrary geometries.
* **retire conservation** — every front end must retire exactly the
  emulated trace: ``x86_retired == len(trace)`` whatever the config.
* **widening monotonicity** — re-simulating the ICache front end with
  every *capacity* resource widened (FU pools, retire width, window)
  must never cost cycles.  Only capacity axes are widened: fetch and
  decode widths change fetch grouping (different blocks, different
  branch-event timing), and the rePLay front ends are excluded because
  frame availability is cycle-dependent (the optimization queue models
  latency), so their timing is legitimately non-monotone.

Any crash inside a simulation is itself a finding (``sim-crash``):
configs are valid by construction, so nothing downstream may throw.

**Deliberately not a hard check:** "optimized IPC >= unoptimized".
Measured over seeded samples it fails ~40% of the time for legitimate
model reasons — the optimization queue's modeled latency shifts which
frames are ready when (RP and RPO dispatch *different* frame sequences),
and optimization that removes loads changes D-cache contents, so a
later load can miss where the unoptimized run hit.  The comparison is
recorded as advisory counters (``fuzz.config.optimized_slower`` /
``faster``) instead, on assertion-free pairs only.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace

from repro.harness.experiment import CONFIGS, run_experiment
from repro.timing.config import ProcessorConfig
from repro.timing.pipeline import SimResult
from repro.trace.stream import DynamicTrace
from repro.x86.emulator import Emulator

from repro.fuzz.configgen import config_delta
from repro.fuzz.generator import FuzzProgram, render_program
from repro.fuzz.oracle import OracleConfig

#: Front ends every pair is simulated under.  TC is omitted from the
#: default set: it shares the frame path's timing code (same A/B
#: machinery) at roughly +35% oracle cost.
FRONTENDS = ("IC", "RP", "RPO")


@dataclass(frozen=True)
class ConfigOracleConfig:
    """Oracle tuning for the config axis."""

    frontends: tuple[str, ...] = FRONTENDS
    check_widening: bool = True
    max_instructions: int = 50_000
    #: constructor knobs reused from the program oracle so short fuzz
    #: loops build and dispatch frames under the rePLay front ends.
    program_oracle: OracleConfig = OracleConfig()


@dataclass
class ConfigDivergence:
    """One observed timing-model disagreement on a (program, config) pair."""

    kind: str  # schedule-ab | retire-conservation | widening | sim-crash
    frontend: str
    detail: str

    def to_json(self) -> dict:
        return {"kind": self.kind, "frontend": self.frontend, "detail": self.detail}

    @classmethod
    def from_json(cls, payload: dict) -> "ConfigDivergence":
        return cls(
            kind=payload["kind"],
            frontend=payload["frontend"],
            detail=payload["detail"],
        )


@dataclass
class ConfigPairReport:
    """Outcome of one (program genome, processor config) pair."""

    program_seed: int
    config_seed: int | None = None
    trace_length: int = 0
    simulations: int = 0
    frames_fetched: int = 0
    frames_fired: int = 0
    #: advisory optimizer comparison (assertion-free pairs only).
    optimized_slower: bool = False
    config_fields: list[str] = field(default_factory=list)
    divergences: list[ConfigDivergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences


def sim_result_diff(a: SimResult, b: SimResult) -> str:
    """Human-readable field-level diff of two SimResults."""
    da, db = asdict(a), asdict(b)
    parts = []
    for key in da:
        if da[key] != db[key]:
            parts.append(f"{key}: {da[key]!r} != {db[key]!r}")
    return "; ".join(parts) or "equal"


def widen_config(config: ProcessorConfig) -> ProcessorConfig:
    """Every capacity resource doubled (the monotonicity comparand)."""
    return replace(
        config,
        simple_alus=config.simple_alus * 2,
        complex_alus=config.complex_alus * 2,
        fpus=config.fpus * 2,
        load_store_units=config.load_store_units * 2,
        retire_width=config.retire_width * 2,
        window_size=config.window_size * 2,
    )


def run_config_differential(
    genome: FuzzProgram,
    processor: ProcessorConfig,
    config: ConfigOracleConfig | None = None,
    metrics=None,
) -> ConfigPairReport:
    """Check one (program, config) pair; returns the report."""
    config = config or ConfigOracleConfig()
    report = ConfigPairReport(program_seed=genome.seed)
    report.config_fields = config_delta(processor)

    program = render_program(genome)
    emulator = Emulator(program)
    records = emulator.run(max_instructions=config.max_instructions)
    if not emulator.halted:
        raise ValueError(f"program (seed {genome.seed}) did not halt")
    report.trace_length = len(records)
    trace = DynamicTrace(records, name=f"fuzz-{genome.seed}")

    constructor = config.program_oracle.constructor_config()
    results: dict[str, SimResult] = {}
    for name in config.frontends:
        experiment = replace(
            CONFIGS[name], processor=processor, constructor=constructor
        )
        sims: dict[str, SimResult] = {}
        for scheduling in ("reference", "template"):
            try:
                sims[scheduling] = run_experiment(
                    trace, experiment, metrics=metrics, scheduling=scheduling
                ).sim
                report.simulations += 1
            except Exception as exc:  # noqa: BLE001 - any crash is a finding
                report.divergences.append(
                    ConfigDivergence(
                        kind="sim-crash",
                        frontend=name,
                        detail=f"[{scheduling}] {type(exc).__name__}: {exc}",
                    )
                )
        if len(sims) < 2:
            continue
        if sims["template"] != sims["reference"]:
            report.divergences.append(
                ConfigDivergence(
                    kind="schedule-ab",
                    frontend=name,
                    detail=sim_result_diff(sims["template"], sims["reference"]),
                )
            )
        result = sims["template"]
        results[name] = result
        report.frames_fetched += result.frames_fetched
        report.frames_fired += result.frames_fired
        if result.x86_retired != len(records):
            report.divergences.append(
                ConfigDivergence(
                    kind="retire-conservation",
                    frontend=name,
                    detail=(
                        f"retired {result.x86_retired} x86 instructions, "
                        f"trace has {len(records)}"
                    ),
                )
            )

    if config.check_widening and "IC" in results:
        experiment = replace(CONFIGS["IC"], processor=widen_config(processor))
        try:
            wide = run_experiment(trace, experiment, metrics=metrics).sim
            report.simulations += 1
            if wide.cycles > results["IC"].cycles:
                report.divergences.append(
                    ConfigDivergence(
                        kind="widening",
                        frontend="IC",
                        detail=(
                            f"doubling FU/retire/window capacity cost cycles: "
                            f"{wide.cycles} > {results['IC'].cycles}"
                        ),
                    )
                )
        except Exception as exc:  # noqa: BLE001 - any crash is a finding
            report.divergences.append(
                ConfigDivergence(
                    kind="sim-crash",
                    frontend="IC",
                    detail=f"[widened] {type(exc).__name__}: {exc}",
                )
            )

    rp, rpo = results.get("RP"), results.get("RPO")
    if (
        rp is not None
        and rpo is not None
        and rp.frames_fired == 0
        and rpo.frames_fired == 0
    ):
        report.optimized_slower = rpo.cycles > rp.cycles
        if metrics is not None:
            key = "slower" if report.optimized_slower else "faster"
            metrics.counter(f"fuzz.config.optimized_{key}").inc()

    if metrics is not None:
        metrics.counter("fuzz.config.pairs").inc()
        metrics.counter("fuzz.config.simulations").inc(report.simulations)
        if report.divergences:
            metrics.counter("fuzz.config.divergences").inc(
                len(report.divergences)
            )
            for divergence in report.divergences:
                metrics.counter(
                    f"fuzz.config.divergence.{divergence.kind}"
                ).inc()
    return report
