"""The differential oracle: optimized frames vs the unoptimized emulation.

One generated program flows through the full stack exactly once per
variant of the optimizer configuration:

    emulate → trace → inject → frame construction → optimize → check

and is checked two complementary ways:

* **verifier leg** — the first path-matching instance of every frame is
  handed to :class:`~repro.verify.verifier.StateVerifier`, which
  enforces the paper's three §5.1.3 rules (loads covered by the initial
  memory map, final memory map equal, register/flag state equal at the
  frame boundary) against the true architectural state;
* **replay leg** — the whole trace is re-executed by a *frame machine*:
  wherever a frame path-matches (same commit rule the sequencer uses —
  path match, not degenerate, no unsafe-store conflict) the optimized
  frame executes against the machine's live state via
  :func:`~repro.verify.frame_exec.execute_frame`; everywhere else the
  trace record applies directly.  The machine's final registers, flags,
  and store bytes must equal the emulator's.

Assertion fires are judged against the true trace.  Path match covers
every *internal* transfer (a deviating internal branch changes the next
PC inside ``x86_pcs``), but not the frame's **final** branch — its
divergent target lies outside the frame.  So a fire on a path-matching
instance is *legitimate recovery* when the true trace continues
somewhere other than ``frame.end_next_pc`` (e.g. the loop's final
iteration falls out of a backedge frame), and a divergence only when
the true trace did continue at ``end_next_pc`` — then every converted
branch went the frame's way and a correct frame cannot fire.

Each optimizer-pass subset ("variant") re-optimizes clones of the same
constructed frames, so a divergence report names the narrowest pass
combination that still miscompiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.optimizer.pipeline import FrameOptimizer, OptimizerConfig
from repro.replay.constructor import ConstructorConfig, FrameConstructor
from repro.replay.frame import Frame
from repro.replay.sequencer import unsafe_store_conflict
from repro.trace.injector import InjectedInstruction, MicroOpInjector
from repro.trace.record import TraceRecord
from repro.uops.uop import UReg
from repro.verify.frame_exec import FrameExecutionError, execute_frame
from repro.verify.state import ArchTracker
from repro.verify.verifier import StateVerifier, VerificationError
from repro.x86.emulator import Emulator
from repro.x86.registers import MASK32, Flag, Reg

from repro.fuzz.generator import FuzzProgram, render_program

#: Optimizer-pass subsets every program is checked under: the full
#: pipeline, each single-pass ablation (Figure 10's legend), speculation
#: off, both restricted scopes, and DCE alone.
VARIANTS = (
    "full",
    "no-asst",
    "no-cp",
    "no-cse",
    "no-nop",
    "no-ra",
    "no-sf",
    "no-spec",
    "block",
    "inter",
    "dce-only",
)

_ABLATIONS = ("asst", "cp", "cse", "nop", "ra", "sf")


def variant_config(name: str) -> OptimizerConfig:
    """Optimizer configuration for a named pass subset.

    Besides the fixed legend names, ``spec:<pass-spec>`` runs an
    explicit pass subset/order (e.g. ``spec:sf,cp,dce``) through
    :func:`repro.optimizer.pipeline.parse_pass_spec` — the tune
    subsystem's property tests drive sampled orderings through the
    differential oracle this way.
    """
    base = OptimizerConfig()
    if name.startswith("spec:"):
        from repro.optimizer.pipeline import parse_pass_spec

        spec = name[len("spec:"):]
        parse_pass_spec(spec)  # reject bad specs here, not mid-campaign
        return replace(base, pass_spec=spec)
    if name == "full":
        return base
    if name == "no-spec":
        return replace(base, speculation=False)
    if name in ("block", "inter"):
        return replace(base, scope=name)
    if name == "dce-only":
        for key in _ABLATIONS:
            base = base.disabled(key)
        return base
    if name.startswith("no-") and name[3:] in _ABLATIONS:
        return base.disabled(name[3:])
    raise ValueError(f"unknown variant {name!r}")


@dataclass(frozen=True)
class OracleConfig:
    """Oracle tuning: aggressive frame construction, all pass subsets."""

    #: Constructor knobs tuned for short fuzz loops: promote branches
    #: fast and close frames early so a 6-iteration loop already builds
    #: and dispatches frames.
    promotion_threshold: int = 4
    min_uops: int = 8
    max_uops: int = 96
    backedge_close_uops: int = 48
    variants: tuple[str, ...] = VARIANTS
    max_instructions: int = 50_000

    def constructor_config(self) -> ConstructorConfig:
        return ConstructorConfig(
            min_uops=self.min_uops,
            max_uops=self.max_uops,
            promotion_threshold=self.promotion_threshold,
            backedge_close_uops=self.backedge_close_uops,
        )


@dataclass
class Divergence:
    """One observed optimizer/frame/emulator disagreement."""

    kind: str  # verifier | assert-fired | frame-exec-error | optimizer-crash | final-state
    variant: str
    detail: str
    frame_pc: int | None = None
    instance_index: int | None = None

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "variant": self.variant,
            "detail": self.detail,
            "frame_pc": self.frame_pc,
            "instance_index": self.instance_index,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "Divergence":
        return cls(
            kind=payload["kind"],
            variant=payload["variant"],
            detail=payload["detail"],
            frame_pc=payload.get("frame_pc"),
            instance_index=payload.get("instance_index"),
        )


@dataclass
class ProgramReport:
    """Outcome of running one program through the oracle."""

    seed: int
    trace_length: int = 0
    frames_constructed: int = 0
    instances_committed: int = 0
    instances_verified: int = 0
    unsafe_skips: int = 0
    legit_fires: int = 0  # exit-direction fires (recovery, not divergence)
    divergences: list[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences


def _unpack_flags(word: int) -> tuple[bool, bool, bool, bool]:
    return (
        bool(word & (1 << Flag.CF)),
        bool(word & (1 << Flag.ZF)),
        bool(word & (1 << Flag.SF)),
        bool(word & (1 << Flag.OF)),
    )


def _construct_frames(
    injected: list[InjectedInstruction], config: ConstructorConfig
) -> list[Frame]:
    """All distinct frames the constructor emits over the retired stream."""
    constructor = FrameConstructor(config)
    frames: list[Frame] = []
    seen: set[tuple] = set()
    for instr in injected:
        frame = constructor.retire(instr)
        if frame is not None and frame.path_key not in seen:
            seen.add(frame.path_key)
            frames.append(frame)
    return frames


def _clone_frame(frame: Frame) -> Frame:
    """A fresh, unoptimized copy sharing the (immutable-in-practice)
    dynamic uops: ``OptimizationBuffer`` builds its own OptUops, so two
    clones optimized under different configs never interfere."""
    return Frame(
        start_pc=frame.start_pc,
        x86_pcs=list(frame.x86_pcs),
        end_next_pc=frame.end_next_pc,
        dyn_uops=frame.dyn_uops,
        x86_indices=frame.x86_indices,
        mem_keys=frame.mem_keys,
        block_starts=list(frame.block_starts),
    )


def _path_matches(
    frame: Frame, injected: list[InjectedInstruction], base: int
) -> bool:
    if base + frame.x86_count > len(injected):
        return False
    return all(
        injected[base + offset].record.pc == pc
        for offset, pc in enumerate(frame.x86_pcs)
    )


class _FrameMachine:
    """Architectural state advanced by frames where they commit and by
    raw trace records everywhere else (the replay leg's state)."""

    def __init__(self, initial_regs: tuple[int, ...], initial_flags: int,
                 initial_image: dict[int, int]) -> None:
        self.regs = list(initial_regs)
        self.flags = initial_flags
        self._image = initial_image
        self.overlay: dict[int, int] = {}

    def read_byte(self, address: int) -> int:
        # Total memory (unwritten bytes read as 0, like x86.memory.Memory),
        # so paper rule 1 cannot fire here; the verifier leg checks it.
        if address in self.overlay:
            return self.overlay[address]
        return self._image.get(address, 0)

    def live_in_regs(self) -> dict[UReg, int]:
        return {UReg(i): self.regs[i] for i in range(8)}

    def live_in_flags(self) -> tuple[bool, bool, bool, bool]:
        return _unpack_flags(self.flags)

    def apply_record(self, record: TraceRecord) -> None:
        for reg, value in record.reg_writes.items():
            self.regs[int(reg)] = value
        if record.flags_after is not None:
            self.flags = record.flags_after
        for mem_op in record.mem_ops:
            if mem_op.is_store:
                for i in range(mem_op.size):
                    address = (mem_op.address + i) & MASK32
                    self.overlay[address] = (mem_op.data >> (8 * i)) & 0xFF

    def apply_outcome(self, outcome) -> None:
        for reg, value in outcome.final_regs.items():
            self.regs[int(reg)] = value
        self.flags = outcome.final_flags
        for address, size, value in outcome.stores:
            for i in range(size):
                self.overlay[(address + i) & MASK32] = (value >> (8 * i)) & 0xFF


def _initial_image(program, emulator: Emulator) -> dict[int, int]:
    """Byte image of memory at program start (data + pushed exit address)."""
    image: dict[int, int] = {}
    for address, blob in program.data.items():
        for i, byte in enumerate(blob):
            image[(address + i) & MASK32] = byte
    esp = emulator.regs[Reg.ESP]  # after the exit-address push
    from repro.x86.emulator import EXIT_ADDRESS

    for i in range(4):
        image[(esp + i) & MASK32] = (EXIT_ADDRESS >> (8 * i)) & 0xFF
    return image


def run_differential(
    genome: FuzzProgram,
    config: OracleConfig | None = None,
    metrics=None,
) -> ProgramReport:
    """Run one program genome through every variant; report divergences."""
    config = config or OracleConfig()
    report = ProgramReport(seed=genome.seed)

    program = render_program(genome)
    emulator = Emulator(program)
    initial_regs = emulator.reg_snapshot()
    initial_flags = emulator.flags_word()
    image = _initial_image(program, emulator)
    records = emulator.run(max_instructions=config.max_instructions)
    if not emulator.halted:
        # A genome the generator should never produce (shrinker edits
        # can): treat as unrunnable, not as a divergence.
        raise ValueError(f"program (seed {genome.seed}) did not halt")
    report.trace_length = len(records)
    final_regs = emulator.reg_snapshot()
    final_flags = emulator.flags_word()

    injector = MicroOpInjector()
    injected = [injector.inject(record) for record in records]

    # Expected final memory: every store in trace order.
    expected_bytes: dict[int, int] = {}
    for record in records:
        for mem_op in record.mem_ops:
            if mem_op.is_store:
                for i in range(mem_op.size):
                    address = (mem_op.address + i) & MASK32
                    expected_bytes[address] = (mem_op.data >> (8 * i)) & 0xFF

    proto_frames = _construct_frames(injected, config.constructor_config())
    report.frames_constructed = len(proto_frames)
    if metrics is not None:
        metrics.counter("fuzz.programs").inc()
        metrics.counter("fuzz.trace_records").inc(len(records))
        metrics.counter("fuzz.frames_constructed").inc(len(proto_frames))

    for variant in config.variants:
        _run_variant(
            variant,
            proto_frames,
            injected,
            initial_regs,
            initial_flags,
            image,
            final_regs,
            final_flags,
            expected_bytes,
            report,
            metrics,
        )
    if metrics is not None and report.divergences:
        metrics.counter("fuzz.divergences").inc(len(report.divergences))
        for divergence in report.divergences:
            metrics.counter(f"fuzz.divergence.{divergence.kind}").inc()
    return report


def _run_variant(
    variant: str,
    proto_frames: list[Frame],
    injected: list[InjectedInstruction],
    initial_regs: tuple[int, ...],
    initial_flags: int,
    image: dict[int, int],
    final_regs: tuple[int, ...],
    final_flags: int,
    expected_bytes: dict[int, int],
    report: ProgramReport,
    metrics,
) -> None:
    optimizer = FrameOptimizer(variant_config(variant), metrics=metrics)
    frames: list[Frame] = []
    for proto in proto_frames:
        frame = _clone_frame(proto)
        try:
            frame.opt_result = optimizer.optimize(frame.build_buffer())
        except Exception as exc:  # noqa: BLE001 - any crash is a finding
            report.divergences.append(
                Divergence(
                    kind="optimizer-crash",
                    variant=variant,
                    detail=f"{type(exc).__name__}: {exc}",
                    frame_pc=frame.start_pc,
                )
            )
            continue
        frames.append(frame)

    by_pc: dict[int, list[Frame]] = {}
    for frame in frames:
        by_pc.setdefault(frame.start_pc, []).append(frame)

    verifier = StateVerifier()
    tracker = ArchTracker(
        {Reg(i): initial_regs[i] for i in range(8)}, flags=initial_flags
    )
    machine = _FrameMachine(initial_regs, initial_flags, image)
    verified_paths: set[tuple] = set()
    committed = 0

    index = 0
    total = len(injected)
    while index < total:
        record = injected[index].record
        dispatched = None
        for frame in by_pc.get(record.pc, ()):
            if not _path_matches(frame, injected, index):
                continue
            if frame.always_fires:
                continue
            if unsafe_store_conflict(frame, injected, index):
                report.unsafe_skips += 1
                continue
            dispatched = frame
            break
        if dispatched is None:
            tracker.apply(record)
            machine.apply_record(record)
            index += 1
            continue

        frame = dispatched
        region = [
            injected[index + k].record for k in range(frame.x86_count)
        ]
        # Where does the true trace go after this region?  The exit
        # branch is the one transfer path matching cannot check; an
        # instance that leaves the frame's path here is *expected* to
        # fire (recovery), so neither leg may call that a divergence.
        next_index = index + frame.x86_count
        actual_next_pc = (
            injected[next_index].record.pc if next_index < total else None
        )
        exit_matches = actual_next_pc == frame.end_next_pc
        # Verifier leg: first committing instance of each path (deferred
        # past exit-deviating instances, where a fire is legitimate).
        if exit_matches and frame.path_key not in verified_paths:
            verified_paths.add(frame.path_key)
            try:
                verifier.verify_frame_instance(frame, region, tracker)
                report.instances_verified += 1
            except VerificationError as exc:
                report.divergences.append(
                    Divergence(
                        kind="verifier",
                        variant=variant,
                        detail=str(exc),
                        frame_pc=frame.start_pc,
                        instance_index=index,
                    )
                )
        # Replay leg: execute the frame against the machine's live state.
        try:
            outcome = execute_frame(
                frame.buffer,
                machine.live_in_regs(),
                machine.live_in_flags(),
                machine.read_byte,
            )
        except FrameExecutionError as exc:
            report.divergences.append(
                Divergence(
                    kind="frame-exec-error",
                    variant=variant,
                    detail=str(exc),
                    frame_pc=frame.start_pc,
                    instance_index=index,
                )
            )
            outcome = None
        if outcome is not None and outcome.fired:
            if exit_matches:
                report.divergences.append(
                    Divergence(
                        kind="assert-fired",
                        variant=variant,
                        detail=(
                            f"assertion fired at slot {outcome.firing_slot} "
                            f"but the true trace continued at "
                            f"{frame.end_next_pc:#x} (the frame's own exit)"
                        ),
                        frame_pc=frame.start_pc,
                        instance_index=index,
                    )
                )
            else:
                report.legit_fires += 1
            if metrics is not None:
                metrics.counter("fuzz.asserts_fired").inc()
            outcome = None
        if outcome is None:
            # Divergent instance: fall back to the true records so later
            # instances are still checked from accurate state.
            for rec in region:
                machine.apply_record(rec)
        else:
            machine.apply_outcome(outcome)
            report.instances_committed += 1
            committed += 1
        for rec in region:
            tracker.apply(rec)
        index += frame.x86_count

    if metrics is not None:
        metrics.counter(f"fuzz.variant.{variant}.instances").inc(committed)

    # Final architectural state: registers, flags, and every stored byte.
    for i in range(8):
        if machine.regs[i] != final_regs[i]:
            report.divergences.append(
                Divergence(
                    kind="final-state",
                    variant=variant,
                    detail=(
                        f"register {Reg(i).name} mismatch: "
                        f"machine={machine.regs[i]:#x} "
                        f"emulator={final_regs[i]:#x}"
                    ),
                )
            )
    if machine.flags != final_flags:
        report.divergences.append(
            Divergence(
                kind="final-state",
                variant=variant,
                detail=(
                    f"flags mismatch: machine={machine.flags:#x} "
                    f"emulator={final_flags:#x}"
                ),
            )
        )
    if machine.overlay != expected_bytes:
        differing = {
            address: (machine.overlay.get(address), byte)
            for address, byte in expected_bytes.items()
            if machine.overlay.get(address) != byte
        }
        extra = {
            address: byte
            for address, byte in machine.overlay.items()
            if address not in expected_bytes
        }
        sample = dict(list(differing.items())[:4])
        report.divergences.append(
            Divergence(
                kind="final-state",
                variant=variant,
                detail=(
                    f"memory mismatch: {len(differing)} differing, "
                    f"{len(extra)} extra bytes, e.g. {sample}"
                ),
            )
        )
