"""Seed-derived, byte-reproducible fuzz campaigns.

A campaign is a range of *program indices*; each index derives its own
program seed from the campaign seed via SHA-256, so

* the campaign is reproducible from ``(seed, iterations)`` alone — the
  derivation has no platform-, hash-randomization-, or
  schedule-dependent inputs;
* any single program can be regenerated without replaying the campaign
  (``derive_program_seed(seed, index)``);
* parallel execution cannot perturb results: indices are chunked, the
  chunks fan out over :func:`repro.artifacts.runner.run_tasks` (the
  same ordered pool the experiment matrix uses), and summaries merge in
  chunk order.

The :class:`CampaignResult` carries a digest over every per-program
summary; two runs with the same seed and count produce the same digest
whatever ``--jobs`` was, which the determinism tests assert.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field

from repro.artifacts.runner import TaskError, run_tasks
from repro.metrics import MetricsRegistry

from repro.fuzz.config_oracle import (
    ConfigDivergence,
    ConfigOracleConfig,
    run_config_differential,
)
from repro.fuzz.configgen import config_to_json, generate_config
from repro.fuzz.generator import (
    FuzzProgram,
    GeneratorConfig,
    generate_program,
    program_to_json,
)
from repro.fuzz.oracle import Divergence, OracleConfig, run_differential

#: Programs per worker task: large enough to amortize process dispatch,
#: small enough that --duration budgets stay responsive.
DEFAULT_CHUNK = 25

#: (program, config) pairs per worker task: each pair runs ~7 full
#: simulations, so chunks are smaller than the program campaign's.
DEFAULT_CONFIG_CHUNK = 5


def derive_program_seed(campaign_seed: int, index: int) -> int:
    """Stable per-program seed (independent of platform and run shape)."""
    material = f"repro.fuzz:{campaign_seed}:{index}".encode()
    return int.from_bytes(hashlib.sha256(material).digest()[:8], "big")


@dataclass(frozen=True)
class CampaignConfig:
    """One campaign: how many programs, from which seed, how parallel."""

    seed: int = 1
    iterations: int = 1000
    duration: float | None = None  # seconds; overrides iterations when set
    jobs: int = 1
    chunk_size: int = DEFAULT_CHUNK
    generator: GeneratorConfig = GeneratorConfig()
    oracle: OracleConfig = OracleConfig()


@dataclass
class DivergentProgram:
    """A program the oracle flagged, with everything needed to replay it."""

    index: int
    program_seed: int
    genome: FuzzProgram
    divergences: list[Divergence]


@dataclass
class CampaignResult:
    """Aggregate outcome of one campaign."""

    seed: int
    programs: int = 0
    frames: int = 0
    instances: int = 0
    verified: int = 0
    unsafe_skips: int = 0
    trace_records: int = 0
    seconds: float = 0.0
    jobs: int = 1
    digest: str = ""
    divergent: list[DivergentProgram] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergent

    @property
    def programs_per_sec(self) -> float:
        if self.seconds <= 0:
            return 0.0
        return self.programs / self.seconds


class FuzzTaskError(TaskError):
    """A campaign chunk failed outside the oracle's own checks."""

    def __init__(self, first_index: int, original: BaseException):
        self.first_index = first_index
        super().__init__(f"fuzz chunk starting at program {first_index}", original)


def _chunk_worker(payload: dict):
    """Run one chunk of program indices (executes in a pool worker)."""
    registry = MetricsRegistry()
    generator_config = payload["generator"]
    oracle_config = payload["oracle"]
    campaign_seed = payload["seed"]
    summaries = []
    for index in payload["indices"]:
        program_seed = derive_program_seed(campaign_seed, index)
        genome = generate_program(program_seed, generator_config)
        report = run_differential(genome, oracle_config, metrics=registry)
        summary = {
            "index": index,
            "program_seed": program_seed,
            "trace_length": report.trace_length,
            "frames": report.frames_constructed,
            "instances": report.instances_committed,
            "verified": report.instances_verified,
            "unsafe_skips": report.unsafe_skips,
            "divergences": [d.to_json() for d in report.divergences],
        }
        if report.divergences:
            summary["genome"] = program_to_json(genome)
        summaries.append(summary)
    return summaries, registry.snapshot()


def _chunks(start: int, count: int, chunk_size: int) -> list[list[int]]:
    indices = list(range(start, start + count))
    return [
        indices[i : i + chunk_size] for i in range(0, len(indices), chunk_size)
    ]


def run_campaign(
    config: CampaignConfig,
    metrics: MetricsRegistry | None = None,
    progress=None,
) -> CampaignResult:
    """Run a campaign; returns aggregate + divergent programs.

    ``progress(programs_done, total_or_None)`` is called after every
    fan-out batch (for CLI status lines).  With ``duration`` set, whole
    batches run until the time budget is spent; the program count then
    depends on machine speed but each *program's* outcome is still
    seed-deterministic.
    """
    result = CampaignResult(seed=config.seed, jobs=config.jobs)
    start = time.perf_counter()
    summary_hash = hashlib.sha256()
    next_index = 0

    def run_batch(count: int) -> None:
        nonlocal next_index
        chunks = _chunks(next_index, count, config.chunk_size)
        next_index += count
        payloads = [
            {
                "seed": config.seed,
                "indices": chunk,
                "generator": config.generator,
                "oracle": config.oracle,
            }
            for chunk in chunks
        ]
        outputs, effective_jobs = run_tasks(
            _chunk_worker,
            payloads,
            jobs=config.jobs,
            registry=metrics,
            wrap_error=lambda payload, exc: FuzzTaskError(
                payload["indices"][0], exc
            ),
        )
        result.jobs = effective_jobs
        for summaries, snapshot in outputs:
            if metrics is not None and snapshot is not None:
                metrics.merge(snapshot)
            for summary in summaries:
                result.programs += 1
                result.frames += summary["frames"]
                result.instances += summary["instances"]
                result.verified += summary["verified"]
                result.unsafe_skips += summary["unsafe_skips"]
                result.trace_records += summary["trace_length"]
                genome_json = summary.pop("genome", None)
                summary_hash.update(
                    json.dumps(
                        summary, sort_keys=True, separators=(",", ":")
                    ).encode()
                )
                if summary["divergences"]:
                    result.divergent.append(
                        DivergentProgram(
                            index=summary["index"],
                            program_seed=summary["program_seed"],
                            genome=_genome_back(genome_json),
                            divergences=[
                                Divergence.from_json(d)
                                for d in summary["divergences"]
                            ],
                        )
                    )

    if config.duration is not None:
        batch = max(config.chunk_size * max(1, config.jobs), 1)
        while time.perf_counter() - start < config.duration:
            run_batch(batch)
            if progress is not None:
                progress(result.programs, None)
    else:
        run_batch(config.iterations)
        if progress is not None:
            progress(result.programs, config.iterations)

    result.seconds = time.perf_counter() - start
    result.digest = summary_hash.hexdigest()
    if metrics is not None:
        metrics.counter("fuzz.campaign_programs").inc(result.programs)
        metrics.gauge("fuzz.programs_per_sec").set(result.programs_per_sec)
    return result


def _genome_back(genome_json: dict | None) -> FuzzProgram:
    from repro.fuzz.generator import program_from_json

    if genome_json is None:  # pragma: no cover - defensive
        raise ValueError("divergent summary carried no genome")
    return program_from_json(genome_json)


# -------------------------------------------------------- config campaigns


def derive_config_seed(campaign_seed: int, index: int) -> int:
    """Stable per-pair config seed, independent of the program seed.

    A distinct derivation domain ("config") keeps the config axis
    decorrelated from the program axis: pair *i* runs program
    ``derive_program_seed(seed, i)`` under config
    ``derive_config_seed(seed, i)``.
    """
    material = f"repro.fuzz.config:{campaign_seed}:{index}".encode()
    return int.from_bytes(hashlib.sha256(material).digest()[:8], "big")


@dataclass(frozen=True)
class ConfigCampaignConfig:
    """One config-axis campaign: (program, config) pairs from one seed."""

    seed: int = 1
    iterations: int = 200
    duration: float | None = None  # seconds; overrides iterations when set
    jobs: int = 1
    chunk_size: int = DEFAULT_CONFIG_CHUNK
    generator: GeneratorConfig = GeneratorConfig()
    oracle: ConfigOracleConfig = ConfigOracleConfig()


@dataclass
class DivergentPair:
    """A (program, config) pair the oracle flagged, replayable as-is."""

    index: int
    program_seed: int
    config_seed: int
    genome: FuzzProgram
    config_json: dict
    divergences: list[ConfigDivergence]


@dataclass
class ConfigCampaignResult:
    """Aggregate outcome of one config-axis campaign."""

    seed: int
    pairs: int = 0
    simulations: int = 0
    frames_fetched: int = 0
    frames_fired: int = 0
    trace_records: int = 0
    optimized_slower: int = 0
    seconds: float = 0.0
    jobs: int = 1
    digest: str = ""
    divergent: list[DivergentPair] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergent

    @property
    def pairs_per_sec(self) -> float:
        if self.seconds <= 0:
            return 0.0
        return self.pairs / self.seconds


class ConfigFuzzTaskError(TaskError):
    """A config campaign chunk failed outside the oracle's own checks."""

    def __init__(self, first_index: int, original: BaseException):
        self.first_index = first_index
        super().__init__(
            f"config fuzz chunk starting at pair {first_index}", original
        )


@dataclass(frozen=True)
class ConfigPairTask:
    """One (program, config) pair addressed purely by its seeds.

    The service/cluster submit path ships these as
    ``CellSpec(kind="config_fuzz", payload={...})`` cells — the worker
    regenerates the pair from ``(campaign_seed, index)`` via the same
    derivations a local run uses, so a routed campaign's per-pair
    summaries (and hence its digest) match the local run byte for byte.
    """

    campaign_seed: int
    index: int


def config_pair_summary(
    campaign_seed: int,
    index: int,
    generator: GeneratorConfig | None = None,
    oracle: ConfigOracleConfig | None = None,
    metrics: MetricsRegistry | None = None,
) -> dict:
    """Generate, differential-test, and summarize one (program, config) pair.

    The single source of truth for a pair's summary dict: local chunk
    workers and service pool workers both call this, which is what keeps
    the campaign digest independent of *where* pairs ran.  Divergent
    pairs carry their ``genome``/``config`` JSON (popped before
    hashing) so the caller can rebuild the replayable case.
    """
    generator = generator if generator is not None else GeneratorConfig()
    oracle = oracle if oracle is not None else ConfigOracleConfig()
    program_seed = derive_program_seed(campaign_seed, index)
    config_seed = derive_config_seed(campaign_seed, index)
    genome = generate_program(program_seed, generator)
    processor = generate_config(config_seed)
    report = run_config_differential(genome, processor, oracle, metrics=metrics)
    summary = {
        "index": index,
        "program_seed": program_seed,
        "config_seed": config_seed,
        "trace_length": report.trace_length,
        "simulations": report.simulations,
        "frames_fetched": report.frames_fetched,
        "frames_fired": report.frames_fired,
        "optimized_slower": report.optimized_slower,
        "divergences": [d.to_json() for d in report.divergences],
    }
    if report.divergences:
        summary["genome"] = program_to_json(genome)
        summary["config"] = config_to_json(processor)
    return summary


def _config_chunk_worker(payload: dict):
    """Run one chunk of (program, config) pair indices (pool worker)."""
    registry = MetricsRegistry()
    summaries = [
        config_pair_summary(
            payload["seed"],
            index,
            generator=payload["generator"],
            oracle=payload["oracle"],
            metrics=registry,
        )
        for index in payload["indices"]
    ]
    return summaries, registry.snapshot()


def run_config_campaign(
    config: ConfigCampaignConfig,
    metrics: MetricsRegistry | None = None,
    progress=None,
    client=None,
) -> ConfigCampaignResult:
    """Run a config-axis campaign; same reproducibility contract as
    :func:`run_campaign` — the digest depends only on (seed, count).

    With ``client`` (a :class:`repro.service.client.Client` pointed at
    a ``serve`` or ``cluster serve`` address) the pairs run remotely:
    each batch ships as ``kind="config_fuzz"`` cells, the service's
    warm pool regenerates every pair from its seeds, and the returned
    summaries fold through the *same* merge loop — so the digest is
    identical to a local run whatever the fleet looked like.  Remote
    runs only support the default generator/oracle (the wire carries
    seeds, not tuned knob objects).
    """
    if client is not None and (
        config.generator != GeneratorConfig()
        or config.oracle != ConfigOracleConfig()
    ):
        raise ValueError(
            "service-routed config campaigns support only the default "
            "generator/oracle settings (the wire ships seeds, not knobs)"
        )
    result = ConfigCampaignResult(seed=config.seed, jobs=config.jobs)
    start = time.perf_counter()
    summary_hash = hashlib.sha256()
    next_index = 0

    def fold(summary: dict) -> None:
        result.pairs += 1
        result.simulations += summary["simulations"]
        result.frames_fetched += summary["frames_fetched"]
        result.frames_fired += summary["frames_fired"]
        result.trace_records += summary["trace_length"]
        result.optimized_slower += int(summary["optimized_slower"])
        genome_json = summary.pop("genome", None)
        config_json = summary.pop("config", None)
        summary_hash.update(
            json.dumps(summary, sort_keys=True, separators=(",", ":")).encode()
        )
        if summary["divergences"]:
            result.divergent.append(
                DivergentPair(
                    index=summary["index"],
                    program_seed=summary["program_seed"],
                    config_seed=summary["config_seed"],
                    genome=_genome_back(genome_json),
                    config_json=config_json,
                    divergences=[
                        ConfigDivergence.from_json(d)
                        for d in summary["divergences"]
                    ],
                )
            )

    def run_batch_local(count: int) -> None:
        nonlocal next_index
        chunks = _chunks(next_index, count, config.chunk_size)
        next_index += count
        payloads = [
            {
                "seed": config.seed,
                "indices": chunk,
                "generator": config.generator,
                "oracle": config.oracle,
            }
            for chunk in chunks
        ]
        outputs, effective_jobs = run_tasks(
            _config_chunk_worker,
            payloads,
            jobs=config.jobs,
            registry=metrics,
            wrap_error=lambda payload, exc: ConfigFuzzTaskError(
                payload["indices"][0], exc
            ),
        )
        result.jobs = effective_jobs
        for summaries, snapshot in outputs:
            if metrics is not None and snapshot is not None:
                metrics.merge(snapshot)
            for summary in summaries:
                fold(summary)

    def run_batch_service(count: int) -> None:
        nonlocal next_index
        from repro.service.protocol import CellSpec

        indices = list(range(next_index, next_index + count))
        next_index += count
        cells = [
            CellSpec(
                workload=f"configfuzz-{config.seed}",
                config=f"pair-{index}",
                kind="config_fuzz",
                payload={"campaign_seed": config.seed, "index": index},
            )
            for index in indices
        ]
        outcome = client.submit(cells, priority="batch")
        if outcome.state != "done":
            raise ConfigFuzzTaskError(
                indices[0],
                RuntimeError(
                    outcome.error
                    or f"service finished the batch as {outcome.state}"
                ),
            )
        # Entries are index-ordered (submission order == pair order), so
        # folding them in sequence hashes identically to a local run.
        for summary in outcome.entries:
            fold(dict(summary))

    run_batch = run_batch_local if client is None else run_batch_service

    if config.duration is not None:
        batch = max(config.chunk_size * max(1, config.jobs), 1)
        while time.perf_counter() - start < config.duration:
            run_batch(batch)
            if progress is not None:
                progress(result.pairs, None)
    else:
        run_batch(config.iterations)
        if progress is not None:
            progress(result.pairs, config.iterations)

    result.seconds = time.perf_counter() - start
    result.digest = summary_hash.hexdigest()
    if metrics is not None:
        metrics.counter("fuzz.config.campaign_pairs").inc(result.pairs)
        metrics.gauge("fuzz.config.pairs_per_sec").set(result.pairs_per_sec)
    return result
