"""Corpus of minimized divergent programs in the artifact store.

Each case is one JSON document under artifact kind ``fuzz``, keyed by
the content of its (minimized) genome — saving the same minimized
program twice, from different campaigns, dedupes to one entry.  The
case records everything needed to replay and to re-minimize:

* the genome itself (``repro.fuzz.generator`` JSON, version 1);
* where it was found (campaign seed, program index, derived seed);
* the divergences the oracle reported at save time.

Two case formats share the store: format 1 is a program-only case
(the semantic differential oracle), format 2 a **(program, config)**
pair from the config-differential oracle — same shape plus a
``config`` document (``repro.fuzz.configgen`` JSON), keyed by the
content of both halves.  ``fuzz repro <case-id>`` accepts any
unambiguous key prefix, like git, and replays each format through the
oracle that produced it.
"""

from __future__ import annotations

import json

from repro.artifacts.store import KIND_FUZZ, ArtifactStore, content_key

from repro.fuzz.generator import FuzzProgram, program_from_json, program_to_json
from repro.fuzz.oracle import Divergence

CASE_FORMAT = 1
CONFIG_CASE_FORMAT = 2
_SUPPORTED_FORMATS = (CASE_FORMAT, CONFIG_CASE_FORMAT)


class CorpusError(Exception):
    """Unknown, ambiguous, or malformed corpus case."""


class FuzzCorpus:
    """Thin typed facade over ``ArtifactStore`` kind ``fuzz``."""

    def __init__(self, store: ArtifactStore | None = None) -> None:
        self.store = store or ArtifactStore()

    # ------------------------------------------------------------- write

    def save_case(
        self,
        genome: FuzzProgram,
        divergences: list[Divergence],
        found: dict | None = None,
    ) -> str:
        """Persist one case; returns its content key (the case id)."""
        program_json = program_to_json(genome)
        case_id = content_key("fuzz", {"program": program_json})
        kinds = sorted({d.kind for d in divergences})
        payload = {
            "format": CASE_FORMAT,
            "program": program_json,
            "found": found or {},
            "divergences": [d.to_json() for d in divergences],
        }
        body = json.dumps(payload, sort_keys=True, indent=1).encode("utf-8")
        label = f"seed={genome.seed} ops={len(genome.ops)} {','.join(kinds)}"
        self.store.put_bytes(KIND_FUZZ, case_id, body, label=label)
        return case_id

    def save_config_case(
        self,
        genome: FuzzProgram,
        config_json: dict,
        divergences: list,
        found: dict | None = None,
    ) -> str:
        """Persist one (program, config) pair; returns its content key.

        ``divergences`` are :class:`~repro.fuzz.config_oracle.
        ConfigDivergence` items; the key covers both the genome and the
        config so the same program under two configs is two cases.
        """
        program_json = program_to_json(genome)
        case_id = content_key(
            "fuzz", {"program": program_json, "config": config_json}
        )
        kinds = sorted({d.kind for d in divergences})
        payload = {
            "format": CONFIG_CASE_FORMAT,
            "program": program_json,
            "config": config_json,
            "found": found or {},
            "divergences": [d.to_json() for d in divergences],
        }
        body = json.dumps(payload, sort_keys=True, indent=1).encode("utf-8")
        label = (
            f"seed={genome.seed} ops={len(genome.ops)} "
            f"config {','.join(kinds)}"
        )
        self.store.put_bytes(KIND_FUZZ, case_id, body, label=label)
        return case_id

    # -------------------------------------------------------------- read

    def resolve(self, prefix: str) -> str:
        """Full case id for an unambiguous id prefix."""
        matches = [
            entry.key
            for entry in self.store.entries()
            if entry.kind == KIND_FUZZ and entry.key.startswith(prefix)
        ]
        if not matches:
            raise CorpusError(f"no fuzz case matches {prefix!r}")
        if len(matches) > 1:
            raise CorpusError(
                f"ambiguous case prefix {prefix!r}: "
                + ", ".join(key[:12] for key in sorted(matches))
            )
        return matches[0]

    def load_case(self, case_id: str) -> dict:
        """Case payload for a full or prefixed id."""
        if len(case_id) < 64:
            case_id = self.resolve(case_id)
        body = self.store.get_bytes(KIND_FUZZ, case_id)
        if body is None:
            raise CorpusError(f"fuzz case {case_id[:12]} not in store")
        try:
            payload = json.loads(body)
        except ValueError as exc:
            raise CorpusError(f"fuzz case {case_id[:12]} is not JSON") from exc
        if payload.get("format") not in _SUPPORTED_FORMATS:
            raise CorpusError(
                f"fuzz case {case_id[:12]} has format "
                f"{payload.get('format')!r} (supported "
                f"{', '.join(str(f) for f in _SUPPORTED_FORMATS)})"
            )
        return payload

    def load_genome(self, case_id: str) -> FuzzProgram:
        return program_from_json(self.load_case(case_id)["program"])

    def list_cases(self) -> list[dict]:
        """Summaries of every stored case (id, label, created, size)."""
        cases = []
        for entry in self.store.entries():
            if entry.kind != KIND_FUZZ:
                continue
            cases.append(
                {
                    "id": entry.key,
                    "label": entry.label,
                    "created": entry.created,
                    "size_bytes": entry.size_bytes,
                }
            )
        cases.sort(key=lambda c: c["created"])
        return cases
