"""The frame constructor (paper §2, §5.1.4; mechanism from Patel et al. [13]).

Watches the retired instruction stream, converts *dynamically biased*
branches into assertions, and merges the resulting basic blocks into
atomic frames of 8-256 micro-operations.  A conditional branch is
promoted once it has gone the same direction for ``promotion_threshold``
consecutive executions; indirect jumps are promoted on a stable target.
An unbiased control transfer terminates the frame and remains its exit
branch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.trace.injector import InjectedInstruction
from repro.uops.uop import Uop, UopOp
from repro.x86.instructions import Cond, Mnemonic
from repro.replay.frame import Frame


@dataclass
class _BiasEntry:
    """Consecutive-outcome tracker for one branch site."""

    last_outcome: object = None
    run_length: int = 0

    def observe(self, outcome) -> int:
        """Record an outcome; returns the run length *before* this event."""
        previous_run = self.run_length if outcome == self.last_outcome else 0
        if outcome == self.last_outcome:
            self.run_length += 1
        else:
            self.last_outcome = outcome
            self.run_length = 1
        return previous_run


class BranchBiasTable:
    """Per-site bias trackers for conditional branches and indirect jumps."""

    def __init__(self, promotion_threshold: int = 16) -> None:
        self.promotion_threshold = promotion_threshold
        self._entries: dict[int, _BiasEntry] = {}

    def observe(self, pc: int, outcome) -> bool:
        """Record an outcome; True if the site was already promoted with
        this same outcome (i.e. the event matched the established bias)."""
        entry = self._entries.get(pc)
        if entry is None:
            entry = _BiasEntry()
            self._entries[pc] = entry
        previous_run = entry.observe(outcome)
        return previous_run >= self.promotion_threshold

    def is_promoted(self, pc: int, outcome) -> bool:
        entry = self._entries.get(pc)
        return (
            entry is not None
            and entry.last_outcome == outcome
            and entry.run_length >= self.promotion_threshold
        )


@dataclass
class ConstructorConfig:
    min_uops: int = 8
    max_uops: int = 256
    promotion_threshold: int = 16
    #: Close a frame at a backward taken branch once it holds at least
    #: this many uops: frames then end at loop heads and tile loops
    #: stably (the next frame starts exactly where this one ended)
    #: instead of drifting through iterations at the max-size limit.
    backedge_close_uops: int = 128


class FrameConstructor:
    """Synthesizes atomic frames from the retired instruction stream."""

    def __init__(self, config: ConstructorConfig | None = None) -> None:
        self.config = config or ConstructorConfig()
        self.bias = BranchBiasTable(self.config.promotion_threshold)
        self._pending: list[InjectedInstruction] = []
        self._pending_uops = 0
        self.frames_emitted = 0
        self.frames_discarded = 0

    def retire(self, instr: InjectedInstruction) -> Frame | None:
        """Feed one retired instruction; returns a frame when one completes."""
        record = instr.record
        mnem = record.instruction.mnemonic

        # Would this instruction overflow the frame?  Close the current
        # region first (fall-through exit) and start fresh with it.
        if self._pending_uops + len(instr.uops) > self.config.max_uops:
            frame = self._finish(end_next_pc=record.pc)
            self._append(instr)
            if self._ends_region(instr):
                leftover = self._finish(end_next_pc=record.next_pc)
                return frame or leftover
            return frame

        self._append(instr)
        if self._ends_region(instr):
            return self._finish(end_next_pc=record.next_pc)
        return None

    # ------------------------------------------------------------ helpers

    def _append(self, instr: InjectedInstruction) -> None:
        self._pending.append(instr)
        self._pending_uops += len(instr.uops)

    def _ends_region(self, instr: InjectedInstruction) -> bool:
        """Does this instruction terminate the frame (unbiased control)?"""
        record = instr.record
        instruction = record.instruction
        if not instruction.is_branch:
            return False
        if instruction.is_conditional:
            matched = self.bias.observe(record.pc, record.branch_taken)
            if not matched:
                return True
        elif instruction.is_indirect:
            matched = self.bias.observe(record.pc, record.next_pc)
            if not matched:
                return True
        # Biased (or direct) transfer: normally continue through, but a
        # full-enough frame closes at a backward target so frames align
        # to loop iterations.
        return (
            self._pending_uops >= self.config.backedge_close_uops
            and record.next_pc <= self._pending[0].record.pc
        )

    def _finish(self, end_next_pc: int) -> Frame | None:
        """Close the pending region into a frame (None if too small)."""
        pending = self._pending
        self._pending = []
        pending_uops = self._pending_uops
        self._pending_uops = 0
        if not pending or pending_uops < self.config.min_uops:
            self.frames_discarded += bool(pending)
            return None
        frame = self._frameify(pending, end_next_pc)
        self.frames_emitted += 1
        return frame

    def _frameify(
        self, pending: list[InjectedInstruction], end_next_pc: int
    ) -> Frame:
        """Convert a region into frame form: mid-frame control becomes
        assertions (paper §2); the final control transfer stays the exit."""
        dyn_uops: list[Uop] = []
        x86_indices: list[int] = []
        mem_keys: list[tuple[int, int] | None] = []
        block_starts: list[int] = [0]
        x86_pcs: list[int] = []
        last_index = len(pending) - 1

        for x86_index, instr in enumerate(pending):
            record = instr.record
            x86_pcs.append(record.pc)
            if x86_index and pending[x86_index - 1].record.instruction.is_branch:
                block_starts.append(x86_index)
            is_exit_instr = x86_index == last_index
            mem_index = 0
            for uop in instr.uops:
                converted = uop.copy()
                key: tuple[int, int] | None = None
                if converted.is_mem:
                    key = (x86_index, mem_index)
                    mem_index += 1
                if converted.is_control and not is_exit_instr:
                    if self._degenerate_branch(converted, record):
                        # Taken target == fall-through: the direction
                        # cannot change the frame's path, so an assertion
                        # here could only fire spuriously (a rollback
                        # with no architectural cause).  Drop the uop.
                        continue
                    converted = self._convert_control(converted)
                dyn_uops.append(converted)
                x86_indices.append(x86_index)
                mem_keys.append(key)

        return Frame(
            start_pc=pending[0].record.pc,
            x86_pcs=x86_pcs,
            end_next_pc=end_next_pc,
            dyn_uops=dyn_uops,
            x86_indices=x86_indices,
            mem_keys=mem_keys,
            block_starts=block_starts,
        )

    def abandon(self) -> None:
        """Discard the pending region (its continuation won't be retired
        contiguously, e.g. because a frame covered the next instructions)."""
        self._pending = []
        self._pending_uops = 0

    def build_frame(
        self, instructions: list[InjectedInstruction], end_next_pc: int
    ) -> Frame:
        """Directly frame-ify a region (bypasses bias promotion).

        Used by examples, the verifier's unit tests, and the paper's
        Figure 2 walkthrough, where the region is chosen by hand.
        """
        return self._frameify(instructions, end_next_pc)

    @staticmethod
    def _degenerate_branch(uop: Uop, record) -> bool:
        """A conditional branch to its own fall-through address.

        Both directions retire the same successor, so path matching can
        never observe the direction and no assertion is needed;
        converting one was found (by differential fuzzing) to fire on
        path-matching instances whenever the condition flips.
        """
        return (
            uop.op is UopOp.BR
            and uop.target is not None
            and uop.target == record.pc + record.instruction.length
        )

    def _convert_control(self, uop: Uop) -> Uop:
        """Mid-frame control conversion: BR -> ASSERT, JMPI -> value assert."""
        if uop.op is UopOp.BR:
            assert uop.cond is not None and uop.taken is not None
            cond = uop.cond if uop.taken else uop.cond.inverse()
            return uop.copy(op=UopOp.ASSERT, cond=cond, target=None)
        if uop.op is UopOp.JMPI:
            assert uop.dyn_target is not None
            return uop.copy(
                op=UopOp.ASSERT_CMP,
                cond=Cond.Z,
                cmp_kind=UopOp.SUB,
                imm=uop.dyn_target,
                writes_flags=False,
            )
        return uop  # direct JMP: left for the NOP-removal pass
