"""The frame cache (paper §2, §5.3): 16k micro-operations, LRU-managed.

Frames are indexed by their entry PC; a newly constructed frame for the
same entry replaces the old one (the path may have changed).  Capacity is
accounted in *stored* uops — the paper notes optimization increases frame
cache efficiency because optimized frames occupy fewer slots (§6.1).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.replay.frame import Frame


class FrameCache:
    """LRU frame store, capacity-bounded in micro-operations."""

    def __init__(self, capacity_uops: int = 16 * 1024) -> None:
        self.capacity_uops = capacity_uops
        self._frames: OrderedDict[int, Frame] = OrderedDict()
        self._stored_uops = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.displacements = 0  # same-PC replacement by a newer frame
        self.rejections = 0  # insert refused (proven incumbent kept)

    def __len__(self) -> int:
        return len(self._frames)

    @property
    def stored_uops(self) -> int:
        return self._stored_uops

    def contains(self, pc: int) -> bool:
        """Presence probe that does not disturb LRU or hit statistics."""
        return pc in self._frames

    def frames(self) -> list[Frame]:
        """Resident frames in LRU order (oldest first), for reporting.

        A snapshot list — iterating it never disturbs LRU state or hit
        statistics (the characterization report walks it post-run).
        """
        return list(self._frames.values())

    def lookup(self, pc: int) -> Frame | None:
        frame = self._frames.get(pc)
        if frame is None:
            self.misses += 1
            return None
        self._frames.move_to_end(pc)
        self.hits += 1
        return frame

    def contains_path(self, path_key: tuple) -> bool:
        frame = self._frames.get(path_key[0])
        return frame is not None and frame.path_key == path_key

    def insert(self, frame: Frame) -> bool:
        """Insert (or replace) the frame for its entry PC, evicting LRU.

        A frame with a proven commit record is not displaced by a
        same-or-smaller different-path newcomer for the same entry PC:
        continuous construction would otherwise thrash hot loop heads
        whose frame boundaries drift between passes.  A strictly larger
        newcomer still wins, so frames can grow as branch bias matures.
        Returns False when rejected.
        """
        existing = self._frames.get(frame.start_pc)
        if (
            existing is not None
            and existing.proven
            and existing.path_key != frame.path_key
            and frame.x86_count <= existing.x86_count
        ):
            self.rejections += 1
            return False
        existing = self._frames.pop(frame.start_pc, None)
        if existing is not None:
            self._stored_uops -= existing.uop_count
            self.displacements += 1
        self._frames[frame.start_pc] = frame
        self._stored_uops += frame.uop_count
        while self._stored_uops > self.capacity_uops and len(self._frames) > 1:
            _, evicted = self._frames.popitem(last=False)
            self._stored_uops -= evicted.uop_count
            self.evictions += 1
        return True

    def evict(self, pc: int) -> None:
        """Explicit eviction (used for frames that keep firing)."""
        frame = self._frames.pop(pc, None)
        if frame is not None:
            self._stored_uops -= frame.uop_count
            self.evictions += 1
