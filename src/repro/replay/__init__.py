"""The rePLay engine: frames, constructor, frame cache, sequencers."""

from repro.replay.constructor import (
    BranchBiasTable,
    ConstructorConfig,
    FrameConstructor,
)
from repro.replay.frame import Frame
from repro.replay.frame_cache import FrameCache
from repro.replay.optqueue import OptimizationQueue, OptimizerTotals
from repro.replay.sequencer import (
    ICacheSequencer,
    RePLaySequencer,
    SequencerStats,
)

__all__ = [
    "BranchBiasTable",
    "ConstructorConfig",
    "Frame",
    "FrameCache",
    "FrameConstructor",
    "ICacheSequencer",
    "OptimizationQueue",
    "OptimizerTotals",
    "RePLaySequencer",
    "SequencerStats",
]
