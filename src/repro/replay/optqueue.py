"""Optimization-engine latency and occupancy model (paper §5.1.4).

The paper models the optimizer abstractly: a pipelined engine with a
variable latency of 10 cycles per instruction and a pipeline depth of 3.
Frames arriving while all stages are busy are dropped (the constructor
will rebuild them if the region stays hot).  Optimization itself runs
eagerly in this model; the *result* only becomes visible in the frame
cache once the modeled latency has elapsed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.optimizer.pipeline import FrameOptimizer
from repro.replay.frame import Frame
from repro.replay.frame_cache import FrameCache


@dataclass
class OptimizerTotals:
    """Aggregate optimization statistics across all frames of a run."""

    frames_optimized: int = 0
    frames_dropped: int = 0
    uops_before: int = 0
    uops_after: int = 0
    loads_before: int = 0
    loads_after: int = 0
    loads_removed_speculatively: int = 0
    stores_marked_unsafe: int = 0
    #: per-pass change counts summed over every optimized frame — the
    #: run ledger's ``passes`` section (Table 3's per-pass view).
    changes_by_pass: dict[str, int] = field(default_factory=dict)

    @property
    def uops_removed(self) -> int:
        return self.uops_before - self.uops_after

    @property
    def loads_removed(self) -> int:
        return self.loads_before - self.loads_after

    @property
    def uop_reduction(self) -> float:
        if not self.uops_before:
            return 0.0
        return 1.0 - self.uops_after / self.uops_before

    @property
    def load_reduction(self) -> float:
        if not self.loads_before:
            return 0.0
        return 1.0 - self.loads_after / self.loads_before


class OptimizationQueue:
    """Pipelined optimizer front-ending the frame cache."""

    def __init__(
        self,
        frame_cache: FrameCache,
        optimizer: FrameOptimizer | None,
        cycles_per_uop: int = 10,
        depth: int = 3,
    ) -> None:
        self.frame_cache = frame_cache
        self.optimizer = optimizer
        self.cycles_per_uop = cycles_per_uop
        self.depth = depth
        self._in_flight: list[tuple[int, Frame]] = []  # (ready_cycle, frame)
        self.totals = OptimizerTotals()

    def submit(self, frame: Frame, now: int) -> bool:
        """Offer a freshly constructed frame; False if dropped/duplicate.

        Duplicate detection is against the cache and the in-flight stages,
        so an evicted path is naturally rebuilt when its region re-heats.
        """
        self.drain(now)
        if self.frame_cache.contains_path(frame.path_key):
            return False
        if any(f.path_key == frame.path_key for _, f in self._in_flight):
            return False
        if self.optimizer is None:
            # Basic rePLay: frames are deposited immediately (paper §6.3).
            frame.build_buffer()
            self._account(frame)
            self.frame_cache.insert(frame)
            return True
        if len(self._in_flight) >= self.depth:
            self.totals.frames_dropped += 1
            return False
        buffer = frame.build_buffer()
        frame.opt_result = self.optimizer.optimize(buffer)
        ready = now + self.cycles_per_uop * frame.raw_uop_count
        self._in_flight.append((ready, frame))
        self._account(frame)
        return True

    def _account(self, frame: Frame) -> None:
        totals = self.totals
        totals.frames_optimized += 1
        totals.uops_before += frame.raw_uop_count
        totals.uops_after += frame.uop_count
        raw_loads = sum(1 for u in frame.dyn_uops if u.is_load)
        totals.loads_before += raw_loads
        totals.loads_after += frame.load_count
        if frame.opt_result is not None:
            stats = frame.opt_result.stats
            totals.loads_removed_speculatively += stats.loads_removed_speculatively
            totals.stores_marked_unsafe += stats.stores_marked_unsafe
            by_pass = totals.changes_by_pass
            for pass_name, changes in stats.changes_by_pass.items():
                by_pass[pass_name] = by_pass.get(pass_name, 0) + changes

    def drain(self, now: int) -> None:
        """Deposit frames whose modeled optimization latency has elapsed."""
        if not self._in_flight:
            return
        still_busy = []
        for ready, frame in self._in_flight:
            if ready <= now:
                self.frame_cache.insert(frame)
            else:
                still_busy.append((ready, frame))
        self._in_flight = still_busy
