"""Sequencers: the fetch-source decision logic (paper §2, Figure 5).

``ICacheSequencer`` models a conventional front end.  ``RePLaySequencer``
couples the frame constructor, optimization engine, frame cache, and the
recovery model: at each fetch point it probes the frame cache; a hit
dispatches the frame, and the dynamic instance either commits (its path
matches and no unsafe store aliases) or fires, rolling back and
re-executing the region from the ICache.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.trace.injector import InjectedInstruction
from repro.replay.constructor import ConstructorConfig, FrameConstructor
from repro.replay.fetch_groups import build_icache_block, event_from_decode
from repro.replay.frame import Frame
from repro.replay.frame_cache import FrameCache
from repro.replay.optqueue import OptimizationQueue
from repro.optimizer.pipeline import FrameOptimizer
from repro.timing.config import ProcessorConfig
from repro.timing.pipeline import BranchEvent, FetchBlock
from repro.timing.schedule import FrameSchedule, ScheduleBuilder
from repro.verify.state import ArchTracker
from repro.verify.verifier import StateVerifier


@dataclass
class SequencerStats:
    """Dynamic-stream accounting used for Table 3."""

    raw_uops_total: int = 0  # uops the injector would supply for all x86
    raw_loads_total: int = 0
    frame_raw_uops: int = 0  # original uops of regions covered by frames
    frame_fetched_uops: int = 0  # uops actually fetched for those regions
    frame_raw_loads: int = 0
    frame_fetched_loads: int = 0
    frame_dispatches: int = 0
    frame_aborts: int = 0
    unsafe_aborts: int = 0
    cooldown_skips: int = 0  # dispatch opportunities skipped post-fire

    @property
    def dynamic_uop_reduction(self) -> float:
        """Fraction of all dynamic uops removed by optimization (Table 3)."""
        if not self.raw_uops_total:
            return 0.0
        return (self.frame_raw_uops - self.frame_fetched_uops) / self.raw_uops_total

    @property
    def dynamic_load_reduction(self) -> float:
        if not self.raw_loads_total:
            return 0.0
        return (
            self.frame_raw_loads - self.frame_fetched_loads
        ) / self.raw_loads_total


def dynamic_address(
    injected: list[InjectedInstruction], base_index: int, uop
) -> int | None:
    """Current-instance address of a frame memory uop (via its mem key).

    ``base_index`` is the injected-stream index where the frame instance
    starts.  Falls back to the construction-time observed address when
    the key cannot be resolved against this instance's records.
    """
    if uop.mem_key is None:
        return uop.observed_address
    x86_index, mem_index = uop.mem_key
    record = injected[base_index + x86_index].record
    if mem_index >= len(record.mem_ops):
        return uop.observed_address
    return record.mem_ops[mem_index].address


def unsafe_store_conflict(
    frame: Frame, injected: list[InjectedInstruction], base_index: int
) -> bool:
    """Unsafe-store alias check (paper §3.4).

    The paper describes comparing an unsafe store against *all* prior
    memory transactions; we check the speculation's actual premise — the
    unsafe store must not touch the bytes whose forwarded value it was
    speculated not to clobber (the covering load/store of each removed
    load).  The blanket rule aborts constantly on kernels that
    legitimately revisit a table inside one frame, which contradicts the
    paper's observation that speculatively removed loads "almost never
    cause frames to abort"; see DESIGN.md.

    Shared by :class:`RePLaySequencer` dispatch and the differential
    fuzz oracle (:mod:`repro.fuzz.oracle`), so both judge an instance's
    commit eligibility identically.
    """
    if frame.buffer is None:
        return False
    mem_uops = frame.kept_mem_uops()
    guarded = [u for u in mem_uops if u.is_store and u.unsafe]
    if not guarded:
        return False
    buffer = frame.buffer
    for store in guarded:
        address = dynamic_address(injected, base_index, store)
        if address is None:
            continue
        for guard_slot in store.unsafe_guards:
            guard = buffer.uops[guard_slot]
            guard_address = dynamic_address(injected, base_index, guard)
            if guard_address is None:
                continue
            if (
                address < guard_address + guard.size
                and guard_address < address + store.size
            ):
                return True
    return False


class ICacheSequencer:
    """Conventional fetch: everything comes from the instruction cache."""

    def __init__(
        self, injected: list[InjectedInstruction], config: ProcessorConfig
    ) -> None:
        self.injected = injected
        self.config = config
        self.index = 0
        self.stats = SequencerStats()
        #: per-run schedule/decode template cache, shared with the blocks
        #: this sequencer emits (and with frame dispatch in subclasses).
        self.sched_builder = ScheduleBuilder(config)
        for instr in injected:
            self.stats.raw_uops_total += len(instr.uops)
            self.stats.raw_loads_total += sum(1 for u in instr.uops if u.is_load)

    def next_block(self, cycle: int) -> FetchBlock | None:
        if self.index >= len(self.injected):
            return None
        block, count = build_icache_block(
            self.injected, self.index, self.config, builder=self.sched_builder
        )
        self.index += count
        return block


class RePLaySequencer(ICacheSequencer):
    """Frame-cache-enabled fetch with construction, optimization, recovery."""

    #: Evict a frame once its fires exceed its commits by this margin.
    FIRE_EVICTION_MARGIN = 4

    def __init__(
        self,
        injected: list[InjectedInstruction],
        config: ProcessorConfig,
        optimizer: FrameOptimizer | None,
        constructor_config: ConstructorConfig | None = None,
        verifier: StateVerifier | None = None,
    ) -> None:
        super().__init__(injected, config)
        self.constructor = FrameConstructor(constructor_config)
        self.frame_cache = FrameCache(config.frame_cache_uops)
        cycles_per_uop = 10
        depth = 3
        if optimizer is not None:
            cycles_per_uop = optimizer.config.cycles_per_uop
            depth = optimizer.config.pipeline_depth
        self.queue = OptimizationQueue(
            self.frame_cache, optimizer, cycles_per_uop=cycles_per_uop, depth=depth
        )
        self.verifier = verifier
        self.tracker = ArchTracker() if verifier is not None else None
        #: After a fire, the aborted frame's original instructions execute
        #: from the ICache (paper §3.4); no frame dispatch until this index.
        self._icache_until = 0
        self._verified_paths: set[tuple] = set()

    # ------------------------------------------------------------- fetch

    def next_block(self, cycle: int) -> FetchBlock | None:
        if self.index >= len(self.injected):
            return None
        self.queue.drain(cycle)
        pc = self.injected[self.index].record.pc
        frame = None
        if self.index >= self._icache_until:
            frame = self.frame_cache.lookup(pc)
        if frame is not None and frame.uop_count:
            if frame.cooldown > 0:
                frame.cooldown -= 1
                self.stats.cooldown_skips += 1
            elif self._instance_commits(frame):
                return self._dispatch_frame(frame, cycle)
            else:
                return self._dispatch_firing_frame(frame)
        probe = (
            self.frame_cache.contains if self.index >= self._icache_until else None
        )
        block, count = build_icache_block(
            self.injected,
            self.index,
            self.config,
            stop_probe=probe,
            builder=self.sched_builder,
        )
        self._retire_region(count, cycle)
        return block

    # ------------------------------------------------------- frame checks

    def _instance_commits(self, frame: Frame) -> bool:
        """Path match plus unsafe-store alias check for this instance."""
        injected = self.injected
        base = self.index
        if base + frame.x86_count > len(injected):
            return False
        for offset, pc in enumerate(frame.x86_pcs):
            if injected[base + offset].record.pc != pc:
                return False
        if frame.always_fires:
            return False
        return not self._unsafe_store_conflict(frame)

    def _unsafe_store_conflict(self, frame: Frame) -> bool:
        """Delegates to the shared module-level check, keeping stats."""
        conflict = unsafe_store_conflict(frame, self.injected, self.index)
        if conflict:
            self.stats.unsafe_aborts += 1
        return conflict

    def _dynamic_address(self, frame: Frame, uop) -> int | None:
        """Current-instance address via the shared module-level helper."""
        return dynamic_address(self.injected, self.index, uop)

    # --------------------------------------------------------- dispatch

    def _frame_addresses(
        self, template: FrameSchedule
    ) -> list[int | None]:
        """Current-instance addresses, resolved only at the memory slots."""
        addresses: list[int | None] = [None] * len(template.kept)
        injected = self.injected
        base = self.index
        for position, uop in template.mem_positions:
            addresses[position] = dynamic_address(injected, base, uop)
        return addresses

    def _exit_event(
        self, frame: Frame, template: FrameSchedule
    ) -> list[BranchEvent]:
        """Prediction event for the frame's exit branch, if it kept one."""
        position = template.exit_control_pos
        if position is None:
            return []
        last_instr = self.injected[self.index + frame.x86_count - 1]
        decode = self.sched_builder.instr_decode(last_instr)
        event = event_from_decode(decode, last_instr.record, 0)
        if event is None:
            return []
        event.uop_index = position
        return [event]

    def _train_events(self, frame: Frame) -> list[BranchEvent]:
        """Predictor-training events for the frame's internal transfers."""
        events: list[BranchEvent] = []
        builder = self.sched_builder
        for offset in range(frame.x86_count - 1):
            instr = self.injected[self.index + offset]
            if instr.record.instruction.is_branch:
                event = event_from_decode(
                    builder.instr_decode(instr), instr.record, 0
                )
                if event is not None:
                    events.append(event)
        return events

    def _dispatch_frame(self, frame: Frame, cycle: int) -> FetchBlock:
        template = self.sched_builder.frame_schedule(frame)
        uops = template.kept
        addresses = self._frame_addresses(template)
        events = self._exit_event(frame, template)
        train_events = self._train_events(frame)
        base = self.index
        records = [
            self.injected[base + k].record for k in range(frame.x86_count)
        ]
        if (
            self.verifier is not None
            and frame.opt_result is not None
            and frame.path_key not in self._verified_paths
        ):
            self.verifier.verify_frame_instance(frame, records, self.tracker)
            self._verified_paths.add(frame.path_key)
        stats = self.stats
        stats.frame_dispatches += 1
        stats.frame_raw_uops += frame.raw_uop_count
        stats.frame_fetched_uops += len(uops)
        stats.frame_raw_loads += template.raw_loads
        stats.frame_fetched_loads += template.fetched_loads
        frame.commits += 1
        self._retire_region(frame.x86_count, cycle)
        return FetchBlock(
            source="frame",
            uops=uops,
            addresses=addresses,
            x86_count=frame.x86_count,
            pc=frame.start_pc,
            branch_events=events,
            train_events=train_events,
            frame=frame,
            sched=template,
        )

    def _dispatch_firing_frame(self, frame: Frame) -> FetchBlock:
        """This instance deviates from the frame's path: it fires."""
        self.stats.frame_aborts += 1
        frame.fires += 1
        frame.cooldown = 4  # skip the next few dispatch opportunities
        if frame.fires > frame.commits + self.FIRE_EVICTION_MARGIN:
            self.frame_cache.evict(frame.start_pc)
        # The aborted region re-executes from the ICache (paper §3.4).
        self._icache_until = self.index + frame.x86_count
        template = self.sched_builder.frame_schedule(frame)
        return FetchBlock(
            source="frame",
            uops=template.kept,
            addresses=template.fire_addresses,
            x86_count=0,  # nothing retires; the region re-executes next
            pc=frame.start_pc,
            fires=True,
            frame=frame,
            sched=template,
        )

    # --------------------------------------------------------- retirement

    def _retire_region(self, count: int, cycle: int, construct: bool = True) -> None:
        """Feed retired instructions to the tracker and frame constructor."""
        for _ in range(count):
            instr = self.injected[self.index]
            if construct:
                new_frame = self.constructor.retire(instr)
                if new_frame is not None:
                    self.queue.submit(new_frame, cycle)
            if self.tracker is not None:
                self.tracker.apply(instr.record)
            self.index += 1
