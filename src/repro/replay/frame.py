"""Atomic frames (paper §2).

A frame is a single-entry, single-exit, atomic region: all control
dependencies inside it have been converted to assertions, so either every
uop commits or none does.  The frame records the x86 path it embodies
(for sequencer path matching), its uops in frame-ified form, and — after
optimization — the optimization buffer holding the final micro-operations
and live-out bindings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.uops.uop import Uop
from repro.optimizer.buffer import OptimizationBuffer
from repro.optimizer.optuop import OptUop
from repro.optimizer.pipeline import OptimizationResult


@dataclass
class Frame:
    """One atomic frame."""

    start_pc: int
    x86_pcs: list[int]
    end_next_pc: int
    dyn_uops: list[Uop] = field(repr=False, default_factory=list)
    x86_indices: list[int] = field(repr=False, default_factory=list)
    mem_keys: list[tuple[int, int] | None] = field(repr=False, default_factory=list)
    block_starts: list[int] = field(default_factory=lambda: [0])
    buffer: OptimizationBuffer | None = None
    opt_result: OptimizationResult | None = None
    always_fires: bool = False  # degenerate frame (statically false assert)
    commits: int = 0  # dynamic instances that completed
    fires: int = 0  # dynamic instances that aborted
    cooldown: int = 0  # dispatch opportunities to skip after a fire
    #: cached :class:`repro.timing.schedule.FrameSchedule`; valid once the
    #: buffer is final (post-optimization) and for the buffer's lifetime.
    sched_template: object | None = field(default=None, repr=False, compare=False)

    @property
    def proven(self) -> bool:
        """Has this frame earned protection from replacement?"""
        return self.commits >= 4 and self.fires * 4 <= self.commits

    @property
    def x86_count(self) -> int:
        return len(self.x86_pcs)

    @property
    def path_key(self) -> tuple:
        """Identity of the frame: entry point plus embodied path."""
        return (self.start_pc, tuple(self.x86_pcs))

    @property
    def raw_uop_count(self) -> int:
        return len(self.dyn_uops)

    @property
    def uop_count(self) -> int:
        """Micro-operations fetched when this frame is dispatched."""
        if self.buffer is not None:
            return self.buffer.valid_count()
        return len(self.dyn_uops)

    @property
    def load_count(self) -> int:
        if self.buffer is not None:
            return self.buffer.load_count()
        return sum(1 for u in self.dyn_uops if u.is_load)

    def kept_uops(self) -> list[OptUop]:
        """Valid optimized uops in final (position) order."""
        if self.buffer is None:
            raise ValueError("frame has not been remapped/optimized")
        return [u for u in self.buffer.uops if u.valid]

    def kept_mem_uops(self) -> list[OptUop]:
        """Valid memory uops in frame order (for unsafe-store checks)."""
        if self.buffer is None:
            raise ValueError("frame has not been remapped/optimized")
        return [u for u in self.buffer.uops if u.valid and u.is_mem]

    def unsafe_stores(self) -> list[OptUop]:
        if self.buffer is None:
            return []
        return [u for u in self.buffer.uops if u.valid and u.is_store and u.unsafe]

    def build_buffer(self) -> OptimizationBuffer:
        """Remap the frame into the optimization buffer (idempotent)."""
        if self.buffer is None:
            self.buffer = OptimizationBuffer(
                self.dyn_uops,
                self.x86_indices,
                self.mem_keys,
                block_starts=self.block_starts,
            )
        return self.buffer

    def describe(self) -> str:
        """Human-readable dump (used by examples and debugging)."""
        header = (
            f"frame @ {self.start_pc:#x}: {self.x86_count} x86 insts, "
            f"{self.uop_count} uops"
        )
        if self.buffer is not None:
            return header + "\n" + self.buffer.dump()
        return header + "\n" + "\n".join(str(u) for u in self.dyn_uops)
