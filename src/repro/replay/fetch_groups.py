"""ICache fetch-group construction, shared by all sequencers.

An ICache fetch cycle delivers up to ``x86_decode_width`` (4) x86
instructions — at most ``fetch_width`` (8) uops — and breaks at a taken
control transfer (the classic fetch-bandwidth limit that frame and trace
caches exist to beat).
"""

from __future__ import annotations

from repro.trace.injector import InjectedInstruction
from repro.uops.uop import UopOp
from repro.x86.instructions import Mnemonic
from repro.timing.config import ProcessorConfig
from repro.timing.pipeline import BranchEvent, FetchBlock


def branch_event_for(
    instr: InjectedInstruction, uop_offset: int
) -> BranchEvent | None:
    """Build the prediction event for an instruction's control uop."""
    record = instr.record
    mnemonic = record.instruction.mnemonic
    control_index = None
    for i, uop in enumerate(instr.uops):
        if uop.op in (UopOp.BR, UopOp.JMP, UopOp.JMPI):
            control_index = uop_offset + i
            break
    if control_index is None:
        return None
    if mnemonic is Mnemonic.JCC:
        return BranchEvent(
            uop_index=control_index,
            kind="cond",
            pc=record.pc,
            taken=bool(record.branch_taken),
            target=record.next_pc,
        )
    if mnemonic is Mnemonic.CALL:
        return_address = record.pc + record.instruction.length
        kind = "callind" if record.instruction.is_indirect else "call"
        return BranchEvent(
            uop_index=control_index,
            kind=kind,
            pc=record.pc,
            target=record.next_pc,
            return_address=return_address,
        )
    if mnemonic is Mnemonic.RET:
        return BranchEvent(
            uop_index=control_index, kind="ret", pc=record.pc, target=record.next_pc
        )
    if mnemonic is Mnemonic.JMP and record.instruction.is_indirect:
        return BranchEvent(
            uop_index=control_index, kind="jmpi", pc=record.pc, target=record.next_pc
        )
    return None  # direct JMP: next-line predicted, no event


def event_from_decode(decode, record, uop_base: int) -> BranchEvent | None:
    """Build a prediction event from cached static decode facts.

    Equivalent to :func:`branch_event_for` (event kind and control-uop
    offset are static per instruction; outcome, target, and return
    address come from the dynamic ``record``) without re-scanning the
    instruction's uops per dynamic instance.
    """
    kind = decode.event_kind
    if kind is None:
        return None
    uop_index = uop_base + decode.event_offset
    if kind == "cond":
        return BranchEvent(
            uop_index=uop_index,
            kind="cond",
            pc=record.pc,
            taken=bool(record.branch_taken),
            target=record.next_pc,
        )
    if kind in ("call", "callind"):
        return BranchEvent(
            uop_index=uop_index,
            kind=kind,
            pc=record.pc,
            target=record.next_pc,
            return_address=record.pc + record.instruction.length,
        )
    # 'ret' | 'jmpi'
    return BranchEvent(
        uop_index=uop_index, kind=kind, pc=record.pc, target=record.next_pc
    )


def is_taken_transfer(instr: InjectedInstruction) -> bool:
    """Did this instruction redirect fetch (taken branch / jump / call)?"""
    record = instr.record
    fallthrough = record.pc + record.instruction.length
    return record.instruction.is_branch and record.next_pc != fallthrough


def build_icache_block(
    injected: list[InjectedInstruction],
    index: int,
    config: ProcessorConfig,
    stop_probe=None,
    builder=None,
) -> tuple[FetchBlock, int]:
    """Build one ICache fetch group starting at ``index``.

    ``stop_probe(pc)`` (if given) truncates the group before a PC the
    caller wants to fetch from elsewhere — e.g. a frame-cache hit.
    ``builder`` (a :class:`repro.timing.schedule.ScheduleBuilder`, if
    given) attaches the group's schedule tuples from its per-instruction
    decode cache, so decode and branch-event classification run once per
    static instruction instead of once per fetch.
    Returns the block and the number of x86 instructions consumed.
    """
    uops: list = []
    addresses: list = []
    events: list[BranchEvent] = []
    sched: list | None = [] if builder is not None else None
    count = 0
    first = injected[index].record
    byte_start = first.pc
    byte_end = first.pc
    while count < config.x86_decode_width and index + count < len(injected):
        instr = injected[index + count]
        if count and len(uops) + len(instr.uops) > config.fetch_width:
            break
        if count and stop_probe is not None and stop_probe(instr.record.pc):
            break
        record = instr.record
        if builder is not None:
            decode = builder.instr_decode(instr)
            event = event_from_decode(decode, record, len(uops))
            sched.extend(decode.sched)
        else:
            event = branch_event_for(instr, len(uops))
        if event is not None:
            events.append(event)
        for uop in instr.uops:
            uops.append(uop)
            addresses.append(uop.mem_address)
        byte_end = max(byte_end, record.pc + record.instruction.length)
        count += 1
        if is_taken_transfer(instr):
            break
    return (
        FetchBlock(
            source="icache",
            uops=uops,
            addresses=addresses,
            x86_count=count,
            pc=first.pc,
            byte_start=byte_start,
            byte_end=byte_end,
            branch_events=events,
            sched=sched,
        ),
        count,
    )
