"""Versioned JSON run ledger: one file describing one harness run.

``python -m repro.harness <experiments> --emit-stats FILE`` writes a
ledger; ``python -m repro.harness stats FILE`` pretty-prints one.  The
ledger is the run's flight recorder: what was asked for, where every
matrix cell came from (cache vs recompute), what each simulation
measured (cycles, the seven Figure-7/8 bins, per-pass uop removal), and
the merged process-wide metric counters.

The per-result sections are derived from the :class:`ExperimentResult`
objects themselves — the same objects the Table 3 aggregation path
reads — so a warm, fully cached run ledgers the identical totals a cold
run does, and a parallel run the identical totals a serial one does.

The schema is versioned and checked by :func:`validate_ledger`; the
check is hand-rolled (no jsonschema dependency) and deliberately strict
about the keys downstream tooling reads.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

SCHEMA_NAME = "repro-uopt/run-ledger"
LEDGER_VERSION = 1

#: Version 2 adds an optional ``sweep`` section (the ``tune``
#: subcommand's canonical record list + digest).  Ledgers without a
#: sweep keep emitting version 1, so downstream v1 readers never see a
#: version bump they cannot parse unless the new feature was used.
SWEEP_LEDGER_VERSION = 2
SUPPORTED_VERSIONS = (LEDGER_VERSION, SWEEP_LEDGER_VERSION)


class LedgerError(ValueError):
    """Raised when a ledger fails schema validation."""


# ------------------------------------------------------------------ build


def result_entry(workload: str, config_name: str, result) -> dict:
    """One cell's measurements as plain JSON-ready data.

    This is the canonical per-cell serialization: the ledger's
    ``results`` section and the :mod:`repro.service` streaming protocol
    both use it, which is what makes a served cell byte-comparable
    (after ``json.dumps(..., sort_keys=True)``) to a locally computed
    one.
    """
    sim = result.sim
    entry = {
        "workload": workload,
        "config": config_name,
        "ipc_x86": sim.ipc_x86,
        "cycles": sim.cycles,
        "x86_retired": sim.x86_retired,
        "uops_fetched": sim.uops_fetched,
        "loads_executed": sim.loads_executed,
        "stores_executed": sim.stores_executed,
        "bins": dict(sim.bins),
        "coverage": sim.coverage,
        "frames_fetched": sim.frames_fetched,
        "frames_fired": sim.frames_fired,
        "branch_mispredicts": sim.branch_mispredicts,
        "window_occupancy_mean": getattr(sim, "window_occupancy_mean", 0.0),
        "uop_reduction": result.uop_reduction,
        "load_reduction": result.load_reduction,
        "optimizer": None,
        "sequencer": None,
    }
    totals = result.optimizer_totals
    if totals is not None:
        entry["optimizer"] = {
            "frames_optimized": totals.frames_optimized,
            "frames_dropped": totals.frames_dropped,
            "uops_before": totals.uops_before,
            "uops_after": totals.uops_after,
            "uops_removed": totals.uops_before - totals.uops_after,
            "loads_before": totals.loads_before,
            "loads_after": totals.loads_after,
            "loads_removed": totals.loads_before - totals.loads_after,
            "loads_removed_speculatively": totals.loads_removed_speculatively,
            "stores_marked_unsafe": totals.stores_marked_unsafe,
            "changes_by_pass": dict(getattr(totals, "changes_by_pass", {})),
        }
    stats = result.sequencer_stats
    if stats is not None:
        entry["sequencer"] = {
            "raw_uops_total": stats.raw_uops_total,
            "frame_raw_uops": stats.frame_raw_uops,
            "frame_fetched_uops": stats.frame_fetched_uops,
            "frame_dispatches": stats.frame_dispatches,
            "frame_aborts": stats.frame_aborts,
            "unsafe_aborts": stats.unsafe_aborts,
            "cooldown_skips": getattr(stats, "cooldown_skips", 0),
        }
    return entry


def build_run_ledger(
    argv: list[str],
    experiments: list[str],
    matrix,
    registry=None,
    sweep: dict | None = None,
) -> dict:
    """Assemble a ledger dict from a finished :class:`ResultMatrix` run.

    ``sweep`` (a :meth:`repro.tune.engine.SweepResult.to_json` dict)
    upgrades the ledger to version 2 and lands under the ``sweep`` key;
    ``tune report``/``tune pgo`` re-read it from there.
    """
    cells = [
        {
            "workload": t.workload,
            "config": t.config_name,
            "seconds": t.seconds,
            "result_cache_hit": t.result_cache_hit,
            "trace_cache_hit": t.trace_cache_hit,
            "emulated": t.emulated,
            "simulated": t.simulated,
            "worker_pid": t.worker_pid,
        }
        for t in matrix.telemetry
    ]
    results = [
        result_entry(workload, config_name, result)
        for (workload, config_name), result in sorted(matrix._results.items())
    ]
    passes: dict[str, int] = {}
    uops_removed_total = 0
    loads_removed_total = 0
    for entry in results:
        optimizer = entry["optimizer"]
        if optimizer is None:
            continue
        uops_removed_total += optimizer["uops_removed"]
        loads_removed_total += optimizer["loads_removed"]
        for name, changes in optimizer["changes_by_pass"].items():
            passes[name] = passes.get(name, 0) + changes
    ledger = {
        "schema": SCHEMA_NAME,
        "version": LEDGER_VERSION,
        "created": time.time(),
        "command": {
            "argv": list(argv),
            "experiments": list(experiments),
            "jobs": matrix.jobs,
            "scale": matrix.scale,
            "seed": matrix.seed,
        },
        "cells": cells,
        "results": results,
        "passes": passes,
        "optimizer_totals": {
            "uops_removed": uops_removed_total,
            "loads_removed": loads_removed_total,
        },
        "metrics": (registry.snapshot() if registry is not None else None),
        "store": (matrix.store.stats() if matrix.store is not None else None),
    }
    if sweep is not None:
        ledger["version"] = SWEEP_LEDGER_VERSION
        ledger["sweep"] = sweep
    return ledger


def write_ledger(path: str | Path, ledger: dict) -> Path:
    """Validate and write a ledger as JSON; returns the path written."""
    validate_ledger(ledger)
    path = Path(path)
    path.write_text(json.dumps(ledger, indent=2, sort_keys=True) + "\n")
    return path


def read_ledger(path: str | Path) -> dict:
    """Load and validate a ledger file."""
    try:
        ledger = json.loads(Path(path).read_text())
    except ValueError as exc:
        raise LedgerError(f"{path} is not valid JSON: {exc}") from exc
    validate_ledger(ledger)
    return ledger


# --------------------------------------------------------------- validate

_TOP_LEVEL = {
    "schema": str,
    "version": int,
    "created": (int, float),
    "command": dict,
    "cells": list,
    "results": list,
    "passes": dict,
    "optimizer_totals": dict,
}

_CELL_KEYS = {
    "workload": str,
    "config": str,
    "seconds": (int, float),
    "result_cache_hit": bool,
    "trace_cache_hit": bool,
    "emulated": bool,
    "simulated": bool,
}

_SWEEP_KEYS = {
    "search": str,
    "seed": int,
    "workloads": list,
    "points": list,
    "records": list,
    "digest": str,
}

_RESULT_KEYS = {
    "workload": str,
    "config": str,
    "ipc_x86": (int, float),
    "cycles": int,
    "x86_retired": int,
    "uops_fetched": int,
    "bins": dict,
    "uop_reduction": (int, float),
    "load_reduction": (int, float),
}


def _check_keys(label: str, data: dict, spec: dict, problems: list[str]) -> None:
    for key, expected in spec.items():
        if key not in data:
            problems.append(f"{label}: missing key {key!r}")
        elif not isinstance(data[key], expected):
            problems.append(
                f"{label}: {key!r} has type {type(data[key]).__name__}, "
                f"expected {expected}"
            )


def validate_ledger(ledger: dict) -> None:
    """Raise :class:`LedgerError` (listing every problem) on a bad ledger."""
    problems: list[str] = []
    if not isinstance(ledger, dict):
        raise LedgerError(f"ledger must be a dict, got {type(ledger).__name__}")
    _check_keys("ledger", ledger, _TOP_LEVEL, problems)
    if ledger.get("schema") not in (None, SCHEMA_NAME):
        problems.append(f"unknown schema {ledger['schema']!r}")
    if (
        isinstance(ledger.get("version"), int)
        and ledger["version"] not in SUPPORTED_VERSIONS
    ):
        problems.append(
            f"ledger version {ledger['version']} not supported "
            f"(supported: {', '.join(map(str, SUPPORTED_VERSIONS))})"
        )
    sweep = ledger.get("sweep")
    if sweep is not None:
        if ledger.get("version") == LEDGER_VERSION:
            problems.append(
                "sweep section requires ledger version "
                f"{SWEEP_LEDGER_VERSION}, got {ledger.get('version')}"
            )
        if not isinstance(sweep, dict):
            problems.append(f"sweep: not a dict ({type(sweep).__name__})")
        else:
            _check_keys("sweep", sweep, _SWEEP_KEYS, problems)
    for index, cell in enumerate(ledger.get("cells") or []):
        if not isinstance(cell, dict):
            problems.append(f"cells[{index}]: not a dict")
            continue
        _check_keys(f"cells[{index}]", cell, _CELL_KEYS, problems)
    for index, entry in enumerate(ledger.get("results") or []):
        if not isinstance(entry, dict):
            problems.append(f"results[{index}]: not a dict")
            continue
        _check_keys(f"results[{index}]", entry, _RESULT_KEYS, problems)
    passes = ledger.get("passes")
    if isinstance(passes, dict):
        for name, changes in passes.items():
            if not isinstance(changes, int):
                problems.append(f"passes[{name!r}]: not an int")
    if problems:
        raise LedgerError("; ".join(problems))


# ----------------------------------------------------------------- render


def format_ledger(ledger: dict) -> str:
    """Human-readable summary of a run ledger (the ``stats`` subcommand)."""
    lines: list[str] = []
    command = ledger["command"]
    lines.append(f"run ledger v{ledger['version']}  ({ledger['schema']})")
    lines.append(
        f"experiments: {' '.join(command['experiments'])}  "
        f"(jobs={command['jobs']}, scale={command['scale']}, "
        f"seed={command['seed']})"
    )
    cells = ledger["cells"]
    hits = sum(1 for c in cells if c["result_cache_hit"])
    simulated = sum(1 for c in cells if c["simulated"])
    emulated = sum(1 for c in cells if c["emulated"])
    seconds = sum(c["seconds"] for c in cells)
    lines.append(
        f"cells: {len(cells)} ({hits} cached, {simulated} simulated, "
        f"{emulated} emulated) in {seconds:.1f}s of task time"
    )
    totals = ledger["optimizer_totals"]
    lines.append(
        f"optimizer: {totals['uops_removed']:,} uops and "
        f"{totals['loads_removed']:,} loads removed (static, all frames)"
    )
    if ledger["passes"]:
        width = max(len(name) for name in ledger["passes"])
        for name in sorted(ledger["passes"]):
            lines.append(f"  {name:<{width}}  {ledger['passes'][name]:,} changes")
    by_cycles = sorted(
        ledger["results"], key=lambda r: r["cycles"], reverse=True
    )[:8]
    if by_cycles:
        lines.append("hottest cells (by cycles):")
        for entry in by_cycles:
            lines.append(
                f"  {entry['workload']:<8} {entry['config']:<10} "
                f"{entry['cycles']:>9,} cycles  IPC {entry['ipc_x86']:.2f}  "
                f"occupancy {entry.get('window_occupancy_mean', 0.0):.0f}"
            )
    metrics = ledger.get("metrics")
    if metrics and metrics.get("counters"):
        lines.append("counters:")
        for name in sorted(metrics["counters"]):
            value = metrics["counters"][name]
            rendered = f"{value:,}" if isinstance(value, int) else f"{value:,.3f}"
            lines.append(f"  {name:<40} {rendered}")
    if metrics and metrics.get("histograms"):
        lines.append("timers/histograms:")
        for name in sorted(metrics["histograms"]):
            data = metrics["histograms"][name]
            mean = data["sum"] / data["count"] if data["count"] else 0.0
            lines.append(
                f"  {name:<40} n={data['count']} mean={mean:.4f} "
                f"min={data['min']:.4f} max={data['max']:.4f}"
            )
    sweep = ledger.get("sweep")
    if sweep:
        lines.append(
            f"sweep: {sweep['search']} (seed {sweep['seed']}) — "
            f"{len(sweep['records'])} cells over "
            f"{len(sweep['workloads'])} workloads x "
            f"{len(sweep['points'])} points, digest {sweep['digest'][:16]}"
        )
    store = ledger.get("store")
    if store:
        lines.append(
            f"store: {store['entries']} entries, "
            f"{store['bytes'] / (1024 * 1024):.2f} MB at {store['root']}"
        )
    return "\n".join(lines)
