"""``--profile``: wrap a run in cProfile and report hotspots to stderr.

Kept separate from the registry so importing :mod:`repro.metrics` stays
cheap and the profiler is only constructed when explicitly requested.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import sys
from contextlib import contextmanager

#: How many cumulative-time entries ``--profile`` prints.
TOP_N = 20


@contextmanager
def profiled(enabled: bool = True, top_n: int = TOP_N, stream=None):
    """Profile the wrapped block; dump top-``top_n`` hotspots to stderr.

    With ``enabled=False`` this is a no-op context manager, so call
    sites can wrap unconditionally (``with profiled(args.profile): ...``)
    and pay nothing when the flag is off.
    """
    if not enabled:
        yield None
        return
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        buffer = io.StringIO()
        stats = pstats.Stats(profiler, stream=buffer)
        stats.sort_stats(pstats.SortKey.CUMULATIVE)
        stats.print_stats(top_n)
        out = stream if stream is not None else sys.stderr
        print(f"[repro.metrics] cProfile top {top_n} by cumulative time:", file=out)
        print(buffer.getvalue().rstrip(), file=out)
