"""Process-local metrics registry: counters, gauges, histograms, timers.

The paper's methodology is measurement-first — per-pass uop removal and
the seven-bin cycle accounting drive every figure — and the same
discipline applies to the simulator itself.  This module is the single
place run-time measurements accumulate: named counters (monotonic),
gauges (last value), histograms (count/sum/min/max), a scoped
:func:`MetricsRegistry.timer` context manager, and an optional
ring-buffer event trace for debugging.

Design constraints:

* **zero dependencies** — stdlib only, importable everywhere;
* **cheap** — hot layers keep their own plain-int counters (e.g.
  ``FrameCache.hits``) and publish them into a registry at run
  boundaries; per-event registry calls only happen at coarse
  granularity (per frame, per run), never per uop;
* **mergeable** — :meth:`MetricsRegistry.snapshot` produces a plain,
  picklable dict and :meth:`MetricsRegistry.merge` folds one into
  another, so per-task registries recorded inside process-pool workers
  aggregate deterministically back in the parent.
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager

#: Bump when the snapshot layout changes (consumed by the run ledger).
SNAPSHOT_VERSION = 1


class Counter:
    """A monotonically increasing named value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Summary statistics over observed samples (count/sum/min/max)."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Named metric instruments plus an optional bounded event trace."""

    def __init__(self, event_capacity: int = 256) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self.events: deque[tuple[float, str, dict]] = deque(maxlen=event_capacity)

    # -------------------------------------------------------- instruments

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    @contextmanager
    def timer(self, name: str):
        """Observe a scope's wall-clock seconds into ``<name>`` histogram."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.histogram(name).observe(time.perf_counter() - start)

    def event(self, name: str, **fields) -> None:
        """Append one event to the ring buffer (oldest entries fall off)."""
        self.events.append((time.time(), name, fields))

    # ------------------------------------------------------- merge/export

    def snapshot(self) -> dict:
        """Plain-data, picklable view of every instrument."""
        return {
            "version": SNAPSHOT_VERSION,
            "counters": {n: c.value for n, c in self._counters.items()},
            "gauges": {n: g.value for n, g in self._gauges.items()},
            "histograms": {
                n: {"count": h.count, "sum": h.total, "min": h.min, "max": h.max}
                for n, h in self._histograms.items()
                if h.count
            },
            "events": [list(e) for e in self.events],
        }

    def merge(self, snapshot: dict | "MetricsRegistry") -> None:
        """Fold a snapshot (or another registry) into this one.

        Counters add; gauges take the incoming value; histograms combine
        count/sum/min/max; events append (bounded by the ring buffer).
        Merging is associative and, for counters, commutative — the
        property the cross-worker aggregation tests pin down.
        """
        if isinstance(snapshot, MetricsRegistry):
            snapshot = snapshot.snapshot()
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, data in snapshot.get("histograms", {}).items():
            histogram = self.histogram(name)
            histogram.count += data["count"]
            histogram.total += data["sum"]
            if data["min"] < histogram.min:
                histogram.min = data["min"]
            if data["max"] > histogram.max:
                histogram.max = data["max"]
        for entry in snapshot.get("events", []):
            self.events.append(tuple(entry))

    def merge_parts(
        self,
        counters: dict | None = None,
        gauges: dict | None = None,
        histograms: dict | None = None,
    ) -> None:
        """Merge a snapshot shipped as separate parts.

        Convenience for wire formats (the service's ``metrics`` response
        carries counters/gauges/histograms as separate fields, not the
        full snapshot envelope) — same associative semantics as
        :meth:`merge`.
        """
        self.merge(
            {
                "counters": counters or {},
                "gauges": gauges or {},
                "histograms": histograms or {},
            }
        )

    def counters(self) -> dict[str, int | float]:
        return {name: c.value for name, c in self._counters.items()}

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self.events.clear()


#: The process-global registry: what a bare ``get_registry()`` returns and
#: where the harness accumulates a run's measurements by default.
_GLOBAL = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _GLOBAL
