"""Lightweight, zero-dependency observability for the reproduction.

Three pieces:

* :mod:`repro.metrics.registry` — process-local counters, gauges,
  histograms, scoped timers, and a ring-buffer event trace, with
  deterministic cross-process merging;
* :mod:`repro.metrics.ledger` — the versioned JSON run ledger written
  by ``--emit-stats`` and rendered by the ``stats`` CLI subcommand;
* :mod:`repro.metrics.profile` — the ``--profile`` cProfile wrapper.
"""

from repro.metrics.ledger import (
    LEDGER_VERSION,
    SUPPORTED_VERSIONS,
    SWEEP_LEDGER_VERSION,
    LedgerError,
    build_run_ledger,
    format_ledger,
    read_ledger,
    result_entry,
    validate_ledger,
    write_ledger,
)
from repro.metrics.profile import profiled
from repro.metrics.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LEDGER_VERSION",
    "LedgerError",
    "MetricsRegistry",
    "SUPPORTED_VERSIONS",
    "SWEEP_LEDGER_VERSION",
    "build_run_ledger",
    "format_ledger",
    "get_registry",
    "profiled",
    "read_ledger",
    "result_entry",
    "validate_ledger",
    "write_ledger",
]
