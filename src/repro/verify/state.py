"""Architectural-state tracking along a trace (State Verifier substrate).

The verifier follows the trace's register/flag effects so that, at any
frame boundary, the full architectural state is known (trace records only
carry *changes*).  It also builds the paper's two memory maps for a frame
instance: the initial map (first load of each live location) and the
final map (last store to each location) — §5.1.3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.trace.record import TraceRecord
from repro.uops.uop import UReg
from repro.x86.registers import Reg


class ArchTracker:
    """Running architectural register + flag state along a trace."""

    def __init__(self, initial_regs: dict[Reg, int] | None = None, flags: int = 0):
        self.regs: dict[int, int] = {int(r): 0 for r in Reg}
        if initial_regs:
            for reg, value in initial_regs.items():
                self.regs[int(reg)] = value
        self.flags = flags

    def apply(self, record: TraceRecord) -> None:
        for reg, value in record.reg_writes.items():
            self.regs[int(reg)] = value
        if record.flags_after is not None:
            self.flags = record.flags_after

    def live_in_regs(self) -> dict[UReg, int]:
        """Snapshot in the uop register space (architectural regs only)."""
        return {UReg(i): self.regs[i] for i in range(8)}

    def live_in_flags(self) -> tuple[bool, bool, bool, bool]:
        from repro.x86.registers import Flag

        word = self.flags
        return (
            bool(word & (1 << Flag.CF)),
            bool(word & (1 << Flag.ZF)),
            bool(word & (1 << Flag.SF)),
            bool(word & (1 << Flag.OF)),
        )


@dataclass
class MemoryMaps:
    """Initial and final memory maps for one frame region (paper §5.1.3)."""

    initial: dict[int, int] = field(default_factory=dict)  # byte addr -> byte
    final: dict[int, int] = field(default_factory=dict)

    @classmethod
    def from_records(cls, records: list[TraceRecord]) -> "MemoryMaps":
        maps = cls()
        written: set[int] = set()
        for record in records:
            for mem_op in record.mem_ops:
                for i in range(mem_op.size):
                    address = (mem_op.address + i) & 0xFFFFFFFF
                    byte = (mem_op.data >> (8 * i)) & 0xFF
                    if mem_op.is_store:
                        written.add(address)
                        maps.final[address] = byte
                    elif address not in written and address not in maps.initial:
                        maps.initial[address] = byte
        return maps

    def read_initial(self, address: int) -> int | None:
        return self.initial.get(address)
