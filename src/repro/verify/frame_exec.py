"""Execution of optimized frames against concrete state.

Frames in the optimization buffer are straight-line, single-assignment
programs over ``LiveIn``/``DefRef`` operands.  This module evaluates them
— computing every memory address from operand *values* rather than the
trace's recorded addresses — so the State Verifier can check that an
optimized frame transforms architectural state exactly as the original
instruction stream did (paper §5.1.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.x86.instructions import cond_holds
from repro.x86.registers import MASK32, pack_flags, to_signed
from repro.uops.uop import UopOp, UReg
from repro.optimizer.buffer import OptimizationBuffer
from repro.optimizer.optuop import DefRef, LiveIn, Operand, OptUop


class FrameExecutionError(Exception):
    """Raised for invalid frames (undefined operand, missing memory, ...)."""


Flags = tuple[bool, bool, bool, bool]  # (cf, zf, sf, of)


@dataclass
class FrameOutcome:
    """Result of executing one frame instance."""

    fired: bool
    firing_slot: int | None
    final_regs: dict[UReg, int]
    final_flags: int
    stores: list[tuple[int, int, int]]  # (address, size, value)
    loads: list[tuple[int, int]]  # (address, size)

    @property
    def committed(self) -> bool:
        return not self.fired


def execute_frame(
    buffer: OptimizationBuffer,
    live_in_regs: dict[UReg, int],
    live_in_flags: Flags,
    read_memory: Callable[[int], int | None],
) -> FrameOutcome:
    """Execute a frame's valid uops in order.

    ``read_memory(byte_address)`` supplies initial memory bytes (None if
    the byte is unknown — treated as a frame validity violation, paper
    rule 1: "all loads can be found in the initial memory map").
    """
    slot_values: dict[int, int] = {}
    slot_flags: dict[int, Flags] = {}
    local_memory: dict[int, int] = {}
    stores: list[tuple[int, int, int]] = []
    loads: list[tuple[int, int]] = []

    def value_of(operand: Operand | None) -> int:
        if isinstance(operand, LiveIn):
            return live_in_regs.get(operand.reg, 0)
        if isinstance(operand, DefRef):
            if operand.slot not in slot_values:
                raise FrameExecutionError(f"use of unset slot {operand.slot}")
            return slot_values[operand.slot]
        raise FrameExecutionError(f"cannot evaluate operand {operand!r}")

    def flags_of(uop: OptUop) -> Flags:
        if uop.flags_src is None:
            return live_in_flags
        if uop.flags_src not in slot_flags:
            raise FrameExecutionError(f"use of unset flags slot {uop.flags_src}")
        return slot_flags[uop.flags_src]

    def address_of(uop: OptUop) -> int:
        address = uop.imm or 0
        if uop.src_a is not None:
            address += value_of(uop.src_a)
        if uop.src_b is not None:
            address += value_of(uop.src_b) * uop.scale
        return address & MASK32

    def read_bytes(address: int, size: int) -> int:
        value = 0
        for i in range(size):
            byte_address = (address + i) & MASK32
            if byte_address in local_memory:
                byte = local_memory[byte_address]
            else:
                byte = read_memory(byte_address)
                if byte is None:
                    raise FrameExecutionError(
                        f"load from {byte_address:#x} not covered by the "
                        f"initial memory map"
                    )
            value |= (byte & 0xFF) << (8 * i)
        return value

    fired_slot: int | None = None
    for uop in buffer.uops:
        if not uop.valid:
            continue
        result, flags = _evaluate(uop, value_of, flags_of, address_of, read_bytes)
        if uop.is_store:
            address = address_of(uop)
            value = value_of(uop.src_data) & ((1 << (8 * uop.size)) - 1)
            for i in range(uop.size):
                local_memory[(address + i) & MASK32] = (value >> (8 * i)) & 0xFF
            stores.append((address, uop.size, value))
        elif uop.is_load:
            loads.append((address_of(uop), uop.size))
        if result is not None:
            slot_values[uop.slot] = result
        if flags is not None:
            slot_flags[uop.slot] = flags
        if uop.is_assertion and result == _FIRE:
            fired_slot = uop.slot
            break

    final_regs: dict[UReg, int] = {}
    for reg in (UReg(i) for i in range(8)):
        bound = buffer.live_out.get(reg)
        if bound is None or fired_slot is not None:
            # Unwritten register — or a fired frame, whose state rolls
            # back to the frame entry (atomicity, paper §2).
            final_regs[reg] = live_in_regs.get(reg, 0)
        else:
            final_regs[reg] = value_of(bound)
    if buffer.flags_live_out_slot is not None and fired_slot is None:
        # A fired frame rolls flags back to the entry state too —
        # atomicity (paper §2) covers the whole architectural state,
        # not just registers.
        cf, zf, sf, of = slot_flags.get(buffer.flags_live_out_slot, live_in_flags)
    else:
        cf, zf, sf, of = live_in_flags
    return FrameOutcome(
        fired=fired_slot is not None,
        firing_slot=fired_slot,
        final_regs=final_regs,
        final_flags=pack_flags(cf, zf, sf, of),
        stores=stores,
        loads=loads,
    )


_FIRE = object()  # sentinel returned by firing assertions


def _evaluate(uop, value_of, flags_of, address_of, read_bytes):
    """Evaluate one uop: returns (value | _FIRE | None, flags | None)."""
    op = uop.op

    if op in (UopOp.NOP, UopOp.JMP, UopOp.JMPI, UopOp.BR, UopOp.STORE):
        return None, None

    if op is UopOp.ASSERT:
        cf, zf, sf, of = flags_of(uop)
        holds = cond_holds(uop.cond, cf=cf, zf=zf, sf=sf, of=of)
        return (None if holds else _FIRE), None

    if op is UopOp.ASSERT_CMP:
        a = value_of(uop.src_a) if uop.src_a is not None else 0
        b = value_of(uop.src_b) if uop.src_b is not None else (uop.imm or 0) & MASK32
        kind = uop.cmp_kind or UopOp.SUB
        if kind is UopOp.SUB:
            result = (a - b) & MASK32
            flags = (
                a < b,
                result == 0,
                bool(result & 0x8000_0000),
                to_signed(a) - to_signed(b) != to_signed(result),
            )
        else:
            result = a & b
            flags = (False, result == 0, bool(result & 0x8000_0000), False)
        holds = cond_holds(uop.cond, cf=flags[0], zf=flags[1], sf=flags[2], of=flags[3])
        out_flags = flags if uop.writes_flags else None
        return (None if holds else _FIRE), out_flags

    if op is UopOp.LIMM:
        return (uop.imm or 0) & MASK32, None
    if op is UopOp.MOV:
        return value_of(uop.src_a), None
    if op is UopOp.LEA:
        return address_of(uop), None
    if op is UopOp.SEXT:
        return to_signed(value_of(uop.src_a), 8 * uop.size) & MASK32, None
    if op is UopOp.LOAD:
        raw = read_bytes(address_of(uop), uop.size)
        if uop.sign_extend:
            raw = to_signed(raw, 8 * uop.size) & MASK32
        return raw, None
    if op in (UopOp.DIVQ, UopOp.DIVR):
        low = value_of(uop.src_a)
        divisor = to_signed(
            value_of(uop.src_b) if uop.src_b is not None else (uop.imm or 0)
        )
        high = value_of(uop.src_data) if uop.src_data is not None else 0
        if divisor == 0:
            raise FrameExecutionError(f"division by zero in {uop}")
        dividend = to_signed((high << 32) | low, bits=64)
        quotient = int(dividend / divisor)
        if op is UopOp.DIVQ:
            return quotient & MASK32, None
        return (dividend - quotient * divisor) & MASK32, None

    # ALU group.
    a = value_of(uop.src_a) if uop.src_a is not None else 0
    if op is UopOp.NEG:
        result = (-a) & MASK32
        flags = (
            (a != 0, result == 0, bool(result & 0x8000_0000), a == 0x8000_0000)
            if uop.writes_flags
            else None
        )
        return result, flags
    if op is UopOp.NOT:
        return (~a) & MASK32, None
    if op in (UopOp.SHL, UopOp.SHR, UopOp.SAR):
        count = (
            value_of(uop.src_b) if uop.src_b is not None else (uop.imm or 0)
        ) & 0x1F
        if count == 0:
            flags = _passthrough_flags(uop, flags_of) if uop.writes_flags else None
            return a, flags
        if op is UopOp.SHL:
            result = (a << count) & MASK32
            cf = bool((a >> (32 - count)) & 1)
        elif op is UopOp.SHR:
            result = a >> count
            cf = bool((a >> (count - 1)) & 1)
        else:
            result = (to_signed(a) >> count) & MASK32
            cf = bool((to_signed(a) >> (count - 1)) & 1)
        flags = (
            (cf, result == 0, bool(result & 0x8000_0000), False)
            if uop.writes_flags
            else None
        )
        return result, flags

    b = value_of(uop.src_b) if uop.src_b is not None else (uop.imm or 0) & MASK32
    if op is UopOp.ADD:
        result = (a + b) & MASK32
        cf = a + b > MASK32
        of = to_signed(a) + to_signed(b) != to_signed(result)
    elif op is UopOp.SUB:
        result = (a - b) & MASK32
        cf = a < b
        of = to_signed(a) - to_signed(b) != to_signed(result)
    elif op is UopOp.AND:
        result, cf, of = a & b, False, False
    elif op is UopOp.OR:
        result, cf, of = a | b, False, False
    elif op is UopOp.XOR:
        result, cf, of = a ^ b, False, False
    elif op is UopOp.MUL:
        full = to_signed(a) * to_signed(b)
        result = full & MASK32
        cf = of = to_signed(result) != full
    else:  # pragma: no cover - exhaustive
        raise FrameExecutionError(f"unimplemented uop {uop}")
    if not uop.writes_flags:
        return result, None
    if uop.preserves_cf:
        cf = flags_of(uop)[0]
    return result, (cf, result == 0, bool(result & 0x8000_0000), of)


def _passthrough_flags(uop, flags_of):
    """Shift-by-zero: the flag word passes through unchanged."""
    return flags_of(uop)
