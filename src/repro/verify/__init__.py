"""State verification (paper §5.1.3)."""

from repro.verify.frame_exec import (
    FrameExecutionError,
    FrameOutcome,
    execute_frame,
)
from repro.verify.state import ArchTracker, MemoryMaps
from repro.verify.verifier import (
    FrameVerificationReport,
    StateVerifier,
    VerificationError,
)

__all__ = [
    "ArchTracker",
    "FrameExecutionError",
    "FrameOutcome",
    "FrameVerificationReport",
    "MemoryMaps",
    "StateVerifier",
    "VerificationError",
    "execute_frame",
]
